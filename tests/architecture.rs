//! E1 / Figure 1: the software architecture end-to-end.
//!
//! Data flows bottom-up through every layer of Figure 1: PCL files →
//! datasets → merged dataset interface → analysis (cluster, search, order,
//! export) → visualization synchronization → gene visualization panes.
//! This test drives one payload through all of them and checks each layer's
//! contract on the way.

use forestview::command::{apply, Command};
use forestview::renderer::render_desktop;
use forestview::Session;
use fv_cluster::{Linkage, Metric};
use fv_formats::pcl::{parse_pcl, write_pcl};
use fv_formats::{detect_format, FileFormat};
use fv_render::color::Rgb;
use fv_synth::scenario::Scenario;

#[test]
fn full_stack_pcl_to_pixels() {
    // Layer 0: datasets as PCL text (round-trip through the file format so
    // the file layer is genuinely in the path).
    let scenario = Scenario::three_datasets(300, 99);
    let mut session = Session::new();
    for ds in &scenario.datasets {
        let text = write_pcl(ds);
        assert_eq!(detect_format(&text), FileFormat::Pcl);
        let parsed = parse_pcl(&ds.name, &text).expect("own PCL must parse");
        assert_eq!(parsed.n_genes(), ds.n_genes());
        session.load_dataset(parsed).expect("unique name");
    }

    // Layer 1: merged dataset interface — the 3-D accessor works across
    // datasets with different row orders.
    let merged = session.merged();
    assert_eq!(merged.n_datasets(), 3);
    let g = merged
        .universe()
        .lookup(&fv_synth::names::orf_name(0))
        .unwrap();
    let in_all = merged.datasets_with_gene(g);
    assert_eq!(in_all, vec![0, 1, 2], "every dataset measures every gene");
    assert!(merged.total_measurements() > 0);

    // Layer 2: analysis — clustering and search.
    session.cluster_dataset(0, Metric::Pearson, Linkage::Average);
    assert!(session.gene_tree(0).is_some());
    let hits = session.search_and_select("general stress response");
    assert!(hits > 0, "annotation search must find planted module text");

    // Layer 3: synchronization — alignment invariant holds.
    assert!(forestview::sync::verify_alignment(&session));

    // Layer 4: visualization — pixels come out.
    let fb = render_desktop(&session, 480, 360);
    assert!(
        fb.count_pixels(Rgb::BLACK) < 480 * 360,
        "render produced pixels"
    );

    // Exports close the loop (Figure 1's export boxes).
    let list = session.export_gene_list();
    assert_eq!(list.lines().count(), hits);
    let table = session.export_merged_selection();
    assert_eq!(table.lines().count(), hits + 1);
}

#[test]
fn command_stream_drives_all_layers() {
    let scenario = Scenario::three_datasets(200, 5);
    let mut session = Session::new();
    for ds in scenario.datasets {
        session.load_dataset(ds).unwrap();
    }
    let script = [
        Command::ClusterAll,
        Command::SelectRegion {
            dataset: 0,
            start_frac: 0.1,
            end_frac: 0.3,
        },
        Command::ToggleSync,
        Command::ToggleSync,
        Command::Scroll(5),
        Command::OrderByName,
        Command::SetContrast {
            dataset: Some(1),
            contrast: 2.0,
        },
    ];
    for cmd in &script {
        let out = apply(&mut session, cmd, 800, 600);
        assert!(
            !out.damage.is_empty(),
            "every command must invalidate something: {cmd:?}"
        );
    }
    assert!(session.sync_enabled());
    assert_eq!(session.scroll(), 5);
    assert_eq!(
        session.dataset_order(),
        &[1, 0, 2],
        "brauer, gasch, hughes alphabetical"
    );
}

#[test]
fn selection_roundtrip_as_new_pane() {
    // Export a selection and reload it as a dataset — the paper's
    // "loaded into the ForestView display as a dataset" workflow.
    let scenario = Scenario::three_datasets(150, 11);
    let mut session = Session::new();
    for ds in scenario.datasets {
        session.load_dataset(ds).unwrap();
    }
    session.select_region(0, 10, 30);
    let before = session.n_datasets();
    let idx = session
        .selection_as_new_dataset(0, "my_cluster")
        .unwrap()
        .unwrap();
    assert_eq!(session.n_datasets(), before + 1);
    assert_eq!(session.dataset(idx).name, "my_cluster");
    assert_eq!(session.dataset(idx).n_genes(), 20);
    // The new pane participates in synchronized viewing immediately.
    assert!(forestview::sync::verify_alignment(&session));
}
