//! Smoke reproduction of every figure pipeline at test-friendly sizes:
//! each figure's code path must run, produce non-blank deterministic
//! output, and expose the structure the paper's figure shows.

use forestview::integrate::AnalysisSuite;
use forestview::renderer::{
    compose_figure6, render_desktop, render_golem_map, render_spell_panel, render_wall,
};
use forestview::selection::SelectionOrigin;
use forestview::Session;
use fv_golem::layout::layout_map;
use fv_golem::map::build_local_map;
use fv_golem::{enrich, EnrichmentConfig};
use fv_render::color::Rgb;
use fv_render::image::{decode_ppm, encode_ppm};
use fv_spell::{SpellConfig, SpellEngine};
use fv_synth::names::orf_name;
use fv_synth::ontogen::generate_ontology;
use fv_synth::scenario::Scenario;
use fv_wall::{TileGrid, WallRenderer};

fn session_with_selection(n_genes: usize, seed: u64) -> (Session, fv_synth::modules::GroundTruth) {
    let scenario = Scenario::three_datasets(n_genes, seed);
    let truth = scenario.truth.clone();
    let mut session = Session::new();
    for ds in scenario.datasets {
        session.load_dataset(ds).unwrap();
    }
    session.cluster_all();
    session.select_region(0, 5, 25);
    (session, truth)
}

#[test]
fn fig2_three_pane_synchronized_render() {
    let (session, _) = session_with_selection(150, 1);
    let fb = render_desktop(&session, 600, 400);
    // Non-blank, and deterministic across repeated renders.
    assert!(fb.count_pixels(Rgb::BLACK) < 600 * 400);
    let fb2 = render_desktop(&session, 600, 400);
    assert_eq!(fb, fb2, "rendering must be deterministic");
    // PPM encode/decode round-trips the artifact.
    let bytes = encode_ppm(&fb);
    assert_eq!(decode_ppm(&bytes).unwrap(), fb);
}

#[test]
fn fig3_wall_equals_desktop_and_scales() {
    let (session, _) = session_with_selection(120, 2);
    let grid = TileGrid::new(3, 2, 120, 90);
    let mut wall = WallRenderer::new(grid);
    let stats = render_wall(&session, &mut wall);
    assert_eq!(stats.tiles_rendered, 6);
    let direct = render_desktop(&session, 360, 180);
    assert_eq!(wall.composite(), direct, "tile seams must be invisible");
}

#[test]
fn fig4_spell_two_ordered_lists() {
    let scenario = Scenario::spell_compendium(200, 6, 3);
    let mut engine = SpellEngine::new(SpellConfig::default());
    for ds in &scenario.datasets {
        engine.add_dataset(ds);
    }
    engine.finalize();
    let query: Vec<String> = scenario.truth.esr_induced()[..5]
        .iter()
        .map(|&g| orf_name(g))
        .collect();
    let refs: Vec<&str> = query.iter().map(|s| s.as_str()).collect();
    let result = engine.query(&refs);
    // ordered dataset list
    for w in result.datasets.windows(2) {
        assert!(w[0].weight >= w[1].weight);
    }
    // ordered gene list
    for w in result.genes.windows(2) {
        assert!(w[0].score >= w[1].score);
    }
    // panel renders
    let panel = render_spell_panel(&result, 300, 220);
    assert!(panel.count_pixels(Rgb::BLACK) < 300 * 220);
}

#[test]
fn fig5_golem_map_renders_hierarchy() {
    let truth = fv_synth::modules::plant_modules(200, 2, 20, 9);
    let onto = generate_ontology(&truth, 80, 9);
    let prop = onto.annotations.propagate(&onto.dag);
    let genes: Vec<String> = truth.modules[2].genes[..12]
        .iter()
        .map(|&g| orf_name(g))
        .collect();
    let refs: Vec<&str> = genes.iter().map(|s| s.as_str()).collect();
    let results = enrich(&onto.dag, &prop, &refs, &EnrichmentConfig::default());
    assert!(!results.is_empty());
    let map = build_local_map(&onto.dag, results[0].term, 2, &results);
    let layout = layout_map(&map, 2);
    assert!(map.n_nodes() >= 3, "local map should include context");
    let fb = render_golem_map(&map, &layout, &onto.dag, 320, 240);
    assert!(fb.count_pixels(Rgb::BLACK) < 320 * 240);
}

#[test]
fn fig6_integrated_composition() {
    let (mut session, truth) = session_with_selection(200, 6);
    let onto = generate_ontology(&truth, 100, 6);
    let prop = onto.annotations.propagate(&onto.dag);
    let suite = AnalysisSuite::build(&session, SpellConfig::default(), onto.dag, prop);
    let seed: Vec<String> = truth.esr_induced()[..5]
        .iter()
        .map(|&g| orf_name(g))
        .collect();
    let refs: Vec<&str> = seed.iter().map(|s| s.as_str()).collect();
    session.select_genes(&refs, SelectionOrigin::List);
    let out = suite
        .integrated_analysis(&mut session, 10, &EnrichmentConfig::default(), 2)
        .unwrap();

    let left = render_desktop(&session, 300, 240);
    let spell = render_spell_panel(&out.spell, 150, 120);
    let golem = match &out.map {
        Some((m, l)) => render_golem_map(m, l, &suite.ontology, 150, 120),
        None => panic!("enrichment should produce a map"),
    };
    let fig = compose_figure6(&left, &golem, &spell);
    assert_eq!(fig.width(), 450);
    assert_eq!(fig.height(), 240);
    // Each quadrant contributed pixels.
    assert!(fig.crop(0, 0, 300, 240).count_pixels(Rgb::BLACK) < 300 * 240);
    assert!(fig.crop(300, 0, 150, 120).count_pixels(Rgb::BLACK) < 150 * 120);
    assert!(fig.crop(300, 120, 150, 120).count_pixels(Rgb::BLACK) < 150 * 120);
}

#[test]
fn figures_deterministic_across_runs() {
    // Same seeds → byte-identical figure artifacts (the reproducibility
    // guarantee EXPERIMENTS.md relies on).
    let (s1, _) = session_with_selection(100, 42);
    let (s2, _) = session_with_selection(100, 42);
    assert_eq!(
        encode_ppm(&render_desktop(&s1, 200, 150)),
        encode_ppm(&render_desktop(&s2, 200, 150))
    );
}
