//! E7 / Section 4: the stress-response case study, quantified.
//!
//! The paper's biological insight: gene groups selected in nutrient
//! limitation and knockout data "exhibited a strong pattern of correlation
//! within the stress response datasets as well", suggesting the general
//! stress response supersedes specific effects. With planted truth we can
//! assert the workflow rediscovers exactly that.

use forestview::Session;
use fv_expr::stats;
use fv_synth::names::orf_name;
use fv_synth::scenario::Scenario;

fn coherence(session: &Session, dataset: usize, gene_names: &[String]) -> f64 {
    let ds = session.dataset(dataset);
    let rows: Vec<usize> = gene_names.iter().filter_map(|g| ds.find_gene(g)).collect();
    let mut sum = 0.0;
    let mut n = 0usize;
    for i in 0..rows.len().saturating_sub(1) {
        for j in (i + 1)..rows.len() {
            if let Some(r) = stats::pearson_rows(&ds.matrix, rows[i], &ds.matrix, rows[j], 3) {
                sum += r;
                n += 1;
            }
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

fn setup() -> (Session, fv_synth::modules::GroundTruth) {
    let scenario = Scenario::case_study(800, 4);
    let truth = scenario.truth.clone();
    let mut session = Session::new();
    for ds in scenario.datasets {
        session.load_dataset(ds).unwrap();
    }
    session.cluster_all();
    (session, truth)
}

#[test]
fn knockout_cluster_recovers_esr_members() {
    let (mut session, truth) = setup();
    // Select around a known ESR gene in the clustered knockout pane.
    let anchor = orf_name(truth.esr_induced()[0]);
    let row = session.dataset(2).find_gene(&anchor).unwrap();
    let pos = session.display_pos_of_row(2, row);
    let n = session.select_region(2, pos.saturating_sub(20), pos + 20);
    assert!(n >= 30, "selection too small: {n}");

    let esr: std::collections::HashSet<String> = truth
        .esr_induced()
        .iter()
        .chain(truth.esr_repressed())
        .map(|&g| orf_name(g))
        .collect();
    let names: Vec<String> = session
        .selection()
        .unwrap()
        .genes()
        .iter()
        .map(|&g| session.merged().universe().name(g).to_string())
        .collect();
    let hits = names.iter().filter(|g| esr.contains(*g)).count();
    assert!(
        hits * 2 >= n,
        "clustered neighbourhood of an ESR gene should be mostly ESR: {hits}/{n}"
    );
}

#[test]
fn stress_signal_present_across_dataset_types() {
    let (session, truth) = setup();
    let esr_names: Vec<String> = truth.esr_induced()[..20]
        .iter()
        .map(|&g| orf_name(g))
        .collect();
    // The ESR module coheres in ALL THREE dataset families — the paper's
    // central observation.
    let c_stress = coherence(&session, 0, &esr_names);
    let c_nutrient = coherence(&session, 1, &esr_names);
    let c_knockout = coherence(&session, 2, &esr_names);
    assert!(c_stress > 0.5, "stress coherence {c_stress}");
    assert!(c_nutrient > 0.4, "nutrient coherence {c_nutrient}");
    assert!(c_knockout > 0.3, "knockout coherence {c_knockout}");
}

#[test]
fn specific_module_does_not_generalize() {
    // Control: a heat-specific module coheres in the stress data (where
    // heat conditions exist) but NOT in nutrient-limitation data — this is
    // what distinguishes the general stress response from specific effects.
    let (session, truth) = setup();
    let heat = truth
        .modules
        .iter()
        .find(|m| m.name.contains("heat"))
        .expect("heat module planted");
    let names: Vec<String> = heat.genes[..heat.genes.len().min(15)]
        .iter()
        .map(|&g| orf_name(g))
        .collect();
    let c_stress = coherence(&session, 0, &names);
    let c_nutrient = coherence(&session, 1, &names);
    assert!(
        c_stress > 0.4,
        "heat module coheres under stress: {c_stress}"
    );
    assert!(
        c_nutrient < c_stress - 0.2,
        "heat module should not cohere under nutrient limitation: {c_nutrient} vs {c_stress}"
    );
}

#[test]
fn random_groups_are_incoherent_baseline() {
    let (session, truth) = setup();
    // Deterministic pseudo-random non-module genes.
    let free: Vec<String> = (0..truth.n_genes)
        .filter(|&g| truth.membership[g].is_none())
        .step_by(7)
        .take(20)
        .map(orf_name)
        .collect();
    for d in 0..3 {
        let c = coherence(&session, d, &free);
        assert!(
            c.abs() < 0.15,
            "random group coherence should be ~0 in dataset {d}: {c}"
        );
    }
}

#[test]
fn coherence_ranking_matches_paper_narrative() {
    // The knockout-selected cluster's coherence in the stress data must
    // dominate a random baseline by a wide margin — the quantified form of
    // "a strong pattern of correlation within the stress response datasets".
    let (mut session, truth) = setup();
    let anchor = orf_name(truth.esr_induced()[1]);
    let row = session.dataset(2).find_gene(&anchor).unwrap();
    let pos = session.display_pos_of_row(2, row);
    session.select_region(2, pos.saturating_sub(15), pos + 15);
    let sel_names: Vec<String> = session
        .selection()
        .unwrap()
        .genes()
        .iter()
        .map(|&g| session.merged().universe().name(g).to_string())
        .collect();
    let baseline: Vec<String> = (0..sel_names.len()).map(|i| orf_name(i * 13 + 3)).collect();
    let c_sel = coherence(&session, 0, &sel_names);
    let c_base = coherence(&session, 0, &baseline);
    assert!(
        c_sel > c_base + 0.25,
        "selection {c_sel:.3} must beat baseline {c_base:.3} in the stress pane"
    );
}
