//! Property-based tests of the synchronization layer's invariants.
//!
//! The paper's synchronized-view contract: the same gene order and scroll
//! position in every pane, with absent genes shown as gaps. These
//! properties must hold for *any* datasets and *any* selection, so we let
//! proptest generate both.

use forestview::selection::SelectionOrigin;
use forestview::sync;
use forestview::Session;
use fv_expr::matrix::ExprMatrix;
use fv_expr::meta::{ConditionMeta, GeneMeta};
use fv_expr::Dataset;
use proptest::prelude::*;

/// Build a dataset whose gene ids are drawn from a shared pool `P0..P<pool>`
/// with the given permutation-ish mapping, so datasets overlap partially.
fn dataset(name: &str, gene_idx: &[usize], n_cols: usize, value_seed: u64) -> Dataset {
    let n = gene_idx.len();
    let vals: Vec<f32> = (0..n * n_cols)
        .map(|i| {
            let x = (i as u64)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(value_seed);
            ((x >> 33) % 1000) as f32 / 100.0 - 5.0
        })
        .collect();
    let m = ExprMatrix::from_rows(n, n_cols, &vals).unwrap();
    let genes = gene_idx
        .iter()
        .map(|&g| GeneMeta::new(format!("P{g}"), format!("N{g}"), "synthetic"))
        .collect();
    let conds = (0..n_cols)
        .map(|c| ConditionMeta::new(format!("c{c}")))
        .collect();
    Dataset::new(name, m, genes, conds).unwrap()
}

prop_compose! {
    /// Gene subsets of a pool of 30, one per dataset, each 1..20 genes.
    fn arb_gene_sets()(sets in prop::collection::vec(
        prop::collection::btree_set(0usize..30, 1..20), 1..4))
        -> Vec<Vec<usize>>
    {
        sets.into_iter().map(|s| s.into_iter().collect()).collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sync_rows_align_for_any_selection(
        gene_sets in arb_gene_sets(),
        selection in prop::collection::vec(0usize..30, 1..15),
        sync_on in any::<bool>(),
    ) {
        let mut session = Session::new();
        for (i, set) in gene_sets.iter().enumerate() {
            session.load_dataset(dataset(&format!("d{i}"), set, 3, i as u64)).unwrap();
        }
        let names: Vec<String> = selection.iter().map(|g| format!("P{g}")).collect();
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        session.select_genes(&refs, SelectionOrigin::List);
        session.set_sync(sync_on);

        // Invariant 1: alignment verifies in sync mode.
        prop_assert!(sync::verify_alignment(&session));

        let sel_len = session.selection().map(|s| s.len()).unwrap_or(0);
        for d in 0..session.n_datasets() {
            let rows = sync::zoom_rows(&session, d);
            if sync_on {
                // Invariant 2: sync mode has exactly one row per selected gene.
                prop_assert_eq!(rows.len(), sel_len);
            } else {
                // Invariant 3: unsync mode has no gaps and only measured genes.
                prop_assert!(rows.iter().all(|r| r.is_some()));
                prop_assert!(rows.len() <= sel_len);
                // Invariant 4: rows follow the dataset's display order.
                let pos: Vec<usize> = rows
                    .iter()
                    .map(|r| session.display_pos_of_row(d, r.unwrap() as usize))
                    .collect();
                let mut sorted = pos.clone();
                sorted.sort_unstable();
                prop_assert_eq!(pos, sorted);
            }
            // Invariant 5: every non-gap row actually holds a selected gene.
            for r in rows.iter().flatten() {
                let id = &session.dataset(d).genes[*r as usize].id;
                let gid = session.merged().universe().lookup(id).unwrap();
                prop_assert!(session.selection().unwrap().contains(gid));
            }
        }
    }

    #[test]
    fn marks_point_at_selected_genes(
        gene_sets in arb_gene_sets(),
        selection in prop::collection::vec(0usize..30, 1..10),
    ) {
        let mut session = Session::new();
        for (i, set) in gene_sets.iter().enumerate() {
            session.load_dataset(dataset(&format!("d{i}"), set, 3, 7 + i as u64)).unwrap();
        }
        let names: Vec<String> = selection.iter().map(|g| format!("P{g}")).collect();
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        session.select_genes(&refs, SelectionOrigin::List);
        for d in 0..session.n_datasets() {
            let marks = sync::global_marks(&session, d);
            // every mark is a valid display position pointing at a selected gene
            for &pos in &marks {
                let gid = session.gene_at_display_row(d, pos).unwrap();
                prop_assert!(session.selection().unwrap().contains(gid));
            }
            // mark count = number of selected genes measured in d
            let measured = sync::zoom_rows(&session, d)
                .iter()
                .filter(|r| r.is_some())
                .count();
            prop_assert_eq!(marks.len(), measured);
        }
    }

    #[test]
    fn scroll_never_out_of_range(
        n_sel in 1usize..12,
        deltas in prop::collection::vec(-20i64..20, 0..12),
    ) {
        let set: Vec<usize> = (0..20).collect();
        let mut session = Session::new();
        session.load_dataset(dataset("d", &set, 3, 1)).unwrap();
        let names: Vec<String> = (0..n_sel).map(|g| format!("P{g}")).collect();
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        session.select_genes(&refs, SelectionOrigin::List);
        for d in deltas {
            session.scroll_by(d);
            prop_assert!(session.scroll() < n_sel.max(1));
        }
    }
}
