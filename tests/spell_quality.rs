//! A3-adjacent integration test: SPELL search quality against planted
//! truth, and the value of its two design choices — query-coherence
//! dataset weighting and SVD signal balancing.

use fv_spell::balance::Balancing;
use fv_spell::eval::{average_precision, precision_at_k};
use fv_spell::{SpellConfig, SpellEngine};
use fv_synth::names::orf_name;
use fv_synth::scenario::Scenario;
use std::collections::HashSet;

fn build_engine(scenario: &Scenario, balancing: Balancing) -> SpellEngine {
    let mut engine = SpellEngine::new(SpellConfig {
        balancing,
        min_dataset_weight: 0.0,
    });
    for ds in &scenario.datasets {
        engine.add_dataset(ds);
    }
    engine.finalize();
    engine
}

fn run_query(
    engine: &SpellEngine,
    scenario: &Scenario,
    n_query: usize,
) -> (Vec<String>, HashSet<String>) {
    let query: Vec<String> = scenario.truth.esr_induced()[..n_query]
        .iter()
        .map(|&g| orf_name(g))
        .collect();
    let truth_set: HashSet<String> = scenario
        .truth
        .esr_induced()
        .iter()
        .map(|&g| orf_name(g))
        .filter(|g| !query.contains(g))
        .collect();
    let refs: Vec<&str> = query.iter().map(|s| s.as_str()).collect();
    let result = engine.query(&refs);
    let ranked: Vec<String> = result
        .top_new_genes(usize::MAX)
        .iter()
        .map(|g| g.gene.clone())
        .collect();
    (ranked, truth_set)
}

#[test]
fn planted_module_recovery_is_strong() {
    let scenario = Scenario::spell_compendium(600, 10, 77);
    let engine = build_engine(&scenario, Balancing::TopSingular);
    let (ranked, truth) = run_query(&engine, &scenario, 6);
    let refs: Vec<&str> = ranked.iter().map(|s| s.as_str()).collect();
    let truth_refs: HashSet<&str> = truth.iter().map(|s| s.as_str()).collect();
    let p10 = precision_at_k(&refs, &truth_refs, 10);
    let ap = average_precision(&refs, &truth_refs);
    assert!(p10 >= 0.8, "precision@10 = {p10}");
    assert!(ap >= 0.6, "average precision = {ap}");
}

#[test]
fn dataset_weighting_beats_uniform() {
    // Ablation A3 (weighting): hand the ranker uniform weights and compare.
    // Uniform weighting lets incoherent datasets dilute the scores, so
    // weighted recovery must be at least as good.
    use fv_spell::rank::{combine_rankings, dataset_gene_scores};
    use fv_spell::weight::all_weights;

    let scenario = Scenario::spell_compendium(500, 10, 13);
    let query: Vec<String> = scenario.truth.esr_induced()[..6]
        .iter()
        .map(|&g| orf_name(g))
        .collect();
    let truth_set: HashSet<String> = scenario
        .truth
        .esr_induced()
        .iter()
        .map(|&g| orf_name(g))
        .filter(|g| !query.contains(g))
        .collect();

    // Recreate the engine's internals directly on prepared datasets so the
    // only difference is the weight vector.
    let prepared: Vec<fv_spell::prep::PreparedDataset> = scenario
        .datasets
        .iter()
        .map(|ds| {
            let ids: Vec<String> = ds.genes.iter().map(|g| g.id.clone()).collect();
            fv_spell::prep::PreparedDataset::from_matrix(&ds.name, &ds.matrix, ids)
        })
        .collect();
    let query_rows: Vec<Vec<usize>> = prepared
        .iter()
        .map(|p| query.iter().filter_map(|g| p.find_gene(g)).collect())
        .collect();
    let per_dataset: Vec<Vec<Option<f32>>> = prepared
        .iter()
        .zip(&query_rows)
        .map(|(p, rows)| dataset_gene_scores(p, rows))
        .collect();
    // Universe = dataset 0's gene order (all datasets share the universe).
    let gene_names: Vec<String> = prepared[0].gene_ids.clone();
    let row_of: Vec<Vec<Option<f32>>> = per_dataset
        .iter()
        .zip(&prepared)
        .map(|(scores, p)| {
            gene_names
                .iter()
                .map(|g| p.find_gene(g).and_then(|r| scores[r]))
                .collect()
        })
        .collect();
    let query_set: Vec<bool> = gene_names.iter().map(|g| query.contains(g)).collect();

    let coherence = all_weights(&prepared, &query_rows);
    let uniform = vec![1.0f32; prepared.len()];

    let eval = |weights: &[f32]| -> f64 {
        let ranked = combine_rankings(&row_of, weights, &gene_names, &query_set);
        let names: Vec<&str> = ranked
            .iter()
            .filter(|g| !g.in_query)
            .map(|g| g.gene.as_str())
            .collect();
        let t: HashSet<&str> = truth_set.iter().map(|s| s.as_str()).collect();
        average_precision(&names, &t)
    };
    let ap_weighted = eval(&coherence);
    let ap_uniform = eval(&uniform);
    assert!(
        ap_weighted >= ap_uniform - 1e-9,
        "weighted AP {ap_weighted} must not lose to uniform AP {ap_uniform}"
    );
    assert!(ap_weighted > 0.5, "weighted AP too low: {ap_weighted}");
}

#[test]
fn balancing_does_not_hurt_recovery() {
    let scenario = Scenario::spell_compendium(500, 8, 5);
    let with = build_engine(&scenario, Balancing::TopSingular);
    let without = build_engine(&scenario, Balancing::None);
    let (r1, t1) = run_query(&with, &scenario, 6);
    let (r2, t2) = run_query(&without, &scenario, 6);
    let refs1: Vec<&str> = r1.iter().map(|s| s.as_str()).collect();
    let refs2: Vec<&str> = r2.iter().map(|s| s.as_str()).collect();
    let ts1: HashSet<&str> = t1.iter().map(|s| s.as_str()).collect();
    let ts2: HashSet<&str> = t2.iter().map(|s| s.as_str()).collect();
    let ap_with = average_precision(&refs1, &ts1);
    let ap_without = average_precision(&refs2, &ts2);
    assert!(
        ap_with > ap_without - 0.15,
        "balancing degraded recovery: {ap_with} vs {ap_without}"
    );
}

#[test]
fn themed_datasets_rank_above_pure_noise_for_esr_query() {
    // The paper's claim for SPELL is that *relevant* datasets — those in
    // which the query genes actually co-express — outrank irrelevant ones.
    // Build a compendium of three themed datasets (all carry the ESR
    // signal) plus four pure-noise datasets (all module activities zero)
    // and assert a clean separation for an ESR query.
    use fv_synth::dataset::{synthesize, CondSpec, GenConfig};

    let scenario = Scenario::three_datasets(400, 31);
    let truth = scenario.truth.clone();
    let mut engine = SpellEngine::new(SpellConfig::default());
    for ds in &scenario.datasets {
        engine.add_dataset(ds);
    }
    let n_mod = truth.modules.len();
    for i in 0..4 {
        let conds: Vec<CondSpec> = (0..20)
            .map(|c| CondSpec {
                label: format!("noise {c}"),
                activity: vec![0.0; n_mod],
            })
            .collect();
        let noise = synthesize(
            &format!("noise_{i}"),
            &truth,
            &conds,
            &GenConfig {
                noise_sd: 0.35,
                missing_fraction: 0.02,
                seed: 900 + i,
            },
        );
        engine.add_dataset(&noise);
    }
    engine.finalize();

    let query: Vec<String> = truth.esr_induced()[..6]
        .iter()
        .map(|&g| orf_name(g))
        .collect();
    let refs: Vec<&str> = query.iter().map(|s| s.as_str()).collect();
    let result = engine.query(&refs);

    let rank_of = |name: &str| result.datasets.iter().position(|d| d.name == name).unwrap();
    for themed in ["gasch_stress", "brauer_nutrient", "hughes_knockout"] {
        for i in 0..4 {
            let noise = format!("noise_{i}");
            assert!(
                rank_of(themed) < rank_of(&noise),
                "{themed} (rank {}) must outrank {noise} (rank {})",
                rank_of(themed),
                rank_of(&noise)
            );
        }
    }
    assert!(result.datasets[0].weight > 0.3);
    // noise datasets carry (near-)zero coherence weight
    for i in 0..4 {
        let w = result
            .datasets
            .iter()
            .find(|d| d.name == format!("noise_{i}"))
            .unwrap()
            .weight;
        assert!(w < 0.2, "noise_{i} weight {w} should be near zero");
    }
}
