//! End-to-end tests of the `fvtool` command-line front end: the binary a
//! downstream user would actually script against.

use std::path::PathBuf;
use std::process::Command;

fn fvtool() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fvtool"))
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fvtool_test_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn demo_cluster_render_roundtrip() {
    let dir = tmpdir("roundtrip");
    let d = dir.to_str().unwrap();

    // demo: write PCL files
    let out = fvtool().args(["demo", d]).output().unwrap();
    assert!(
        out.status.success(),
        "demo failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stress = dir.join("gasch_stress.pcl");
    assert!(stress.exists());

    // cluster: produce cdt/gtr/atr
    let prefix = dir.join("clustered");
    let out = fvtool()
        .args([
            "cluster",
            stress.to_str().unwrap(),
            prefix.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "cluster failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    for ext in ["cdt", "gtr", "atr"] {
        assert!(
            dir.join(format!("clustered.{ext}")).exists(),
            "missing .{ext}"
        );
    }
    // the CDT must parse and pair with its trees
    let cdt_text = std::fs::read_to_string(dir.join("clustered.cdt")).unwrap();
    let cdt = fv_formats::cdt::parse_cdt("c", &cdt_text).unwrap();
    let gtr_text = std::fs::read_to_string(dir.join("clustered.gtr")).unwrap();
    let tree = fv_formats::tree_files::parse_tree(
        &gtr_text,
        fv_formats::tree_files::GENE_PREFIX,
        cdt.dataset.n_genes(),
    )
    .unwrap();
    // The CDT row order is the flip-improved leaf order; GTR does not
    // encode flips (TreeView treats the CDT order as authoritative). The
    // invariant is tree-consistency: every subtree of the parsed tree
    // occupies a CONTIGUOUS block of the CDT's row order.
    let gene_leaf = cdt.gene_leaf.as_deref().unwrap();
    let mut pos = vec![0usize; gene_leaf.len()];
    for (display, &leaf) in gene_leaf.iter().enumerate() {
        pos[leaf] = display;
    }
    for mi in 0..tree.merges().len() {
        let leaves = tree.node_leaves(fv_cluster::tree::NodeRef::Internal(mi as u32));
        let mut positions: Vec<usize> = leaves.iter().map(|&l| pos[l]).collect();
        positions.sort_unstable();
        let span = positions.last().unwrap() - positions.first().unwrap() + 1;
        assert_eq!(
            span,
            positions.len(),
            "subtree {mi} is not contiguous in the CDT row order"
        );
    }

    // render: produce a decodable PPM
    let ppm = dir.join("session.ppm");
    let out = fvtool()
        .args([
            "render",
            ppm.to_str().unwrap(),
            "320",
            "240",
            stress.to_str().unwrap(),
            dir.join("brauer_nutrient.pcl").to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "render failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let img = fv_render::image::read_ppm(&ppm).unwrap();
    assert_eq!((img.width(), img.height()), (320, 240));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn search_and_spell_produce_output() {
    let dir = tmpdir("search");
    let d = dir.to_str().unwrap();
    assert!(fvtool()
        .args(["demo", d])
        .output()
        .unwrap()
        .status
        .success());
    let files: Vec<String> = ["gasch_stress", "brauer_nutrient", "hughes_knockout"]
        .iter()
        .map(|n| dir.join(format!("{n}.pcl")).to_str().unwrap().to_string())
        .collect();

    let out = fvtool()
        .args(["search", "stress response"])
        .args(&files)
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("gene(s) match"));
    assert!(stdout.contains("coverage"));

    // take two gene ids from the search output as a SPELL query
    let genes: Vec<&str> = stdout
        .lines()
        .skip(1)
        .take(2)
        .map(|l| l.trim())
        .filter(|l| l.starts_with('Y'))
        .collect();
    if genes.len() == 2 {
        let q = format!("{},{}", genes[0], genes[1]);
        let out = fvtool().args(["spell", &q]).args(&files).output().unwrap();
        assert!(
            out.status.success(),
            "spell failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("datasets by relevance"));
        assert!(stdout.contains("top genes"));
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn impute_fills_missing_cells() {
    let dir = tmpdir("impute");
    // hand-written PCL with one missing cell
    let pcl = "ID\tNAME\tGWEIGHT\tc0\tc1\tc2\tc3\n\
EWEIGHT\t\t\t1\t1\t1\t1\n\
G1\tA\t1\t1.0\t2.0\t3.0\t4.0\n\
G2\tB\t1\t1.1\t2.1\t\t4.1\n\
G3\tC\t1\t0.9\t1.9\t2.9\t3.9\n";
    let input = dir.join("in.pcl");
    let output = dir.join("out.pcl");
    std::fs::write(&input, pcl).unwrap();
    let out = fvtool()
        .args([
            "impute",
            input.to_str().unwrap(),
            output.to_str().unwrap(),
            "2",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("filled 1/1"));
    let ds = fv_formats::pcl::parse_pcl("out", &std::fs::read_to_string(&output).unwrap()).unwrap();
    let v = ds.matrix.get(1, 2).expect("cell imputed");
    assert!(
        (v - 2.95).abs() < 0.2,
        "imputed value {v} should be near 2.95"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_usage_exits_nonzero() {
    let out = fvtool().output().unwrap();
    assert!(!out.status.success());
    let out = fvtool().args(["bogus_command"]).output().unwrap();
    assert!(!out.status.success());
    let out = fvtool().args(["render", "x.ppm"]).output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn script_replays_mixed_requests_deterministically() {
    let dir = tmpdir("script");
    // ≥ 8 mixed mutation/query requests, two sessions, through EngineHub.
    let script = "\
# replayable session script
scenario 200 7
set_metric euclidean
set_linkage ward
cluster_all
search_select general stress response
scroll 2
list_datasets
use second
scenario 120 9
search ribosome
use main
export_selection coverage
render 320 240
session_info
";
    let path = dir.join("session.fvs");
    std::fs::write(&path, script).unwrap();

    let run = || {
        let out = fvtool()
            .args(["script", path.to_str().unwrap()])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "script failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "script replay must be deterministic");

    // transcript structure: session-tagged request echo + responses
    assert!(first.contains("main:2> scenario 200 7"), "{first}");
    assert!(first.contains("second:10> scenario 120 9"));
    assert!(first.contains("applied selection="));
    assert!(first.contains("frame 320x240 panes=3 checksum="));
    assert!(first.contains("session datasets=3"));
    assert!(first.contains("datasets n=3"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn script_errors_carry_exit_codes_and_lines() {
    let dir = tmpdir("script_err");
    // line 2 refers to a dataset that does not exist → E_NOT_FOUND (66)
    let path = dir.join("bad.fvs");
    std::fs::write(&path, "scenario 60 1\nimpute 99 3\n").unwrap();
    let out = fvtool()
        .args(["script", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(66));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("E_NOT_FOUND"), "{err}");
    assert!(err.contains("line 2"), "{err}");

    // parse failures exit 2
    let path2 = dir.join("parse.fvs");
    std::fs::write(&path2, "definitely_not_a_request\n").unwrap();
    let out = fvtool()
        .args(["script", path2.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));

    // missing script file → E_IO (66)
    let out = fvtool()
        .args(["script", "/nonexistent/x.fvs"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(66));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn load_failures_use_stable_exit_codes() {
    // nonexistent input file → E_IO
    let out = fvtool()
        .args(["cluster", "/nonexistent/in.pcl", "/tmp/prefix"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(66));
    assert!(String::from_utf8_lossy(&out.stderr).contains("E_IO"));

    // unparseable input → E_FORMAT
    let dir = tmpdir("badformat");
    let bad = dir.join("bad.pcl");
    std::fs::write(&bad, "not\ta\tpcl\nat\tall\n").unwrap();
    let out = fvtool()
        .args(["search", "x", bad.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    std::fs::remove_dir_all(&dir).ok();
}
