//! Property-based round-trip tests of the file-format layer.
//!
//! PCL/CDT/GTR files are the interchange with the Cluster/TreeView
//! ecosystem; writing and re-parsing must preserve every value, mask bit
//! and tree edge for arbitrary inputs.

use fv_cluster::{cluster, Linkage, Metric};
use fv_expr::matrix::ExprMatrix;
use fv_expr::meta::{ConditionMeta, GeneMeta};
use fv_expr::Dataset;
use fv_formats::cdt::{parse_cdt, write_cdt};
use fv_formats::pcl::{parse_pcl, write_pcl};
use fv_formats::tree_files::{parse_tree, write_tree, GENE_PREFIX};
use proptest::prelude::*;

prop_compose! {
    fn arb_dataset()(
        n_rows in 1usize..12,
        n_cols in 1usize..8,
        seed in any::<u64>(),
        missing in prop::collection::vec(any::<bool>(), 0..96),
    ) -> Dataset {
        let mut vals = Vec::with_capacity(n_rows * n_cols);
        let mut s = seed | 1;
        for _ in 0..n_rows * n_cols {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            vals.push(((s % 2001) as f32 - 1000.0) / 128.0);
        }
        let mut m = ExprMatrix::from_rows(n_rows, n_cols, &vals).unwrap();
        for (i, &kill) in missing.iter().enumerate() {
            if kill && i < n_rows * n_cols {
                m.set_missing(i / n_cols, i % n_cols);
            }
        }
        let genes = (0..n_rows)
            .map(|r| GeneMeta::new(format!("Y{r:03}W"), format!("GEN{r}"), format!("annotation {r}")))
            .collect();
        let conds = (0..n_cols).map(|c| ConditionMeta::new(format!("cond {c}"))).collect();
        Dataset::new("prop", m, genes, conds).unwrap()
    }
}

fn matrices_equal(a: &ExprMatrix, b: &ExprMatrix) -> bool {
    if a.n_rows() != b.n_rows() || a.n_cols() != b.n_cols() {
        return false;
    }
    for r in 0..a.n_rows() {
        for c in 0..a.n_cols() {
            match (a.get(r, c), b.get(r, c)) {
                (Some(x), Some(y)) => {
                    if (x - y).abs() > 1e-4 {
                        return false;
                    }
                }
                (None, None) => {}
                _ => return false,
            }
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pcl_roundtrip(ds in arb_dataset()) {
        let text = write_pcl(&ds);
        let back = parse_pcl("prop", &text).unwrap();
        prop_assert!(matrices_equal(&ds.matrix, &back.matrix));
        for (a, b) in ds.genes.iter().zip(&back.genes) {
            prop_assert_eq!(&a.id, &b.id);
            prop_assert_eq!(&a.name, &b.name);
            prop_assert_eq!(&a.annotation, &b.annotation);
        }
        for (a, b) in ds.conditions.iter().zip(&back.conditions) {
            prop_assert_eq!(&a.label, &b.label);
        }
    }

    #[test]
    fn cdt_roundtrip_with_leaf_ids(ds in arb_dataset()) {
        let n = ds.n_genes();
        let gene_leaf: Vec<usize> = (0..n).rev().collect();
        let array_leaf: Vec<usize> = (0..ds.n_conditions()).collect();
        let text = write_cdt(&ds, Some(&gene_leaf), Some(&array_leaf));
        let back = parse_cdt("prop", &text).unwrap();
        prop_assert!(matrices_equal(&ds.matrix, &back.dataset.matrix));
        prop_assert_eq!(back.gene_leaf, Some(gene_leaf));
        prop_assert_eq!(back.array_leaf, Some(array_leaf));
    }

    #[test]
    fn gtr_roundtrip_from_real_clustering(ds in arb_dataset()) {
        // Cluster the generated dataset and round-trip the resulting tree.
        let tree = cluster(&ds.matrix, Metric::Euclidean, Linkage::Average);
        let text = write_tree(&tree, GENE_PREFIX);
        let back = parse_tree(&text, GENE_PREFIX, ds.n_genes()).unwrap();
        prop_assert_eq!(tree.n_leaves(), back.n_leaves());
        prop_assert_eq!(tree.merges().len(), back.merges().len());
        for (a, b) in tree.merges().iter().zip(back.merges()) {
            prop_assert_eq!(a.left, b.left);
            prop_assert_eq!(a.right, b.right);
            prop_assert!((a.height - b.height).abs() < 1e-4);
        }
        // Leaf order — what the CDT row order is derived from — survives.
        prop_assert_eq!(tree.leaf_order(), back.leaf_order());
    }

    #[test]
    fn pcl_parse_never_panics_on_mutations(
        ds in arb_dataset(),
        cut in 0usize..400,
    ) {
        // Truncating the text at an arbitrary byte must produce Ok or Err,
        // never a panic.
        let text = write_pcl(&ds);
        let cut = cut.min(text.len());
        // avoid splitting a UTF-8 char (our format is ASCII, but be safe)
        if text.is_char_boundary(cut) {
            let _ = parse_pcl("prop", &text[..cut]);
        }
    }
}
