//! End-to-end durability: a real `fvtool serve --state-dir` process is
//! SIGKILL'd and rebooted, and every checkpointed session must come
//! back byte-identically — the restart soak drives the full loop
//! (populate → checkpoint → kill → reboot → diff rosters and probe
//! transcripts) under both shard backends. A third test covers the
//! refusal path: a checkpoint whose dataset file changed on disk is a
//! stale image and must NOT be recovered.

use forestview_repro::soak::{run_restart_soak, RestartConfig, RestartReport};
use fv_api::{parse_session_image, SessionId, SessionStore};
use fv_net::{Client, Server, ServerConfig};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fv_restart_e2e_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn assert_full_recovery(report: &RestartReport) {
    assert!(report.passed(), "{}", report.render());
    let cycles = (report.sessions * report.kills) as u64;
    assert_eq!(report.recovered_total, cycles, "{}", report.render());
    assert_eq!(
        report.probes_compared,
        cycles as usize,
        "{}",
        report.render()
    );
}

#[test]
fn sigkill_and_reboot_recovers_every_session_with_thread_shards() {
    let cfg = RestartConfig {
        sessions: 3,
        kills: 2,
        ..RestartConfig::new(env!("CARGO_BIN_EXE_fvtool"), state_dir("threads"))
    };
    let report = run_restart_soak(&cfg).expect("restart soak ran");
    assert_full_recovery(&report);
}

#[test]
fn sigkill_and_reboot_recovers_every_session_with_process_shards() {
    let cfg = RestartConfig {
        sessions: 2,
        kills: 2,
        proc_shards: true,
        ..RestartConfig::new(env!("CARGO_BIN_EXE_fvtool"), state_dir("procs"))
    };
    let report = run_restart_soak(&cfg).expect("restart soak ran");
    assert_full_recovery(&report);
}

/// Wait until `session`'s checkpoint lands with the expected
/// attempted-request counter (the cadence piggy-backs on the balance
/// gather, so it arrives within a tick or two).
fn wait_for_checkpoint(store: &SessionStore, session: &str, requests: u64) {
    let path = store.checkpoint_path(&SessionId::new(session).unwrap());
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let got = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| parse_session_image(&text).ok())
            .map(|image| image.requests);
        if got == Some(requests) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "checkpoint for {session} stuck at {got:?}, want {requests}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn durable_config(dir: &Path) -> ServerConfig {
    ServerConfig {
        shards: 2,
        state_dir: Some(dir.to_path_buf()),
        balance_interval: Duration::from_millis(50),
        ..ServerConfig::default()
    }
}

/// A checkpoint that references a dataset file which changed on disk is
/// a stale image: the reboot must refuse it (`E_STALE_IMAGE` inside,
/// `recovered=0` outside) instead of resurrecting a session whose
/// replay no longer matches its data — and must leave the checkpoint
/// file in place for the operator.
#[test]
fn reboot_refuses_checkpoints_whose_dataset_changed_on_disk() {
    let dir = state_dir("stale");

    // A real dataset file for the session to load.
    let pcl = std::env::temp_dir().join(format!("fv_restart_e2e_stale_{}.pcl", std::process::id()));
    {
        let mut engine = fv_api::Engine::new();
        engine
            .execute(&fv_api::parse_request("scenario 80 7").unwrap())
            .unwrap();
        engine
            .execute(&fv_api::parse_request(&format!("export_pcl 0 {}", pcl.display())).unwrap())
            .unwrap();
    }

    // First life: load the file, let the checkpoint land, stop cleanly
    // (a graceful stop keeps durable state — only `close` deletes it).
    {
        let server = Server::bind("127.0.0.1:0", durable_config(&dir)).unwrap();
        let addr = server.local_addr().to_string();
        let mut client = Client::connect(&addr).unwrap();
        client.use_session("survivor").unwrap();
        client
            .roundtrip(&format!("load {}", pcl.display()))
            .unwrap()
            .unwrap();
        let store = SessionStore::open(&dir).unwrap();
        wait_for_checkpoint(&store, "survivor", 1);
        client.shutdown_server().unwrap();
        server.join();
    }

    // Tamper with the dataset: same path, different bytes.
    let mut text = std::fs::read_to_string(&pcl).unwrap();
    text.push_str("TAMPERED\t0\t0\t1.0\n");
    std::fs::write(&pcl, text).unwrap();

    // Second life: the stale checkpoint must be refused, not loaded.
    {
        let server = Server::bind("127.0.0.1:0", durable_config(&dir)).unwrap();
        assert_eq!(server.recovered(), 0, "stale image was recovered");
        let addr = server.local_addr().to_string();
        let mut client = Client::connect(&addr).unwrap();
        assert_eq!(client.list_sessions().unwrap().len(), 0);
        // The refused checkpoint survives on disk for inspection.
        let store = SessionStore::open(&dir).unwrap();
        assert!(store
            .checkpoint_path(&SessionId::new("survivor").unwrap())
            .exists());
        client.shutdown_server().unwrap();
        server.join();
    }

    let _ = std::fs::remove_file(&pcl);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The flip side of recovery: an explicit `close` deletes the durable
/// checkpoint, so a closed session stays closed across a restart.
#[test]
fn closed_sessions_stay_closed_across_a_restart() {
    let dir = state_dir("close");

    {
        let server = Server::bind("127.0.0.1:0", durable_config(&dir)).unwrap();
        let addr = server.local_addr().to_string();
        let store = SessionStore::open(&dir).unwrap();

        let mut keeper = Client::connect(&addr).unwrap();
        keeper.use_session("kept").unwrap();
        keeper.roundtrip("scenario 80 1").unwrap().unwrap();
        let mut goner = Client::connect(&addr).unwrap();
        goner.use_session("gone").unwrap();
        goner.roundtrip("scenario 80 2").unwrap().unwrap();
        wait_for_checkpoint(&store, "kept", 1);
        wait_for_checkpoint(&store, "gone", 1);

        goner.close_session().unwrap();
        let gone_path = store.checkpoint_path(&SessionId::new("gone").unwrap());
        let deadline = Instant::now() + Duration::from_secs(10);
        while gone_path.exists() {
            assert!(
                Instant::now() < deadline,
                "close did not delete the durable checkpoint"
            );
            std::thread::sleep(Duration::from_millis(10));
        }

        keeper.shutdown_server().unwrap();
        server.join();
    }

    {
        let server = Server::bind("127.0.0.1:0", durable_config(&dir)).unwrap();
        assert_eq!(server.recovered(), 1, "exactly the kept session returns");
        let addr = server.local_addr().to_string();
        let mut client = Client::connect(&addr).unwrap();
        let names: Vec<String> = client
            .list_sessions()
            .unwrap()
            .into_iter()
            .map(|s| s.name)
            .collect();
        assert_eq!(names, ["kept"]);
        client.shutdown_server().unwrap();
        server.join();
    }

    let _ = std::fs::remove_dir_all(&dir);
}
