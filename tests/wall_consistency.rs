//! Property-based tests of the display-wall substrate: tiled rendering
//! must be pixel-identical to direct rendering for any grid shape, and
//! damage-limited repaints must converge to the full-frame result.

use forestview::renderer::{render_desktop, render_wall};
use forestview::Session;
use fv_expr::{Dataset, ExprMatrix};
use fv_render::color::Rgb;
use fv_render::Framebuffer;
use fv_wall::damage::DamageTracker;
use fv_wall::pipeline::render_pipeline;
use fv_wall::tile::Viewport;
use fv_wall::{TileGrid, WallRenderer};
use proptest::prelude::*;

fn scene_paint(fb: &mut Framebuffer, vp: Viewport, salt: u8) {
    for y in 0..vp.h {
        for x in 0..vp.w {
            let wx = (vp.x + x) as u32;
            let wy = (vp.y + y) as u32;
            let v = (wx.wrapping_mul(31) ^ wy.wrapping_mul(17)) as u8 ^ salt;
            fb.put(
                x as i64,
                y as i64,
                Rgb::new(v, v.wrapping_add(salt), wx as u8),
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_grid_composites_to_direct_render(
        tiles_x in 1usize..5,
        tiles_y in 1usize..4,
        tile_w in 8usize..40,
        tile_h in 8usize..40,
        salt in any::<u8>(),
    ) {
        let grid = TileGrid::new(tiles_x, tiles_y, tile_w, tile_h);
        let mut wall = WallRenderer::new(grid);
        wall.render_frame(|fb, vp| scene_paint(fb, vp, salt));
        let composite = wall.composite();

        let one = TileGrid::new(1, 1, grid.wall_width(), grid.wall_height());
        let mut direct = WallRenderer::new(one);
        direct.render_frame(|fb, vp| scene_paint(fb, vp, salt));
        prop_assert_eq!(composite, direct.composite());
    }

    #[test]
    fn pipeline_equals_rayon_renderer(
        tiles_x in 1usize..4,
        tiles_y in 1usize..3,
        workers in 1usize..6,
        salt in any::<u8>(),
    ) {
        let grid = TileGrid::new(tiles_x, tiles_y, 16, 12);
        let (piped, _) = render_pipeline(grid, workers, |fb, vp| scene_paint(fb, vp, salt));
        let mut reference = WallRenderer::new(grid);
        reference.render_frame(|fb, vp| scene_paint(fb, vp, salt));
        prop_assert_eq!(piped, reference.composite());
    }

    #[test]
    fn damage_union_covers_inputs(
        rects in prop::collection::vec((0usize..100, 0usize..100, 1usize..30, 1usize..30), 1..12),
    ) {
        let mut tracker = DamageTracker::new();
        for &(x, y, w, h) in &rects {
            tracker.add(Viewport { x, y, w, h });
        }
        for &(x, y, w, h) in &rects {
            for yy in (y..y + h).step_by(3) {
                for xx in (x..x + w).step_by(3) {
                    prop_assert!(
                        tracker.rects().iter().any(|r| r.contains(xx, yy)),
                        "({xx},{yy}) escaped the damage union"
                    );
                }
            }
        }
    }

    #[test]
    fn damaged_repaint_converges_to_full_frame(
        dirty in prop::collection::vec((0usize..64, 0usize..48, 1usize..30, 1usize..24), 1..6),
        salt_a in any::<u8>(),
        salt_b in any::<u8>(),
    ) {
        let grid = TileGrid::new(4, 3, 16, 16);
        // frame 1 with scene A everywhere
        let mut wall = WallRenderer::new(grid);
        wall.render_frame(|fb, vp| scene_paint(fb, vp, salt_a));
        // frame 2: scene B, but only damaged tiles repainted
        let dirty_vp: Vec<Viewport> = dirty
            .iter()
            .map(|&(x, y, w, h)| Viewport { x, y, w, h })
            .collect();
        wall.render_damage(&dirty_vp, |fb, vp| scene_paint(fb, vp, salt_b));

        // a full-frame reference of scene B
        let mut reference = WallRenderer::new(grid);
        reference.render_frame(|fb, vp| scene_paint(fb, vp, salt_b));

        // every tile that intersects damage must equal the scene-B tile
        for i in 0..grid.n_tiles() {
            let vp = grid.tile_viewport_linear(i);
            let touched = dirty_vp.iter().any(|d| vp.intersect(d).is_some());
            if touched {
                prop_assert_eq!(wall.tile(i), reference.tile(i), "tile {} stale", i);
            }
        }
    }
}

#[test]
fn session_wall_render_equals_desktop_multiple_grids() {
    let mut session = Session::new();
    let vals: Vec<f32> = (0..60 * 5).map(|i| ((i * 7 % 13) as f32) - 6.0).collect();
    session
        .load_dataset(Dataset::with_default_meta(
            "d",
            ExprMatrix::from_rows(60, 5, &vals).unwrap(),
        ))
        .unwrap();
    session.cluster_all();
    session.select_region(0, 10, 30);
    for (tx, ty, tw, th) in [(2, 2, 80, 60), (4, 1, 40, 120), (1, 3, 160, 40)] {
        let grid = TileGrid::new(tx, ty, tw, th);
        let mut wall = WallRenderer::new(grid);
        render_wall(&session, &mut wall);
        let direct = render_desktop(&session, grid.wall_width(), grid.wall_height());
        assert_eq!(
            wall.composite(),
            direct,
            "grid {tx}x{ty} of {tw}x{th} disagrees with direct render"
        );
    }
}
