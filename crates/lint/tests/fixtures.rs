//! The fixture corpus: for every rule, one known-bad snippet that must
//! be flagged at its exact line, and one waived snippet that must pass.
//! Fixtures live under `tests/fixtures/` (excluded from the workspace
//! walk) and are linted under *virtual* workspace paths, since path
//! decides rule scope.

use fv_lint::{lint_files, SourceFile, Violation};
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Lint one fixture under a virtual path, optionally alongside a
/// fixture registry standing in for the fv-net README.
fn lint_fixture(name: &str, virtual_path: &str, registry: Option<&str>) -> Vec<Violation> {
    let mut files = vec![SourceFile {
        path: virtual_path.to_string(),
        text: fixture(name),
    }];
    if let Some(md) = registry {
        files.push(SourceFile {
            path: "crates/net/README.md".to_string(),
            text: fixture(md),
        });
    }
    lint_files(&files)
}

/// (bad fixture, virtual path, expected rule, expected 1-based line,
/// registry fixture). Each must produce exactly one violation, at
/// exactly that line.
const BAD: &[(&str, &str, &str, usize, Option<&str>)] = &[
    (
        "no_wall_clock_bad.rs",
        "crates/net/tests/balance_sim.rs",
        fv_lint::NO_WALL_CLOCK,
        2,
        None,
    ),
    (
        "no_panic_bad.rs",
        "crates/net/src/frame.rs",
        fv_lint::NO_PANIC,
        2,
        None,
    ),
    (
        "no_spawn_bad.rs",
        "crates/net/src/metrics.rs",
        fv_lint::NO_SPAWN,
        2,
        None,
    ),
    (
        "no_proc_spawn_bad.rs",
        "crates/net/src/metrics.rs",
        fv_lint::NO_SPAWN,
        2,
        None,
    ),
    (
        "unsafe_bad.rs",
        "crates/render/src/raster.rs",
        fv_lint::UNSAFE_SAFETY,
        2,
        None,
    ),
    (
        "error_code_bad.rs",
        "crates/net/src/metrics.rs",
        fv_lint::ERROR_REGISTRY,
        2,
        Some("registry_empty.md"),
    ),
    (
        "format_parse_bad.rs",
        "crates/api/src/codec.rs",
        fv_lint::FORMAT_PARSE,
        1,
        None,
    ),
];

/// (waived fixture, virtual path, registry fixture). Each must lint
/// clean: the snippet violates its rule, and the waiver comment with a
/// reason forgives it.
const WAIVED: &[(&str, &str, Option<&str>)] = &[
    (
        "no_wall_clock_waived.rs",
        "crates/net/tests/balance_sim.rs",
        None,
    ),
    ("no_panic_waived.rs", "crates/net/src/frame.rs", None),
    ("no_spawn_waived.rs", "crates/net/src/metrics.rs", None),
    ("no_proc_spawn_waived.rs", "crates/net/src/metrics.rs", None),
    ("unsafe_waived.rs", "crates/render/src/raster.rs", None),
    (
        "error_code_waived.rs",
        "crates/net/src/metrics.rs",
        Some("registry_empty.md"),
    ),
    ("format_parse_waived.rs", "crates/api/src/codec.rs", None),
];

#[test]
fn bad_fixtures_are_flagged_at_the_exact_line() {
    for &(name, path, rule, line, registry) in BAD {
        let v = lint_fixture(name, path, registry);
        assert_eq!(
            v.len(),
            1,
            "{name}: expected exactly one violation, got {v:?}"
        );
        assert_eq!(v[0].rule, rule, "{name}: wrong rule: {v:?}");
        assert_eq!(v[0].line, line, "{name}: wrong line: {v:?}");
        assert_eq!(v[0].file, path, "{name}: wrong file: {v:?}");
        // The rendered diagnostic leads with the file:line: rule: prefix
        // the CLI contract promises.
        let text = fv_lint::render_text(&v);
        assert!(
            text.starts_with(&format!("{path}:{line}: {rule}: ")),
            "{name}: bad rendering {text:?}"
        );
    }
}

#[test]
fn waived_fixtures_pass() {
    for &(name, path, registry) in WAIVED {
        let v = lint_fixture(name, path, registry);
        assert!(v.is_empty(), "{name}: expected clean, got {v:?}");
    }
}

#[test]
fn safety_comment_satisfies_the_unsafe_rule_without_a_waiver() {
    let v = lint_fixture(
        "unsafe_safety_comment.rs",
        "crates/render/src/raster.rs",
        None,
    );
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn stale_registry_rows_are_flagged_in_the_readme() {
    // A registered code that no longer appears anywhere in source is a
    // stale row, anchored at the README line so the fix is obvious.
    let v = lint_files(&[
        SourceFile {
            path: "crates/net/src/metrics.rs".to_string(),
            text: "pub fn nothing() {}\n".to_string(),
        },
        SourceFile {
            path: "crates/net/README.md".to_string(),
            text: fixture("registry_stale.md"),
        },
    ]);
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, fv_lint::ERROR_REGISTRY);
    assert_eq!(v[0].file, "crates/net/README.md");
    assert_eq!(v[0].line, 5);
    assert!(v[0].message.contains("stale"), "{v:?}");
}

#[test]
fn missing_registry_is_itself_a_violation() {
    let v = lint_fixture("error_code_bad.rs", "crates/net/src/metrics.rs", None);
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, fv_lint::ERROR_REGISTRY);
    assert!(v[0].message.contains("not found"), "{v:?}");
}
