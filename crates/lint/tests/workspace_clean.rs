//! Self-check: the workspace tree must lint clean. This is the same
//! gate CI's `lint-invariants` job enforces with the CLI; failing here
//! means a violation (or a reasonless waiver) landed in the tree.

use std::path::Path;

#[test]
fn workspace_tree_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root");
    let violations = fv_lint::lint_workspace(root).expect("walk the workspace tree");
    assert!(
        violations.is_empty(),
        "workspace is not lint-clean:\n{}",
        fv_lint::render_text(&violations)
    );
}
