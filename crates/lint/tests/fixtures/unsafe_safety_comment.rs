pub fn read_first(p: *const u8) -> u8 {
    // SAFETY: callers pass a pointer to at least one readable byte.
    unsafe { *p }
}
