pub fn tick_deadline() -> std::time::Instant {
    // fv-lint: allow(no-wall-clock) -- harness boot timestamp only; never feeds the policy
    std::time::Instant::now()
}
