pub fn tick_deadline() -> std::time::Instant {
    std::time::Instant::now()
}
