pub fn refusal_code() -> &'static str {
    "E_BOGUS"
}
