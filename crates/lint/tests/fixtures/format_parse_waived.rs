// fv-lint: allow(format-parse-inverse) -- write-only debug dump, intentionally not round-tripped
pub fn format_widget(width: u32) -> String {
    format!("widget {width}")
}
