pub fn launch_helper() {
    let _ = std::process::Command::new("helper").spawn();
}
