pub fn first_line(reply: Option<&str>) -> &str {
    // fv-lint: allow(no-panic-in-server-paths) -- caller checked is_some() one line up
    reply.unwrap()
}
