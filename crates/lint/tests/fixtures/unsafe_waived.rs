pub fn read_first(p: *const u8) -> u8 {
    // fv-lint: allow(unsafe-needs-safety-comment) -- audited in review; justification tracked in the PR
    unsafe { *p }
}
