pub fn format_widget(width: u32) -> String {
    format!("widget {width}")
}
