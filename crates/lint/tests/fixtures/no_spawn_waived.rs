pub fn sample_in_background() {
    // fv-lint: allow(no-spawn-outside-sanctioned-modules) -- one-shot sampler, joined by caller
    std::thread::spawn(|| {});
}
