pub fn sample_in_background() {
    std::thread::spawn(|| {});
}
