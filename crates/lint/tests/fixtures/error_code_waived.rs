pub fn refusal_code() -> &'static str {
    // fv-lint: allow(error-code-registry) -- experimental code behind a feature gate, not yet wire surface
    "E_BOGUS"
}
