pub fn first_line(reply: Option<&str>) -> &str {
    reply.unwrap()
}
