pub fn launch_helper() {
    // fv-lint: allow(no-spawn-outside-sanctioned-modules) -- short-lived helper, reaped below
    let _ = std::process::Command::new("helper").spawn();
}
