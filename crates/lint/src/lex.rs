//! A lightweight Rust tokenizer: just enough lexical structure for the
//! rule engine — identifiers, punctuation, string/char literals, and
//! comments, each tagged with its 1-based source line.
//!
//! This is deliberately not a full lexer. It only needs to be exact
//! about the things that make naive text scans lie: comments, string
//! literals (including raw and byte strings), and the char-vs-lifetime
//! ambiguity of `'`. Everything else degrades to single-character
//! punctuation tokens, which the rules never look at.

/// What a token is, as far as the rules care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `unsafe`, `thread`, ...).
    Ident,
    /// Single punctuation character (`.`, `:`, `!`, `{`, ...).
    Punct,
    /// String literal; `text` is the content between the quotes.
    Str,
    /// Char literal; `text` is the content between the quotes.
    Char,
    /// Lifetime (`'a`, `'static`); `text` excludes the leading `'`.
    Lifetime,
    /// Numeric literal.
    Num,
}

#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
}

impl Token {
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// Tokenized source: the token stream plus every comment, each with the
/// 1-based line it starts on. Comment text excludes the `//` / `/*`
/// markers.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<(usize, String)>,
}

pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut out = Lexed::default();
    let mut i = 0;
    let mut line = 1;

    let push = |out: &mut Lexed, kind: TokKind, text: String, line: usize| {
        out.tokens.push(Token { kind, text, line });
    };

    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }

        // Line comment (also captures `///` and `//!` doc comments).
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start = i + 2;
            let mut j = start;
            while j < n && chars[j] != '\n' {
                j += 1;
            }
            out.comments
                .push((line, chars[start..j].iter().collect::<String>()));
            i = j;
            continue;
        }

        // Block comment, nesting respected.
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let start_line = line;
            let mut depth = 1usize;
            let mut j = i + 2;
            let mut text = String::new();
            while j < n && depth > 0 {
                if chars[j] == '/' && j + 1 < n && chars[j + 1] == '*' {
                    depth += 1;
                    text.push_str("/*");
                    j += 2;
                } else if chars[j] == '*' && j + 1 < n && chars[j + 1] == '/' {
                    depth -= 1;
                    if depth > 0 {
                        text.push_str("*/");
                    }
                    j += 2;
                } else {
                    if chars[j] == '\n' {
                        line += 1;
                    }
                    text.push(chars[j]);
                    j += 1;
                }
            }
            out.comments.push((start_line, text));
            i = j;
            continue;
        }

        // String-literal prefixes: `"`, `r"`, `r#"`, `b"`, `br#"`, `b'`.
        if c == '"' || c == 'r' || c == 'b' {
            let mut j = i;
            if j < n && chars[j] == 'b' {
                j += 1;
            }
            let mut raw = false;
            if j < n && chars[j] == 'r' && j + 1 < n && (chars[j + 1] == '"' || chars[j + 1] == '#')
            {
                raw = true;
                j += 1;
            }
            let mut hashes = 0usize;
            if raw {
                while j < n && chars[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
            }
            if j < n && chars[j] == '"' && (raw || j == i || (j == i + 1 && chars[i] == 'b')) {
                // A real string literal start (plain, byte, or raw).
                let start_line = line;
                let mut k = j + 1;
                let mut text = String::new();
                while k < n {
                    if chars[k] == '\n' {
                        line += 1;
                    }
                    if !raw && chars[k] == '\\' && k + 1 < n {
                        text.push(chars[k]);
                        text.push(chars[k + 1]);
                        if chars[k + 1] == '\n' {
                            line += 1;
                        }
                        k += 2;
                        continue;
                    }
                    if chars[k] == '"' {
                        // For raw strings the quote must be followed by
                        // the right number of `#`s to terminate.
                        let mut h = 0usize;
                        while h < hashes && k + 1 + h < n && chars[k + 1 + h] == '#' {
                            h += 1;
                        }
                        if h == hashes {
                            k += 1 + hashes;
                            break;
                        }
                    }
                    text.push(chars[k]);
                    k += 1;
                }
                push(&mut out, TokKind::Str, text, start_line);
                i = k;
                continue;
            }
            if j < n && chars[j] == '\'' && j == i + 1 && chars[i] == 'b' {
                // Byte char literal `b'x'`.
                let end = scan_char_literal(&chars, j, &mut line);
                push(
                    &mut out,
                    TokKind::Char,
                    chars[j + 1..end.saturating_sub(1).max(j + 1)]
                        .iter()
                        .collect(),
                    line,
                );
                i = end;
                continue;
            }
            if c == '"' {
                // Unreachable in well-formed code; consume the quote.
                push(&mut out, TokKind::Punct, c.to_string(), line);
                i += 1;
                continue;
            }
            // Fall through: `r`/`b` starting an ordinary identifier.
        }

        // Char literal vs lifetime.
        if c == '\'' {
            let next = chars.get(i + 1).copied();
            let after = chars.get(i + 2).copied();
            let is_lifetime =
                matches!(next, Some(ch) if ch == '_' || ch.is_alphabetic()) && after != Some('\'');
            if is_lifetime {
                let mut j = i + 1;
                while j < n && (chars[j] == '_' || chars[j].is_alphanumeric()) {
                    j += 1;
                }
                push(
                    &mut out,
                    TokKind::Lifetime,
                    chars[i + 1..j].iter().collect(),
                    line,
                );
                i = j;
                continue;
            }
            let start_line = line;
            let end = scan_char_literal(&chars, i, &mut line);
            push(
                &mut out,
                TokKind::Char,
                chars[i + 1..end.saturating_sub(1).max(i + 1)]
                    .iter()
                    .collect(),
                start_line,
            );
            i = end;
            continue;
        }

        // Identifier / keyword.
        if c == '_' || c.is_alphabetic() {
            let mut j = i;
            while j < n && (chars[j] == '_' || chars[j].is_alphanumeric()) {
                j += 1;
            }
            push(&mut out, TokKind::Ident, chars[i..j].iter().collect(), line);
            i = j;
            continue;
        }

        // Number (suffixes glued on; rules never inspect these).
        if c.is_ascii_digit() {
            let mut j = i;
            while j < n && (chars[j] == '_' || chars[j].is_alphanumeric()) {
                j += 1;
            }
            push(&mut out, TokKind::Num, chars[i..j].iter().collect(), line);
            i = j;
            continue;
        }

        push(&mut out, TokKind::Punct, c.to_string(), line);
        i += 1;
    }

    out
}

/// Scan a char literal starting at the opening `'` at `start`. Returns
/// the index one past the closing quote. Gives up at end of line so a
/// stray quote cannot swallow the rest of the file.
fn scan_char_literal(chars: &[char], start: usize, line: &mut usize) -> usize {
    let n = chars.len();
    let mut k = start + 1;
    while k < n && chars[k] != '\n' {
        if chars[k] == '\\' && k + 1 < n {
            k += 2;
            continue;
        }
        if chars[k] == '\'' {
            return k + 1;
        }
        k += 1;
    }
    if k < n && chars[k] == '\n' {
        *line += 1;
        return k + 1;
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_are_captured_not_tokenized() {
        let l = lex("let x = 1; // trailing note\n/* block\nspans */ let y;");
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0], (1, " trailing note".to_string()));
        assert_eq!(l.comments[1].0, 2);
        assert!(l.comments[1].1.contains("spans"));
        // `y` is on line 3 (the block comment spans a newline).
        let y = l.tokens.iter().find(|t| t.is_ident("y")).unwrap();
        assert_eq!(y.line, 3);
    }

    #[test]
    fn strings_hide_their_contents_from_the_token_stream() {
        let l = lex(r#"call("thread::spawn inside a string")"#);
        assert_eq!(idents(r#"call("thread::spawn inside a string")"#), ["call"]);
        let s = l.tokens.iter().find(|t| t.kind == TokKind::Str).unwrap();
        assert!(s.text.contains("thread::spawn"));
    }

    #[test]
    fn raw_and_byte_strings_terminate_correctly() {
        let l = lex("let a = r#\"quote \" inside\"#; let b = b\"bytes\"; done");
        let strs: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(strs, ["quote \" inside", "bytes"]);
        assert!(l.tokens.iter().any(|t| t.is_ident("done")));
    }

    #[test]
    fn lifetimes_do_not_eat_the_rest_of_the_line() {
        let toks = idents("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert_eq!(toks, ["fn", "f", "x", "str", "str", "x"]);
        let l = lex("let c = 'x'; let nl = '\\n'; after");
        assert!(l.tokens.iter().any(|t| t.is_ident("after")));
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokKind::Char).count(),
            2
        );
    }

    #[test]
    fn multi_line_strings_keep_line_numbers_honest() {
        let l = lex("let s = \"line one\nline two\";\nmarker");
        let m = l.tokens.iter().find(|t| t.is_ident("marker")).unwrap();
        assert_eq!(m.line, 3);
    }
}
