//! fv-lint CLI: lint the workspace (or explicit files) and print
//! `file:line: rule: message` diagnostics. Exit 0 when clean, 1 on any
//! violation, 2 on usage or I/O errors.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: fv-lint [--workspace] [--json] [FILE...]\n\
                     \n\
                     --workspace   lint every source file under the enclosing workspace\n\
                     --json        emit {\"version\":1,\"violations\":[...]} instead of text\n\
                     FILE...       lint only the given files (paths taken as rule scopes)\n";

fn main() -> ExitCode {
    let mut json = false;
    let mut workspace = false;
    let mut paths: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--workspace" => workspace = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("fv-lint: unknown flag {other}");
                eprint!("{USAGE}");
                return ExitCode::from(2);
            }
            file => paths.push(file.to_string()),
        }
    }

    let violations = if paths.is_empty() || workspace {
        let cwd = match std::env::current_dir() {
            Ok(d) => d,
            Err(e) => {
                eprintln!("fv-lint: cannot determine current directory: {e}");
                return ExitCode::from(2);
            }
        };
        let Some(root) = fv_lint::find_workspace_root(&cwd) else {
            eprintln!(
                "fv-lint: no enclosing Cargo workspace found from {}",
                cwd.display()
            );
            return ExitCode::from(2);
        };
        match fv_lint::lint_workspace(&root) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("fv-lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        let mut files = Vec::new();
        for p in &paths {
            match std::fs::read_to_string(PathBuf::from(p)) {
                Ok(text) => files.push(fv_lint::SourceFile {
                    path: p.replace('\\', "/"),
                    text,
                }),
                Err(e) => {
                    eprintln!("fv-lint: {p}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        fv_lint::lint_files(&files)
    };

    if json {
        println!("{}", fv_lint::render_json(&violations));
    } else {
        print!("{}", fv_lint::render_text(&violations));
    }
    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
