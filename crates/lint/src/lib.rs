//! fv-lint — the workspace invariant linter.
//!
//! The repo's correctness rests on conventions no compiler checks: the
//! balancer policy and workload generator must stay wall-clock-free,
//! the event-loop server paths must never panic, thread creation is
//! confined to sanctioned modules, `unsafe` needs a written
//! justification, every wire error code is registered in the fv-net
//! README, and every public `format_x` has a `parse_x` inverse. This
//! crate makes those conventions machine-checked: a lightweight Rust
//! tokenizer ([`lex`]) feeds a rule engine that walks the workspace and
//! reports `file:line: rule: message` diagnostics.
//!
//! Violations can be waived per line with a justification comment:
//!
//! ```text
//! // fv-lint: allow(no-spawn-outside-sanctioned-modules) -- writer thread, joined below
//! ```
//!
//! The waiver applies to the line it sits on and the line directly
//! below it, and the ` -- <reason>` part is mandatory: a waiver without
//! a reason does not waive anything.

#![forbid(unsafe_code)]

pub mod lex;

use lex::{lex, Lexed, TokKind, Token};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::path::{Path, PathBuf};

/// Rule names, as they appear in diagnostics and waiver comments.
pub const NO_WALL_CLOCK: &str = "no-wall-clock";
pub const NO_PANIC: &str = "no-panic-in-server-paths";
pub const NO_SPAWN: &str = "no-spawn-outside-sanctioned-modules";
pub const UNSAFE_SAFETY: &str = "unsafe-needs-safety-comment";
pub const ERROR_REGISTRY: &str = "error-code-registry";
pub const FORMAT_PARSE: &str = "format-parse-inverse";

pub const RULES: &[&str] = &[
    NO_WALL_CLOCK,
    NO_PANIC,
    NO_SPAWN,
    UNSAFE_SAFETY,
    ERROR_REGISTRY,
    FORMAT_PARSE,
];

/// One input file: a workspace-relative path (always `/`-separated) and
/// its full text. The path decides which rules apply.
#[derive(Debug, Clone)]
pub struct SourceFile {
    pub path: String,
    pub text: String,
}

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub file: String,
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Files where `no-panic-in-server-paths` applies: the event-loop
/// server and everything it calls on the request path.
const SERVER_PATHS: &[&str] = &[
    "crates/net/src/server.rs",
    "crates/net/src/shard.rs",
    "crates/net/src/procshard.rs",
    "crates/net/src/stream.rs",
    "crates/net/src/poll.rs",
    "crates/net/src/frame.rs",
    "crates/net/src/tap.rs",
];

/// Modules allowed to create threads (plus any test code). Child
/// *process* creation is tighter still: `rule_no_spawn` only ever
/// accepts it here, and in practice only `procshard.rs` (the process
/// shard backend) does it.
const SPAWN_SANCTIONED: &[&str] = &["shard.rs", "procshard.rs", "tap.rs", "soak.rs"];

/// The module set for `format-parse-inverse`: the wire codec and its
/// satellite text formats. A `parse_x` anywhere in the set satisfies a
/// `format_x` anywhere else in it (e.g. `codec.rs` formats what
/// `decode.rs` parses).
const CODEC_PATHS: &[&str] = &[
    "crates/api/src/codec.rs",
    "crates/api/src/decode.rs",
    "crates/api/src/trace.rs",
    "crates/api/src/image.rs",
    "crates/net/src/metrics.rs",
    "crates/net/src/balance.rs",
];

/// Where the error-code registry lives.
const ERROR_TABLE_PATH: &str = "crates/net/README.md";

fn file_name(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or(path)
}

fn in_path_set(path: &str, set: &[&str]) -> bool {
    set.iter()
        .any(|p| path == *p || path.ends_with(&format!("/{p}")))
}

/// Whether the whole file is test code by location.
fn is_test_path(path: &str) -> bool {
    path.split('/')
        .any(|seg| seg == "tests" || seg == "benches")
}

fn wall_clock_scope(path: &str) -> bool {
    let name = file_name(path);
    name == "balance.rs"
        || in_path_set(path, &["crates/synth/src/workload.rs"])
        || name.trim_end_matches(".rs").ends_with("_sim")
}

/// Per-file context shared by the rules.
struct FileCtx<'a> {
    path: &'a str,
    lexed: &'a Lexed,
    /// Inclusive line ranges covered by `#[cfg(test)]` items.
    test_ranges: Vec<(usize, usize)>,
    test_file: bool,
    /// line → rules waived on that line.
    waivers: HashMap<usize, HashSet<String>>,
}

impl FileCtx<'_> {
    fn is_test_line(&self, line: usize) -> bool {
        self.test_file
            || self
                .test_ranges
                .iter()
                .any(|&(a, b)| line >= a && line <= b)
    }

    fn is_waived(&self, line: usize, rule: &str) -> bool {
        self.waivers.get(&line).is_some_and(|s| s.contains(rule))
    }
}

/// Find line ranges of `#[cfg(test)]`-gated items by token scanning:
/// match the attribute, then brace-match (or skip to `;`) the item that
/// follows.
fn test_line_ranges(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i + 3 < tokens.len() {
        let gate = tokens[i].is_punct('#')
            && tokens[i + 1].is_punct('[')
            && tokens[i + 2].is_ident("cfg")
            && tokens[i + 3].is_punct('(');
        if !gate {
            i += 1;
            continue;
        }
        // Scan the cfg(...) predicate for a `test` ident.
        let mut j = i + 4;
        let mut depth = 1usize;
        let mut has_test = false;
        while j < tokens.len() && depth > 0 {
            if tokens[j].is_punct('(') {
                depth += 1;
            } else if tokens[j].is_punct(')') {
                depth -= 1;
            } else if tokens[j].is_ident("test") {
                has_test = true;
            }
            j += 1;
        }
        // Expect the closing `]` of the attribute.
        if j < tokens.len() && tokens[j].is_punct(']') {
            j += 1;
        }
        if !has_test {
            i = j;
            continue;
        }
        let start_line = tokens[i].line;
        // Skip any further attributes on the same item.
        while j + 1 < tokens.len() && tokens[j].is_punct('#') && tokens[j + 1].is_punct('[') {
            let mut d = 0usize;
            while j < tokens.len() {
                if tokens[j].is_punct('[') {
                    d += 1;
                } else if tokens[j].is_punct(']') {
                    d -= 1;
                    if d == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        // The gated item ends at the matching `}` of its first brace, or
        // at the first top-level `;` if it has no body (e.g. `use`).
        let mut end_line = start_line;
        while j < tokens.len() {
            if tokens[j].is_punct(';') {
                end_line = tokens[j].line;
                j += 1;
                break;
            }
            if tokens[j].is_punct('{') {
                let mut d = 0usize;
                while j < tokens.len() {
                    if tokens[j].is_punct('{') {
                        d += 1;
                    } else if tokens[j].is_punct('}') {
                        d -= 1;
                        if d == 0 {
                            end_line = tokens[j].line;
                            break;
                        }
                    }
                    j += 1;
                }
                j += 1;
                break;
            }
            j += 1;
        }
        ranges.push((start_line, end_line.max(start_line)));
        i = j;
    }
    ranges
}

/// Parse `fv-lint: allow(rule, ...) -- reason` waiver comments. A
/// waiver is registered for its own line and the line below; a missing
/// or empty reason disqualifies it.
fn parse_waivers(comments: &[(usize, String)]) -> HashMap<usize, HashSet<String>> {
    let mut map: HashMap<usize, HashSet<String>> = HashMap::new();
    for (line, text) in comments {
        let Some(at) = text.find("fv-lint:") else {
            continue;
        };
        let rest = &text[at + "fv-lint:".len()..];
        let Some(open) = rest.find("allow(") else {
            continue;
        };
        let after_open = &rest[open + "allow(".len()..];
        let Some(close) = after_open.find(')') else {
            continue;
        };
        let reason_ok = after_open[close + 1..]
            .trim_start()
            .strip_prefix("--")
            .map(str::trim)
            .is_some_and(|r| !r.is_empty());
        if !reason_ok {
            continue;
        }
        let rules: Vec<String> = after_open[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        for l in [*line, *line + 1] {
            map.entry(l).or_default().extend(rules.iter().cloned());
        }
    }
    map
}

/// `tokens[i..]` matches the ident path `a::b`.
fn path2(tokens: &[Token], i: usize, a: &str, b: &str) -> bool {
    i + 3 < tokens.len()
        && tokens[i].is_ident(a)
        && tokens[i + 1].is_punct(':')
        && tokens[i + 2].is_punct(':')
        && tokens[i + 3].is_ident(b)
}

fn check(
    out: &mut Vec<Violation>,
    ctx: &FileCtx<'_>,
    line: usize,
    rule: &'static str,
    message: String,
) {
    if !ctx.is_waived(line, rule) {
        out.push(Violation {
            file: ctx.path.to_string(),
            line,
            rule,
            message,
        });
    }
}

fn rule_no_wall_clock(out: &mut Vec<Violation>, ctx: &FileCtx<'_>) {
    if !wall_clock_scope(ctx.path) {
        return;
    }
    // Applies to test code too: the `*_sim` harnesses ARE tests, and
    // determinism is exactly what they promise.
    let toks = &ctx.lexed.tokens;
    for i in 0..toks.len() {
        for src in ["Instant", "SystemTime"] {
            if path2(toks, i, src, "now") {
                check(
                    out,
                    ctx,
                    toks[i].line,
                    NO_WALL_CLOCK,
                    format!(
                        "`{src}::now` in a seeded/deterministic scope; derive time from \
                         the simulation clock or a seed instead"
                    ),
                );
            }
        }
    }
}

fn rule_no_panic(out: &mut Vec<Violation>, ctx: &FileCtx<'_>) {
    if !in_path_set(ctx.path, SERVER_PATHS) || ctx.test_file {
        return;
    }
    let toks = &ctx.lexed.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || ctx.is_test_line(t.line) {
            continue;
        }
        let method_call =
            i > 0 && toks[i - 1].is_punct('.') && i + 1 < toks.len() && toks[i + 1].is_punct('(');
        if method_call && (t.text == "unwrap" || t.text == "expect") {
            check(
                out,
                ctx,
                t.line,
                NO_PANIC,
                format!(
                    "`.{}()` in a server path; return a typed `ApiError` (`E_*`) instead",
                    t.text
                ),
            );
            continue;
        }
        let bang_macro = i + 1 < toks.len() && toks[i + 1].is_punct('!');
        if bang_macro
            && matches!(
                t.text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            )
        {
            check(
                out,
                ctx,
                t.line,
                NO_PANIC,
                format!(
                    "`{}!` in a server path; return a typed `ApiError` (`E_*`) instead",
                    t.text
                ),
            );
        }
    }
}

fn rule_no_spawn(out: &mut Vec<Violation>, ctx: &FileCtx<'_>) {
    if ctx.test_file || SPAWN_SANCTIONED.contains(&file_name(ctx.path)) {
        return;
    }
    let toks = &ctx.lexed.tokens;
    for i in 0..toks.len() {
        if ctx.is_test_line(toks[i].line) {
            continue;
        }
        if path2(toks, i, "thread", "spawn") || path2(toks, i, "thread", "Builder") {
            check(
                out,
                ctx,
                toks[i].line,
                NO_SPAWN,
                "thread creation outside the sanctioned modules \
                 (shard.rs, procshard.rs, tap.rs, soak.rs, tests)"
                    .to_string(),
            );
        }
        // Child processes are confined even harder than threads: the
        // process shard backend (procshard.rs) is the only non-test
        // module that may spawn them. Both spellings are anchored so
        // forestview's unrelated `Command` enum never matches; a fully
        // qualified `process::Command::new` reports once, at `process`.
        let cmd_new = path2(toks, i, "Command", "new")
            && !(i >= 3 && path2(toks, i - 3, "process", "Command"));
        if path2(toks, i, "process", "Command") || cmd_new {
            check(
                out,
                ctx,
                toks[i].line,
                NO_SPAWN,
                "child-process creation outside the sanctioned modules \
                 (procshard.rs, tests); shard worker processes are the only ones we spawn"
                    .to_string(),
            );
        }
    }
}

fn rule_unsafe_safety(out: &mut Vec<Violation>, ctx: &FileCtx<'_>) {
    let toks = &ctx.lexed.tokens;
    for t in toks {
        if !t.is_ident("unsafe") {
            continue;
        }
        let justified =
            ctx.lexed.comments.iter().any(|(line, text)| {
                *line + 3 >= t.line && *line <= t.line && text.contains("SAFETY:")
            });
        if !justified {
            check(
                out,
                ctx,
                t.line,
                UNSAFE_SAFETY,
                "`unsafe` without an adjacent `// SAFETY:` comment explaining why it is sound"
                    .to_string(),
            );
        }
    }
}

/// A source-side `E_*` occurrence or a codec-side `format_`/`parse_`
/// definition, collected per file and judged across the whole set.
#[derive(Default)]
struct CrossFile {
    /// (file, line, code, waived) for each `"E_*"` string literal in
    /// non-test code.
    error_codes: Vec<(String, usize, String, bool)>,
    /// (file, line, name, waived) for each `pub fn format_*` in the
    /// codec module set.
    format_fns: Vec<(String, usize, String, bool)>,
    /// Every `fn parse_*` name in the codec module set.
    parse_fns: HashSet<String>,
}

fn looks_like_error_code(s: &str) -> bool {
    s.strip_prefix("E_").is_some_and(|rest| {
        !rest.is_empty() && rest.chars().all(|c| c.is_ascii_uppercase() || c == '_')
    })
}

fn collect_cross_file(cross: &mut CrossFile, ctx: &FileCtx<'_>) {
    let toks = &ctx.lexed.tokens;
    if !ctx.test_file {
        for t in toks {
            if t.kind == TokKind::Str && looks_like_error_code(&t.text) && !ctx.is_test_line(t.line)
            {
                cross.error_codes.push((
                    ctx.path.to_string(),
                    t.line,
                    t.text.clone(),
                    ctx.is_waived(t.line, ERROR_REGISTRY),
                ));
            }
        }
    }
    if in_path_set(ctx.path, CODEC_PATHS) {
        for i in 0..toks.len() {
            if !toks[i].is_ident("fn") || i + 1 >= toks.len() {
                continue;
            }
            let name = &toks[i + 1];
            if name.kind != TokKind::Ident {
                continue;
            }
            if name.text.starts_with("parse_") {
                cross.parse_fns.insert(name.text.clone());
            }
            // Only plain `pub fn` counts as public; `pub(crate)` and
            // private helpers are exempt from the inverse requirement.
            if name.text.starts_with("format_") && i > 0 && toks[i - 1].is_ident("pub") {
                cross.format_fns.push((
                    ctx.path.to_string(),
                    name.line,
                    name.text.clone(),
                    ctx.is_waived(name.line, FORMAT_PARSE),
                ));
            }
        }
    }
}

/// One row of the fv-net README error table.
struct TableRow {
    line: usize,
    code: String,
    exit: Option<u32>,
}

fn parse_error_table(md: &str) -> Vec<TableRow> {
    let mut rows = Vec::new();
    for (idx, raw) in md.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim();
        if !trimmed.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = trimmed
            .trim_matches('|')
            .split('|')
            .map(str::trim)
            .collect();
        let Some(code_cell) = cells.iter().find(|c| c.starts_with("`E_")) else {
            continue;
        };
        let code = code_cell.trim_matches('`').to_string();
        if !looks_like_error_code(&code) {
            continue;
        }
        let exit = cells.last().and_then(|c| c.parse::<u32>().ok());
        rows.push(TableRow { line, code, exit });
    }
    rows
}

fn finalize_error_registry(
    out: &mut Vec<Violation>,
    cross: &CrossFile,
    readme: Option<&SourceFile>,
) {
    let live: Vec<_> = cross
        .error_codes
        .iter()
        .filter(|(.., waived)| !waived)
        .collect();
    let Some(readme) = readme else {
        if let Some((file, line, code, _)) = live.first() {
            out.push(Violation {
                file: file.clone(),
                line: *line,
                rule: ERROR_REGISTRY,
                message: format!(
                    "error code `{code}` used but `{ERROR_TABLE_PATH}` (the error-code \
                     registry) was not found"
                ),
            });
        }
        return;
    };
    let rows = parse_error_table(&readme.text);
    let mut row_count: HashMap<&str, Vec<&TableRow>> = HashMap::new();
    for row in &rows {
        row_count.entry(&row.code).or_default().push(row);
    }

    let mut reported: HashSet<&str> = HashSet::new();
    for (file, line, code, _) in &live {
        match row_count.get(code.as_str()).map(Vec::as_slice) {
            None | Some([]) => {
                if reported.insert(code) {
                    out.push(Violation {
                        file: file.clone(),
                        line: *line,
                        rule: ERROR_REGISTRY,
                        message: format!(
                            "error code `{code}` is not registered in the \
                             {ERROR_TABLE_PATH} error table"
                        ),
                    });
                }
            }
            Some([row]) => {
                if row.exit.is_none() && reported.insert(code) {
                    out.push(Violation {
                        file: readme.path.clone(),
                        line: row.line,
                        rule: ERROR_REGISTRY,
                        message: format!(
                            "registry row for `{code}` has no stable numeric exit code"
                        ),
                    });
                }
            }
            Some(dups) => {
                if reported.insert(code) {
                    out.push(Violation {
                        file: readme.path.clone(),
                        line: dups[1].line,
                        rule: ERROR_REGISTRY,
                        message: format!(
                            "error code `{code}` registered {} times (must be exactly once)",
                            dups.len()
                        ),
                    });
                }
            }
        }
    }

    // Stale rows: registered codes no longer used anywhere in source.
    let used: HashSet<&str> = cross
        .error_codes
        .iter()
        .map(|(_, _, code, _)| code.as_str())
        .collect();
    let mut seen_rows: HashSet<&str> = HashSet::new();
    for row in &rows {
        if seen_rows.insert(&row.code) && !used.contains(row.code.as_str()) {
            out.push(Violation {
                file: readme.path.clone(),
                line: row.line,
                rule: ERROR_REGISTRY,
                message: format!(
                    "registered error code `{}` does not appear anywhere in source (stale row)",
                    row.code
                ),
            });
        }
    }
}

fn finalize_format_parse(out: &mut Vec<Violation>, cross: &CrossFile) {
    for (file, line, name, waived) in &cross.format_fns {
        if *waived {
            continue;
        }
        let suffix = name.trim_start_matches("format_");
        let inverse = format!("parse_{suffix}");
        if !cross.parse_fns.contains(&inverse) {
            out.push(Violation {
                file: file.clone(),
                line: *line,
                rule: FORMAT_PARSE,
                message: format!(
                    "public `{name}` has no `{inverse}` inverse in the codec module set"
                ),
            });
        }
    }
}

/// Lint an explicit set of files. Paths are workspace-relative and
/// decide rule scope; `.md` files participate only as the error-code
/// registry. This is the seam the fixture tests drive.
pub fn lint_files(files: &[SourceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut cross = CrossFile::default();
    let readme = files
        .iter()
        .find(|f| f.path == ERROR_TABLE_PATH || f.path.ends_with("net/README.md"));

    for f in files {
        if !f.path.ends_with(".rs") {
            continue;
        }
        let lexed = lex(&f.text);
        let ctx = FileCtx {
            path: &f.path,
            lexed: &lexed,
            test_ranges: test_line_ranges(&lexed.tokens),
            test_file: is_test_path(&f.path),
            waivers: parse_waivers(&lexed.comments),
        };
        rule_no_wall_clock(&mut out, &ctx);
        rule_no_panic(&mut out, &ctx);
        rule_no_spawn(&mut out, &ctx);
        rule_unsafe_safety(&mut out, &ctx);
        collect_cross_file(&mut cross, &ctx);
    }

    finalize_error_registry(&mut out, &cross, readme);
    finalize_format_parse(&mut out, &cross);

    out.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    out
}

/// Directories never linted: build output, VCS metadata, the vendored
/// third-party API shims (not first-party architecture), and the
/// linter's own deliberately-bad fixture corpus.
const SKIP_DIRS: &[&str] = &[
    "target",
    ".git",
    "artifacts",
    "crates/shims",
    "crates/lint/tests/fixtures",
];

/// Walk the workspace rooted at `root` and lint every `.rs` file plus
/// the fv-net README (the error-code registry).
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let rel = rel_path(root, &path);
            if entry.file_type()?.is_dir() {
                if !SKIP_DIRS.contains(&rel.as_str()) && !rel.starts_with('.') {
                    stack.push(path);
                }
                continue;
            }
            if rel.ends_with(".rs") || rel == ERROR_TABLE_PATH {
                let bytes = std::fs::read(&path)?;
                files.push(SourceFile {
                    path: rel,
                    text: String::from_utf8_lossy(&bytes).into_owned(),
                });
            }
        }
    }
    Ok(lint_files(&files))
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let mut s = String::new();
    for comp in rel.components() {
        if !s.is_empty() {
            s.push('/');
        }
        s.push_str(&comp.as_os_str().to_string_lossy());
    }
    s
}

/// Ascend from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// `file:line: rule: message`, one per line. Empty string when clean.
pub fn render_text(violations: &[Violation]) -> String {
    let mut s = String::new();
    for v in violations {
        s.push_str(&v.to_string());
        s.push('\n');
    }
    s
}

/// Stable machine-readable form: `{"version":1,"violations":[...]}`.
pub fn render_json(violations: &[Violation]) -> String {
    let mut s = String::from("{\"version\":1,\"violations\":[");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"file\":{},\"line\":{},\"rule\":{},\"message\":{}}}",
            json_str(&v.file),
            v.line,
            json_str(v.rule),
            json_str(&v.message)
        ));
    }
    s.push_str("]}");
    s
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(path: &str, text: &str) -> Vec<SourceFile> {
        vec![SourceFile {
            path: path.to_string(),
            text: text.to_string(),
        }]
    }

    #[test]
    fn cfg_test_regions_are_excluded_from_server_path_rules() {
        let src = "pub fn ok() -> u32 { 1 }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       #[test]\n\
                       fn t() { Some(1).unwrap(); }\n\
                   }\n";
        let v = lint_files(&one("crates/net/src/frame.rs", src));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unwrap_in_string_or_comment_is_not_a_violation() {
        let src = "// .unwrap() in a comment\n\
                   pub fn f() -> &'static str { \".unwrap()\" }\n";
        let v = lint_files(&one("crates/net/src/frame.rs", src));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap() {
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap_or_else(|| 0) }\n";
        let v = lint_files(&one("crates/net/src/frame.rs", src));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn waiver_without_reason_does_not_waive() {
        let src = "pub fn f(x: Option<u32>) -> u32 {\n\
                   // fv-lint: allow(no-panic-in-server-paths)\n\
                   x.unwrap()\n\
                   }\n";
        let v = lint_files(&one("crates/net/src/frame.rs", src));
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, NO_PANIC);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn safety_comment_satisfies_unsafe_rule() {
        let src = "pub fn f(p: *const u8) -> u8 {\n\
                   // SAFETY: caller guarantees p is valid.\n\
                   unsafe { *p }\n\
                   }\n";
        let v = lint_files(&one("crates/core/src/x.rs", src));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn error_table_round_trip() {
        let rows = parse_error_table(
            "| code | meaning | CLI exit |\n\
             | --- | --- | --- |\n\
             | `E_IO` | io failure | 66 |\n\
             | `E_BUSY` | backpressure | |\n",
        );
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].code, "E_IO");
        assert_eq!(rows[0].exit, Some(66));
        assert_eq!(rows[1].exit, None);
    }

    #[test]
    fn json_rendering_escapes_and_is_stable() {
        let v = vec![Violation {
            file: "a.rs".into(),
            line: 3,
            rule: NO_PANIC,
            message: "say \"no\"".into(),
        }];
        assert_eq!(
            render_json(&v),
            "{\"version\":1,\"violations\":[{\"file\":\"a.rs\",\"line\":3,\
             \"rule\":\"no-panic-in-server-paths\",\"message\":\"say \\\"no\\\"\"}]}"
        );
        assert_eq!(render_json(&[]), "{\"version\":1,\"violations\":[]}");
    }
}
