//! SVD signal balancing.
//!
//! Datasets in a compendium differ wildly in how much correlated signal
//! they carry: one 300-condition stress compendium can drown thirty small
//! experiments. SPELL balances each dataset by the magnitude of its
//! dominant singular value so that the *pattern* of correlation, not the
//! raw signal mass, drives search. We estimate σ₁ from the condition-space
//! Gram matrix (cheap: conditions² entries) via power iteration, falling
//! back to a full Jacobi SVD for small matrices when exactness is wanted.

use crate::prep::PreparedDataset;
use fv_linalg::dense::Matrix;
use fv_linalg::power::dominant_eigenpair;
use fv_linalg::svd::svd;

/// Balancing strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Balancing {
    /// No balancing (the ablation baseline).
    None,
    /// Scale each dataset by `1/σ₁` of its prepared matrix, then rescale so
    /// the mean dataset keeps unit magnitude. The default.
    #[default]
    TopSingular,
}

/// Estimate the dominant singular value of a prepared dataset.
///
/// Builds the condition-space Gram matrix `G = XᵀX` (`n_cols × n_cols`) and
/// extracts its top eigenvalue λ₁ by power iteration; σ₁ = √λ₁.
pub fn top_singular_value(ds: &PreparedDataset) -> f64 {
    let n_cols = ds.n_cols();
    if n_cols == 0 || ds.n_genes() == 0 {
        return 0.0;
    }
    let mut gram = Matrix::zeros(n_cols, n_cols);
    for r in 0..ds.n_genes() {
        if !ds.is_valid(r) {
            continue;
        }
        let row = ds.row(r);
        for i in 0..n_cols {
            let vi = row[i] as f64;
            if vi == 0.0 {
                continue;
            }
            for j in i..n_cols {
                let add = vi * row[j] as f64;
                gram.set(i, j, gram.get(i, j) + add);
                if i != j {
                    gram.set(j, i, gram.get(j, i) + add);
                }
            }
        }
    }
    let (lambda, _) = dominant_eigenpair(&gram, 300, 1e-10);
    lambda.max(0.0).sqrt()
}

/// Exact singular values of a small prepared dataset (test oracle).
pub fn exact_singular_values(ds: &PreparedDataset) -> Vec<f64> {
    let m = ds.n_genes();
    let n = ds.n_cols();
    let mut a = Matrix::zeros(m, n);
    for r in 0..m {
        for (c, &v) in ds.row(r).iter().enumerate() {
            a.set(r, c, v as f64);
        }
    }
    svd(&a).sigma
}

/// Compute per-dataset balance factors.
///
/// The factors do **not** rescale the prepared rows — rows stay unit-norm
/// so dataset weights and gene scores remain true correlations. Instead the
/// engine multiplies each dataset's *contribution* to the aggregate gene
/// ranking by its factor, damping signal-dense datasets (large σ₁) so one
/// huge experiment cannot dominate the compendium — the role signal
/// balancing plays in Hibbs et al.
pub fn compute_balance_scales(datasets: &[PreparedDataset], mode: Balancing) -> Vec<f32> {
    match mode {
        Balancing::None => vec![1.0; datasets.len()],
        Balancing::TopSingular => {
            let sigmas: Vec<f64> = datasets.iter().map(top_singular_value).collect();
            // factor_d = mean(σ) / σ_d, so the average dataset keeps unit
            // influence and outliers are damped proportionally.
            let positive: Vec<f64> = sigmas.iter().copied().filter(|&s| s > 0.0).collect();
            if positive.is_empty() {
                return vec![1.0; datasets.len()];
            }
            let mean_sigma = positive.iter().sum::<f64>() / positive.len() as f64;
            sigmas
                .iter()
                .map(|&sigma| {
                    if sigma > 0.0 {
                        (mean_sigma / sigma) as f32
                    } else {
                        1.0
                    }
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fv_expr::matrix::ExprMatrix;

    fn prep(name: &str, rows: usize, cols: usize, vals: &[f32]) -> PreparedDataset {
        let m = ExprMatrix::from_rows(rows, cols, vals).unwrap();
        let ids = (0..rows).map(|i| format!("G{i}")).collect();
        PreparedDataset::from_matrix(name, &m, ids)
    }

    fn rand_vals(rows: usize, cols: usize, seed: u64) -> Vec<f32> {
        let mut s = seed.max(1);
        (0..rows * cols)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                ((s % 2000) as f32 - 1000.0) / 250.0
            })
            .collect()
    }

    #[test]
    fn power_matches_exact_svd() {
        let p = prep("d", 8, 5, &rand_vals(8, 5, 42));
        let approx = top_singular_value(&p);
        let exact = exact_singular_values(&p);
        assert!(
            (approx - exact[0]).abs() < 1e-6 * exact[0].max(1.0),
            "approx {approx} vs exact {}",
            exact[0]
        );
    }

    #[test]
    fn zero_dataset_sigma_zero() {
        let p = prep("d", 2, 3, &[1.0, 1.0, 1.0, 2.0, 2.0, 2.0]); // constant rows → invalid
        assert_eq!(top_singular_value(&p), 0.0);
    }

    #[test]
    fn balancing_none_is_all_ones() {
        let ds = vec![prep("a", 6, 4, &rand_vals(6, 4, 7))];
        let scales = compute_balance_scales(&ds, Balancing::None);
        assert_eq!(scales, vec![1.0]);
    }

    #[test]
    fn balancing_damps_signal_dense_dataset() {
        // One dataset with many correlated rows (big σ1), one small.
        let n = 20;
        let mut big_vals = Vec::new();
        for i in 0..n {
            // strongly correlated rows: same pattern plus tiny jitter
            for c in 0..6 {
                big_vals.push((c as f32) + 0.01 * (i as f32));
            }
        }
        let ds = vec![
            prep("big", n, 6, &big_vals),
            prep("small", 4, 6, &rand_vals(4, 6, 99)),
        ];
        let sigmas: Vec<f64> = ds.iter().map(top_singular_value).collect();
        assert!(sigmas[0] > sigmas[1] * 1.5, "setup: {sigmas:?}");
        let scales = compute_balance_scales(&ds, Balancing::TopSingular);
        // dense dataset damped below the sparse one
        assert!(scales[0] < scales[1], "scales: {scales:?}");
        // σ_d · factor_d equal across datasets (the balancing identity)
        let b0 = sigmas[0] * scales[0] as f64;
        let b1 = sigmas[1] * scales[1] as f64;
        assert!((b0 - b1).abs() < 1e-4 * b0.max(1.0), "{b0} vs {b1}");
    }

    #[test]
    fn balancing_leaves_rows_untouched() {
        let ds = vec![prep("d", 4, 5, &rand_vals(4, 5, 13))];
        let before = ds[0].row(0).to_vec();
        let _ = compute_balance_scales(&ds, Balancing::TopSingular);
        assert_eq!(ds[0].row(0), &before[..], "correlations must stay true");
    }

    #[test]
    fn empty_dataset_list() {
        let ds: Vec<PreparedDataset> = Vec::new();
        assert!(compute_balance_scales(&ds, Balancing::TopSingular).is_empty());
    }

    #[test]
    fn all_zero_datasets_scale_one() {
        let ds = vec![prep("z", 2, 4, &[1.0, 1.0, 1.0, 1.0, 3.0, 3.0, 3.0, 3.0])];
        let scales = compute_balance_scales(&ds, Balancing::TopSingular);
        assert_eq!(scales, vec![1.0]);
    }
}
