//! Dataset conditioning for correlation-as-dot-product search.
//!
//! Each gene row is z-scored (mean 0, sd 1 over present cells), missing
//! cells are filled with 0 (the row mean after centering — the neutral
//! value), and the row is scaled to unit L2 norm. After this, the Pearson
//! correlation of two genes within a dataset is approximated by the dot
//! product of their prepared vectors, which turns SPELL's inner loops into
//! dense BLAS-1 kernels.

use fv_expr::matrix::ExprMatrix;
use fv_expr::normalize;

/// A search-ready dataset: dense unit-norm rows plus presence bookkeeping.
#[derive(Debug, Clone)]
pub struct PreparedDataset {
    /// Dataset name (pane title / result label).
    pub name: String,
    /// Gene ids, one per row, as systematic-name strings.
    pub gene_ids: Vec<String>,
    /// Dense row-major unit vectors, `n_genes × n_cols`.
    data: Vec<f32>,
    n_cols: usize,
    /// Rows that had ≥ `MIN_PRESENT` present cells; others are zero vectors
    /// and excluded from scoring.
    valid: Vec<bool>,
    /// Scale factor applied by signal balancing (1.0 = none). Kept for
    /// diagnostics.
    pub balance_scale: f32,
}

impl PreparedDataset {
    /// Minimum present cells for a row to participate in search.
    pub const MIN_PRESENT: usize = 3;

    /// Prepare a dataset from an expression matrix and its gene ids.
    pub fn from_matrix(name: &str, matrix: &ExprMatrix, gene_ids: Vec<String>) -> Self {
        assert_eq!(
            gene_ids.len(),
            matrix.n_rows(),
            "gene id count must match rows"
        );
        let mut z = matrix.clone();
        normalize::zscore_rows(&mut z);
        let n_rows = z.n_rows();
        let n_cols = z.n_cols();
        let mut data = vec![0.0f32; n_rows * n_cols];
        let mut valid = vec![false; n_rows];
        for r in 0..n_rows {
            let mut norm2 = 0.0f64;
            let mut present = 0usize;
            for (c, v) in z.present_in_row_iter(r) {
                data[r * n_cols + c] = v;
                norm2 += (v as f64) * (v as f64);
                present += 1;
            }
            if present >= Self::MIN_PRESENT && norm2 > 0.0 {
                valid[r] = true;
                let inv = (1.0 / norm2.sqrt()) as f32;
                for c in 0..n_cols {
                    data[r * n_cols + c] *= inv;
                }
            } else {
                for c in 0..n_cols {
                    data[r * n_cols + c] = 0.0;
                }
            }
        }
        PreparedDataset {
            name: name.to_string(),
            gene_ids,
            data,
            n_cols,
            valid,
            balance_scale: 1.0,
        }
    }

    /// Number of gene rows.
    pub fn n_genes(&self) -> usize {
        self.valid.len()
    }

    /// Number of condition columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Whether row `r` participates in search.
    pub fn is_valid(&self, r: usize) -> bool {
        self.valid[r]
    }

    /// The prepared unit vector of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.n_cols..(r + 1) * self.n_cols]
    }

    /// Dot product of two prepared rows — the correlation estimate.
    #[inline]
    pub fn corr(&self, a: usize, b: usize) -> f32 {
        let ra = self.row(a);
        let rb = self.row(b);
        let mut acc = 0.0f32;
        for i in 0..self.n_cols {
            acc += ra[i] * rb[i];
        }
        acc
    }

    /// Apply a uniform scale to all rows (signal balancing hook).
    pub fn scale_all(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
        self.balance_scale *= s;
    }

    /// Row index of a gene id (linear scan; engines keep their own maps).
    pub fn find_gene(&self, id: &str) -> Option<usize> {
        self.gene_ids
            .iter()
            .position(|g| g.eq_ignore_ascii_case(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("G{i}")).collect()
    }

    #[test]
    fn rows_are_unit_norm() {
        let m = ExprMatrix::from_rows(2, 4, &[1.0, 2.0, 3.0, 4.0, -1.0, 5.0, 2.0, 2.0]).unwrap();
        let p = PreparedDataset::from_matrix("d", &m, ids(2));
        for r in 0..2 {
            let n2: f32 = p.row(r).iter().map(|v| v * v).sum();
            assert!((n2 - 1.0).abs() < 1e-5, "row {r} norm² {n2}");
            assert!(p.is_valid(r));
        }
    }

    #[test]
    fn corr_matches_pearson_dense() {
        let m = ExprMatrix::from_rows(
            2,
            6,
            &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 1.5, 1.0, 3.5, 3.0, 5.5, 5.0],
        )
        .unwrap();
        let p = PreparedDataset::from_matrix("d", &m, ids(2));
        let a: Vec<f32> = (0..6).map(|c| m.get(0, c).unwrap()).collect();
        let b: Vec<f32> = (0..6).map(|c| m.get(1, c).unwrap()).collect();
        let exact = fv_expr::stats::pearson_dense(&a, &b).unwrap() as f32;
        assert!(
            (p.corr(0, 1) - exact).abs() < 1e-4,
            "{} vs {exact}",
            p.corr(0, 1)
        );
    }

    #[test]
    fn self_corr_is_one() {
        let m = ExprMatrix::from_rows(1, 5, &[0.3, -1.0, 2.0, 0.7, -0.4]).unwrap();
        let p = PreparedDataset::from_matrix("d", &m, ids(1));
        assert!((p.corr(0, 0) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn sparse_row_invalid() {
        let mut m = ExprMatrix::from_rows(1, 5, &[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        for c in 0..3 {
            m.set_missing(0, c);
        }
        let p = PreparedDataset::from_matrix("d", &m, ids(1));
        assert!(!p.is_valid(0));
        assert!(p.row(0).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn constant_row_invalid() {
        let m = ExprMatrix::from_rows(1, 4, &[2.0, 2.0, 2.0, 2.0]).unwrap();
        let p = PreparedDataset::from_matrix("d", &m, ids(1));
        // constant row has zero variance → zero vector after z-score
        assert!(!p.is_valid(0));
    }

    #[test]
    fn missing_cells_zero_filled() {
        let mut m = ExprMatrix::from_rows(1, 4, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        m.set_missing(0, 2);
        let p = PreparedDataset::from_matrix("d", &m, ids(1));
        assert!(p.is_valid(0));
        assert_eq!(p.row(0)[2], 0.0);
    }

    #[test]
    fn anticorrelated_rows_negative_dot() {
        let m = ExprMatrix::from_rows(2, 4, &[1.0, 2.0, 3.0, 4.0, 4.0, 3.0, 2.0, 1.0]).unwrap();
        let p = PreparedDataset::from_matrix("d", &m, ids(2));
        assert!(p.corr(0, 1) < -0.99);
    }

    #[test]
    fn scale_all_applies() {
        let m = ExprMatrix::from_rows(1, 4, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        let mut p = PreparedDataset::from_matrix("d", &m, ids(1));
        p.scale_all(0.5);
        let n2: f32 = p.row(0).iter().map(|v| v * v).sum();
        assert!((n2 - 0.25).abs() < 1e-5);
        assert_eq!(p.balance_scale, 0.5);
    }

    #[test]
    fn find_gene_case_insensitive() {
        let m = ExprMatrix::zeros(2, 4);
        let p = PreparedDataset::from_matrix("d", &m, vec!["YAL005C".into(), "YBR072W".into()]);
        assert_eq!(p.find_gene("ybr072w"), Some(1));
        assert_eq!(p.find_gene("nope"), None);
    }

    #[test]
    #[should_panic(expected = "gene id count")]
    fn mismatched_ids_panic() {
        let m = ExprMatrix::zeros(2, 3);
        let _ = PreparedDataset::from_matrix("d", &m, ids(3));
    }
}
