//! The SPELL compendium engine.
//!
//! Owns the prepared datasets, resolves query gene names across them, and
//! produces the two ordered lists the paper integrates into ForestView:
//! "The datasets returned can be displayed in decreasing order of relevance
//! to the query, and the top n genes can be selected and highlighted within
//! each dataset" (Section 3).

use crate::balance::{compute_balance_scales, Balancing};
use crate::prep::PreparedDataset;
use crate::rank::{combine_rankings, dataset_gene_scores, RankedGene};
use crate::weight::all_weights;
use fv_expr::matrix::ExprMatrix;
use fv_expr::Dataset;
use std::collections::HashMap;

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct SpellConfig {
    /// Signal balancing mode (see [`crate::balance`]).
    pub balancing: Balancing,
    /// Datasets whose query coherence falls below this weight are excluded
    /// from ranking (0 keeps everything non-negative).
    pub min_dataset_weight: f32,
}

impl Default for SpellConfig {
    fn default() -> Self {
        SpellConfig {
            balancing: Balancing::TopSingular,
            min_dataset_weight: 0.0,
        }
    }
}

/// A dataset's relevance to a query.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetRelevance {
    /// Index into the engine's dataset list.
    pub dataset: usize,
    /// Dataset name.
    pub name: String,
    /// Query-coherence weight (≥ 0).
    pub weight: f32,
    /// Query genes found in this dataset.
    pub query_genes_present: usize,
}

/// The output of a SPELL query: the paper's two ordered lists.
#[derive(Debug, Clone)]
pub struct SpellResult {
    /// Datasets in decreasing relevance order.
    pub datasets: Vec<DatasetRelevance>,
    /// Genes in decreasing score order (query genes included, flagged).
    pub genes: Vec<RankedGene>,
    /// Query gene names that were found somewhere in the compendium.
    pub query_found: Vec<String>,
    /// Query gene names found nowhere.
    pub query_missing: Vec<String>,
}

impl SpellResult {
    /// The top `n` non-query genes — the additions SPELL proposes.
    pub fn top_new_genes(&self, n: usize) -> Vec<&RankedGene> {
        self.genes.iter().filter(|g| !g.in_query).take(n).collect()
    }
}

/// The compendium index.
#[derive(Debug)]
pub struct SpellEngine {
    config: SpellConfig,
    datasets: Vec<PreparedDataset>,
    /// Universe gene names in first-seen order.
    gene_names: Vec<String>,
    name_to_idx: HashMap<String, usize>,
    /// Per dataset: universe index → row index.
    row_maps: Vec<Vec<Option<u32>>>,
    /// Per-dataset balance factors (1.0 until finalized).
    balance: Vec<f32>,
    finalized: bool,
}

impl SpellEngine {
    /// Empty engine.
    pub fn new(config: SpellConfig) -> Self {
        SpellEngine {
            config,
            datasets: Vec::new(),
            gene_names: Vec::new(),
            name_to_idx: HashMap::new(),
            row_maps: Vec::new(),
            balance: Vec::new(),
            finalized: false,
        }
    }

    fn intern(&mut self, name: &str) -> usize {
        let key = name.trim().to_ascii_uppercase();
        if let Some(&i) = self.name_to_idx.get(&key) {
            return i;
        }
        let i = self.gene_names.len();
        self.gene_names.push(name.trim().to_string());
        self.name_to_idx.insert(key, i);
        i
    }

    /// Add a dataset from a raw matrix and gene id list.
    pub fn add_matrix(&mut self, name: &str, matrix: &ExprMatrix, gene_ids: Vec<String>) {
        assert!(!self.finalized, "cannot add datasets after finalize()");
        let prepared = PreparedDataset::from_matrix(name, matrix, gene_ids.clone());
        let mut map: Vec<Option<u32>> = vec![None; self.gene_names.len()];
        for (row, id) in gene_ids.iter().enumerate() {
            let u = self.intern(id);
            if u >= map.len() {
                map.resize(u + 1, None);
            }
            if map[u].is_none() {
                map[u] = Some(row as u32);
            }
        }
        self.datasets.push(prepared);
        self.row_maps.push(map);
    }

    /// Add a dataset from the expression substrate's [`Dataset`].
    pub fn add_dataset(&mut self, ds: &Dataset) {
        let ids: Vec<String> = ds.genes.iter().map(|g| g.id.clone()).collect();
        self.add_matrix(&ds.name, &ds.matrix, ids);
    }

    /// Compute balance factors and freeze the index. Must be called before
    /// [`SpellEngine::query`]; further `add_*` calls panic.
    pub fn finalize(&mut self) {
        if !self.finalized {
            self.balance = compute_balance_scales(&self.datasets, self.config.balancing);
            // Bring all row maps up to the final universe size.
            let n = self.gene_names.len();
            for m in &mut self.row_maps {
                m.resize(n, None);
            }
            self.finalized = true;
        }
    }

    /// Number of datasets indexed.
    pub fn n_datasets(&self) -> usize {
        self.datasets.len()
    }

    /// Number of distinct genes indexed.
    pub fn n_genes(&self) -> usize {
        self.gene_names.len()
    }

    /// Total measurements across the compendium (paper scale metric).
    pub fn total_measurements(&self) -> usize {
        self.datasets.iter().map(|d| d.n_genes() * d.n_cols()).sum()
    }

    /// Dataset accessor.
    pub fn dataset(&self, d: usize) -> &PreparedDataset {
        &self.datasets[d]
    }

    /// Run a query. Panics if [`SpellEngine::finalize`] was not called.
    pub fn query(&self, query_genes: &[&str]) -> SpellResult {
        assert!(self.finalized, "finalize() the engine before querying");
        // Resolve query names to universe indices.
        let mut found: Vec<usize> = Vec::new();
        let mut query_found = Vec::new();
        let mut query_missing = Vec::new();
        for &g in query_genes {
            match self.name_to_idx.get(&g.trim().to_ascii_uppercase()) {
                Some(&u) => {
                    if !found.contains(&u) {
                        found.push(u);
                        query_found.push(self.gene_names[u].clone());
                    }
                }
                None => query_missing.push(g.to_string()),
            }
        }
        if found.is_empty() {
            return SpellResult {
                datasets: Vec::new(),
                genes: Vec::new(),
                query_found,
                query_missing,
            };
        }

        // Per-dataset query rows.
        let query_rows: Vec<Vec<usize>> = self
            .row_maps
            .iter()
            .map(|map| {
                found
                    .iter()
                    .filter_map(|&u| map[u].map(|r| r as usize))
                    .collect()
            })
            .collect();

        // Coherence weights (true correlations), thresholded. These drive
        // the *reported* dataset relevance order. The aggregation below
        // additionally multiplies in the balance factors, damping
        // signal-dense datasets without distorting relevance.
        let mut weights = all_weights(&self.datasets, &query_rows);
        for w in &mut weights {
            if *w < self.config.min_dataset_weight {
                *w = 0.0;
            }
        }
        let effective: Vec<f32> = weights
            .iter()
            .zip(&self.balance)
            .map(|(&w, &b)| w * b)
            .collect();

        // Per-dataset scores in dataset-row space, then mapped into the
        // universe for combination.
        let n_universe = self.gene_names.len();
        let per_dataset: Vec<Vec<Option<f32>>> = self
            .datasets
            .iter()
            .enumerate()
            .map(|(d, ds)| {
                if effective[d] <= 0.0 {
                    return vec![None; n_universe];
                }
                let row_scores = dataset_gene_scores(ds, &query_rows[d]);
                let map = &self.row_maps[d];
                (0..n_universe)
                    .map(|u| map[u].and_then(|r| row_scores[r as usize]))
                    .collect()
            })
            .collect();

        let query_set: Vec<bool> = {
            let mut v = vec![false; n_universe];
            for &u in &found {
                v[u] = true;
            }
            v
        };
        let genes = combine_rankings(&per_dataset, &effective, &self.gene_names, &query_set);

        let mut datasets: Vec<DatasetRelevance> = self
            .datasets
            .iter()
            .enumerate()
            .map(|(d, ds)| DatasetRelevance {
                dataset: d,
                name: ds.name.clone(),
                weight: weights[d],
                query_genes_present: query_rows[d].len(),
            })
            .collect();
        datasets.sort_by(|a, b| {
            b.weight
                .partial_cmp(&a.weight)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.name.cmp(&b.name))
        });

        SpellResult {
            datasets,
            genes,
            query_found,
            query_missing,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Compendium with a planted module: genes M0..M4 share a pattern in
    /// dataset "signal"; dataset "noise" has unrelated values; dataset
    /// "anti" has the module genes anti-correlated (coherence 0).
    fn engine(balancing: Balancing) -> SpellEngine {
        let mut e = SpellEngine::new(SpellConfig {
            balancing,
            min_dataset_weight: 0.0,
        });
        let cols = 8;
        let pattern: Vec<f32> = (0..cols).map(|c| (c as f32 * 0.9).sin() * 2.0).collect();
        // signal: M0..M4 follow pattern + small phase jitter; X0..X4 random-ish
        let mut vals = Vec::new();
        let mut ids = Vec::new();
        for i in 0..5 {
            for (c, &p) in pattern.iter().enumerate() {
                vals.push(p + 0.05 * ((i * 7 + c) % 5) as f32);
            }
            ids.push(format!("M{i}"));
        }
        for i in 0..5 {
            for c in 0..cols {
                vals.push((((i * 31 + c * 17) % 13) as f32) * 0.7 - 4.0);
            }
            ids.push(format!("X{i}"));
        }
        let m = ExprMatrix::from_rows(10, cols, &vals).unwrap();
        e.add_matrix("signal", &m, ids);

        // noise dataset: same genes, shuffled values
        let mut nvals = Vec::new();
        for i in 0..10 {
            for c in 0..cols {
                nvals.push((((i * 13 + c * 29 + 5) % 11) as f32) * 0.9 - 4.5);
            }
        }
        let nm = ExprMatrix::from_rows(10, cols, &nvals).unwrap();
        let nids: Vec<String> = (0..5)
            .map(|i| format!("M{i}"))
            .chain((0..5).map(|i| format!("X{i}")))
            .collect();
        e.add_matrix("noise", &nm, nids);
        e.finalize();
        e
    }

    #[test]
    fn signal_dataset_ranked_first() {
        let e = engine(Balancing::None);
        let r = e.query(&["M0", "M1", "M2"]);
        assert_eq!(r.datasets[0].name, "signal");
        assert!(r.datasets[0].weight > 0.8);
        assert!(r.datasets[0].weight > r.datasets[1].weight);
    }

    #[test]
    fn module_genes_ranked_top() {
        let e = engine(Balancing::None);
        let r = e.query(&["M0", "M1", "M2"]);
        // remaining module genes M3, M4 should lead the non-query ranking
        let top: Vec<&str> = r.top_new_genes(2).iter().map(|g| g.gene.as_str()).collect();
        assert!(top.contains(&"M3"), "top: {top:?}");
        assert!(top.contains(&"M4"), "top: {top:?}");
    }

    #[test]
    fn query_genes_flagged() {
        let e = engine(Balancing::None);
        let r = e.query(&["M0", "M1", "M2"]);
        for g in &r.genes {
            assert_eq!(
                g.in_query,
                ["M0", "M1", "M2"].contains(&g.gene.as_str()),
                "{}",
                g.gene
            );
        }
    }

    #[test]
    fn missing_query_genes_reported() {
        let e = engine(Balancing::None);
        let r = e.query(&["M0", "M1", "NOPE"]);
        assert_eq!(r.query_missing, vec!["NOPE".to_string()]);
        assert_eq!(r.query_found.len(), 2);
    }

    #[test]
    fn all_unknown_query_empty_result() {
        let e = engine(Balancing::None);
        let r = e.query(&["ZZZ"]);
        assert!(r.genes.is_empty());
        assert!(r.datasets.is_empty());
    }

    #[test]
    fn duplicate_query_genes_deduped() {
        let e = engine(Balancing::None);
        let r = e.query(&["M0", "m0", "M1"]);
        assert_eq!(r.query_found.len(), 2);
    }

    #[test]
    fn balancing_preserves_recovery() {
        let e = engine(Balancing::TopSingular);
        let r = e.query(&["M0", "M1", "M2"]);
        let top: Vec<&str> = r.top_new_genes(2).iter().map(|g| g.gene.as_str()).collect();
        assert!(top.contains(&"M3") && top.contains(&"M4"), "top: {top:?}");
    }

    #[test]
    fn min_weight_threshold_drops_noise() {
        let mut e = SpellEngine::new(SpellConfig {
            balancing: Balancing::None,
            min_dataset_weight: 0.5,
        });
        let cols = 8;
        let pattern: Vec<f32> = (0..cols).map(|c| c as f32).collect();
        let mut vals = Vec::new();
        for i in 0..3 {
            for &p in &pattern {
                vals.push(p + i as f32 * 0.01);
            }
        }
        let m = ExprMatrix::from_rows(3, cols, &vals).unwrap();
        e.add_matrix("coherent", &m, vec!["A".into(), "B".into(), "C".into()]);
        // weakly coherent dataset
        let wv: Vec<f32> = (0..3 * cols)
            .map(|i| ((i * 37 % 19) as f32) - 9.0)
            .collect();
        let wm = ExprMatrix::from_rows(3, cols, &wv).unwrap();
        e.add_matrix("weak", &wm, vec!["A".into(), "B".into(), "C".into()]);
        e.finalize();
        let r = e.query(&["A", "B"]);
        let weak = r.datasets.iter().find(|d| d.name == "weak").unwrap();
        assert_eq!(weak.weight, 0.0);
    }

    #[test]
    #[should_panic(expected = "finalize")]
    fn query_before_finalize_panics() {
        let e = SpellEngine::new(SpellConfig::default());
        let _ = e.query(&["A"]);
    }

    #[test]
    fn counts_and_measurements() {
        let e = engine(Balancing::None);
        assert_eq!(e.n_datasets(), 2);
        assert_eq!(e.n_genes(), 10);
        assert_eq!(e.total_measurements(), 2 * 10 * 8);
    }
}
