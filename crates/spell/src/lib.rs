//! # fv-spell — SPELL: Serial Patterns of Expression Levels Locator
//!
//! SPELL (Hibbs et al., paper reference [8]) is the search engine ForestView
//! integrates in Section 3: "take a small query of related genes from a
//! user, examine all of the available data to identify datasets where these
//! genes are most related, then within those datasets identify additional
//! genes that relate back to the query set. … The output of SPELL is both
//! an ordered list of genes and an ordered list of datasets."
//!
//! The pipeline:
//!
//! 1. [`prep`] — condition each dataset: z-score gene rows, zero-fill
//!    missing cells, unit-normalize rows, so Pearson correlation becomes a
//!    dot product of prepared vectors,
//! 2. [`balance`] — optional SVD signal balancing: rescale each dataset by
//!    its dominant singular value so one huge experiment cannot dominate
//!    the compendium,
//! 3. [`weight`] — score each dataset by the **query coherence**: the mean
//!    pairwise correlation of the query genes within that dataset,
//! 4. [`rank`] — score every gene by its weighted mean correlation to the
//!    query across datasets, normalizing by the weight mass of the datasets
//!    that actually measure the gene,
//! 5. [`engine`] — the [`engine::SpellEngine`] compendium index tying it
//!    together,
//! 6. [`eval`] — retrieval metrics (precision@k, average precision) used by
//!    the reproduction benches to verify planted-module recovery.

#![forbid(unsafe_code)]

pub mod balance;
pub mod engine;
pub mod eval;
pub mod prep;
pub mod rank;
pub mod weight;

pub use engine::{SpellConfig, SpellEngine, SpellResult};
