//! Query-coherence dataset weighting.
//!
//! SPELL's "key contribution lies in that rather than searching through a
//! collection of data by text matches, SPELL uses the information within
//! the data" (paper, Section 3): a dataset matters for a query exactly to
//! the extent the query genes co-express *in that dataset*. The weight is
//! the mean pairwise correlation among the query genes present there,
//! clamped at zero (anti-coherent datasets are ignored rather than
//! penalized, per Hibbs et al.).

use crate::prep::PreparedDataset;

/// Weight of one dataset for a query given as row indices into the dataset.
///
/// Returns 0 when fewer than two valid query rows are present.
pub fn dataset_weight(ds: &PreparedDataset, query_rows: &[usize]) -> f32 {
    let valid: Vec<usize> = query_rows
        .iter()
        .copied()
        .filter(|&r| ds.is_valid(r))
        .collect();
    if valid.len() < 2 {
        return 0.0;
    }
    let mut sum = 0.0f64;
    let mut n = 0usize;
    for i in 0..valid.len() - 1 {
        for j in (i + 1)..valid.len() {
            sum += ds.corr(valid[i], valid[j]) as f64;
            n += 1;
        }
    }
    ((sum / n as f64) as f32).max(0.0)
}

/// Weights for all datasets; `query_rows_per_dataset[d]` lists the query's
/// row indices within dataset `d` (genes absent from the dataset omitted).
pub fn all_weights(
    datasets: &[PreparedDataset],
    query_rows_per_dataset: &[Vec<usize>],
) -> Vec<f32> {
    assert_eq!(datasets.len(), query_rows_per_dataset.len());
    datasets
        .iter()
        .zip(query_rows_per_dataset)
        .map(|(ds, rows)| dataset_weight(ds, rows))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fv_expr::matrix::ExprMatrix;

    fn prep(vals: &[f32], rows: usize, cols: usize) -> PreparedDataset {
        let m = ExprMatrix::from_rows(rows, cols, vals).unwrap();
        let ids = (0..rows).map(|i| format!("G{i}")).collect();
        PreparedDataset::from_matrix("d", &m, ids)
    }

    #[test]
    fn coherent_query_high_weight() {
        // rows 0,1,2 share a pattern
        let p = prep(
            &[
                1.0, 2.0, 3.0, 4.0, //
                1.1, 2.1, 3.1, 4.1, //
                0.9, 1.9, 2.9, 3.9, //
                4.0, 1.0, 3.0, 2.0,
            ],
            4,
            4,
        );
        let w = dataset_weight(&p, &[0, 1, 2]);
        assert!(w > 0.95, "coherent weight {w}");
    }

    #[test]
    fn incoherent_query_low_weight() {
        let p = prep(
            &[
                1.0, 2.0, 3.0, 4.0, //
                4.0, 3.0, 2.0, 1.0, // anti-correlated with row 0
            ],
            2,
            4,
        );
        let w = dataset_weight(&p, &[0, 1]);
        assert_eq!(w, 0.0, "anti-coherence clamps to zero");
    }

    #[test]
    fn single_present_gene_zero_weight() {
        let p = prep(&[1.0, 2.0, 3.0, 4.0], 1, 4);
        assert_eq!(dataset_weight(&p, &[0]), 0.0);
        assert_eq!(dataset_weight(&p, &[]), 0.0);
    }

    #[test]
    fn invalid_rows_excluded() {
        // row 1 constant → invalid after prep
        let p = prep(
            &[
                1.0, 2.0, 3.0, 4.0, //
                5.0, 5.0, 5.0, 5.0, //
                1.2, 2.2, 3.2, 4.2,
            ],
            3,
            4,
        );
        let w_all = dataset_weight(&p, &[0, 1, 2]);
        let w_pair = dataset_weight(&p, &[0, 2]);
        assert!((w_all - w_pair).abs() < 1e-6);
        assert_eq!(dataset_weight(&p, &[0, 1]), 0.0); // only one valid row
    }

    #[test]
    fn all_weights_shapes() {
        let a = prep(&[1.0, 2.0, 3.0, 4.0, 1.1, 2.1, 3.1, 4.1], 2, 4);
        let b = prep(&[1.0, 2.0, 3.0, 4.0, 4.2, 3.1, 2.4, 1.3], 2, 4);
        let ws = all_weights(&[a, b], &[vec![0, 1], vec![0, 1]]);
        assert_eq!(ws.len(), 2);
        assert!(ws[0] > 0.9);
        assert_eq!(ws[1], 0.0);
    }

    #[test]
    #[should_panic(expected = "assertion")]
    fn all_weights_length_mismatch_panics() {
        let a = prep(&[1.0, 2.0, 3.0, 4.0], 1, 4);
        let _ = all_weights(&[a], &[]);
    }
}
