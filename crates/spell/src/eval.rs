//! Retrieval-quality metrics.
//!
//! The reproduction benches verify SPELL's behaviour by planting a
//! co-expression module, querying with part of it, and measuring how well
//! the rest is recovered. These are the standard ranked-retrieval metrics
//! for that protocol.

use std::collections::HashSet;

/// Fraction of the top `k` ranked names that are relevant.
/// Returns 0 for `k == 0` or an empty ranking.
pub fn precision_at_k(ranked: &[&str], relevant: &HashSet<&str>, k: usize) -> f64 {
    if k == 0 || ranked.is_empty() {
        return 0.0;
    }
    let k = k.min(ranked.len());
    let hits = ranked[..k].iter().filter(|g| relevant.contains(*g)).count();
    hits as f64 / k as f64
}

/// Fraction of all relevant items found in the top `k`.
pub fn recall_at_k(ranked: &[&str], relevant: &HashSet<&str>, k: usize) -> f64 {
    if relevant.is_empty() {
        return 0.0;
    }
    let k = k.min(ranked.len());
    let hits = ranked[..k].iter().filter(|g| relevant.contains(*g)).count();
    hits as f64 / relevant.len() as f64
}

/// Average precision: mean of precision@rank over the ranks of relevant
/// items, normalized by the number of relevant items (AP = area under the
/// precision-recall curve for a single query).
pub fn average_precision(ranked: &[&str], relevant: &HashSet<&str>) -> f64 {
    if relevant.is_empty() {
        return 0.0;
    }
    let mut hits = 0usize;
    let mut acc = 0.0f64;
    for (i, g) in ranked.iter().enumerate() {
        if relevant.contains(g) {
            hits += 1;
            acc += hits as f64 / (i + 1) as f64;
        }
    }
    acc / relevant.len() as f64
}

/// Rank (1-based) of the first relevant item, if any.
pub fn first_relevant_rank(ranked: &[&str], relevant: &HashSet<&str>) -> Option<usize> {
    ranked
        .iter()
        .position(|g| relevant.contains(g))
        .map(|i| i + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(items: &[&'static str]) -> HashSet<&'static str> {
        items.iter().copied().collect()
    }

    #[test]
    fn precision_perfect_prefix() {
        let ranked = ["a", "b", "c", "d"];
        let r = rel(&["a", "b"]);
        assert_eq!(precision_at_k(&ranked, &r, 2), 1.0);
        assert_eq!(precision_at_k(&ranked, &r, 4), 0.5);
    }

    #[test]
    fn precision_k_beyond_len_clamps() {
        let ranked = ["a"];
        let r = rel(&["a"]);
        assert_eq!(precision_at_k(&ranked, &r, 10), 1.0);
    }

    #[test]
    fn precision_edge_cases() {
        let r = rel(&["a"]);
        assert_eq!(precision_at_k(&[], &r, 5), 0.0);
        assert_eq!(precision_at_k(&["a"], &r, 0), 0.0);
    }

    #[test]
    fn recall_counts_fraction() {
        let ranked = ["a", "x", "b", "y"];
        let r = rel(&["a", "b", "c"]);
        assert!((recall_at_k(&ranked, &r, 3) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(recall_at_k(&ranked, &rel(&[]), 3), 0.0);
    }

    #[test]
    fn ap_perfect_ranking_is_one() {
        let ranked = ["a", "b", "x", "y"];
        let r = rel(&["a", "b"]);
        assert!((average_precision(&ranked, &r) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ap_known_value() {
        // relevant at ranks 1 and 3: AP = (1/1 + 2/3)/2 = 5/6
        let ranked = ["a", "x", "b"];
        let r = rel(&["a", "b"]);
        assert!((average_precision(&ranked, &r) - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn ap_missing_items_penalized() {
        // only one of two relevant items ever retrieved
        let ranked = ["a", "x", "y"];
        let r = rel(&["a", "b"]);
        assert!((average_precision(&ranked, &r) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn first_relevant_rank_found() {
        let ranked = ["x", "y", "a"];
        assert_eq!(first_relevant_rank(&ranked, &rel(&["a"])), Some(3));
        assert_eq!(first_relevant_rank(&ranked, &rel(&["z"])), None);
    }
}
