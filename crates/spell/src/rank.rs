//! Weighted gene ranking.
//!
//! A gene's score is its weighted mean correlation to the query across the
//! compendium: `score(g) = Σ_d w_d · corr_d(g, Q) / Σ_{d ∋ g} w_d`, where
//! `corr_d(g, Q)` is the mean correlation of `g` to the query genes present
//! in dataset `d`, and the denominator only sums the weight of datasets
//! that actually measure `g` — so a gene measured in few (but relevant)
//! datasets is not penalized for absence elsewhere. Per-dataset scoring is
//! rayon-parallel across genes.

use crate::prep::PreparedDataset;
use rayon::prelude::*;

/// Per-dataset correlation of every gene row to the query rows: mean dot
/// product against the query genes' prepared vectors. Invalid rows score
/// `None`. Query rows themselves are scored too (callers typically exclude
/// them from display).
pub fn dataset_gene_scores(ds: &PreparedDataset, query_rows: &[usize]) -> Vec<Option<f32>> {
    let q: Vec<usize> = query_rows
        .iter()
        .copied()
        .filter(|&r| ds.is_valid(r))
        .collect();
    if q.is_empty() {
        return vec![None; ds.n_genes()];
    }
    // Sum the query unit vectors once; mean corr = dot(g, centroid_sum)/|Q|.
    let n_cols = ds.n_cols();
    let mut centroid = vec![0.0f32; n_cols];
    for &r in &q {
        for (c, v) in ds.row(r).iter().enumerate() {
            centroid[c] += v;
        }
    }
    let inv_q = 1.0 / q.len() as f32;
    (0..ds.n_genes())
        .into_par_iter()
        .map(|g| {
            if !ds.is_valid(g) {
                return None;
            }
            let row = ds.row(g);
            let mut acc = 0.0f32;
            for c in 0..n_cols {
                acc += row[c] * centroid[c];
            }
            Some(acc * inv_q)
        })
        .collect()
}

/// A ranked gene.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedGene {
    /// Systematic gene id.
    pub gene: String,
    /// Weighted mean correlation score.
    pub score: f32,
    /// Number of datasets that measured the gene with positive weight.
    pub n_datasets: usize,
    /// Whether the gene was part of the query.
    pub in_query: bool,
}

/// Combine per-dataset scores into the final ranking.
///
/// `per_dataset[d][g_universe]` must give dataset `d`'s score for universe
/// gene index `g_universe` (`None` when unmeasured/invalid); `weights[d]`
/// the dataset weights; `gene_names` the universe names; `query_set[g]`
/// marks query membership. Genes never measured in any positively-weighted
/// dataset are dropped. Sorted descending by score, ties by name.
pub fn combine_rankings(
    per_dataset: &[Vec<Option<f32>>],
    weights: &[f32],
    gene_names: &[String],
    query_set: &[bool],
) -> Vec<RankedGene> {
    assert_eq!(per_dataset.len(), weights.len());
    let n_genes = gene_names.len();
    let mut out: Vec<RankedGene> = (0..n_genes)
        .into_par_iter()
        .filter_map(|g| {
            let mut num = 0.0f64;
            let mut denom = 0.0f64;
            let mut n_ds = 0usize;
            for (d, scores) in per_dataset.iter().enumerate() {
                let w = weights[d];
                if w <= 0.0 {
                    continue;
                }
                if let Some(s) = scores[g] {
                    num += w as f64 * s as f64;
                    denom += w as f64;
                    n_ds += 1;
                }
            }
            if denom <= 0.0 {
                return None;
            }
            Some(RankedGene {
                gene: gene_names[g].clone(),
                score: (num / denom) as f32,
                n_datasets: n_ds,
                in_query: query_set[g],
            })
        })
        .collect();
    out.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.gene.cmp(&b.gene))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fv_expr::matrix::ExprMatrix;

    fn prep(vals: &[f32], rows: usize, cols: usize) -> PreparedDataset {
        let m = ExprMatrix::from_rows(rows, cols, vals).unwrap();
        let ids = (0..rows).map(|i| format!("G{i}")).collect();
        PreparedDataset::from_matrix("d", &m, ids)
    }

    #[test]
    fn correlated_gene_scores_high() {
        // rows 0,1 query; row 2 matches them; row 3 anti-correlated.
        let p = prep(
            &[
                1.0, 2.0, 3.0, 4.0, //
                1.1, 2.2, 3.1, 4.2, //
                0.9, 2.1, 2.9, 4.1, //
                4.0, 3.0, 2.0, 1.0,
            ],
            4,
            4,
        );
        let s = dataset_gene_scores(&p, &[0, 1]);
        assert!(s[2].unwrap() > 0.9);
        assert!(s[3].unwrap() < -0.9);
        assert!(s[0].unwrap() > 0.9); // query genes score high on themselves
    }

    #[test]
    fn empty_query_all_none() {
        let p = prep(&[1.0, 2.0, 3.0, 4.0], 1, 4);
        let s = dataset_gene_scores(&p, &[]);
        assert_eq!(s, vec![None]);
    }

    #[test]
    fn invalid_gene_scores_none() {
        let p = prep(
            &[
                1.0, 2.0, 3.0, 4.0, //
                5.0, 5.0, 5.0, 5.0, // constant → invalid
                1.2, 2.1, 3.3, 4.0,
            ],
            3,
            4,
        );
        let s = dataset_gene_scores(&p, &[0, 2]);
        assert!(s[1].is_none());
    }

    #[test]
    fn combine_weighted_mean() {
        let per = vec![vec![Some(1.0), Some(0.0)], vec![Some(0.0), Some(1.0)]];
        let names = vec!["A".to_string(), "B".to_string()];
        let ranked = combine_rankings(&per, &[3.0, 1.0], &names, &[false, false]);
        // A: (3*1 + 1*0)/4 = 0.75 ; B: (3*0 + 1*1)/4 = 0.25
        assert_eq!(ranked[0].gene, "A");
        assert!((ranked[0].score - 0.75).abs() < 1e-6);
        assert!((ranked[1].score - 0.25).abs() < 1e-6);
    }

    #[test]
    fn combine_normalizes_by_coverage() {
        // gene B only measured in dataset 1 but scores 1.0 there — it should
        // not be diluted by dataset 0's weight.
        let per = vec![vec![Some(0.5), None], vec![Some(0.5), Some(1.0)]];
        let names = vec!["A".to_string(), "B".to_string()];
        let ranked = combine_rankings(&per, &[1.0, 1.0], &names, &[false, false]);
        let b = ranked.iter().find(|r| r.gene == "B").unwrap();
        assert!((b.score - 1.0).abs() < 1e-6);
        assert_eq!(b.n_datasets, 1);
    }

    #[test]
    fn combine_drops_uncovered_genes() {
        let per = vec![vec![None, Some(0.3)]];
        let names = vec!["A".to_string(), "B".to_string()];
        let ranked = combine_rankings(&per, &[1.0], &names, &[false, false]);
        assert_eq!(ranked.len(), 1);
        assert_eq!(ranked[0].gene, "B");
    }

    #[test]
    fn combine_ignores_zero_weight_datasets() {
        let per = vec![vec![Some(-1.0)], vec![Some(0.8)]];
        let names = vec!["A".to_string()];
        let ranked = combine_rankings(&per, &[0.0, 1.0], &names, &[false]);
        assert!((ranked[0].score - 0.8).abs() < 1e-6);
        assert_eq!(ranked[0].n_datasets, 1);
    }

    #[test]
    fn combine_marks_query_genes() {
        let per = vec![vec![Some(0.9), Some(0.2)]];
        let names = vec!["Q".to_string(), "X".to_string()];
        let ranked = combine_rankings(&per, &[1.0], &names, &[true, false]);
        assert!(ranked[0].in_query);
        assert!(!ranked[1].in_query);
    }

    #[test]
    fn sorted_descending_with_name_ties() {
        let per = vec![vec![Some(0.5), Some(0.5), Some(0.9)]];
        let names = vec!["B".to_string(), "A".to_string(), "C".to_string()];
        let ranked = combine_rankings(&per, &[1.0], &names, &[false, false, false]);
        assert_eq!(ranked[0].gene, "C");
        assert_eq!(ranked[1].gene, "A"); // tie broken alphabetically
        assert_eq!(ranked[2].gene, "B");
    }
}
