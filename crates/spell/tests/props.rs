//! Property-based tests of SPELL's preparation and ranking layers.

use fv_expr::matrix::ExprMatrix;
use fv_spell::prep::PreparedDataset;
use fv_spell::rank::{combine_rankings, dataset_gene_scores};
use fv_spell::weight::dataset_weight;
use proptest::prelude::*;

prop_compose! {
    fn arb_prepared()(
        n_rows in 2usize..16,
        n_cols in 4usize..12,
        seed in any::<u64>(),
    ) -> PreparedDataset {
        let mut vals = Vec::with_capacity(n_rows * n_cols);
        let mut s = seed | 1;
        for _ in 0..n_rows * n_cols {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            vals.push(((s % 2001) as f32 - 1000.0) / 150.0);
        }
        let m = ExprMatrix::from_rows(n_rows, n_cols, &vals).unwrap();
        let ids = (0..n_rows).map(|i| format!("G{i}")).collect();
        PreparedDataset::from_matrix("prop", &m, ids)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prepared_rows_unit_or_zero(p in arb_prepared()) {
        for r in 0..p.n_genes() {
            let n2: f32 = p.row(r).iter().map(|v| v * v).sum();
            if p.is_valid(r) {
                prop_assert!((n2 - 1.0).abs() < 1e-4, "row {r} norm² {n2}");
            } else {
                prop_assert_eq!(n2, 0.0);
            }
        }
    }

    #[test]
    fn corr_bounded_and_symmetric(p in arb_prepared(), a in any::<usize>(), b in any::<usize>()) {
        let a = a % p.n_genes();
        let b = b % p.n_genes();
        let c1 = p.corr(a, b);
        let c2 = p.corr(b, a);
        prop_assert!((c1 - c2).abs() < 1e-6);
        prop_assert!((-1.0 - 1e-4..=1.0 + 1e-4).contains(&c1), "corr {c1} out of range");
        if p.is_valid(a) {
            prop_assert!((p.corr(a, a) - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn weight_nonnegative_and_bounded(p in arb_prepared(), picks in any::<u64>()) {
        let rows: Vec<usize> = (0..p.n_genes()).filter(|r| (picks >> (r % 64)) & 1 == 1).collect();
        let w = dataset_weight(&p, &rows);
        prop_assert!(w >= 0.0);
        prop_assert!(w <= 1.0 + 1e-4);
    }

    #[test]
    fn scores_bounded(p in arb_prepared(), picks in any::<u64>()) {
        let rows: Vec<usize> = (0..p.n_genes()).filter(|r| (picks >> (r % 64)) & 1 == 1).collect();
        let scores = dataset_gene_scores(&p, &rows);
        prop_assert_eq!(scores.len(), p.n_genes());
        for s in scores.into_iter().flatten() {
            prop_assert!((-1.0 - 1e-3..=1.0 + 1e-3).contains(&s), "score {s} out of range");
        }
    }

    #[test]
    fn combined_ranking_sorted_and_complete(
        scores in prop::collection::vec(prop::collection::vec(prop::option::of(-1.0f32..1.0), 8), 1..5),
        weights in prop::collection::vec(0.0f32..2.0, 1..5),
    ) {
        let d = scores.len().min(weights.len());
        let scores = &scores[..d];
        let weights = &weights[..d];
        let names: Vec<String> = (0..8).map(|i| format!("G{i}")).collect();
        let query = vec![false; 8];
        let ranked = combine_rankings(scores, weights, &names, &query);
        for w in ranked.windows(2) {
            prop_assert!(w[0].score >= w[1].score - 1e-6);
        }
        // every ranked gene was measured in ≥1 positively-weighted dataset
        for g in &ranked {
            prop_assert!(g.n_datasets >= 1);
        }
        // no duplicates
        let mut names_out: Vec<&str> = ranked.iter().map(|g| g.gene.as_str()).collect();
        names_out.sort_unstable();
        names_out.dedup();
        prop_assert_eq!(names_out.len(), ranked.len());
    }

    #[test]
    fn weighted_scores_are_convex_combinations(
        s1 in -1.0f32..1.0, s2 in -1.0f32..1.0,
        w1 in 0.01f32..2.0, w2 in 0.01f32..2.0,
    ) {
        let per = vec![vec![Some(s1)], vec![Some(s2)]];
        let names = vec!["A".to_string()];
        let ranked = combine_rankings(&per, &[w1, w2], &names, &[false]);
        let expect = (w1 * s1 + w2 * s2) / (w1 + w2);
        prop_assert!((ranked[0].score - expect).abs() < 1e-5);
        // bounded by inputs (convexity)
        let lo = s1.min(s2) - 1e-5;
        let hi = s1.max(s2) + 1e-5;
        prop_assert!(ranked[0].score >= lo && ranked[0].score <= hi);
    }
}
