//! RGB8 pixel surface.
//!
//! Pixels are stored as packed RGB bytes in one contiguous row-major `Vec`.
//! The wall simulator renders many framebuffers (one per tile) in parallel
//! with rayon and composites them with [`Framebuffer::blit`]; the
//! [`Framebuffer::par_rows_mut`] accessor lets painters parallelize across
//! scanlines safely.

use crate::color::Rgb;
use rayon::prelude::*;

/// A width × height RGB8 image surface.
#[derive(Debug, Clone, PartialEq)]
pub struct Framebuffer {
    width: usize,
    height: usize,
    /// Packed RGB, row-major: pixel (x, y) at `(y*width + x) * 3`.
    data: Vec<u8>,
}

impl Framebuffer {
    /// Black surface of the given size.
    pub fn new(width: usize, height: usize) -> Self {
        Framebuffer {
            width,
            height,
            data: vec![0; width * height * 3],
        }
    }

    /// Surface filled with a color.
    pub fn filled(width: usize, height: usize, color: Rgb) -> Self {
        let mut fb = Framebuffer::new(width, height);
        fb.clear(color);
        fb
    }

    /// Width in pixels.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in pixels.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total pixel count.
    pub fn n_pixels(&self) -> usize {
        self.width * self.height
    }

    /// Raw packed-RGB bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Fill with a color.
    pub fn clear(&mut self, color: Rgb) {
        for px in self.data.chunks_exact_mut(3) {
            px[0] = color.r;
            px[1] = color.g;
            px[2] = color.b;
        }
    }

    /// Write one pixel; out-of-bounds writes are silently clipped.
    #[inline]
    pub fn put(&mut self, x: i64, y: i64, color: Rgb) {
        if x < 0 || y < 0 || x as usize >= self.width || y as usize >= self.height {
            return;
        }
        let i = (y as usize * self.width + x as usize) * 3;
        self.data[i] = color.r;
        self.data[i + 1] = color.g;
        self.data[i + 2] = color.b;
    }

    /// Read one pixel; `None` out of bounds.
    #[inline]
    pub fn get(&self, x: i64, y: i64) -> Option<Rgb> {
        if x < 0 || y < 0 || x as usize >= self.width || y as usize >= self.height {
            return None;
        }
        let i = (y as usize * self.width + x as usize) * 3;
        Some(Rgb::new(self.data[i], self.data[i + 1], self.data[i + 2]))
    }

    /// Fill the axis-aligned rectangle `[x, x+w) × [y, y+h)`, clipped to the
    /// surface.
    pub fn fill_rect(&mut self, x: i64, y: i64, w: usize, h: usize, color: Rgb) {
        let x0 = x.max(0) as usize;
        let y0 = y.max(0) as usize;
        let x1 = ((x + w as i64).max(0) as usize).min(self.width);
        let y1 = ((y + h as i64).max(0) as usize).min(self.height);
        if x0 >= x1 || y0 >= y1 {
            return;
        }
        for yy in y0..y1 {
            let row = (yy * self.width + x0) * 3;
            for px in self.data[row..row + (x1 - x0) * 3].chunks_exact_mut(3) {
                px[0] = color.r;
                px[1] = color.g;
                px[2] = color.b;
            }
        }
    }

    /// Copy `src` onto this surface with its top-left corner at `(x, y)`,
    /// clipping as needed. This is the wall compositor's primitive.
    pub fn blit(&mut self, src: &Framebuffer, x: i64, y: i64) {
        for sy in 0..src.height {
            let dy = y + sy as i64;
            if dy < 0 || dy as usize >= self.height {
                continue;
            }
            // Clip horizontal span.
            let dst_x0 = x.max(0);
            let src_x0 = (dst_x0 - x) as usize;
            let dst_x1 = (x + src.width as i64).min(self.width as i64);
            if dst_x0 >= dst_x1 || src_x0 >= src.width {
                continue;
            }
            let span = (dst_x1 - dst_x0) as usize;
            let src_i = (sy * src.width + src_x0) * 3;
            let dst_i = (dy as usize * self.width + dst_x0 as usize) * 3;
            self.data[dst_i..dst_i + span * 3].copy_from_slice(&src.data[src_i..src_i + span * 3]);
        }
    }

    /// Extract the rectangle `[x, x+w) × [y, y+h)` as a new framebuffer.
    /// The rectangle must lie fully inside the surface.
    pub fn crop(&self, x: usize, y: usize, w: usize, h: usize) -> Framebuffer {
        assert!(
            x + w <= self.width && y + h <= self.height,
            "crop out of bounds"
        );
        let mut out = Framebuffer::new(w, h);
        for yy in 0..h {
            let src_i = ((y + yy) * self.width + x) * 3;
            let dst_i = yy * w * 3;
            out.data[dst_i..dst_i + w * 3].copy_from_slice(&self.data[src_i..src_i + w * 3]);
        }
        out
    }

    /// Append the packed-RGB bytes of the rectangle `[x, x+w) × [y, y+h)`
    /// to `out`, row by row. The rectangle must lie fully inside the
    /// surface. This is the tile-streaming encoder's extraction primitive:
    /// unlike [`Framebuffer::crop`] it allocates nothing per call.
    pub fn copy_rect_into(&self, x: usize, y: usize, w: usize, h: usize, out: &mut Vec<u8>) {
        assert!(
            x + w <= self.width && y + h <= self.height,
            "copy_rect out of bounds"
        );
        out.reserve(w * h * 3);
        for yy in y..y + h {
            let i = (yy * self.width + x) * 3;
            out.extend_from_slice(&self.data[i..i + w * 3]);
        }
    }

    /// Overwrite the rectangle `[x, x+w) × [y, y+h)` from packed-RGB bytes
    /// laid out row-major (`w * h * 3` bytes) — the inverse of
    /// [`Framebuffer::copy_rect_into`], used by stream reassembly.
    pub fn write_rect(&mut self, x: usize, y: usize, w: usize, h: usize, bytes: &[u8]) {
        assert!(
            x + w <= self.width && y + h <= self.height,
            "write_rect out of bounds"
        );
        assert_eq!(bytes.len(), w * h * 3, "write_rect payload size mismatch");
        for yy in 0..h {
            let i = ((y + yy) * self.width + x) * 3;
            self.data[i..i + w * 3].copy_from_slice(&bytes[yy * w * 3..(yy + 1) * w * 3]);
        }
    }

    /// Parallel iterator over `(row_index, row_bytes)` for scanline-parallel
    /// painting.
    pub fn par_rows_mut(&mut self) -> impl IndexedParallelIterator<Item = (usize, &mut [u8])> {
        self.data.par_chunks_exact_mut(self.width * 3).enumerate()
    }

    /// Write a pixel into a raw row slice obtained from
    /// [`Framebuffer::par_rows_mut`].
    #[inline]
    pub fn put_in_row(row: &mut [u8], x: usize, color: Rgb) {
        let i = x * 3;
        row[i] = color.r;
        row[i + 1] = color.g;
        row[i + 2] = color.b;
    }

    /// Count pixels equal to `color` (test/diagnostic helper).
    pub fn count_pixels(&self, color: Rgb) -> usize {
        self.data
            .chunks_exact(3)
            .filter(|px| px[0] == color.r && px[1] == color.g && px[2] == color.b)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_black() {
        let fb = Framebuffer::new(4, 3);
        assert_eq!(fb.width(), 4);
        assert_eq!(fb.height(), 3);
        assert_eq!(fb.get(0, 0), Some(Rgb::BLACK));
        assert_eq!(fb.count_pixels(Rgb::BLACK), 12);
    }

    #[test]
    fn put_get_roundtrip() {
        let mut fb = Framebuffer::new(4, 4);
        fb.put(2, 1, Rgb::RED);
        assert_eq!(fb.get(2, 1), Some(Rgb::RED));
        assert_eq!(fb.get(1, 2), Some(Rgb::BLACK));
    }

    #[test]
    fn out_of_bounds_clipped() {
        let mut fb = Framebuffer::new(2, 2);
        fb.put(-1, 0, Rgb::RED);
        fb.put(0, 5, Rgb::RED);
        assert_eq!(fb.count_pixels(Rgb::RED), 0);
        assert_eq!(fb.get(-1, 0), None);
        assert_eq!(fb.get(0, 5), None);
    }

    #[test]
    fn clear_fills() {
        let mut fb = Framebuffer::new(3, 3);
        fb.clear(Rgb::BLUE);
        assert_eq!(fb.count_pixels(Rgb::BLUE), 9);
    }

    #[test]
    fn fill_rect_exact() {
        let mut fb = Framebuffer::new(10, 10);
        fb.fill_rect(2, 3, 4, 2, Rgb::GREEN);
        assert_eq!(fb.count_pixels(Rgb::GREEN), 8);
        assert_eq!(fb.get(2, 3), Some(Rgb::GREEN));
        assert_eq!(fb.get(5, 4), Some(Rgb::GREEN));
        assert_eq!(fb.get(6, 3), Some(Rgb::BLACK));
        assert_eq!(fb.get(2, 5), Some(Rgb::BLACK));
    }

    #[test]
    fn fill_rect_clips_negative_origin() {
        let mut fb = Framebuffer::new(4, 4);
        fb.fill_rect(-2, -2, 4, 4, Rgb::WHITE);
        assert_eq!(fb.count_pixels(Rgb::WHITE), 4); // only the overlap
        assert_eq!(fb.get(0, 0), Some(Rgb::WHITE));
        assert_eq!(fb.get(1, 1), Some(Rgb::WHITE));
        assert_eq!(fb.get(2, 2), Some(Rgb::BLACK));
    }

    #[test]
    fn fill_rect_fully_outside_is_noop() {
        let mut fb = Framebuffer::new(4, 4);
        fb.fill_rect(10, 10, 3, 3, Rgb::WHITE);
        assert_eq!(fb.count_pixels(Rgb::WHITE), 0);
    }

    #[test]
    fn blit_places_tile() {
        let mut wall = Framebuffer::new(6, 4);
        let tile = Framebuffer::filled(2, 2, Rgb::RED);
        wall.blit(&tile, 3, 1);
        assert_eq!(wall.count_pixels(Rgb::RED), 4);
        assert_eq!(wall.get(3, 1), Some(Rgb::RED));
        assert_eq!(wall.get(4, 2), Some(Rgb::RED));
        assert_eq!(wall.get(2, 1), Some(Rgb::BLACK));
    }

    #[test]
    fn blit_clips_edges() {
        let mut wall = Framebuffer::new(4, 4);
        let tile = Framebuffer::filled(3, 3, Rgb::BLUE);
        wall.blit(&tile, 2, 2); // bottom-right overhang
        assert_eq!(wall.count_pixels(Rgb::BLUE), 4);
        wall.blit(&tile, -2, -2); // top-left overhang
        assert_eq!(wall.get(0, 0), Some(Rgb::BLUE));
    }

    #[test]
    fn crop_extracts_region() {
        let mut fb = Framebuffer::new(5, 5);
        fb.fill_rect(1, 1, 2, 2, Rgb::YELLOW);
        let c = fb.crop(1, 1, 2, 2);
        assert_eq!(c.width(), 2);
        assert_eq!(c.count_pixels(Rgb::YELLOW), 4);
    }

    #[test]
    #[should_panic(expected = "crop out of bounds")]
    fn crop_oob_panics() {
        let fb = Framebuffer::new(3, 3);
        let _ = fb.crop(2, 2, 2, 2);
    }

    #[test]
    fn blit_then_crop_roundtrip() {
        let tile = Framebuffer::filled(3, 2, Rgb::new(9, 8, 7));
        let mut wall = Framebuffer::new(8, 8);
        wall.blit(&tile, 4, 5);
        assert_eq!(wall.crop(4, 5, 3, 2), tile);
    }

    #[test]
    fn copy_rect_write_rect_roundtrip() {
        let mut fb = Framebuffer::new(6, 5);
        fb.fill_rect(1, 2, 3, 2, Rgb::RED);
        let mut bytes = Vec::new();
        fb.copy_rect_into(1, 2, 3, 2, &mut bytes);
        assert_eq!(bytes.len(), 3 * 2 * 3);
        let mut other = Framebuffer::new(6, 5);
        other.write_rect(1, 2, 3, 2, &bytes);
        assert_eq!(other, fb);
    }

    #[test]
    fn copy_rect_matches_crop() {
        let mut fb = Framebuffer::new(7, 7);
        fb.fill_rect(0, 0, 7, 7, Rgb::new(3, 1, 4));
        fb.fill_rect(2, 2, 2, 2, Rgb::new(1, 5, 9));
        let mut bytes = Vec::new();
        fb.copy_rect_into(1, 1, 4, 3, &mut bytes);
        assert_eq!(bytes, fb.crop(1, 1, 4, 3).bytes());
    }

    #[test]
    #[should_panic(expected = "copy_rect out of bounds")]
    fn copy_rect_oob_panics() {
        let fb = Framebuffer::new(3, 3);
        fb.copy_rect_into(2, 2, 2, 2, &mut Vec::new());
    }

    #[test]
    #[should_panic(expected = "payload size mismatch")]
    fn write_rect_bad_payload_panics() {
        let mut fb = Framebuffer::new(3, 3);
        fb.write_rect(0, 0, 2, 2, &[0u8; 5]);
    }

    #[test]
    fn par_rows_paint_gradient() {
        let mut fb = Framebuffer::new(16, 8);
        fb.par_rows_mut().for_each(|(y, row)| {
            for x in 0..16 {
                Framebuffer::put_in_row(row, x, Rgb::new(y as u8, 0, 0));
            }
        });
        for y in 0..8 {
            assert_eq!(fb.get(0, y as i64), Some(Rgb::new(y as u8, 0, 0)));
        }
    }
}
