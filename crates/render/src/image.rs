//! Image encoding: binary PPM (P6) and uncompressed 24-bit BMP writers,
//! plus a PPM decoder used by tests and examples to verify artifacts.

use crate::color::Rgb;
use crate::framebuffer::Framebuffer;
use std::fmt;
use std::io::{self, Write};
use std::path::Path;

/// Errors from image decoding.
#[derive(Debug)]
pub enum ImageError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The input is not a valid P6 PPM.
    BadFormat(String),
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::Io(e) => write!(f, "i/o error: {e}"),
            ImageError::BadFormat(m) => write!(f, "bad image format: {m}"),
        }
    }
}

impl std::error::Error for ImageError {}

impl From<io::Error> for ImageError {
    fn from(e: io::Error) -> Self {
        ImageError::Io(e)
    }
}

/// Encode as binary PPM (P6).
pub fn encode_ppm(fb: &Framebuffer) -> Vec<u8> {
    let header = format!("P6\n{} {}\n255\n", fb.width(), fb.height());
    let mut out = Vec::with_capacity(header.len() + fb.bytes().len());
    out.extend_from_slice(header.as_bytes());
    out.extend_from_slice(fb.bytes());
    out
}

/// Write a PPM file.
pub fn write_ppm(fb: &Framebuffer, path: impl AsRef<Path>) -> io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(&encode_ppm(fb))
}

/// Decode a binary PPM (P6) produced by [`encode_ppm`].
pub fn decode_ppm(bytes: &[u8]) -> Result<Framebuffer, ImageError> {
    // Parse "P6\n<w> <h>\n255\n" allowing arbitrary whitespace and comments.
    let mut pos = 0usize;
    let mut token = |bytes: &[u8]| -> Result<String, ImageError> {
        // skip whitespace and comments
        loop {
            while pos < bytes.len() && bytes[pos].is_ascii_whitespace() {
                pos += 1;
            }
            if pos < bytes.len() && bytes[pos] == b'#' {
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
                continue;
            }
            break;
        }
        let start = pos;
        while pos < bytes.len() && !bytes[pos].is_ascii_whitespace() {
            pos += 1;
        }
        if start == pos {
            return Err(ImageError::BadFormat("unexpected end of header".into()));
        }
        Ok(String::from_utf8_lossy(&bytes[start..pos]).into_owned())
    };

    let magic = token(bytes)?;
    if magic != "P6" {
        return Err(ImageError::BadFormat(format!("magic {magic:?}, want P6")));
    }
    let w: usize = token(bytes)?
        .parse()
        .map_err(|_| ImageError::BadFormat("bad width".into()))?;
    let h: usize = token(bytes)?
        .parse()
        .map_err(|_| ImageError::BadFormat("bad height".into()))?;
    let maxval: usize = token(bytes)?
        .parse()
        .map_err(|_| ImageError::BadFormat("bad maxval".into()))?;
    if maxval != 255 {
        return Err(ImageError::BadFormat(format!("maxval {maxval}, want 255")));
    }
    // Exactly one whitespace byte separates header from pixel data.
    pos += 1;
    let need = w * h * 3;
    if bytes.len() < pos + need {
        return Err(ImageError::BadFormat(format!(
            "pixel data truncated: need {need}, have {}",
            bytes.len().saturating_sub(pos)
        )));
    }
    let mut fb = Framebuffer::new(w, h);
    for y in 0..h {
        for x in 0..w {
            let i = pos + (y * w + x) * 3;
            fb.put(
                x as i64,
                y as i64,
                Rgb::new(bytes[i], bytes[i + 1], bytes[i + 2]),
            );
        }
    }
    Ok(fb)
}

/// Read a PPM file.
pub fn read_ppm(path: impl AsRef<Path>) -> Result<Framebuffer, ImageError> {
    let bytes = std::fs::read(path)?;
    decode_ppm(&bytes)
}

/// Encode as an uncompressed 24-bit bottom-up BMP.
pub fn encode_bmp(fb: &Framebuffer) -> Vec<u8> {
    let w = fb.width();
    let h = fb.height();
    let row_bytes = w * 3;
    let pad = (4 - row_bytes % 4) % 4;
    let pixel_bytes = (row_bytes + pad) * h;
    let file_size = 54 + pixel_bytes;

    let mut out = Vec::with_capacity(file_size);
    // BITMAPFILEHEADER
    out.extend_from_slice(b"BM");
    out.extend_from_slice(&(file_size as u32).to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes()); // reserved
    out.extend_from_slice(&54u32.to_le_bytes()); // pixel offset
                                                 // BITMAPINFOHEADER
    out.extend_from_slice(&40u32.to_le_bytes());
    out.extend_from_slice(&(w as i32).to_le_bytes());
    out.extend_from_slice(&(h as i32).to_le_bytes());
    out.extend_from_slice(&1u16.to_le_bytes()); // planes
    out.extend_from_slice(&24u16.to_le_bytes()); // bpp
    out.extend_from_slice(&0u32.to_le_bytes()); // BI_RGB
    out.extend_from_slice(&(pixel_bytes as u32).to_le_bytes());
    out.extend_from_slice(&2835u32.to_le_bytes()); // 72 dpi
    out.extend_from_slice(&2835u32.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());
    // Pixel rows, bottom-up, BGR, padded to 4 bytes.
    let data = fb.bytes();
    for y in (0..h).rev() {
        for x in 0..w {
            let i = (y * w + x) * 3;
            out.push(data[i + 2]); // B
            out.push(data[i + 1]); // G
            out.push(data[i]); // R
        }
        out.extend(std::iter::repeat_n(0u8, pad));
    }
    out
}

/// Write a BMP file.
pub fn write_bmp(fb: &Framebuffer, path: impl AsRef<Path>) -> io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(&encode_bmp(fb))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Framebuffer {
        let mut fb = Framebuffer::new(3, 2);
        fb.put(0, 0, Rgb::RED);
        fb.put(1, 0, Rgb::GREEN);
        fb.put(2, 0, Rgb::BLUE);
        fb.put(0, 1, Rgb::WHITE);
        fb.put(2, 1, Rgb::new(1, 2, 3));
        fb
    }

    #[test]
    fn ppm_roundtrip() {
        let fb = sample();
        let bytes = encode_ppm(&fb);
        let back = decode_ppm(&bytes).unwrap();
        assert_eq!(back, fb);
    }

    #[test]
    fn ppm_header_shape() {
        let fb = Framebuffer::new(7, 5);
        let bytes = encode_ppm(&fb);
        assert!(bytes.starts_with(b"P6\n7 5\n255\n"));
        assert_eq!(bytes.len(), 11 + 7 * 5 * 3);
    }

    #[test]
    fn ppm_decode_with_comment() {
        let mut input = b"P6\n# a comment\n2 1\n255\n".to_vec();
        input.extend_from_slice(&[255, 0, 0, 0, 255, 0]);
        let fb = decode_ppm(&input).unwrap();
        assert_eq!(fb.get(0, 0), Some(Rgb::RED));
        assert_eq!(fb.get(1, 0), Some(Rgb::GREEN));
    }

    #[test]
    fn ppm_decode_rejects_bad_magic() {
        assert!(matches!(
            decode_ppm(b"P3\n1 1\n255\n   "),
            Err(ImageError::BadFormat(_))
        ));
    }

    #[test]
    fn ppm_decode_rejects_truncation() {
        let input = b"P6\n4 4\n255\nxx".to_vec();
        assert!(matches!(decode_ppm(&input), Err(ImageError::BadFormat(_))));
    }

    #[test]
    fn ppm_file_roundtrip() {
        let dir = std::env::temp_dir().join("fv_render_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.ppm");
        let fb = sample();
        write_ppm(&fb, &path).unwrap();
        let back = read_ppm(&path).unwrap();
        assert_eq!(back, fb);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bmp_header_and_size() {
        let fb = Framebuffer::new(3, 2); // row 9 bytes → pad 3
        let bytes = encode_bmp(&fb);
        assert_eq!(&bytes[0..2], b"BM");
        let expect = 54 + (9 + 3) * 2;
        assert_eq!(bytes.len(), expect);
        let size = u32::from_le_bytes([bytes[2], bytes[3], bytes[4], bytes[5]]);
        assert_eq!(size as usize, expect);
    }

    #[test]
    fn bmp_pixel_order_bottom_up_bgr() {
        let mut fb = Framebuffer::new(1, 2);
        fb.put(0, 0, Rgb::new(10, 20, 30)); // top row
        fb.put(0, 1, Rgb::new(40, 50, 60)); // bottom row
        let bytes = encode_bmp(&fb);
        // first stored row is the bottom image row, BGR order
        assert_eq!(&bytes[54..57], &[60, 50, 40]);
    }

    #[test]
    fn bmp_no_padding_when_aligned() {
        let fb = Framebuffer::new(4, 1); // 12 bytes, already aligned
        let bytes = encode_bmp(&fb);
        assert_eq!(bytes.len(), 54 + 12);
    }
}
