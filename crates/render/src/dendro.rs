//! Dendrogram (cluster tree) painter.
//!
//! ForestView panes show "the gene and array hierarchies ... along with
//! annotation information" (paper, Section 2). This module draws the
//! bracket-style dendrograms TreeView users expect, either horizontally
//! (gene tree beside the heatmap rows) or vertically (array tree above the
//! heatmap columns).
//!
//! The painter is decoupled from the clustering crate: it accepts a plain
//! merge list (`n-1` merges over `n` leaves, each merging two prior nodes at
//! a height), which `fv-cluster`'s tree type converts into.

use crate::color::Rgb;
use crate::draw;
use crate::framebuffer::Framebuffer;
use crate::heatmap::Region;

/// A node reference inside a merge list: either an original leaf or the
/// result of an earlier merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DendroChild {
    /// Original observation `i` (0-based).
    Leaf(usize),
    /// Result of merge `i` (0-based into the merge list).
    Internal(usize),
}

/// One agglomerative merge at a given height.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DendroMerge {
    /// First child.
    pub left: DendroChild,
    /// Second child.
    pub right: DendroChild,
    /// Merge height (≥ 0; typically a distance).
    pub height: f32,
}

/// Which side of the heatmap the tree grows from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orientation {
    /// Leaves at the region's right edge, root at its left — the gene tree.
    Horizontal,
    /// Leaves at the region's bottom edge, root at its top — the array tree.
    Vertical,
}

/// Draw a dendrogram into `region`.
///
/// `leaf_pos[i]` gives the display slot (0-based) of leaf `i` along the
/// leaf axis; slots are assumed evenly spaced (matching the zoom painter's
/// cell layout for the same count).
pub fn paint_dendrogram(
    fb: &mut Framebuffer,
    region: Region,
    merges: &[DendroMerge],
    leaf_pos: &[usize],
    orientation: Orientation,
    color: Rgb,
) {
    paint_dendrogram_at(
        fb,
        region.x as i64,
        region.y as i64,
        region.w,
        region.h,
        merges,
        leaf_pos,
        orientation,
        color,
    );
}

/// [`paint_dendrogram`] with a signed origin (clipped by the line
/// primitives) — used by the tiled wall renderer.
#[allow(clippy::too_many_arguments)]
pub fn paint_dendrogram_at(
    fb: &mut Framebuffer,
    rx: i64,
    ry: i64,
    rw: usize,
    rh: usize,
    merges: &[DendroMerge],
    leaf_pos: &[usize],
    orientation: Orientation,
    color: Rgb,
) {
    let n_leaves = leaf_pos.len();
    if n_leaves == 0 || rw == 0 || rh == 0 {
        return;
    }
    if merges.is_empty() {
        return;
    }
    assert_eq!(
        merges.len(),
        n_leaves - 1,
        "a tree over {n_leaves} leaves must have {} merges",
        n_leaves - 1
    );
    let max_h = merges
        .iter()
        .map(|m| m.height)
        .fold(0.0f32, f32::max)
        .max(f32::MIN_POSITIVE);

    // Leaf-axis pixel center of a display slot.
    let slot_center = |slot: usize| -> i64 {
        match orientation {
            Orientation::Horizontal => ry + (slot * rh / n_leaves + rh / (2 * n_leaves)) as i64,
            Orientation::Vertical => rx + (slot * rw / n_leaves + rw / (2 * n_leaves)) as i64,
        }
    };
    // Height-axis pixel for a merge height (leaves at height 0).
    let depth_px = |h: f32| -> i64 {
        let t = (h / max_h).clamp(0.0, 1.0);
        match orientation {
            Orientation::Horizontal => rx + (rw - 1) as i64 - (t * (rw - 1) as f32) as i64,
            Orientation::Vertical => ry + (rh - 1) as i64 - (t * (rh - 1) as f32) as i64,
        }
    };

    // Resolve each node's (leaf-axis position, height-axis pixel).
    let mut node_axis: Vec<i64> = Vec::with_capacity(merges.len());
    let mut node_depth: Vec<i64> = Vec::with_capacity(merges.len());
    let resolve = |child: DendroChild, node_axis: &[i64], node_depth: &[i64]| -> (i64, i64) {
        match child {
            DendroChild::Leaf(i) => (slot_center(leaf_pos[i]), depth_px(0.0)),
            DendroChild::Internal(i) => (node_axis[i], node_depth[i]),
        }
    };

    for m in merges {
        let (a_axis, a_depth) = resolve(m.left, &node_axis, &node_depth);
        let (b_axis, b_depth) = resolve(m.right, &node_axis, &node_depth);
        let d = depth_px(m.height);
        match orientation {
            Orientation::Horizontal => {
                // connector stems from each child to the merge depth
                draw::hline(fb, a_depth, d, a_axis, color);
                draw::hline(fb, b_depth, d, b_axis, color);
                // bracket joining the two children at the merge depth
                draw::vline(fb, d, a_axis, b_axis, color);
            }
            Orientation::Vertical => {
                draw::vline(fb, a_axis, a_depth, d, color);
                draw::vline(fb, b_axis, b_depth, d, color);
                draw::hline(fb, a_axis, b_axis, d, color);
            }
        }
        // Floor division keeps the midpoint translation-invariant: with
        // truncating division, negative (tile-translated) coordinates
        // would round in the opposite direction and shift stems by 1px
        // across tile boundaries.
        node_axis.push((a_axis + b_axis).div_euclid(2));
        node_depth.push(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_leaf_tree() -> Vec<DendroMerge> {
        vec![DendroMerge {
            left: DendroChild::Leaf(0),
            right: DendroChild::Leaf(1),
            height: 1.0,
        }]
    }

    #[test]
    fn two_leaves_horizontal_draws_bracket() {
        let mut fb = Framebuffer::new(10, 8);
        paint_dendrogram(
            &mut fb,
            Region::new(0, 0, 10, 8),
            &two_leaf_tree(),
            &[0, 1],
            Orientation::Horizontal,
            Rgb::WHITE,
        );
        assert!(
            fb.count_pixels(Rgb::WHITE) > 10,
            "bracket should span region"
        );
        // Leaves at right edge: stems start at x=9
        assert_eq!(fb.get(9, 2), Some(Rgb::WHITE));
        assert_eq!(fb.get(9, 6), Some(Rgb::WHITE));
        // Root bracket at left edge (height 1.0 = max)
        assert_eq!(fb.get(0, 2), Some(Rgb::WHITE));
    }

    #[test]
    fn two_leaves_vertical_draws_bracket() {
        let mut fb = Framebuffer::new(8, 10);
        paint_dendrogram(
            &mut fb,
            Region::new(0, 0, 8, 10),
            &two_leaf_tree(),
            &[0, 1],
            Orientation::Vertical,
            Rgb::WHITE,
        );
        assert!(fb.count_pixels(Rgb::WHITE) > 10);
        assert_eq!(fb.get(2, 9), Some(Rgb::WHITE)); // leaf stem at bottom
    }

    #[test]
    fn three_leaf_tree_nested() {
        // merge 0: leaves 0,1 at h=1; merge 1: node0 + leaf2 at h=2
        let merges = vec![
            DendroMerge {
                left: DendroChild::Leaf(0),
                right: DendroChild::Leaf(1),
                height: 1.0,
            },
            DendroMerge {
                left: DendroChild::Internal(0),
                right: DendroChild::Leaf(2),
                height: 2.0,
            },
        ];
        let mut fb = Framebuffer::new(20, 12);
        paint_dendrogram(
            &mut fb,
            Region::new(0, 0, 20, 12),
            &merges,
            &[0, 1, 2],
            Orientation::Horizontal,
            Rgb::WHITE,
        );
        // root at the far left (max height)
        assert!(fb.get(0, 4).is_some());
        assert!(fb.count_pixels(Rgb::WHITE) > 20);
    }

    #[test]
    fn leaf_reordering_moves_stems() {
        let mut a = Framebuffer::new(10, 8);
        let mut b = Framebuffer::new(10, 8);
        let m = two_leaf_tree();
        paint_dendrogram(
            &mut a,
            Region::new(0, 0, 10, 8),
            &m,
            &[0, 1],
            Orientation::Horizontal,
            Rgb::WHITE,
        );
        paint_dendrogram(
            &mut b,
            Region::new(0, 0, 10, 8),
            &m,
            &[1, 0],
            Orientation::Horizontal,
            Rgb::WHITE,
        );
        // Same pixel count (symmetric tree) — but same image too since
        // swapping two symmetric leaves mirrors onto itself.
        assert_eq!(a.count_pixels(Rgb::WHITE), b.count_pixels(Rgb::WHITE));
    }

    #[test]
    fn empty_inputs_noop() {
        let mut fb = Framebuffer::new(4, 4);
        paint_dendrogram(
            &mut fb,
            Region::new(0, 0, 4, 4),
            &[],
            &[],
            Orientation::Horizontal,
            Rgb::WHITE,
        );
        paint_dendrogram(
            &mut fb,
            Region::new(0, 0, 4, 4),
            &[],
            &[0],
            Orientation::Horizontal,
            Rgb::WHITE,
        );
        assert_eq!(fb.count_pixels(Rgb::WHITE), 0);
    }

    #[test]
    #[should_panic(expected = "must have")]
    fn wrong_merge_count_panics() {
        let mut fb = Framebuffer::new(4, 4);
        paint_dendrogram(
            &mut fb,
            Region::new(0, 0, 4, 4),
            &two_leaf_tree(),
            &[0, 1, 2], // 3 leaves need 2 merges
            Orientation::Horizontal,
            Rgb::WHITE,
        );
    }

    #[test]
    fn painter_is_translation_invariant() {
        // Regression test: painting at a negative origin (as a wall tile
        // does) must produce exactly the pixels of the corresponding crop
        // of a full-scene paint. A truncating midpoint division used to
        // shift stems by 1px across tile boundaries.
        let merges = vec![
            DendroMerge {
                left: DendroChild::Leaf(0),
                right: DendroChild::Leaf(3),
                height: 0.4,
            },
            DendroMerge {
                left: DendroChild::Leaf(1),
                right: DendroChild::Internal(0),
                height: 0.7,
            },
            DendroMerge {
                left: DendroChild::Leaf(2),
                right: DendroChild::Internal(1),
                height: 1.3,
            },
        ];
        let leaf_pos = [2usize, 0, 3, 1];
        let (rx, ry, rw, rh) = (5i64, 7i64, 33usize, 57usize);
        let mut full = Framebuffer::new(64, 80);
        paint_dendrogram_at(
            &mut full,
            rx,
            ry,
            rw,
            rh,
            &merges,
            &leaf_pos,
            Orientation::Horizontal,
            Rgb::WHITE,
        );
        for (ox, oy) in [(10i64, 20i64), (3, 50), (30, 7)] {
            let mut tile = Framebuffer::new(20, 20);
            paint_dendrogram_at(
                &mut tile,
                rx - ox,
                ry - oy,
                rw,
                rh,
                &merges,
                &leaf_pos,
                Orientation::Horizontal,
                Rgb::WHITE,
            );
            for y in 0..20i64 {
                for x in 0..20i64 {
                    assert_eq!(
                        tile.get(x, y),
                        full.get(x + ox, y + oy),
                        "mismatch at tile ({x},{y}) origin ({ox},{oy})"
                    );
                }
            }
        }
    }

    #[test]
    fn zero_height_tree_draws_at_leaf_edge() {
        let merges = vec![DendroMerge {
            left: DendroChild::Leaf(0),
            right: DendroChild::Leaf(1),
            height: 0.0,
        }];
        let mut fb = Framebuffer::new(10, 8);
        paint_dendrogram(
            &mut fb,
            Region::new(0, 0, 10, 8),
            &merges,
            &[0, 1],
            Orientation::Horizontal,
            Rgb::WHITE,
        );
        // Everything collapses to the right edge column.
        for x in 0..9 {
            for y in 0..8 {
                assert_ne!(
                    fb.get(x, y),
                    Some(Rgb::WHITE),
                    "unexpected pixel at {x},{y}"
                );
            }
        }
        assert!(fb.count_pixels(Rgb::WHITE) > 0);
    }
}
