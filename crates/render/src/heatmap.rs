//! Expression heatmap painters: exact zoom view and averaging global view.
//!
//! ForestView shows each dataset pane twice (paper, Section 2): a **global
//! view** of the whole genome — thousands of gene rows compressed into a few
//! hundred pixel rows — and a **zoom view** rendering a selected gene subset
//! at one-or-more pixels per cell. The global painter averages all data
//! cells covered by each pixel (in value space, before color mapping), so
//! dense induced/repressed blocks stay visible after 10–100× downsampling.
//!
//! Painters are generic over a `Fn(row, col) -> Option<f32>` source so any
//! data structure (matrix, submatrix view, merged interface) can be painted
//! without copies.

use crate::color::Rgb;
use crate::colormap::ExpressionColorMap;
use crate::framebuffer::Framebuffer;

/// A target rectangle within a framebuffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// Left edge (pixels).
    pub x: usize,
    /// Top edge (pixels).
    pub y: usize,
    /// Width (pixels).
    pub w: usize,
    /// Height (pixels).
    pub h: usize,
}

impl Region {
    /// Construct a region.
    pub fn new(x: usize, y: usize, w: usize, h: usize) -> Self {
        Region { x, y, w, h }
    }
}

/// Paint a zoom view: every data cell covers an equal sub-rectangle of the
/// region (cells get ≥1 px only if the region is large enough; with more
/// cells than pixels this degrades gracefully into nearest sampling).
pub fn paint_zoom<F>(
    fb: &mut Framebuffer,
    region: Region,
    n_rows: usize,
    n_cols: usize,
    src: F,
    map: &ExpressionColorMap,
) where
    F: Fn(usize, usize) -> Option<f32>,
{
    paint_zoom_at(
        fb,
        region.x as i64,
        region.y as i64,
        region.w,
        region.h,
        n_rows,
        n_cols,
        src,
        map,
    );
}

/// [`paint_zoom`] with a signed origin: the region may extend beyond the
/// framebuffer in any direction and is clipped. This is the primitive the
/// tiled wall renderer uses (tiles see a translated scene).
#[allow(clippy::too_many_arguments)]
pub fn paint_zoom_at<F>(
    fb: &mut Framebuffer,
    x: i64,
    y: i64,
    w: usize,
    h: usize,
    n_rows: usize,
    n_cols: usize,
    src: F,
    map: &ExpressionColorMap,
) where
    F: Fn(usize, usize) -> Option<f32>,
{
    if n_rows == 0 || n_cols == 0 || w == 0 || h == 0 {
        return;
    }
    // Skip entirely-offscreen regions early.
    if x + w as i64 <= 0 || y + h as i64 <= 0 || x >= fb.width() as i64 || y >= fb.height() as i64 {
        return;
    }
    for r in 0..n_rows {
        let y0 = y + (r * h / n_rows) as i64;
        let y1 = y + ((r + 1) * h / n_rows) as i64;
        if y1 < 0 || y0 >= fb.height() as i64 {
            continue;
        }
        for c in 0..n_cols {
            let x0 = x + (c * w / n_cols) as i64;
            let x1 = x + ((c + 1) * w / n_cols) as i64;
            let color = map.map_option(src(r, c));
            fb.fill_rect(
                x0,
                y0,
                (x1 - x0).max(1) as usize,
                (y1 - y0).max(1) as usize,
                color,
            );
        }
    }
}

/// Paint a global (downsampled) view: each pixel of the region averages all
/// data cells it covers, in value space. Missing cells are excluded from the
/// average; a pixel covering only missing cells renders in the map's missing
/// color. Scanlines render in parallel with rayon.
pub fn paint_global<F>(
    fb: &mut Framebuffer,
    region: Region,
    n_rows: usize,
    n_cols: usize,
    src: F,
    map: &ExpressionColorMap,
) where
    F: Fn(usize, usize) -> Option<f32> + Sync,
{
    if n_rows == 0 || n_cols == 0 || region.w == 0 || region.h == 0 {
        return;
    }
    // Render into a region-sized scratch surface so scanline parallelism
    // does not have to reason about the enclosing framebuffer, then blit.
    let mut scratch = Framebuffer::new(region.w, region.h);
    let w = region.w;
    let h = region.h;
    scratch.par_rows_mut().for_each(|(py, row)| {
        let r0 = py * n_rows / h;
        let r1 = (((py + 1) * n_rows).div_ceil(h)).min(n_rows).max(r0 + 1);
        for px in 0..w {
            let c0 = px * n_cols / w;
            let c1 = (((px + 1) * n_cols).div_ceil(w)).min(n_cols).max(c0 + 1);
            let mut sum = 0.0f64;
            let mut n = 0usize;
            for r in r0..r1 {
                for c in c0..c1 {
                    if let Some(v) = src(r, c) {
                        sum += v as f64;
                        n += 1;
                    }
                }
            }
            let color = if n == 0 {
                map.missing
            } else {
                map.map((sum / n as f64) as f32)
            };
            Framebuffer::put_in_row(row, px, color);
        }
    });
    fb.blit(&scratch, region.x as i64, region.y as i64);
}

/// [`paint_global`] with a signed origin, clipped to the framebuffer.
/// Only the visible pixel rows/columns are computed, so a tile covering a
/// fraction of a pane pays only for that fraction — the property that makes
/// tile-parallel wall rendering scale.
#[allow(clippy::too_many_arguments)]
pub fn paint_global_at<F>(
    fb: &mut Framebuffer,
    x: i64,
    y: i64,
    w: usize,
    h: usize,
    n_rows: usize,
    n_cols: usize,
    src: F,
    map: &ExpressionColorMap,
) where
    F: Fn(usize, usize) -> Option<f32>,
{
    if n_rows == 0 || n_cols == 0 || w == 0 || h == 0 {
        return;
    }
    let py0 = (-y).max(0) as usize;
    let py1 = ((fb.height() as i64 - y).min(h as i64)).max(0) as usize;
    let px0 = (-x).max(0) as usize;
    let px1 = ((fb.width() as i64 - x).min(w as i64)).max(0) as usize;
    for py in py0..py1 {
        let r0 = py * n_rows / h;
        let r1 = (((py + 1) * n_rows).div_ceil(h)).min(n_rows).max(r0 + 1);
        for px in px0..px1 {
            let c0 = px * n_cols / w;
            let c1 = (((px + 1) * n_cols).div_ceil(w)).min(n_cols).max(c0 + 1);
            let mut sum = 0.0f64;
            let mut n = 0usize;
            for r in r0..r1 {
                for c in c0..c1 {
                    if let Some(v) = src(r, c) {
                        sum += v as f64;
                        n += 1;
                    }
                }
            }
            let color = if n == 0 {
                map.missing
            } else {
                map.map((sum / n as f64) as f32)
            };
            fb.put(x + px as i64, y + py as i64, color);
        }
    }
}

/// Overlay horizontal marker lines on a global view at the given data rows
/// — ForestView highlights the selected genes' positions in every dataset's
/// global view this way ("highlight their position in the global view with
/// a line", Section 2).
pub fn mark_rows(fb: &mut Framebuffer, region: Region, n_rows: usize, rows: &[usize], color: Rgb) {
    if n_rows == 0 || region.h == 0 {
        return;
    }
    for &r in rows {
        if r >= n_rows {
            continue;
        }
        let y = region.y + r * region.h / n_rows;
        crate::draw::hline(
            fb,
            region.x as i64,
            (region.x + region.w) as i64 - 1,
            y as i64,
            color,
        );
    }
}

/// [`mark_rows`] with a signed origin (clipped by the line primitive).
pub fn mark_rows_at(
    fb: &mut Framebuffer,
    x: i64,
    y: i64,
    w: usize,
    h: usize,
    n_rows: usize,
    rows: &[usize],
    color: Rgb,
) {
    if n_rows == 0 || h == 0 || w == 0 {
        return;
    }
    for &r in rows {
        if r >= n_rows {
            continue;
        }
        let line_y = y + (r * h / n_rows) as i64;
        crate::draw::hline(fb, x, x + w as i64 - 1, line_y, color);
    }
}

/// Map a pixel y within a global view region back to the data row it
/// covers — the inverse transform behind mouse region selection.
pub fn pixel_to_row(region: Region, n_rows: usize, py: usize) -> Option<usize> {
    if py < region.y || py >= region.y + region.h || region.h == 0 {
        return None;
    }
    let rel = py - region.y;
    Some((rel * n_rows / region.h).min(n_rows.saturating_sub(1)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::colormap::ColorScheme;

    fn map() -> ExpressionColorMap {
        ExpressionColorMap::new(ColorScheme::RedGreen, 1.0)
    }

    #[test]
    fn zoom_one_px_per_cell() {
        let mut fb = Framebuffer::new(2, 2);
        let vals = [[1.0f32, -1.0], [-1.0, 1.0]];
        paint_zoom(
            &mut fb,
            Region::new(0, 0, 2, 2),
            2,
            2,
            |r, c| Some(vals[r][c]),
            &map(),
        );
        assert_eq!(fb.get(0, 0), Some(Rgb::RED));
        assert_eq!(fb.get(1, 0), Some(Rgb::GREEN));
        assert_eq!(fb.get(0, 1), Some(Rgb::GREEN));
        assert_eq!(fb.get(1, 1), Some(Rgb::RED));
    }

    #[test]
    fn zoom_scales_cells_up() {
        let mut fb = Framebuffer::new(8, 4);
        paint_zoom(
            &mut fb,
            Region::new(0, 0, 8, 4),
            1,
            2,
            |_, c| Some(if c == 0 { 1.0 } else { -1.0 }),
            &map(),
        );
        assert_eq!(fb.count_pixels(Rgb::RED), 16);
        assert_eq!(fb.count_pixels(Rgb::GREEN), 16);
        assert_eq!(fb.get(3, 0), Some(Rgb::RED));
        assert_eq!(fb.get(4, 0), Some(Rgb::GREEN));
    }

    #[test]
    fn zoom_missing_cells_gray() {
        let mut fb = Framebuffer::new(2, 1);
        paint_zoom(
            &mut fb,
            Region::new(0, 0, 2, 1),
            1,
            2,
            |_, c| if c == 0 { None } else { Some(0.0) },
            &map(),
        );
        assert_eq!(fb.get(0, 0), Some(Rgb::MISSING_GRAY));
        assert_eq!(fb.get(1, 0), Some(Rgb::BLACK));
    }

    #[test]
    fn zoom_empty_inputs_noop() {
        let mut fb = Framebuffer::new(4, 4);
        paint_zoom(
            &mut fb,
            Region::new(0, 0, 4, 4),
            0,
            3,
            |_, _| Some(1.0),
            &map(),
        );
        paint_zoom(
            &mut fb,
            Region::new(0, 0, 0, 0),
            3,
            3,
            |_, _| Some(1.0),
            &map(),
        );
        assert_eq!(fb.count_pixels(Rgb::BLACK), 16);
    }

    #[test]
    fn global_averages_covered_cells() {
        // 4 data rows → 1 pixel row; +1 and -1 average to 0 (black).
        let mut fb = Framebuffer::new(1, 1);
        paint_global(
            &mut fb,
            Region::new(0, 0, 1, 1),
            4,
            1,
            |r, _| Some(if r % 2 == 0 { 1.0 } else { -1.0 }),
            &map(),
        );
        assert_eq!(fb.get(0, 0), Some(Rgb::BLACK));
    }

    #[test]
    fn global_excludes_missing_from_average() {
        // one present cell (+1) among three missing → pure red, not diluted.
        let mut fb = Framebuffer::new(1, 1);
        paint_global(
            &mut fb,
            Region::new(0, 0, 1, 1),
            4,
            1,
            |r, _| if r == 0 { Some(1.0) } else { None },
            &map(),
        );
        assert_eq!(fb.get(0, 0), Some(Rgb::RED));
    }

    #[test]
    fn global_all_missing_pixel_gray() {
        let mut fb = Framebuffer::new(2, 2);
        paint_global(&mut fb, Region::new(0, 0, 2, 2), 4, 4, |_, _| None, &map());
        assert_eq!(fb.count_pixels(Rgb::MISSING_GRAY), 4);
    }

    #[test]
    fn global_respects_region_offset() {
        let mut fb = Framebuffer::new(6, 6);
        paint_global(
            &mut fb,
            Region::new(2, 3, 2, 2),
            2,
            2,
            |_, _| Some(1.0),
            &map(),
        );
        assert_eq!(fb.count_pixels(Rgb::RED), 4);
        assert_eq!(fb.get(2, 3), Some(Rgb::RED));
        assert_eq!(fb.get(0, 0), Some(Rgb::BLACK));
    }

    #[test]
    fn global_upsampling_replicates() {
        // fewer data rows than pixels: each data row covers several pixel rows
        let mut fb = Framebuffer::new(1, 4);
        paint_global(
            &mut fb,
            Region::new(0, 0, 1, 4),
            2,
            1,
            |r, _| Some(if r == 0 { 1.0 } else { -1.0 }),
            &map(),
        );
        assert_eq!(fb.get(0, 0), Some(Rgb::RED));
        assert_eq!(fb.get(0, 1), Some(Rgb::RED));
        assert_eq!(fb.get(0, 2), Some(Rgb::GREEN));
        assert_eq!(fb.get(0, 3), Some(Rgb::GREEN));
    }

    #[test]
    fn mark_rows_draws_lines() {
        let mut fb = Framebuffer::new(4, 10);
        let region = Region::new(0, 0, 4, 10);
        mark_rows(&mut fb, region, 10, &[0, 5], Rgb::WHITE);
        assert_eq!(fb.count_pixels(Rgb::WHITE), 8);
        assert_eq!(fb.get(0, 0), Some(Rgb::WHITE));
        assert_eq!(fb.get(0, 5), Some(Rgb::WHITE));
    }

    #[test]
    fn mark_rows_ignores_oob_rows() {
        let mut fb = Framebuffer::new(4, 4);
        mark_rows(&mut fb, Region::new(0, 0, 4, 4), 4, &[17], Rgb::WHITE);
        assert_eq!(fb.count_pixels(Rgb::WHITE), 0);
    }

    #[test]
    fn pixel_to_row_inverse_of_mark() {
        let region = Region::new(0, 10, 4, 100);
        // 1000 genes in 100 px: pixel 10 px into the view covers row 100.
        assert_eq!(pixel_to_row(region, 1000, 20), Some(100));
        assert_eq!(pixel_to_row(region, 1000, 9), None); // above region
        assert_eq!(pixel_to_row(region, 1000, 110), None); // below region
                                                           // last pixel clamps to last row
        assert_eq!(pixel_to_row(region, 50, 109), Some(49));
    }

    #[test]
    fn global_matches_zoom_at_equal_resolution() {
        // When region size == data size the global and zoom painters agree.
        let vals = [[0.5f32, -0.5], [1.0, -1.0]];
        let src = |r: usize, c: usize| Some(vals[r][c]);
        let mut a = Framebuffer::new(2, 2);
        let mut b = Framebuffer::new(2, 2);
        paint_zoom(&mut a, Region::new(0, 0, 2, 2), 2, 2, src, &map());
        paint_global(&mut b, Region::new(0, 0, 2, 2), 2, 2, src, &map());
        assert_eq!(a, b);
    }
}
