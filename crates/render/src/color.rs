//! RGB color type and blending helpers.

/// 24-bit RGB color.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Rgb {
    /// Red channel.
    pub r: u8,
    /// Green channel.
    pub g: u8,
    /// Blue channel.
    pub b: u8,
}

impl Rgb {
    /// Construct from channels.
    pub const fn new(r: u8, g: u8, b: u8) -> Self {
        Rgb { r, g, b }
    }

    /// Black.
    pub const BLACK: Rgb = Rgb::new(0, 0, 0);
    /// White.
    pub const WHITE: Rgb = Rgb::new(255, 255, 255);
    /// Pure red (classic "induced" microarray color).
    pub const RED: Rgb = Rgb::new(255, 0, 0);
    /// Pure green (classic "repressed" microarray color).
    pub const GREEN: Rgb = Rgb::new(0, 255, 0);
    /// Pure blue.
    pub const BLUE: Rgb = Rgb::new(0, 0, 255);
    /// Yellow.
    pub const YELLOW: Rgb = Rgb::new(255, 255, 0);
    /// The neutral gray used for missing values in TreeView-style displays.
    pub const MISSING_GRAY: Rgb = Rgb::new(128, 128, 128);

    /// Linear interpolation between two colors, `t` clamped to `[0,1]`.
    pub fn lerp(self, other: Rgb, t: f32) -> Rgb {
        let t = t.clamp(0.0, 1.0);
        let mix = |a: u8, b: u8| -> u8 {
            let v = a as f32 + (b as f32 - a as f32) * t;
            v.round().clamp(0.0, 255.0) as u8
        };
        Rgb::new(
            mix(self.r, other.r),
            mix(self.g, other.g),
            mix(self.b, other.b),
        )
    }

    /// Average of a non-empty slice of colors (componentwise), used when a
    /// global-view pixel covers several matrix cells. Returns black for an
    /// empty slice.
    pub fn average(colors: &[Rgb]) -> Rgb {
        if colors.is_empty() {
            return Rgb::BLACK;
        }
        let n = colors.len() as u32;
        let (mut r, mut g, mut b) = (0u32, 0u32, 0u32);
        for c in colors {
            r += c.r as u32;
            g += c.g as u32;
            b += c.b as u32;
        }
        Rgb::new((r / n) as u8, (g / n) as u8, (b / n) as u8)
    }

    /// Pack into `0x00RRGGBB`.
    pub fn to_u32(self) -> u32 {
        ((self.r as u32) << 16) | ((self.g as u32) << 8) | self.b as u32
    }

    /// Unpack from `0x00RRGGBB`.
    pub fn from_u32(v: u32) -> Rgb {
        Rgb::new(
            ((v >> 16) & 0xff) as u8,
            ((v >> 8) & 0xff) as u8,
            (v & 0xff) as u8,
        )
    }

    /// Perceived luminance (ITU-R BT.601), 0–255.
    pub fn luminance(self) -> f32 {
        0.299 * self.r as f32 + 0.587 * self.g as f32 + 0.114 * self.b as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lerp_endpoints() {
        assert_eq!(Rgb::BLACK.lerp(Rgb::WHITE, 0.0), Rgb::BLACK);
        assert_eq!(Rgb::BLACK.lerp(Rgb::WHITE, 1.0), Rgb::WHITE);
    }

    #[test]
    fn lerp_midpoint() {
        let mid = Rgb::BLACK.lerp(Rgb::WHITE, 0.5);
        assert!((mid.r as i32 - 128).abs() <= 1);
        assert_eq!(mid.r, mid.g);
        assert_eq!(mid.g, mid.b);
    }

    #[test]
    fn lerp_clamps_t() {
        assert_eq!(Rgb::RED.lerp(Rgb::GREEN, -3.0), Rgb::RED);
        assert_eq!(Rgb::RED.lerp(Rgb::GREEN, 7.0), Rgb::GREEN);
    }

    #[test]
    fn average_of_same_is_same() {
        let c = Rgb::new(10, 20, 30);
        assert_eq!(Rgb::average(&[c, c, c]), c);
    }

    #[test]
    fn average_mixes() {
        let avg = Rgb::average(&[Rgb::BLACK, Rgb::WHITE]);
        assert_eq!(avg, Rgb::new(127, 127, 127));
        assert_eq!(Rgb::average(&[]), Rgb::BLACK);
    }

    #[test]
    fn u32_roundtrip() {
        let c = Rgb::new(0x12, 0x34, 0x56);
        assert_eq!(c.to_u32(), 0x123456);
        assert_eq!(Rgb::from_u32(0x123456), c);
    }

    #[test]
    fn luminance_ordering() {
        assert!(Rgb::WHITE.luminance() > Rgb::MISSING_GRAY.luminance());
        assert!(Rgb::MISSING_GRAY.luminance() > Rgb::BLACK.luminance());
        assert!(Rgb::GREEN.luminance() > Rgb::BLUE.luminance());
    }
}
