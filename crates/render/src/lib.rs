//! # fv-render — software rasterizer for ForestView
//!
//! The paper builds its visualization on Java TreeView's painter ("Java
//! TreeView forms a good starting point for the visualization component",
//! Section 2) and extends it to many synchronized panes on very large
//! displays. This crate is our TreeView-equivalent: a dependency-free
//! software rasterizer that turns expression data into pixels, so every
//! figure of the paper becomes a reproducible image artifact and a
//! benchable render path — no GUI toolkit, no display server.
//!
//! - [`color`] / [`colormap`] — RGB handling and the classic microarray
//!   color scales (red/green, red/blue, yellow/blue) with contrast control,
//! - [`framebuffer`] — an RGB8 pixel surface with fills, blits and
//!   rayon-parallel row access,
//! - [`draw`] — lines, rectangles, polylines (Bresenham),
//! - [`font`] — an embedded 5×7 bitmap font for labels and annotations,
//! - [`heatmap`] — the expression-matrix painters: exact **zoom view** and
//!   downsampled, averaging **global view**,
//! - [`dendro`] — dendrogram (gene/array tree) painter,
//! - [`image`] — PPM and BMP encoders plus a PPM decoder for tests.

#![forbid(unsafe_code)]

pub mod color;
pub mod colormap;
pub mod dendro;
pub mod draw;
pub mod font;
pub mod framebuffer;
pub mod heatmap;
pub mod image;

pub use color::Rgb;
pub use colormap::{ColorScheme, ExpressionColorMap};
pub use framebuffer::Framebuffer;
