//! Expression-value color scales.
//!
//! Microarray heatmaps map log-ratio values onto a diverging scale: negative
//! (repressed) values toward one pole, positive (induced) toward the other,
//! zero black. The paper notes ForestView lets users adjust "the expression
//! level colors ... independently for datasets or applied to all datasets"
//! (Section 2); [`ExpressionColorMap`] is that per-dataset preference object.

use crate::color::Rgb;

/// The classic diverging schemes TreeView offers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ColorScheme {
    /// Green (negative) → black (zero) → red (positive). The canonical
    /// two-channel microarray false-color scheme.
    #[default]
    RedGreen,
    /// Blue (negative) → black → red (positive), friendlier to red-green
    /// color blindness.
    RedBlue,
    /// Blue (negative) → black → yellow (positive).
    YellowBlue,
    /// Grayscale: black (negative pole) → white (positive pole), sequential.
    Grayscale,
}

impl ColorScheme {
    /// Pole colors `(negative, zero, positive)`.
    fn poles(self) -> (Rgb, Rgb, Rgb) {
        match self {
            ColorScheme::RedGreen => (Rgb::GREEN, Rgb::BLACK, Rgb::RED),
            ColorScheme::RedBlue => (Rgb::BLUE, Rgb::BLACK, Rgb::RED),
            ColorScheme::YellowBlue => (Rgb::BLUE, Rgb::BLACK, Rgb::YELLOW),
            ColorScheme::Grayscale => (Rgb::BLACK, Rgb::new(128, 128, 128), Rgb::WHITE),
        }
    }

    /// All schemes, for UI cycling and tests.
    pub fn all() -> [ColorScheme; 4] {
        [
            ColorScheme::RedGreen,
            ColorScheme::RedBlue,
            ColorScheme::YellowBlue,
            ColorScheme::Grayscale,
        ]
    }
}

/// Maps an expression value to a color given a scheme, a contrast (the
/// absolute value that saturates the scale) and a missing-value color.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpressionColorMap {
    /// Diverging scheme.
    pub scheme: ColorScheme,
    /// Absolute expression value at which the scale saturates. TreeView's
    /// default contrast is 3.0 (log₂ units).
    pub contrast: f32,
    /// Color for missing cells.
    pub missing: Rgb,
}

impl Default for ExpressionColorMap {
    fn default() -> Self {
        ExpressionColorMap {
            scheme: ColorScheme::RedGreen,
            contrast: 3.0,
            missing: Rgb::MISSING_GRAY,
        }
    }
}

impl ExpressionColorMap {
    /// New map with the given scheme and contrast.
    pub fn new(scheme: ColorScheme, contrast: f32) -> Self {
        assert!(contrast > 0.0, "contrast must be positive");
        ExpressionColorMap {
            scheme,
            contrast,
            missing: Rgb::MISSING_GRAY,
        }
    }

    /// Color for a present value.
    pub fn map(&self, value: f32) -> Rgb {
        let (neg, zero, pos) = self.scheme.poles();
        let t = (value / self.contrast).clamp(-1.0, 1.0);
        if t >= 0.0 {
            zero.lerp(pos, t)
        } else {
            zero.lerp(neg, -t)
        }
    }

    /// Color for an optional value (missing → missing color).
    pub fn map_option(&self, value: Option<f32>) -> Rgb {
        match value {
            Some(v) => self.map(v),
            None => self.missing,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_maps_to_zero_pole() {
        let m = ExpressionColorMap::default();
        assert_eq!(m.map(0.0), Rgb::BLACK);
    }

    #[test]
    fn saturation_at_contrast() {
        let m = ExpressionColorMap::new(ColorScheme::RedGreen, 2.0);
        assert_eq!(m.map(2.0), Rgb::RED);
        assert_eq!(m.map(5.0), Rgb::RED); // beyond contrast stays saturated
        assert_eq!(m.map(-2.0), Rgb::GREEN);
        assert_eq!(m.map(-9.0), Rgb::GREEN);
    }

    #[test]
    fn monotone_in_value() {
        // Red channel must be nondecreasing in value on the positive side.
        let m = ExpressionColorMap::default();
        let mut last = 0u8;
        for i in 0..=30 {
            let v = i as f32 * 0.1;
            let c = m.map(v);
            assert!(c.r >= last, "red channel decreased at {v}");
            assert_eq!(c.g, 0);
            last = c.r;
        }
    }

    #[test]
    fn negative_side_uses_negative_pole() {
        let m = ExpressionColorMap::default();
        let c = m.map(-1.5);
        assert!(c.g > 0);
        assert_eq!(c.r, 0);
    }

    #[test]
    fn missing_maps_to_gray() {
        let m = ExpressionColorMap::default();
        assert_eq!(m.map_option(None), Rgb::MISSING_GRAY);
        assert_eq!(m.map_option(Some(0.0)), Rgb::BLACK);
    }

    #[test]
    fn schemes_have_distinct_positive_poles() {
        let v = 10.0; // saturating
        let reds = ExpressionColorMap::new(ColorScheme::RedGreen, 3.0).map(v);
        let yellow = ExpressionColorMap::new(ColorScheme::YellowBlue, 3.0).map(v);
        let gray = ExpressionColorMap::new(ColorScheme::Grayscale, 3.0).map(v);
        assert_eq!(reds, Rgb::RED);
        assert_eq!(yellow, Rgb::YELLOW);
        assert_eq!(gray, Rgb::WHITE);
    }

    #[test]
    fn grayscale_zero_is_midgray() {
        let m = ExpressionColorMap::new(ColorScheme::Grayscale, 3.0);
        assert_eq!(m.map(0.0), Rgb::new(128, 128, 128));
    }

    #[test]
    #[should_panic(expected = "contrast must be positive")]
    fn zero_contrast_panics() {
        let _ = ExpressionColorMap::new(ColorScheme::RedGreen, 0.0);
    }

    #[test]
    fn all_schemes_listed() {
        assert_eq!(ColorScheme::all().len(), 4);
    }
}
