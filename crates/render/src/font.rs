//! Embedded 5×7 bitmap font for labels and annotations.
//!
//! ForestView panes label genes, conditions and datasets; GOLEM labels GO
//! terms. A tiny embedded font keeps the renderer dependency-free. Glyphs
//! cover digits, letters (lowercase renders as uppercase, the TreeView
//! convention for compact gene labels) and common punctuation; anything
//! else renders as a hollow box.

use crate::color::Rgb;
use crate::framebuffer::Framebuffer;

/// Glyph cell width in pixels (excluding 1px advance gap).
pub const GLYPH_W: usize = 5;
/// Glyph cell height in pixels.
pub const GLYPH_H: usize = 7;
/// Horizontal advance per character.
pub const ADVANCE: usize = GLYPH_W + 1;

type Glyph = [u8; GLYPH_H];

const UNKNOWN: Glyph = [
    0b11111, 0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b11111,
];

fn glyph(ch: char) -> Glyph {
    let c = ch.to_ascii_uppercase();
    match c {
        'A' => [
            0b01110, 0b10001, 0b10001, 0b11111, 0b10001, 0b10001, 0b10001,
        ],
        'B' => [
            0b11110, 0b10001, 0b10001, 0b11110, 0b10001, 0b10001, 0b11110,
        ],
        'C' => [
            0b01110, 0b10001, 0b10000, 0b10000, 0b10000, 0b10001, 0b01110,
        ],
        'D' => [
            0b11110, 0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b11110,
        ],
        'E' => [
            0b11111, 0b10000, 0b10000, 0b11110, 0b10000, 0b10000, 0b11111,
        ],
        'F' => [
            0b11111, 0b10000, 0b10000, 0b11110, 0b10000, 0b10000, 0b10000,
        ],
        'G' => [
            0b01110, 0b10001, 0b10000, 0b10111, 0b10001, 0b10001, 0b01111,
        ],
        'H' => [
            0b10001, 0b10001, 0b10001, 0b11111, 0b10001, 0b10001, 0b10001,
        ],
        'I' => [
            0b01110, 0b00100, 0b00100, 0b00100, 0b00100, 0b00100, 0b01110,
        ],
        'J' => [
            0b00111, 0b00010, 0b00010, 0b00010, 0b00010, 0b10010, 0b01100,
        ],
        'K' => [
            0b10001, 0b10010, 0b10100, 0b11000, 0b10100, 0b10010, 0b10001,
        ],
        'L' => [
            0b10000, 0b10000, 0b10000, 0b10000, 0b10000, 0b10000, 0b11111,
        ],
        'M' => [
            0b10001, 0b11011, 0b10101, 0b10101, 0b10001, 0b10001, 0b10001,
        ],
        'N' => [
            0b10001, 0b11001, 0b10101, 0b10011, 0b10001, 0b10001, 0b10001,
        ],
        'O' => [
            0b01110, 0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b01110,
        ],
        'P' => [
            0b11110, 0b10001, 0b10001, 0b11110, 0b10000, 0b10000, 0b10000,
        ],
        'Q' => [
            0b01110, 0b10001, 0b10001, 0b10001, 0b10101, 0b10010, 0b01101,
        ],
        'R' => [
            0b11110, 0b10001, 0b10001, 0b11110, 0b10100, 0b10010, 0b10001,
        ],
        'S' => [
            0b01111, 0b10000, 0b10000, 0b01110, 0b00001, 0b00001, 0b11110,
        ],
        'T' => [
            0b11111, 0b00100, 0b00100, 0b00100, 0b00100, 0b00100, 0b00100,
        ],
        'U' => [
            0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b01110,
        ],
        'V' => [
            0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b01010, 0b00100,
        ],
        'W' => [
            0b10001, 0b10001, 0b10001, 0b10101, 0b10101, 0b11011, 0b10001,
        ],
        'X' => [
            0b10001, 0b10001, 0b01010, 0b00100, 0b01010, 0b10001, 0b10001,
        ],
        'Y' => [
            0b10001, 0b10001, 0b01010, 0b00100, 0b00100, 0b00100, 0b00100,
        ],
        'Z' => [
            0b11111, 0b00001, 0b00010, 0b00100, 0b01000, 0b10000, 0b11111,
        ],
        '0' => [
            0b01110, 0b10001, 0b10011, 0b10101, 0b11001, 0b10001, 0b01110,
        ],
        '1' => [
            0b00100, 0b01100, 0b00100, 0b00100, 0b00100, 0b00100, 0b01110,
        ],
        '2' => [
            0b01110, 0b10001, 0b00001, 0b00010, 0b00100, 0b01000, 0b11111,
        ],
        '3' => [
            0b11111, 0b00010, 0b00100, 0b00010, 0b00001, 0b10001, 0b01110,
        ],
        '4' => [
            0b00010, 0b00110, 0b01010, 0b10010, 0b11111, 0b00010, 0b00010,
        ],
        '5' => [
            0b11111, 0b10000, 0b11110, 0b00001, 0b00001, 0b10001, 0b01110,
        ],
        '6' => [
            0b00110, 0b01000, 0b10000, 0b11110, 0b10001, 0b10001, 0b01110,
        ],
        '7' => [
            0b11111, 0b00001, 0b00010, 0b00100, 0b01000, 0b01000, 0b01000,
        ],
        '8' => [
            0b01110, 0b10001, 0b10001, 0b01110, 0b10001, 0b10001, 0b01110,
        ],
        '9' => [
            0b01110, 0b10001, 0b10001, 0b01111, 0b00001, 0b00010, 0b01100,
        ],
        ' ' => [0; 7],
        '.' => [0, 0, 0, 0, 0, 0b01100, 0b01100],
        ',' => [0, 0, 0, 0, 0b00100, 0b00100, 0b01000],
        ':' => [0, 0b01100, 0b01100, 0, 0b01100, 0b01100, 0],
        ';' => [0, 0b01100, 0b01100, 0, 0b01100, 0b00100, 0b01000],
        '-' => [0, 0, 0, 0b01110, 0, 0, 0],
        '_' => [0, 0, 0, 0, 0, 0, 0b11111],
        '/' => [
            0b00001, 0b00001, 0b00010, 0b00100, 0b01000, 0b10000, 0b10000,
        ],
        '\\' => [
            0b10000, 0b10000, 0b01000, 0b00100, 0b00010, 0b00001, 0b00001,
        ],
        '(' => [
            0b00010, 0b00100, 0b01000, 0b01000, 0b01000, 0b00100, 0b00010,
        ],
        ')' => [
            0b01000, 0b00100, 0b00010, 0b00010, 0b00010, 0b00100, 0b01000,
        ],
        '%' => [
            0b11001, 0b11010, 0b00010, 0b00100, 0b01000, 0b01011, 0b10011,
        ],
        '+' => [0, 0b00100, 0b00100, 0b11111, 0b00100, 0b00100, 0],
        '=' => [0, 0, 0b11111, 0, 0b11111, 0, 0],
        '<' => [
            0b00010, 0b00100, 0b01000, 0b10000, 0b01000, 0b00100, 0b00010,
        ],
        '>' => [
            0b01000, 0b00100, 0b00010, 0b00001, 0b00010, 0b00100, 0b01000,
        ],
        '!' => [0b00100, 0b00100, 0b00100, 0b00100, 0b00100, 0, 0b00100],
        '?' => [0b01110, 0b10001, 0b00001, 0b00010, 0b00100, 0, 0b00100],
        '*' => [0, 0b10101, 0b01110, 0b11111, 0b01110, 0b10101, 0],
        '\'' => [0b00100, 0b00100, 0, 0, 0, 0, 0],
        '"' => [0b01010, 0b01010, 0, 0, 0, 0, 0],
        '#' => [
            0b01010, 0b01010, 0b11111, 0b01010, 0b11111, 0b01010, 0b01010,
        ],
        '[' => [
            0b01110, 0b01000, 0b01000, 0b01000, 0b01000, 0b01000, 0b01110,
        ],
        ']' => [
            0b01110, 0b00010, 0b00010, 0b00010, 0b00010, 0b00010, 0b01110,
        ],
        '|' => [0b00100; 7],
        _ => UNKNOWN,
    }
}

/// Draw `text` with its top-left corner at `(x, y)` at integer `scale`
/// (scale 1 = 5×7 pixels per glyph). Returns the x coordinate just past the
/// rendered text.
pub fn draw_text(
    fb: &mut Framebuffer,
    x: i64,
    y: i64,
    text: &str,
    color: Rgb,
    scale: usize,
) -> i64 {
    let scale = scale.max(1);
    let mut cx = x;
    for ch in text.chars() {
        let g = glyph(ch);
        for (row, bits) in g.iter().enumerate() {
            for col in 0..GLYPH_W {
                if (bits >> (GLYPH_W - 1 - col)) & 1 == 1 {
                    fb.fill_rect(
                        cx + (col * scale) as i64,
                        y + (row * scale) as i64,
                        scale,
                        scale,
                        color,
                    );
                }
            }
        }
        cx += (ADVANCE * scale) as i64;
    }
    cx
}

/// Pixel width of `text` at the given scale.
pub fn text_width(text: &str, scale: usize) -> usize {
    text.chars().count() * ADVANCE * scale.max(1)
}

/// Truncate `text` (appending `..`) so it fits within `max_px` at `scale`.
pub fn fit_text(text: &str, max_px: usize, scale: usize) -> String {
    if text_width(text, scale) <= max_px {
        return text.to_string();
    }
    let adv = ADVANCE * scale.max(1);
    let budget = max_px / adv;
    if budget <= 2 {
        return text.chars().take(budget).collect();
    }
    let mut s: String = text.chars().take(budget - 2).collect();
    s.push_str("..");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draw_single_char_pixel_count() {
        let mut fb = Framebuffer::new(10, 10);
        // 'I' = 3 + 1 + 1 + 1 + 1 + 1 + 3 = 11 pixels
        draw_text(&mut fb, 0, 0, "I", Rgb::WHITE, 1);
        assert_eq!(fb.count_pixels(Rgb::WHITE), 11);
    }

    #[test]
    fn lowercase_same_as_uppercase() {
        let mut a = Framebuffer::new(8, 8);
        let mut b = Framebuffer::new(8, 8);
        draw_text(&mut a, 0, 0, "g", Rgb::WHITE, 1);
        draw_text(&mut b, 0, 0, "G", Rgb::WHITE, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn advance_position() {
        let mut fb = Framebuffer::new(30, 10);
        let end = draw_text(&mut fb, 2, 1, "AB", Rgb::WHITE, 1);
        assert_eq!(end, 2 + 2 * ADVANCE as i64);
    }

    #[test]
    fn scale_doubles_area() {
        let mut fb1 = Framebuffer::new(20, 20);
        let mut fb2 = Framebuffer::new(20, 20);
        draw_text(&mut fb1, 0, 0, "T", Rgb::WHITE, 1);
        draw_text(&mut fb2, 0, 0, "T", Rgb::WHITE, 2);
        assert_eq!(
            fb2.count_pixels(Rgb::WHITE),
            4 * fb1.count_pixels(Rgb::WHITE)
        );
    }

    #[test]
    fn unknown_char_renders_box() {
        let mut fb = Framebuffer::new(8, 8);
        draw_text(&mut fb, 0, 0, "~", Rgb::WHITE, 1);
        // hollow box: two full 5px rows + five 2px side rows = 20
        assert_eq!(fb.count_pixels(Rgb::WHITE), 20);
    }

    #[test]
    fn space_draws_nothing() {
        let mut fb = Framebuffer::new(8, 8);
        draw_text(&mut fb, 0, 0, " ", Rgb::WHITE, 1);
        assert_eq!(fb.count_pixels(Rgb::WHITE), 0);
    }

    #[test]
    fn text_width_measures() {
        assert_eq!(text_width("ABC", 1), 18);
        assert_eq!(text_width("", 1), 0);
        assert_eq!(text_width("A", 3), 18);
    }

    #[test]
    fn fit_text_truncates() {
        assert_eq!(fit_text("YAL005C", 100, 1), "YAL005C");
        let t = fit_text("YAL005C", 5 * ADVANCE, 1);
        assert_eq!(t, "YAL..");
        assert!(text_width(&t, 1) <= 5 * ADVANCE);
    }

    #[test]
    fn fit_text_tiny_budget() {
        assert_eq!(fit_text("ABCDEF", ADVANCE, 1), "A");
        assert_eq!(fit_text("ABCDEF", 0, 1), "");
    }

    #[test]
    fn digits_render_distinct() {
        let mut imgs = Vec::new();
        for d in ['0', '1', '8'] {
            let mut fb = Framebuffer::new(8, 8);
            draw_text(&mut fb, 0, 0, &d.to_string(), Rgb::WHITE, 1);
            imgs.push(fb);
        }
        assert_ne!(imgs[0], imgs[1]);
        assert_ne!(imgs[0], imgs[2]);
        assert_ne!(imgs[1], imgs[2]);
    }
}
