//! Line and shape primitives (Bresenham).

use crate::color::Rgb;
use crate::framebuffer::Framebuffer;

/// Draw a line segment from `(x0, y0)` to `(x1, y1)` inclusive.
pub fn line(fb: &mut Framebuffer, x0: i64, y0: i64, x1: i64, y1: i64, color: Rgb) {
    let dx = (x1 - x0).abs();
    let dy = -(y1 - y0).abs();
    let sx = if x0 < x1 { 1 } else { -1 };
    let sy = if y0 < y1 { 1 } else { -1 };
    let mut err = dx + dy;
    let (mut x, mut y) = (x0, y0);
    loop {
        fb.put(x, y, color);
        if x == x1 && y == y1 {
            break;
        }
        let e2 = 2 * err;
        if e2 >= dy {
            err += dy;
            x += sx;
        }
        if e2 <= dx {
            err += dx;
            y += sy;
        }
    }
}

/// Horizontal line `[x0, x1]` at height `y` (endpoints in either order).
pub fn hline(fb: &mut Framebuffer, x0: i64, x1: i64, y: i64, color: Rgb) {
    let (a, b) = if x0 <= x1 { (x0, x1) } else { (x1, x0) };
    for x in a..=b {
        fb.put(x, y, color);
    }
}

/// Vertical line `[y0, y1]` at `x` (endpoints in either order).
pub fn vline(fb: &mut Framebuffer, x: i64, y0: i64, y1: i64, color: Rgb) {
    let (a, b) = if y0 <= y1 { (y0, y1) } else { (y1, y0) };
    for y in a..=b {
        fb.put(x, y, color);
    }
}

/// Rectangle outline for `[x, x+w) × [y, y+h)`.
pub fn rect_outline(fb: &mut Framebuffer, x: i64, y: i64, w: usize, h: usize, color: Rgb) {
    if w == 0 || h == 0 {
        return;
    }
    let x1 = x + w as i64 - 1;
    let y1 = y + h as i64 - 1;
    hline(fb, x, x1, y, color);
    hline(fb, x, x1, y1, color);
    vline(fb, x, y, y1, color);
    vline(fb, x1, y, y1, color);
}

/// Connected polyline through the given points.
pub fn polyline(fb: &mut Framebuffer, points: &[(i64, i64)], color: Rgb) {
    for pair in points.windows(2) {
        line(fb, pair[0].0, pair[0].1, pair[1].0, pair[1].1, color);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_horizontal() {
        let mut fb = Framebuffer::new(8, 3);
        line(&mut fb, 1, 1, 5, 1, Rgb::RED);
        assert_eq!(fb.count_pixels(Rgb::RED), 5);
        for x in 1..=5 {
            assert_eq!(fb.get(x, 1), Some(Rgb::RED));
        }
    }

    #[test]
    fn line_vertical_and_reversed() {
        let mut fb = Framebuffer::new(3, 8);
        line(&mut fb, 1, 6, 1, 2, Rgb::GREEN); // reversed endpoints
        assert_eq!(fb.count_pixels(Rgb::GREEN), 5);
    }

    #[test]
    fn line_diagonal() {
        let mut fb = Framebuffer::new(5, 5);
        line(&mut fb, 0, 0, 4, 4, Rgb::WHITE);
        for i in 0..5 {
            assert_eq!(fb.get(i, i), Some(Rgb::WHITE));
        }
        assert_eq!(fb.count_pixels(Rgb::WHITE), 5);
    }

    #[test]
    fn line_single_point() {
        let mut fb = Framebuffer::new(3, 3);
        line(&mut fb, 1, 1, 1, 1, Rgb::BLUE);
        assert_eq!(fb.count_pixels(Rgb::BLUE), 1);
    }

    #[test]
    fn line_clips_outside() {
        let mut fb = Framebuffer::new(4, 4);
        line(&mut fb, -2, -2, 6, 6, Rgb::RED);
        // Only the in-bounds diagonal is drawn.
        assert_eq!(fb.count_pixels(Rgb::RED), 4);
    }

    #[test]
    fn hline_vline_order_independent() {
        let mut fb = Framebuffer::new(6, 6);
        hline(&mut fb, 4, 1, 0, Rgb::RED);
        vline(&mut fb, 0, 4, 1, Rgb::BLUE);
        assert_eq!(fb.count_pixels(Rgb::RED), 4);
        assert_eq!(fb.count_pixels(Rgb::BLUE), 4);
    }

    #[test]
    fn rect_outline_perimeter() {
        let mut fb = Framebuffer::new(8, 8);
        rect_outline(&mut fb, 1, 1, 4, 3, Rgb::YELLOW);
        // perimeter of 4x3 = 2*4 + 2*3 - 4 corners counted once = 10
        assert_eq!(fb.count_pixels(Rgb::YELLOW), 10);
        assert_eq!(fb.get(2, 2), Some(Rgb::BLACK)); // interior untouched
    }

    #[test]
    fn rect_outline_degenerate() {
        let mut fb = Framebuffer::new(4, 4);
        rect_outline(&mut fb, 0, 0, 0, 5, Rgb::RED);
        assert_eq!(fb.count_pixels(Rgb::RED), 0);
        rect_outline(&mut fb, 1, 1, 1, 1, Rgb::RED);
        assert_eq!(fb.count_pixels(Rgb::RED), 1);
    }

    #[test]
    fn polyline_connects() {
        let mut fb = Framebuffer::new(10, 10);
        polyline(&mut fb, &[(0, 0), (3, 0), (3, 3)], Rgb::WHITE);
        assert_eq!(fb.get(1, 0), Some(Rgb::WHITE));
        assert_eq!(fb.get(3, 2), Some(Rgb::WHITE));
        // L-shape: 4 + 4 - 1 shared corner = 7
        assert_eq!(fb.count_pixels(Rgb::WHITE), 7);
    }

    #[test]
    fn polyline_empty_and_single() {
        let mut fb = Framebuffer::new(4, 4);
        polyline(&mut fb, &[], Rgb::RED);
        polyline(&mut fb, &[(1, 1)], Rgb::RED);
        assert_eq!(fb.count_pixels(Rgb::RED), 0);
    }
}
