//! Property-based tests of the rasterizer: colormap monotonicity, clipping
//! safety, blit/crop duality, image round-trips, painter translation
//! invariance.

use fv_render::color::Rgb;
use fv_render::colormap::{ColorScheme, ExpressionColorMap};
use fv_render::draw;
use fv_render::heatmap::{paint_global_at, paint_zoom_at, Region};
use fv_render::image::{decode_ppm, encode_bmp, encode_ppm};
use fv_render::Framebuffer;
use proptest::prelude::*;

prop_compose! {
    fn arb_image()(
        w in 1usize..24,
        h in 1usize..24,
        seed in any::<u64>(),
    ) -> Framebuffer {
        let mut fb = Framebuffer::new(w, h);
        let mut s = seed | 1;
        for y in 0..h {
            for x in 0..w {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                fb.put(x as i64, y as i64, Rgb::from_u32((s & 0xFFFFFF) as u32));
            }
        }
        fb
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn colormap_positive_monotone(contrast in 0.1f32..10.0, a in -20f32..20.0, b in -20f32..20.0) {
        let m = ExpressionColorMap::new(ColorScheme::RedGreen, contrast);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let (cl, ch) = (m.map(lo), m.map(hi));
        if lo >= 0.0 {
            prop_assert!(ch.r >= cl.r, "red channel must be monotone above zero");
        }
        if hi <= 0.0 {
            prop_assert!(cl.g >= ch.g, "green channel must be monotone below zero");
        }
    }

    #[test]
    fn colormap_antisymmetric(contrast in 0.1f32..10.0, v in -20f32..20.0) {
        let m = ExpressionColorMap::new(ColorScheme::RedGreen, contrast);
        let pos = m.map(v.abs());
        let neg = m.map(-v.abs());
        prop_assert_eq!(pos.r, neg.g, "red(+v) == green(-v) for the symmetric scheme");
        prop_assert_eq!(pos.g, neg.r);
    }

    #[test]
    fn put_get_clipping_never_panics(ops in prop::collection::vec((any::<i64>(), any::<i64>()), 0..50)) {
        let mut fb = Framebuffer::new(8, 8);
        for (x, y) in ops {
            fb.put(x % 100, y % 100, Rgb::RED);
            let _ = fb.get(x % 100, y % 100);
        }
    }

    #[test]
    fn line_endpoints_drawn_when_inside(x0 in 0i64..16, y0 in 0i64..16, x1 in 0i64..16, y1 in 0i64..16) {
        let mut fb = Framebuffer::new(16, 16);
        draw::line(&mut fb, x0, y0, x1, y1, Rgb::WHITE);
        prop_assert_eq!(fb.get(x0, y0), Some(Rgb::WHITE));
        prop_assert_eq!(fb.get(x1, y1), Some(Rgb::WHITE));
    }

    #[test]
    fn blit_then_crop_roundtrip(img in arb_image(), ox in 0usize..10, oy in 0usize..10) {
        let mut canvas = Framebuffer::new(40, 40);
        canvas.blit(&img, ox as i64, oy as i64);
        let back = canvas.crop(ox, oy, img.width(), img.height());
        prop_assert_eq!(back, img);
    }

    #[test]
    fn ppm_roundtrip(img in arb_image()) {
        let bytes = encode_ppm(&img);
        prop_assert_eq!(decode_ppm(&bytes).unwrap(), img);
    }

    #[test]
    fn bmp_size_formula(img in arb_image()) {
        let bytes = encode_bmp(&img);
        let row = img.width() * 3;
        let padded = row + (4 - row % 4) % 4;
        prop_assert_eq!(bytes.len(), 54 + padded * img.height());
        prop_assert_eq!(&bytes[0..2], b"BM");
    }

    #[test]
    fn zoom_painter_matches_region_wrapper(
        w in 1usize..20, h in 1usize..20,
        rows in 1usize..6, cols in 1usize..6,
    ) {
        // the signed-origin painter at (0,0) equals the Region API
        let src = |r: usize, c: usize| Some((r as f32) - (c as f32));
        let map = ExpressionColorMap::default();
        let mut a = Framebuffer::new(24, 24);
        let mut b = Framebuffer::new(24, 24);
        fv_render::heatmap::paint_zoom(&mut a, Region::new(2, 3, w, h), rows, cols, src, &map);
        paint_zoom_at(&mut b, 2, 3, w, h, rows, cols, src, &map);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn global_painter_translation_invariant(
        rows in 1usize..30, cols in 1usize..8,
        ox in 0i64..20, oy in 0i64..20,
    ) {
        let src = |r: usize, c: usize| {
            if (r + c).is_multiple_of(7) { None } else { Some(((r * 13 + c * 5) % 11) as f32 - 5.0) }
        };
        let map = ExpressionColorMap::default();
        let (w, h) = (18usize, 22usize);
        let mut full = Framebuffer::new(48, 48);
        paint_global_at(&mut full, 4, 4, w, h, rows, cols, src, &map);
        let mut tile = Framebuffer::new(16, 16);
        paint_global_at(&mut tile, 4 - ox, 4 - oy, w, h, rows, cols, src, &map);
        for y in 0..16i64 {
            for x in 0..16i64 {
                let fx = x + ox;
                let fy = y + oy;
                if fx < 48 && fy < 48 {
                    prop_assert_eq!(tile.get(x, y), full.get(fx, fy),
                        "mismatch at tile ({}, {})", x, y);
                }
            }
        }
    }

    #[test]
    fn fill_rect_count_matches_clip(x in -10i64..20, y in -10i64..20, w in 0usize..15, h in 0usize..15) {
        let mut fb = Framebuffer::new(12, 12);
        fb.fill_rect(x, y, w, h, Rgb::BLUE);
        let x0 = x.clamp(0, 12) as usize;
        let y0 = y.clamp(0, 12) as usize;
        let x1 = (x + w as i64).clamp(0, 12) as usize;
        let y1 = (y + h as i64).clamp(0, 12) as usize;
        let expect = x1.saturating_sub(x0) * y1.saturating_sub(y0);
        prop_assert_eq!(fb.count_pixels(Rgb::BLUE), expect);
    }
}
