//! The ontology DAG: terms plus `is_a` / `part_of` edges.
//!
//! Edges point **child → parent** (the OBO convention: `is_a: GO:xxxx`
//! names the parent). The builder validates that the graph is acyclic at
//! construction so every traversal downstream can assume termination.

use crate::term::{Term, TermId};
use std::collections::HashMap;
use std::fmt;

/// Relationship type between a child term and a parent term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RelType {
    /// `is_a` subsumption.
    IsA,
    /// `part_of` composition.
    PartOf,
}

impl RelType {
    /// The OBO spelling.
    pub fn as_obo(&self) -> &'static str {
        match self {
            RelType::IsA => "is_a",
            RelType::PartOf => "part_of",
        }
    }
}

/// Errors from DAG construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// A relationship referenced an accession that was never defined.
    UnknownAccession(String),
    /// The same accession was defined twice.
    DuplicateAccession(String),
    /// The edge set contains a cycle through the named accession.
    CycleDetected(String),
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::UnknownAccession(a) => write!(f, "unknown accession {a:?}"),
            DagError::DuplicateAccession(a) => write!(f, "duplicate accession {a:?}"),
            DagError::CycleDetected(a) => write!(f, "cycle detected involving {a:?}"),
        }
    }
}

impl std::error::Error for DagError {}

/// Builder for an [`OntologyDag`].
#[derive(Debug, Default)]
pub struct DagBuilder {
    terms: Vec<Term>,
    by_acc: HashMap<String, TermId>,
    edges: Vec<(TermId, TermId, RelType)>, // (child, parent, rel)
    pending: Vec<(String, String, RelType)>,
}

impl DagBuilder {
    /// Fresh builder.
    pub fn new() -> Self {
        DagBuilder::default()
    }

    /// Add a term; accessions must be unique.
    pub fn add_term(&mut self, term: Term) -> Result<TermId, DagError> {
        if self.by_acc.contains_key(&term.accession) {
            return Err(DagError::DuplicateAccession(term.accession.clone()));
        }
        let id = TermId(self.terms.len() as u32);
        self.by_acc.insert(term.accession.clone(), id);
        self.terms.push(term);
        Ok(id)
    }

    /// Add an edge by term ids.
    pub fn add_edge(&mut self, child: TermId, parent: TermId, rel: RelType) {
        self.edges.push((child, parent, rel));
    }

    /// Add an edge by accessions; resolved at [`DagBuilder::build`] time so
    /// stanzas may reference terms defined later in the file.
    pub fn add_edge_by_accession(&mut self, child: &str, parent: &str, rel: RelType) {
        self.pending
            .push((child.to_string(), parent.to_string(), rel));
    }

    /// Validate and freeze into an immutable DAG.
    pub fn build(mut self) -> Result<OntologyDag, DagError> {
        for (c, p, rel) in std::mem::take(&mut self.pending) {
            let ci = *self
                .by_acc
                .get(&c)
                .ok_or(DagError::UnknownAccession(c.clone()))?;
            let pi = *self
                .by_acc
                .get(&p)
                .ok_or(DagError::UnknownAccession(p.clone()))?;
            self.edges.push((ci, pi, rel));
        }
        let n = self.terms.len();
        let mut parents: Vec<Vec<(TermId, RelType)>> = vec![Vec::new(); n];
        let mut children: Vec<Vec<(TermId, RelType)>> = vec![Vec::new(); n];
        for &(c, p, rel) in &self.edges {
            parents[c.index()].push((p, rel));
            children[p.index()].push((c, rel));
        }
        // Deduplicate and sort adjacency for deterministic traversal.
        for adj in parents.iter_mut().chain(children.iter_mut()) {
            adj.sort_by_key(|&(t, r)| (t, r.as_obo()));
            adj.dedup();
        }

        // Kahn's algorithm over child→parent edges: peel nodes whose
        // unprocessed-parent count is zero (roots first), walking downward.
        let mut remaining: Vec<usize> = (0..n).map(|i| parents[i].len()).collect();
        let mut stack: Vec<usize> = (0..n).filter(|&i| remaining[i] == 0).collect();
        let mut topo: Vec<TermId> = Vec::with_capacity(n);
        while let Some(i) = stack.pop() {
            topo.push(TermId(i as u32));
            for &(child, _) in &children[i] {
                let ci = child.index();
                remaining[ci] -= 1;
                if remaining[ci] == 0 {
                    stack.push(ci);
                }
            }
        }
        if topo.len() != n {
            let stuck = (0..n).find(|&i| remaining[i] > 0).unwrap();
            return Err(DagError::CycleDetected(self.terms[stuck].accession.clone()));
        }

        // Depth: shortest hop count from any root (root depth 0), computed
        // in topological order (parents before children).
        let mut depth = vec![0u32; n];
        for &t in &topo {
            let i = t.index();
            if !parents[i].is_empty() {
                depth[i] = parents[i]
                    .iter()
                    .map(|&(p, _)| depth[p.index()] + 1)
                    .min()
                    .unwrap();
            }
        }

        Ok(OntologyDag {
            terms: self.terms,
            by_acc: self.by_acc,
            parents,
            children,
            topo_root_first: topo,
            depth,
        })
    }
}

/// Immutable, validated ontology DAG.
#[derive(Debug, Clone)]
pub struct OntologyDag {
    terms: Vec<Term>,
    by_acc: HashMap<String, TermId>,
    parents: Vec<Vec<(TermId, RelType)>>,
    children: Vec<Vec<(TermId, RelType)>>,
    /// Topological order with roots first.
    topo_root_first: Vec<TermId>,
    depth: Vec<u32>,
}

impl OntologyDag {
    /// Number of terms.
    pub fn n_terms(&self) -> usize {
        self.terms.len()
    }

    /// Total number of edges.
    pub fn n_edges(&self) -> usize {
        self.parents.iter().map(|p| p.len()).sum()
    }

    /// Term metadata by id.
    pub fn term(&self, id: TermId) -> &Term {
        &self.terms[id.index()]
    }

    /// Resolve an accession.
    pub fn lookup(&self, accession: &str) -> Option<TermId> {
        self.by_acc.get(accession).copied()
    }

    /// Direct parents (with relationship types).
    pub fn parents(&self, id: TermId) -> &[(TermId, RelType)] {
        &self.parents[id.index()]
    }

    /// Direct children (with relationship types).
    pub fn children(&self, id: TermId) -> &[(TermId, RelType)] {
        &self.children[id.index()]
    }

    /// Terms with no parents.
    pub fn roots(&self) -> Vec<TermId> {
        (0..self.terms.len())
            .filter(|&i| self.parents[i].is_empty())
            .map(|i| TermId(i as u32))
            .collect()
    }

    /// Terms with no children.
    pub fn leaves(&self) -> Vec<TermId> {
        (0..self.terms.len())
            .filter(|&i| self.children[i].is_empty())
            .map(|i| TermId(i as u32))
            .collect()
    }

    /// Topological order, roots first. Parents always precede children.
    pub fn topological_order(&self) -> &[TermId] {
        &self.topo_root_first
    }

    /// Minimum hop distance from a root.
    pub fn depth(&self, id: TermId) -> u32 {
        self.depth[id.index()]
    }

    /// All term ids.
    pub fn ids(&self) -> impl Iterator<Item = TermId> + '_ {
        (0..self.terms.len() as u32).map(TermId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Namespace;

    fn t(acc: &str) -> Term {
        Term::new(acc, format!("name {acc}"), Namespace::BiologicalProcess)
    }

    /// Diamond: D → B → A, D → C → A.
    fn diamond() -> OntologyDag {
        let mut b = DagBuilder::new();
        let a = b.add_term(t("GO:A")).unwrap();
        let bb = b.add_term(t("GO:B")).unwrap();
        let c = b.add_term(t("GO:C")).unwrap();
        let d = b.add_term(t("GO:D")).unwrap();
        b.add_edge(bb, a, RelType::IsA);
        b.add_edge(c, a, RelType::IsA);
        b.add_edge(d, bb, RelType::IsA);
        b.add_edge(d, c, RelType::PartOf);
        b.build().unwrap()
    }

    #[test]
    fn diamond_structure() {
        let g = diamond();
        assert_eq!(g.n_terms(), 4);
        assert_eq!(g.n_edges(), 4);
        let a = g.lookup("GO:A").unwrap();
        let d = g.lookup("GO:D").unwrap();
        assert_eq!(g.roots(), vec![a]);
        assert_eq!(g.leaves(), vec![d]);
        assert_eq!(g.parents(d).len(), 2);
        assert_eq!(g.children(a).len(), 2);
    }

    #[test]
    fn depth_shortest_path() {
        let g = diamond();
        assert_eq!(g.depth(g.lookup("GO:A").unwrap()), 0);
        assert_eq!(g.depth(g.lookup("GO:B").unwrap()), 1);
        assert_eq!(g.depth(g.lookup("GO:D").unwrap()), 2);
    }

    #[test]
    fn topo_parents_before_children() {
        let g = diamond();
        let order = g.topological_order();
        let pos: std::collections::HashMap<TermId, usize> =
            order.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        for id in g.ids() {
            for &(p, _) in g.parents(id) {
                assert!(pos[&p] < pos[&id], "parent after child in topo order");
            }
        }
    }

    #[test]
    fn cycle_rejected() {
        let mut b = DagBuilder::new();
        let x = b.add_term(t("GO:X")).unwrap();
        let y = b.add_term(t("GO:Y")).unwrap();
        b.add_edge(x, y, RelType::IsA);
        b.add_edge(y, x, RelType::IsA);
        assert!(matches!(b.build(), Err(DagError::CycleDetected(_))));
    }

    #[test]
    fn self_loop_rejected() {
        let mut b = DagBuilder::new();
        let x = b.add_term(t("GO:X")).unwrap();
        b.add_edge(x, x, RelType::IsA);
        assert!(matches!(b.build(), Err(DagError::CycleDetected(_))));
    }

    #[test]
    fn duplicate_accession_rejected() {
        let mut b = DagBuilder::new();
        b.add_term(t("GO:X")).unwrap();
        assert_eq!(
            b.add_term(t("GO:X")).unwrap_err(),
            DagError::DuplicateAccession("GO:X".into())
        );
    }

    #[test]
    fn pending_edge_unknown_accession() {
        let mut b = DagBuilder::new();
        b.add_term(t("GO:X")).unwrap();
        b.add_edge_by_accession("GO:X", "GO:NOPE", RelType::IsA);
        assert_eq!(
            b.build().unwrap_err(),
            DagError::UnknownAccession("GO:NOPE".into())
        );
    }

    #[test]
    fn pending_edges_forward_reference() {
        let mut b = DagBuilder::new();
        b.add_edge_by_accession("GO:CHILD", "GO:PARENT", RelType::IsA);
        b.add_term(t("GO:CHILD")).unwrap();
        b.add_term(t("GO:PARENT")).unwrap();
        let g = b.build().unwrap();
        let c = g.lookup("GO:CHILD").unwrap();
        let p = g.lookup("GO:PARENT").unwrap();
        assert_eq!(g.parents(c), &[(p, RelType::IsA)]);
    }

    #[test]
    fn duplicate_edges_deduplicated() {
        let mut b = DagBuilder::new();
        let x = b.add_term(t("GO:X")).unwrap();
        let y = b.add_term(t("GO:Y")).unwrap();
        b.add_edge(x, y, RelType::IsA);
        b.add_edge(x, y, RelType::IsA);
        let g = b.build().unwrap();
        assert_eq!(g.parents(x).len(), 1);
    }

    #[test]
    fn same_pair_different_rels_kept() {
        let mut b = DagBuilder::new();
        let x = b.add_term(t("GO:X")).unwrap();
        let y = b.add_term(t("GO:Y")).unwrap();
        b.add_edge(x, y, RelType::IsA);
        b.add_edge(x, y, RelType::PartOf);
        let g = b.build().unwrap();
        assert_eq!(g.parents(x).len(), 2);
    }

    #[test]
    fn empty_dag_ok() {
        let g = DagBuilder::new().build().unwrap();
        assert_eq!(g.n_terms(), 0);
        assert!(g.roots().is_empty());
    }

    #[test]
    fn multiple_roots() {
        let mut b = DagBuilder::new();
        b.add_term(t("GO:R1")).unwrap();
        b.add_term(t("GO:R2")).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.roots().len(), 2);
        assert_eq!(g.leaves().len(), 2);
    }
}
