//! Gene↔term annotations with true-path propagation.
//!
//! The *true-path rule*: a gene directly annotated to a term is implicitly
//! annotated to every ancestor of that term. GOLEM's enrichment statistics
//! count propagated annotations, so propagation is computed once here and
//! cached as per-term sorted gene lists.

use crate::dag::OntologyDag;
use crate::term::TermId;
use std::collections::{HashMap, HashSet};

/// A set of gene→term annotations over a fixed gene population.
///
/// Genes are plain strings (systematic names); the population is every gene
/// that appears in at least one annotation plus any genes registered via
/// [`AnnotationSet::ensure_gene`] (unannotated background genes matter for
/// enrichment statistics).
#[derive(Debug, Clone, Default)]
pub struct AnnotationSet {
    genes: Vec<String>,
    gene_index: HashMap<String, u32>,
    /// Direct annotations: per gene, the terms it is annotated to.
    direct: Vec<Vec<TermId>>,
}

impl AnnotationSet {
    /// Empty annotation set.
    pub fn new() -> Self {
        AnnotationSet::default()
    }

    /// Register a gene (idempotent), returning its internal index.
    pub fn ensure_gene(&mut self, gene: &str) -> u32 {
        if let Some(&i) = self.gene_index.get(gene) {
            return i;
        }
        let i = self.genes.len() as u32;
        self.genes.push(gene.to_string());
        self.gene_index.insert(gene.to_string(), i);
        self.direct.push(Vec::new());
        i
    }

    /// Annotate `gene` directly to `term`.
    pub fn annotate(&mut self, gene: &str, term: TermId) {
        let gi = self.ensure_gene(gene) as usize;
        if !self.direct[gi].contains(&term) {
            self.direct[gi].push(term);
        }
    }

    /// Number of genes in the population.
    pub fn n_genes(&self) -> usize {
        self.genes.len()
    }

    /// Gene names in registration order.
    pub fn genes(&self) -> &[String] {
        &self.genes
    }

    /// Whether the population contains `gene`.
    pub fn contains_gene(&self, gene: &str) -> bool {
        self.gene_index.contains_key(gene)
    }

    /// Direct annotations of a gene.
    pub fn direct_terms(&self, gene: &str) -> &[TermId] {
        match self.gene_index.get(gene) {
            Some(&i) => &self.direct[i as usize],
            None => &[],
        }
    }

    /// Propagate annotations up the DAG, producing a [`PropagatedAnnotations`]
    /// index: for every term, the set of genes annotated to it or to any
    /// descendant.
    pub fn propagate(&self, dag: &OntologyDag) -> PropagatedAnnotations {
        let n_terms = dag.n_terms();
        let mut gene_sets: Vec<HashSet<u32>> = vec![HashSet::new(); n_terms];
        for (gi, terms) in self.direct.iter().enumerate() {
            for &t in terms {
                gene_sets[t.index()].insert(gi as u32);
            }
        }
        // Walk terms children-before-parents (reverse topological order) and
        // union each term's genes into its parents.
        let topo = dag.topological_order().to_vec();
        for &t in topo.iter().rev() {
            if gene_sets[t.index()].is_empty() {
                continue;
            }
            let genes: Vec<u32> = gene_sets[t.index()].iter().copied().collect();
            for &(p, _) in dag.parents(t) {
                gene_sets[p.index()].extend(genes.iter().copied());
            }
        }
        let per_term: Vec<Vec<u32>> = gene_sets
            .into_iter()
            .map(|s| {
                let mut v: Vec<u32> = s.into_iter().collect();
                v.sort_unstable();
                v
            })
            .collect();
        PropagatedAnnotations {
            genes: self.genes.clone(),
            gene_index: self.gene_index.clone(),
            per_term,
        }
    }
}

/// Propagated annotation index: per-term sorted gene lists.
#[derive(Debug, Clone)]
pub struct PropagatedAnnotations {
    genes: Vec<String>,
    gene_index: HashMap<String, u32>,
    per_term: Vec<Vec<u32>>,
}

impl PropagatedAnnotations {
    /// Number of genes in the population (enrichment background size).
    pub fn n_genes(&self) -> usize {
        self.genes.len()
    }

    /// Number of genes annotated (after propagation) to `term`.
    pub fn count(&self, term: TermId) -> usize {
        self.per_term[term.index()].len()
    }

    /// Gene names annotated (after propagation) to `term`.
    pub fn genes_for(&self, term: TermId) -> Vec<&str> {
        self.per_term[term.index()]
            .iter()
            .map(|&i| self.genes[i as usize].as_str())
            .collect()
    }

    /// Whether `gene` is annotated (after propagation) to `term`.
    pub fn is_annotated(&self, gene: &str, term: TermId) -> bool {
        match self.gene_index.get(gene) {
            Some(&gi) => self.per_term[term.index()].binary_search(&gi).is_ok(),
            None => false,
        }
    }

    /// Count how many of the given genes are annotated to `term`
    /// (the overlap statistic enrichment tests need). Unknown gene names
    /// are ignored.
    pub fn count_overlap(&self, term: TermId, genes: &[&str]) -> usize {
        genes.iter().filter(|g| self.is_annotated(g, term)).count()
    }

    /// Resolve a gene name to the internal population index.
    pub fn gene_population_index(&self, gene: &str) -> Option<u32> {
        self.gene_index.get(gene).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::{DagBuilder, RelType};
    use crate::term::{Namespace, Term};

    /// A → B → D and A → C → D (diamond with D the leaf), plus lone E.
    fn dag() -> (OntologyDag, TermId, TermId, TermId, TermId, TermId) {
        let mut b = DagBuilder::new();
        let a = b
            .add_term(Term::new("GO:A", "a", Namespace::BiologicalProcess))
            .unwrap();
        let bb = b
            .add_term(Term::new("GO:B", "b", Namespace::BiologicalProcess))
            .unwrap();
        let c = b
            .add_term(Term::new("GO:C", "c", Namespace::BiologicalProcess))
            .unwrap();
        let d = b
            .add_term(Term::new("GO:D", "d", Namespace::BiologicalProcess))
            .unwrap();
        let e = b
            .add_term(Term::new("GO:E", "e", Namespace::BiologicalProcess))
            .unwrap();
        b.add_edge(bb, a, RelType::IsA);
        b.add_edge(c, a, RelType::IsA);
        b.add_edge(d, bb, RelType::IsA);
        b.add_edge(d, c, RelType::PartOf);
        let g = b.build().unwrap();
        (g, a, bb, c, d, e)
    }

    #[test]
    fn annotate_and_direct() {
        let (_, _, b, _, _, _) = dag();
        let mut ann = AnnotationSet::new();
        ann.annotate("g1", b);
        ann.annotate("g1", b); // duplicate ignored
        assert_eq!(ann.direct_terms("g1"), &[b]);
        assert_eq!(ann.direct_terms("unknown"), &[] as &[TermId]);
        assert_eq!(ann.n_genes(), 1);
    }

    #[test]
    fn propagate_leaf_reaches_all_ancestors() {
        let (g, a, b, c, d, _) = dag();
        let mut ann = AnnotationSet::new();
        ann.annotate("g1", d);
        let p = ann.propagate(&g);
        for t in [a, b, c, d] {
            assert!(
                p.is_annotated("g1", t),
                "g1 should reach {:?}",
                g.term(t).accession
            );
            assert_eq!(p.count(t), 1);
        }
    }

    #[test]
    fn propagate_mid_level_only_up() {
        let (g, a, b, _, d, _) = dag();
        let mut ann = AnnotationSet::new();
        ann.annotate("g1", b);
        let p = ann.propagate(&g);
        assert!(p.is_annotated("g1", a));
        assert!(p.is_annotated("g1", b));
        assert!(!p.is_annotated("g1", d), "propagation must not go downward");
    }

    #[test]
    fn propagate_counts_distinct_genes() {
        let (g, a, b, c, _, _) = dag();
        let mut ann = AnnotationSet::new();
        ann.annotate("g1", b);
        ann.annotate("g2", c);
        ann.annotate("g3", b);
        ann.annotate("g3", c); // g3 via both paths counts once at A
        let p = ann.propagate(&g);
        assert_eq!(p.count(a), 3);
        assert_eq!(p.count(b), 2);
        assert_eq!(p.count(c), 2);
    }

    #[test]
    fn unannotated_background_counts_in_population() {
        let (g, a, _, _, _, _) = dag();
        let mut ann = AnnotationSet::new();
        ann.annotate("g1", a);
        ann.ensure_gene("background_gene");
        let p = ann.propagate(&g);
        assert_eq!(p.n_genes(), 2);
        assert_eq!(p.count(a), 1);
    }

    #[test]
    fn genes_for_returns_names() {
        let (g, _, b, _, _, _) = dag();
        let mut ann = AnnotationSet::new();
        ann.annotate("g2", b);
        ann.annotate("g1", b);
        let p = ann.propagate(&g);
        let mut names = p.genes_for(b);
        names.sort();
        assert_eq!(names, vec!["g1", "g2"]);
    }

    #[test]
    fn count_overlap_ignores_unknowns() {
        let (g, _, b, _, _, _) = dag();
        let mut ann = AnnotationSet::new();
        ann.annotate("g1", b);
        ann.annotate("g2", b);
        ann.ensure_gene("g3");
        let p = ann.propagate(&g);
        assert_eq!(p.count_overlap(b, &["g1", "g3", "nope"]), 1);
    }

    #[test]
    fn isolated_term_has_no_genes() {
        let (g, _, _, _, _, e) = dag();
        let mut ann = AnnotationSet::new();
        ann.annotate("g1", e);
        let p = ann.propagate(&g);
        assert_eq!(p.count(e), 1);
        // Nothing flows to the diamond.
        let a = g.lookup("GO:A").unwrap();
        assert_eq!(p.count(a), 0);
    }
}
