//! GO term identity and metadata.

use std::fmt;

/// Dense index of a term within an [`crate::OntologyDag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

impl TermId {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The three GO namespaces (aspects).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Namespace {
    /// `biological_process`
    #[default]
    BiologicalProcess,
    /// `molecular_function`
    MolecularFunction,
    /// `cellular_component`
    CellularComponent,
}

impl Namespace {
    /// The OBO spelling of the namespace.
    pub fn as_obo(&self) -> &'static str {
        match self {
            Namespace::BiologicalProcess => "biological_process",
            Namespace::MolecularFunction => "molecular_function",
            Namespace::CellularComponent => "cellular_component",
        }
    }

    /// Parse the OBO spelling.
    pub fn from_obo(s: &str) -> Option<Namespace> {
        match s.trim() {
            "biological_process" => Some(Namespace::BiologicalProcess),
            "molecular_function" => Some(Namespace::MolecularFunction),
            "cellular_component" => Some(Namespace::CellularComponent),
            _ => None,
        }
    }
}

impl fmt::Display for Namespace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_obo())
    }
}

/// One ontology term.
#[derive(Debug, Clone, PartialEq)]
pub struct Term {
    /// Accession, e.g. `GO:0006950`.
    pub accession: String,
    /// Human-readable name, e.g. `response to stress`.
    pub name: String,
    /// Namespace / aspect.
    pub namespace: Namespace,
    /// Optional definition text.
    pub definition: String,
    /// Obsolete terms are kept for accession stability but excluded from
    /// traversal and enrichment.
    pub obsolete: bool,
}

impl Term {
    /// Convenience constructor for a non-obsolete term with empty definition.
    pub fn new(
        accession: impl Into<String>,
        name: impl Into<String>,
        namespace: Namespace,
    ) -> Self {
        Term {
            accession: accession.into(),
            name: name.into(),
            namespace,
            definition: String::new(),
            obsolete: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn namespace_roundtrip() {
        for ns in [
            Namespace::BiologicalProcess,
            Namespace::MolecularFunction,
            Namespace::CellularComponent,
        ] {
            assert_eq!(Namespace::from_obo(ns.as_obo()), Some(ns));
        }
        assert_eq!(Namespace::from_obo("bogus"), None);
        assert_eq!(
            Namespace::from_obo(" biological_process "),
            Some(Namespace::BiologicalProcess)
        );
    }

    #[test]
    fn display_matches_obo() {
        assert_eq!(
            Namespace::MolecularFunction.to_string(),
            "molecular_function"
        );
    }

    #[test]
    fn term_new_defaults() {
        let t = Term::new(
            "GO:0006950",
            "response to stress",
            Namespace::BiologicalProcess,
        );
        assert!(!t.obsolete);
        assert!(t.definition.is_empty());
        assert_eq!(t.accession, "GO:0006950");
    }

    #[test]
    fn term_id_index() {
        assert_eq!(TermId(7).index(), 7);
    }
}
