//! # fv-ontology — Gene Ontology substrate for GOLEM
//!
//! GOLEM (Gene Ontology Local Exploration Map, Sealfon et al. 2006 — paper
//! reference [10]) visualizes and analyzes the GO hierarchy: "GO organizes
//! known biological information into a hierarchical graph structure
//! appropriate for use in evaluating hypotheses, observing functional
//! relationships, and categorizing results" (paper, Section 3).
//!
//! This crate provides that structure:
//!
//! - [`term`] — GO terms (`GO:nnnnnnn` accessions, names, namespaces),
//! - [`dag`] — the directed acyclic graph of `is_a` / `part_of` relations,
//!   with cycle rejection and topological ordering,
//! - [`obo`] — a parser and writer for the OBO-flavoured flat file format
//!   GO is distributed in,
//! - [`annotations`] — gene↔term annotation sets with ancestor propagation
//!   (the *true-path rule*: a gene annotated to a term is implicitly
//!   annotated to every ancestor),
//! - [`query`] — ancestors/descendants, lowest common ancestors, depth and
//!   radius-bounded neighbourhoods (the "local exploration map" substrate).

#![forbid(unsafe_code)]

pub mod annotations;
pub mod dag;
pub mod obo;
pub mod query;
pub mod term;

pub use annotations::AnnotationSet;
pub use dag::{DagError, OntologyDag, RelType};
pub use term::{Namespace, Term, TermId};
