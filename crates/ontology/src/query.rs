//! Traversal queries over the ontology DAG.
//!
//! These are the graph operations behind GOLEM's local exploration map:
//! ancestor/descendant closures, radius-bounded neighbourhoods, and lowest
//! common ancestors (used to relate two enriched terms).

use crate::dag::OntologyDag;
use crate::term::TermId;
use std::collections::{HashSet, VecDeque};

/// All ancestors of `start` (excluding `start` itself), unordered.
pub fn ancestors(dag: &OntologyDag, start: TermId) -> Vec<TermId> {
    let mut seen: HashSet<TermId> = HashSet::new();
    let mut queue: VecDeque<TermId> = VecDeque::new();
    queue.push_back(start);
    while let Some(t) = queue.pop_front() {
        for &(p, _) in dag.parents(t) {
            if seen.insert(p) {
                queue.push_back(p);
            }
        }
    }
    let mut v: Vec<TermId> = seen.into_iter().collect();
    v.sort_unstable();
    v
}

/// All descendants of `start` (excluding `start` itself), unordered.
pub fn descendants(dag: &OntologyDag, start: TermId) -> Vec<TermId> {
    let mut seen: HashSet<TermId> = HashSet::new();
    let mut queue: VecDeque<TermId> = VecDeque::new();
    queue.push_back(start);
    while let Some(t) = queue.pop_front() {
        for &(c, _) in dag.children(t) {
            if seen.insert(c) {
                queue.push_back(c);
            }
        }
    }
    let mut v: Vec<TermId> = seen.into_iter().collect();
    v.sort_unstable();
    v
}

/// Terms within `radius` undirected hops of `focus`, including `focus`.
/// This is the node set of a GOLEM local exploration map.
pub fn neighbourhood(dag: &OntologyDag, focus: TermId, radius: u32) -> Vec<TermId> {
    let mut dist: Vec<Option<u32>> = vec![None; dag.n_terms()];
    dist[focus.index()] = Some(0);
    let mut queue: VecDeque<TermId> = VecDeque::new();
    queue.push_back(focus);
    while let Some(t) = queue.pop_front() {
        let d = dist[t.index()].unwrap();
        if d == radius {
            continue;
        }
        let nbrs = dag
            .parents(t)
            .iter()
            .map(|&(p, _)| p)
            .chain(dag.children(t).iter().map(|&(c, _)| c));
        for n in nbrs {
            if dist[n.index()].is_none() {
                dist[n.index()] = Some(d + 1);
                queue.push_back(n);
            }
        }
    }
    let mut v: Vec<TermId> = (0..dag.n_terms() as u32)
        .map(TermId)
        .filter(|t| dist[t.index()].is_some())
        .collect();
    v.sort_unstable();
    v
}

/// Undirected hop distance from `focus` for every term in the DAG
/// (`None` = unreachable). Used to annotate local-map nodes with distance.
pub fn hop_distances(dag: &OntologyDag, focus: TermId) -> Vec<Option<u32>> {
    let mut dist: Vec<Option<u32>> = vec![None; dag.n_terms()];
    dist[focus.index()] = Some(0);
    let mut queue: VecDeque<TermId> = VecDeque::new();
    queue.push_back(focus);
    while let Some(t) = queue.pop_front() {
        let d = dist[t.index()].unwrap();
        let nbrs = dag
            .parents(t)
            .iter()
            .map(|&(p, _)| p)
            .chain(dag.children(t).iter().map(|&(c, _)| c));
        for n in nbrs {
            if dist[n.index()].is_none() {
                dist[n.index()] = Some(d + 1);
                queue.push_back(n);
            }
        }
    }
    dist
}

/// Lowest common ancestors of `a` and `b`: the common ancestors (including
/// `a`/`b` themselves) of maximal depth. GO is a DAG, so there may be several.
pub fn lowest_common_ancestors(dag: &OntologyDag, a: TermId, b: TermId) -> Vec<TermId> {
    let mut anc_a: HashSet<TermId> = ancestors(dag, a).into_iter().collect();
    anc_a.insert(a);
    let mut anc_b: HashSet<TermId> = ancestors(dag, b).into_iter().collect();
    anc_b.insert(b);
    let common: Vec<TermId> = anc_a.intersection(&anc_b).copied().collect();
    let max_depth = common.iter().map(|&t| dag.depth(t)).max();
    match max_depth {
        None => Vec::new(),
        Some(d) => {
            let mut v: Vec<TermId> = common.into_iter().filter(|&t| dag.depth(t) == d).collect();
            v.sort_unstable();
            v
        }
    }
}

/// Every (child, parent) edge with both endpoints inside `nodes`.
/// These are the edges a local exploration map draws.
pub fn induced_edges(dag: &OntologyDag, nodes: &[TermId]) -> Vec<(TermId, TermId)> {
    let set: HashSet<TermId> = nodes.iter().copied().collect();
    let mut edges = Vec::new();
    for &n in nodes {
        for &(p, _) in dag.parents(n) {
            if set.contains(&p) {
                edges.push((n, p));
            }
        }
    }
    edges.sort_unstable();
    edges.dedup();
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::{DagBuilder, RelType};
    use crate::term::{Namespace, Term};

    /// Build:        R
    ///              / \
    ///             A   B
    ///            / \ /
    ///           C   D
    ///           |
    ///           E
    fn dag() -> (OntologyDag, [TermId; 6]) {
        let mut b = DagBuilder::new();
        let names = ["R", "A", "B", "C", "D", "E"];
        let ids: Vec<TermId> = names
            .iter()
            .map(|n| {
                b.add_term(Term::new(
                    format!("GO:{n}"),
                    *n,
                    Namespace::BiologicalProcess,
                ))
                .unwrap()
            })
            .collect();
        let [r, a, bb, c, d, e] = [ids[0], ids[1], ids[2], ids[3], ids[4], ids[5]];
        b.add_edge(a, r, RelType::IsA);
        b.add_edge(bb, r, RelType::IsA);
        b.add_edge(c, a, RelType::IsA);
        b.add_edge(d, a, RelType::IsA);
        b.add_edge(d, bb, RelType::IsA);
        b.add_edge(e, c, RelType::IsA);
        (b.build().unwrap(), [r, a, bb, c, d, e])
    }

    #[test]
    fn ancestors_closure() {
        let (g, [r, a, _, c, _, e]) = dag();
        assert_eq!(ancestors(&g, e), vec![r, a, c]);
        assert_eq!(ancestors(&g, r), vec![]);
    }

    #[test]
    fn descendants_closure() {
        let (g, [_, a, _, c, d, e]) = dag();
        assert_eq!(descendants(&g, a), vec![c, d, e]);
        assert_eq!(descendants(&g, e), vec![]);
    }

    #[test]
    fn ancestors_multi_parent() {
        let (g, [r, a, bb, _, d, _]) = dag();
        assert_eq!(ancestors(&g, d), vec![r, a, bb]);
    }

    #[test]
    fn neighbourhood_radius_zero_is_self() {
        let (g, [_, a, ..]) = dag();
        assert_eq!(neighbourhood(&g, a, 0), vec![a]);
    }

    #[test]
    fn neighbourhood_radius_one() {
        let (g, [r, a, _, c, d, _]) = dag();
        let n = neighbourhood(&g, a, 1);
        assert_eq!(n, vec![r, a, c, d]);
    }

    #[test]
    fn neighbourhood_radius_two_covers_graph() {
        let (g, ids) = dag();
        let n = neighbourhood(&g, ids[1], 2);
        assert_eq!(n.len(), 6); // whole graph within 2 hops of A
    }

    #[test]
    fn hop_distances_match_neighbourhood() {
        let (g, [_, a, ..]) = dag();
        let d = hop_distances(&g, a);
        let n1 = neighbourhood(&g, a, 1);
        for t in g.ids() {
            let within = d[t.index()].map(|x| x <= 1).unwrap_or(false);
            assert_eq!(within, n1.contains(&t));
        }
    }

    #[test]
    fn lca_simple() {
        let (g, [_, a, _, c, d, e]) = dag();
        // C and D share ancestor A (depth 1) and R (depth 0) → LCA = A
        assert_eq!(lowest_common_ancestors(&g, c, d), vec![a]);
        // E under C: LCA(E, D) = A as well
        assert_eq!(lowest_common_ancestors(&g, e, d), vec![a]);
    }

    #[test]
    fn lca_of_ancestor_descendant_is_ancestor() {
        let (g, [_, a, _, _, _, e]) = dag();
        assert_eq!(lowest_common_ancestors(&g, a, e), vec![a]);
    }

    #[test]
    fn lca_self() {
        let (g, [_, a, ..]) = dag();
        assert_eq!(lowest_common_ancestors(&g, a, a), vec![a]);
    }

    #[test]
    fn lca_disjoint_roots_empty() {
        let mut b = DagBuilder::new();
        let x = b
            .add_term(Term::new("GO:X", "x", Namespace::BiologicalProcess))
            .unwrap();
        let y = b
            .add_term(Term::new("GO:Y", "y", Namespace::BiologicalProcess))
            .unwrap();
        let g = b.build().unwrap();
        assert!(lowest_common_ancestors(&g, x, y).is_empty());
    }

    #[test]
    fn induced_edges_subset() {
        let (g, [r, a, _, c, d, _]) = dag();
        let nodes = vec![r, a, c, d];
        let e = induced_edges(&g, &nodes);
        assert!(e.contains(&(a, r)));
        assert!(e.contains(&(c, a)));
        assert!(e.contains(&(d, a)));
        // d→bb excluded because bb not in node set
        assert_eq!(e.len(), 3);
    }
}
