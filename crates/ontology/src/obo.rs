//! Parser and writer for the OBO-flavoured flat-file format GO ships in.
//!
//! We implement the subset GOLEM needs: `[Term]` stanzas with `id`, `name`,
//! `namespace`, `def`, `is_a`, `relationship: part_of`, and `is_obsolete`.
//! Unknown tags and stanza types are skipped, matching how real OBO
//! consumers tolerate format evolution. Obsolete terms are parsed but get
//! no edges (GO strips relationships from obsolete terms).

use crate::dag::{DagBuilder, DagError, OntologyDag, RelType};
use crate::term::{Namespace, Term, TermId};
use std::fmt;

/// Errors from OBO parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OboError {
    /// A `[Term]` stanza ended without an `id:` tag (line number given).
    MissingId(usize),
    /// Graph-level validation failed after parsing.
    Dag(DagError),
}

impl fmt::Display for OboError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OboError::MissingId(line) => write!(f, "[Term] stanza near line {line} has no id:"),
            OboError::Dag(e) => write!(f, "ontology graph invalid: {e}"),
        }
    }
}

impl std::error::Error for OboError {}

impl From<DagError> for OboError {
    fn from(e: DagError) -> Self {
        OboError::Dag(e)
    }
}

#[derive(Default)]
struct Stanza {
    id: Option<String>,
    name: String,
    namespace: Namespace,
    definition: String,
    obsolete: bool,
    is_a: Vec<String>,
    part_of: Vec<String>,
    start_line: usize,
}

/// Parse OBO text into a validated [`OntologyDag`].
pub fn parse_obo(text: &str) -> Result<OntologyDag, OboError> {
    let mut builder = DagBuilder::new();
    let mut current: Option<Stanza> = None;
    let mut in_term_stanza = false;

    let flush = |stanza: Option<Stanza>, builder: &mut DagBuilder| -> Result<(), OboError> {
        if let Some(s) = stanza {
            let id = s.id.ok_or(OboError::MissingId(s.start_line))?;
            let term = Term {
                accession: id.clone(),
                name: s.name,
                namespace: s.namespace,
                definition: s.definition,
                obsolete: s.obsolete,
            };
            builder.add_term(term)?;
            if !s.obsolete {
                for p in s.is_a {
                    builder.add_edge_by_accession(&id, &p, RelType::IsA);
                }
                for p in s.part_of {
                    builder.add_edge_by_accession(&id, &p, RelType::PartOf);
                }
            }
        }
        Ok(())
    };

    for (lineno, raw) in text.lines().enumerate() {
        // Strip trailing comments (unescaped `!`), then whitespace.
        let line = match raw.find('!') {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            flush(current.take(), &mut builder)?;
            in_term_stanza = line == "[Term]";
            if in_term_stanza {
                current = Some(Stanza {
                    start_line: lineno + 1,
                    ..Stanza::default()
                });
            }
            continue;
        }
        if !in_term_stanza {
            continue; // header lines or non-Term stanzas
        }
        let Some(stanza) = current.as_mut() else {
            continue;
        };
        let Some((tag, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        match tag.trim() {
            "id" => stanza.id = Some(value.to_string()),
            "name" => stanza.name = value.to_string(),
            "namespace" => {
                if let Some(ns) = Namespace::from_obo(value) {
                    stanza.namespace = ns;
                }
            }
            "def" => {
                // def: "text" [refs] — keep the quoted part.
                let def = value
                    .split('"')
                    .nth(1)
                    .map(str::to_string)
                    .unwrap_or_else(|| value.to_string());
                stanza.definition = def;
            }
            "is_a" => {
                // is_a: GO:0008150 (name after ! already stripped)
                if let Some(acc) = value.split_whitespace().next() {
                    stanza.is_a.push(acc.to_string());
                }
            }
            "relationship" => {
                // relationship: part_of GO:0008150
                let mut parts = value.split_whitespace();
                if parts.next() == Some("part_of") {
                    if let Some(acc) = parts.next() {
                        stanza.part_of.push(acc.to_string());
                    }
                }
            }
            "is_obsolete" => stanza.obsolete = value == "true",
            _ => {}
        }
    }
    flush(current.take(), &mut builder)?;
    Ok(builder.build()?)
}

/// Serialize a DAG back to OBO text (stable order: term id order).
pub fn write_obo(dag: &OntologyDag) -> String {
    let mut out = String::with_capacity(dag.n_terms() * 96);
    out.push_str("format-version: 1.2\nontology: fv\n");
    for id in dag.ids() {
        let t = dag.term(id);
        out.push_str("\n[Term]\n");
        out.push_str(&format!("id: {}\n", t.accession));
        out.push_str(&format!("name: {}\n", t.name));
        out.push_str(&format!("namespace: {}\n", t.namespace.as_obo()));
        if !t.definition.is_empty() {
            out.push_str(&format!("def: \"{}\" []\n", t.definition));
        }
        if t.obsolete {
            out.push_str("is_obsolete: true\n");
        }
        for &(p, rel) in dag.parents(id) {
            let pacc = &dag.term(p).accession;
            match rel {
                RelType::IsA => out.push_str(&format!("is_a: {pacc}\n")),
                RelType::PartOf => out.push_str(&format!("relationship: part_of {pacc}\n")),
            }
        }
    }
    out
}

/// Accessions of all non-obsolete terms, in id order (handy for tests).
pub fn live_accessions(dag: &OntologyDag) -> Vec<&str> {
    dag.ids()
        .filter(|&i| !dag.term(i).obsolete)
        .map(|i| dag.term(i).accession.as_str())
        .collect()
}

/// Look up several accessions at once, ignoring unknowns.
pub fn lookup_many(dag: &OntologyDag, accessions: &[&str]) -> Vec<TermId> {
    accessions.iter().filter_map(|a| dag.lookup(a)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"format-version: 1.2
ontology: go

[Term]
id: GO:0008150
name: biological_process
namespace: biological_process
def: "Any process specifically pertinent to the functioning of integrated living units." [GOC:go_curators]

[Term]
id: GO:0006950
name: response to stress
namespace: biological_process
is_a: GO:0008150 ! biological_process

[Term]
id: GO:0009408
name: response to heat
namespace: biological_process
is_a: GO:0006950 ! response to stress
relationship: part_of GO:0008150 ! biological_process

[Term]
id: GO:0000001
name: old term
namespace: biological_process
is_obsolete: true
is_a: GO:0008150

[Typedef]
id: part_of
name: part of
"#;

    #[test]
    fn parse_counts() {
        let g = parse_obo(SAMPLE).unwrap();
        assert_eq!(g.n_terms(), 4);
        // obsolete term's edges dropped: 1 (stress→bp) + 2 (heat→stress, heat part_of bp)
        assert_eq!(g.n_edges(), 3);
    }

    #[test]
    fn parse_relationships() {
        let g = parse_obo(SAMPLE).unwrap();
        let heat = g.lookup("GO:0009408").unwrap();
        let stress = g.lookup("GO:0006950").unwrap();
        let bp = g.lookup("GO:0008150").unwrap();
        let parents = g.parents(heat);
        assert!(parents.contains(&(stress, RelType::IsA)));
        assert!(parents.contains(&(bp, RelType::PartOf)));
    }

    #[test]
    fn parse_def_extracts_quoted() {
        let g = parse_obo(SAMPLE).unwrap();
        let bp = g.lookup("GO:0008150").unwrap();
        assert!(g.term(bp).definition.starts_with("Any process"));
    }

    #[test]
    fn obsolete_flag_and_no_edges() {
        let g = parse_obo(SAMPLE).unwrap();
        let old = g.lookup("GO:0000001").unwrap();
        assert!(g.term(old).obsolete);
        assert!(g.parents(old).is_empty());
    }

    #[test]
    fn typedef_stanza_skipped() {
        let g = parse_obo(SAMPLE).unwrap();
        assert!(g.lookup("part_of").is_none());
    }

    #[test]
    fn comments_stripped() {
        let text = "[Term]\nid: GO:1 ! trailing comment\nname: x\n";
        let g = parse_obo(text).unwrap();
        assert!(g.lookup("GO:1").is_some());
    }

    #[test]
    fn missing_id_is_error() {
        let text = "[Term]\nname: anonymous\n";
        assert!(matches!(parse_obo(text), Err(OboError::MissingId(_))));
    }

    #[test]
    fn unknown_parent_is_error() {
        let text = "[Term]\nid: GO:1\nname: a\nis_a: GO:MISSING\n";
        assert!(matches!(
            parse_obo(text),
            Err(OboError::Dag(DagError::UnknownAccession(_)))
        ));
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let g1 = parse_obo(SAMPLE).unwrap();
        let text = write_obo(&g1);
        let g2 = parse_obo(&text).unwrap();
        assert_eq!(g1.n_terms(), g2.n_terms());
        assert_eq!(g1.n_edges(), g2.n_edges());
        for id in g1.ids() {
            let acc = &g1.term(id).accession;
            let id2 = g2.lookup(acc).expect("term survives roundtrip");
            assert_eq!(g1.term(id).name, g2.term(id2).name);
            assert_eq!(g1.term(id).obsolete, g2.term(id2).obsolete);
            assert_eq!(g1.parents(id).len(), g2.parents(id2).len());
        }
    }

    #[test]
    fn lookup_many_ignores_unknown() {
        let g = parse_obo(SAMPLE).unwrap();
        let ids = lookup_many(&g, &["GO:0008150", "GO:NOPE", "GO:0009408"]);
        assert_eq!(ids.len(), 2);
    }

    #[test]
    fn live_accessions_excludes_obsolete() {
        let g = parse_obo(SAMPLE).unwrap();
        let acc = live_accessions(&g);
        assert_eq!(acc.len(), 3);
        assert!(!acc.contains(&"GO:0000001"));
    }

    #[test]
    fn empty_input_parses_empty_dag() {
        let g = parse_obo("").unwrap();
        assert_eq!(g.n_terms(), 0);
    }
}
