//! Property-based tests of the ontology DAG and annotation propagation.

use fv_ontology::annotations::AnnotationSet;
use fv_ontology::dag::{DagBuilder, OntologyDag, RelType};
use fv_ontology::query::{ancestors, descendants, hop_distances, neighbourhood};
use fv_ontology::term::{Namespace, Term, TermId};
use proptest::prelude::*;

// A random DAG: term i (i ≥ 1) picks 1–2 parents among terms < i, so the
// structure is acyclic by construction but has multi-parent nodes.
prop_compose! {
    fn arb_dag()(
        n in 2usize..40,
        parent_picks in prop::collection::vec((any::<u64>(), any::<bool>()), 40),
    ) -> OntologyDag {
        let mut b = DagBuilder::new();
        for i in 0..n {
            b.add_term(Term::new(format!("GO:{i:04}"), format!("term {i}"), Namespace::BiologicalProcess)).unwrap();
        }
        for i in 1..n {
            let (pick, second) = parent_picks[i % parent_picks.len()];
            let p1 = (pick as usize) % i;
            b.add_edge(TermId(i as u32), TermId(p1 as u32), RelType::IsA);
            if second && i > 1 {
                let p2 = ((pick >> 32) as usize) % i;
                if p2 != p1 {
                    b.add_edge(TermId(i as u32), TermId(p2 as u32), RelType::PartOf);
                }
            }
        }
        b.build().expect("construction is acyclic")
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn topo_order_respects_edges(dag in arb_dag()) {
        let order = dag.topological_order();
        prop_assert_eq!(order.len(), dag.n_terms());
        let pos: std::collections::HashMap<TermId, usize> =
            order.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        for t in dag.ids() {
            for &(p, _) in dag.parents(t) {
                prop_assert!(pos[&p] < pos[&t], "parent after child");
            }
        }
    }

    #[test]
    fn depth_is_min_parent_depth_plus_one(dag in arb_dag()) {
        for t in dag.ids() {
            let parents = dag.parents(t);
            if parents.is_empty() {
                prop_assert_eq!(dag.depth(t), 0);
            } else {
                let expect = parents.iter().map(|&(p, _)| dag.depth(p) + 1).min().unwrap();
                prop_assert_eq!(dag.depth(t), expect);
            }
        }
    }

    #[test]
    fn ancestors_descendants_dual(dag in arb_dag(), a in any::<u32>(), b in any::<u32>()) {
        let n = dag.n_terms() as u32;
        let x = TermId(a % n);
        let y = TermId(b % n);
        let x_anc = ancestors(&dag, x);
        let y_desc = descendants(&dag, y);
        // y ∈ ancestors(x) ⟺ x ∈ descendants(y)
        prop_assert_eq!(x_anc.contains(&y), y_desc.contains(&x));
    }

    #[test]
    fn neighbourhood_monotone_in_radius(dag in arb_dag(), f in any::<u32>()) {
        let focus = TermId(f % dag.n_terms() as u32);
        let mut last: Vec<TermId> = vec![focus];
        for r in 0..4u32 {
            let nb = neighbourhood(&dag, focus, r);
            for t in &last {
                prop_assert!(nb.contains(t), "radius {r} lost a node");
            }
            last = nb;
        }
    }

    #[test]
    fn hop_distances_triangle(dag in arb_dag(), f in any::<u32>()) {
        let focus = TermId(f % dag.n_terms() as u32);
        let dist = hop_distances(&dag, focus);
        prop_assert_eq!(dist[focus.index()], Some(0));
        // each node's distance differs by exactly ≤1 from some neighbour
        for t in dag.ids() {
            if t == focus { continue; }
            if let Some(d) = dist[t.index()] {
                let nbrs: Vec<TermId> = dag
                    .parents(t).iter().map(|&(p, _)| p)
                    .chain(dag.children(t).iter().map(|&(c, _)| c))
                    .collect();
                prop_assert!(
                    nbrs.iter().any(|n| dist[n.index()] == Some(d - 1)),
                    "no neighbour at distance {}", d - 1
                );
            }
        }
    }

    #[test]
    fn propagation_closure(dag in arb_dag(), annotations in prop::collection::vec((any::<u32>(), any::<u32>()), 1..60)) {
        let n = dag.n_terms() as u32;
        let mut ann = AnnotationSet::new();
        for (g, t) in &annotations {
            ann.annotate(&format!("g{}", g % 10), TermId(t % n));
        }
        let prop_ann = ann.propagate(&dag);
        // Invariant 1: parent count ≥ child count (genes flow upward).
        for t in dag.ids() {
            for &(p, _) in dag.parents(t) {
                prop_assert!(
                    prop_ann.count(p) >= prop_ann.count(t),
                    "parent {} has fewer genes than child {}",
                    dag.term(p).accession, dag.term(t).accession
                );
            }
        }
        // Invariant 2: direct annotation implies propagated annotation at
        // every ancestor.
        for (g, t) in &annotations {
            let gene = format!("g{}", g % 10);
            let term = TermId(t % n);
            prop_assert!(prop_ann.is_annotated(&gene, term));
            for anc in ancestors(&dag, term) {
                prop_assert!(prop_ann.is_annotated(&gene, anc));
            }
        }
    }
}
