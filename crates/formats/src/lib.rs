//! # fv-formats — microarray file formats for ForestView
//!
//! "At the bottom level are the microarray datasets typically accessed
//! through cdt or pcl files" (paper, Section 2). This crate reads and
//! writes those formats so ForestView interoperates with the Cluster /
//! Java TreeView ecosystem the paper builds on:
//!
//! - [`pcl`] — the tab-delimited PCL expression table
//!   (`ID NAME GWEIGHT cond…` header, optional `EWEIGHT` row, blank cells
//!   for missing values),
//! - [`cdt`] — clustered data tables (PCL plus `GID` column / `AID` row
//!   carrying tree leaf identities, rows in dendrogram order),
//! - [`tree_files`] — `.gtr` / `.atr` dendrogram files pairing with a CDT,
//! - [`export`] — ForestView's exports: gene lists and merged datasets
//!   ("the user can export the gene list, and if desired all of the
//!   expression data", Section 2),
//! - [`detect`] — format sniffing for drag-and-drop style loading.

#![forbid(unsafe_code)]

pub mod cdt;
pub mod detect;
pub mod export;
pub mod pcl;
pub mod tree_files;

pub use detect::{detect_format, FileFormat};
pub use pcl::{parse_pcl, write_pcl};

use std::fmt;

/// Errors from format parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatError {
    /// Input had no header line.
    EmptyInput,
    /// Header lacked a required column: the payload names it.
    MissingColumn(String),
    /// A data row had the wrong number of fields: `(line, expected, actual)`.
    RaggedRow(usize, usize, usize),
    /// A numeric field failed to parse: `(line, text)`.
    BadNumber(usize, String),
    /// A tree file referenced an unknown node id.
    UnknownNode(String),
    /// A tree file is structurally invalid (e.g. not a single tree).
    BadTree(String),
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::EmptyInput => write!(f, "empty input"),
            FormatError::MissingColumn(c) => write!(f, "missing required column {c:?}"),
            FormatError::RaggedRow(l, e, a) => {
                write!(f, "line {l}: expected {e} fields, got {a}")
            }
            FormatError::BadNumber(l, t) => write!(f, "line {l}: bad number {t:?}"),
            FormatError::UnknownNode(n) => write!(f, "unknown tree node {n:?}"),
            FormatError::BadTree(m) => write!(f, "invalid tree: {m}"),
        }
    }
}

impl std::error::Error for FormatError {}
