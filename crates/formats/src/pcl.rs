//! PCL (pre-clustering) expression tables.
//!
//! Layout (tab-delimited):
//!
//! ```text
//! ID      NAME      GWEIGHT  heat 15m  heat 30m  ...
//! EWEIGHT                    1         1         ...
//! YAL005C SSA1 ...  1.0      0.45      1.21      ...
//! ```
//!
//! The `GWEIGHT` column and `EWEIGHT` row are optional; blank value cells
//! are missing measurements. `NAME` conventionally holds
//! `COMMON_NAME description...`; we split on the first space so both the
//! common name and the annotation are searchable.

use crate::FormatError;
use fv_expr::matrix::ExprMatrix;
use fv_expr::meta::{ConditionMeta, GeneMeta};
use fv_expr::Dataset;

/// Parse PCL text into a [`Dataset`] with the given name.
pub fn parse_pcl(name: &str, text: &str) -> Result<Dataset, FormatError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or(FormatError::EmptyInput)?;
    let head: Vec<&str> = header.split('\t').collect();
    if head.len() < 2 {
        return Err(FormatError::MissingColumn("NAME".into()));
    }
    // Meta columns: ID, NAME, then GWEIGHT if present.
    let has_gweight = head.get(2).map(|c| c.eq_ignore_ascii_case("GWEIGHT")) == Some(true);
    let n_meta = if has_gweight { 3 } else { 2 };
    let cond_labels: Vec<String> = head[n_meta..].iter().map(|s| s.to_string()).collect();
    let n_cols = cond_labels.len();

    let mut genes: Vec<GeneMeta> = Vec::new();
    let mut rows: Vec<Vec<Option<f32>>> = Vec::new();
    let mut eweights: Vec<f32> = vec![1.0; n_cols];

    for (lineno, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields[0].eq_ignore_ascii_case("EWEIGHT") {
            for (c, f) in fields.iter().skip(n_meta).take(n_cols).enumerate() {
                if !f.trim().is_empty() {
                    eweights[c] = f
                        .trim()
                        .parse()
                        .map_err(|_| FormatError::BadNumber(lineno + 1, f.to_string()))?;
                }
            }
            continue;
        }
        if fields.len() != n_meta + n_cols {
            return Err(FormatError::RaggedRow(
                lineno + 1,
                n_meta + n_cols,
                fields.len(),
            ));
        }
        let id = fields[0].trim().to_string();
        let name_field = fields[1].trim();
        let (gene_name, annotation) = match name_field.split_once(' ') {
            Some((n, rest)) => (n.to_string(), rest.trim().to_string()),
            None => (name_field.to_string(), String::new()),
        };
        let weight = if has_gweight && !fields[2].trim().is_empty() {
            fields[2]
                .trim()
                .parse()
                .map_err(|_| FormatError::BadNumber(lineno + 1, fields[2].to_string()))?
        } else {
            1.0
        };
        genes.push(GeneMeta {
            id,
            name: gene_name,
            annotation,
            weight,
        });
        let mut row: Vec<Option<f32>> = Vec::with_capacity(n_cols);
        for f in &fields[n_meta..] {
            let t = f.trim();
            if t.is_empty() {
                row.push(None);
            } else {
                let v: f32 = t
                    .parse()
                    .map_err(|_| FormatError::BadNumber(lineno + 1, t.to_string()))?;
                row.push(if v.is_finite() { Some(v) } else { None });
            }
        }
        rows.push(row);
    }

    let matrix =
        ExprMatrix::from_option_rows(&rows).map_err(|_| FormatError::RaggedRow(0, n_cols, 0))?;
    // A fully empty PCL still needs the right column count.
    let matrix = if rows.is_empty() {
        ExprMatrix::missing(0, n_cols)
    } else {
        matrix
    };
    let conditions = cond_labels
        .into_iter()
        .zip(eweights)
        .map(|(label, weight)| ConditionMeta { label, weight })
        .collect();
    Dataset::new(name, matrix, genes, conditions).map_err(|e| FormatError::BadTree(e.to_string()))
}

/// Serialize a [`Dataset`] to PCL text (always includes GWEIGHT/EWEIGHT).
pub fn write_pcl(ds: &Dataset) -> String {
    let mut out = String::new();
    out.push_str("ID\tNAME\tGWEIGHT");
    for c in &ds.conditions {
        out.push('\t');
        out.push_str(&c.label);
    }
    out.push('\n');
    out.push_str("EWEIGHT\t\t");
    for c in &ds.conditions {
        out.push('\t');
        out.push_str(&format_weight(c.weight));
    }
    out.push('\n');
    for (r, g) in ds.genes.iter().enumerate() {
        out.push_str(&g.id);
        out.push('\t');
        out.push_str(&joined_name(g));
        out.push('\t');
        out.push_str(&format_weight(g.weight));
        for c in 0..ds.matrix.n_cols() {
            out.push('\t');
            if let Some(v) = ds.matrix.get(r, c) {
                out.push_str(&format!("{v}"));
            }
        }
        out.push('\n');
    }
    out
}

pub(crate) fn joined_name(g: &GeneMeta) -> String {
    if g.annotation.is_empty() {
        g.name.clone()
    } else if g.name.is_empty() {
        g.annotation.clone()
    } else {
        format!("{} {}", g.name, g.annotation)
    }
}

pub(crate) fn format_weight(w: f32) -> String {
    if (w - w.round()).abs() < 1e-6 {
        format!("{}", w.round() as i64)
    } else {
        format!("{w}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "ID\tNAME\tGWEIGHT\theat 15m\theat 30m\n\
EWEIGHT\t\t\t1\t0.5\n\
YAL005C\tSSA1 cytoplasmic chaperone\t1\t0.45\t1.21\n\
YBR072W\tHSP26 small heat shock protein\t1\t\t2.0\n\
YCL050C\tAPA1 diadenosine\t2\t-0.3\t-0.9\n";

    #[test]
    fn parse_shapes() {
        let d = parse_pcl("stress", SAMPLE).unwrap();
        assert_eq!(d.name, "stress");
        assert_eq!(d.n_genes(), 3);
        assert_eq!(d.n_conditions(), 2);
        assert_eq!(d.condition_labels(), vec!["heat 15m", "heat 30m"]);
    }

    #[test]
    fn parse_values_and_missing() {
        let d = parse_pcl("s", SAMPLE).unwrap();
        assert_eq!(d.matrix.get(0, 0), Some(0.45));
        assert_eq!(d.matrix.get(1, 0), None); // blank cell
        assert_eq!(d.matrix.get(1, 1), Some(2.0));
    }

    #[test]
    fn parse_meta_splits_name() {
        let d = parse_pcl("s", SAMPLE).unwrap();
        assert_eq!(d.genes[0].name, "SSA1");
        assert_eq!(d.genes[0].annotation, "cytoplasmic chaperone");
        assert_eq!(d.genes[2].weight, 2.0);
    }

    #[test]
    fn parse_eweight_row() {
        let d = parse_pcl("s", SAMPLE).unwrap();
        assert_eq!(d.conditions[0].weight, 1.0);
        assert_eq!(d.conditions[1].weight, 0.5);
    }

    #[test]
    fn parse_without_gweight_column() {
        let text = "ID\tNAME\tc1\tc2\ng1\tFOO desc\t1.0\t2.0\n";
        let d = parse_pcl("s", text).unwrap();
        assert_eq!(d.n_conditions(), 2);
        assert_eq!(d.genes[0].weight, 1.0);
        assert_eq!(d.matrix.get(0, 1), Some(2.0));
    }

    #[test]
    fn parse_rejects_ragged() {
        let text = "ID\tNAME\tGWEIGHT\tc1\tc2\ng1\tX\t1\t0.5\n";
        assert!(matches!(
            parse_pcl("s", text),
            Err(FormatError::RaggedRow(2, 5, 4))
        ));
    }

    #[test]
    fn parse_rejects_bad_number() {
        let text = "ID\tNAME\tGWEIGHT\tc1\ng1\tX\t1\tnot_a_number\n";
        assert!(matches!(
            parse_pcl("s", text),
            Err(FormatError::BadNumber(2, _))
        ));
    }

    #[test]
    fn parse_empty_input() {
        assert!(matches!(parse_pcl("s", ""), Err(FormatError::EmptyInput)));
    }

    #[test]
    fn parse_skips_blank_lines() {
        let text = "ID\tNAME\tGWEIGHT\tc1\n\ng1\tX\t1\t0.5\n\n";
        let d = parse_pcl("s", text).unwrap();
        assert_eq!(d.n_genes(), 1);
    }

    #[test]
    fn roundtrip_preserves_data() {
        let d1 = parse_pcl("s", SAMPLE).unwrap();
        let text = write_pcl(&d1);
        let d2 = parse_pcl("s", &text).unwrap();
        assert_eq!(d1.n_genes(), d2.n_genes());
        assert_eq!(d1.n_conditions(), d2.n_conditions());
        for r in 0..d1.n_genes() {
            assert_eq!(d1.genes[r].id, d2.genes[r].id);
            assert_eq!(d1.genes[r].name, d2.genes[r].name);
            for c in 0..d1.n_conditions() {
                match (d1.matrix.get(r, c), d2.matrix.get(r, c)) {
                    (Some(a), Some(b)) => assert!((a - b).abs() < 1e-6),
                    (None, None) => {}
                    other => panic!("mask mismatch at ({r},{c}): {other:?}"),
                }
            }
        }
        assert_eq!(d1.conditions[1].weight, d2.conditions[1].weight);
    }

    #[test]
    fn zero_gene_pcl() {
        let text = "ID\tNAME\tGWEIGHT\tc1\tc2\n";
        let d = parse_pcl("s", text).unwrap();
        assert_eq!(d.n_genes(), 0);
        assert_eq!(d.n_conditions(), 2);
    }

    #[test]
    fn infinite_value_becomes_missing() {
        let text = "ID\tNAME\tGWEIGHT\tc1\ng1\tX\t1\tinf\n";
        let d = parse_pcl("s", text).unwrap();
        assert_eq!(d.matrix.get(0, 0), None);
    }
}
