//! ForestView's export paths.
//!
//! "When an interesting gene subset is identified, the user can export the
//! gene list, and if desired all of the expression data, for further
//! analysis in another application. This subset can also be loaded into the
//! ForestView display as a dataset." (paper, Section 2). The merged-dataset
//! export produces one wide table whose columns are prefixed by dataset
//! name, which is also the "Export Merged Dataset" box of Figure 1.

use fv_expr::merged::MergedDatasets;
use fv_expr::universe::GeneId;
use fv_expr::Dataset;

/// Export a gene list as plain text, one systematic id per line.
pub fn export_gene_list(merged: &MergedDatasets, genes: &[GeneId]) -> String {
    let mut out = String::new();
    for &g in genes {
        out.push_str(merged.universe().name(g));
        out.push('\n');
    }
    out
}

/// Export a gene list with annotations (TSV: id, name, annotation), pulling
/// metadata from the first dataset that measures each gene.
pub fn export_gene_list_annotated(merged: &MergedDatasets, genes: &[GeneId]) -> String {
    let mut out = String::from("ID\tNAME\tANNOTATION\n");
    for &g in genes {
        let id_name = merged.universe().name(g);
        let mut name = "";
        let mut ann = "";
        for d in 0..merged.n_datasets() {
            if let Some(row) = merged.gene_row(d, g) {
                let gm = &merged.dataset(d).genes[row];
                name = &gm.name;
                ann = &gm.annotation;
                break;
            }
        }
        out.push_str(&format!("{id_name}\t{name}\t{ann}\n"));
    }
    out
}

/// Export the expression of `genes` across **all** datasets as one wide
/// tab-delimited table. Columns are `dataset::condition`; cells for genes a
/// dataset does not measure are blank, exactly like missing values.
pub fn export_merged(merged: &MergedDatasets, genes: &[GeneId]) -> String {
    let mut out = String::from("ID");
    for d in 0..merged.n_datasets() {
        let ds = merged.dataset(d);
        for c in &ds.conditions {
            out.push('\t');
            out.push_str(&ds.name);
            out.push_str("::");
            out.push_str(&c.label);
        }
    }
    out.push('\n');
    for &g in genes {
        out.push_str(merged.universe().name(g));
        for d in 0..merged.n_datasets() {
            let ds = merged.dataset(d);
            for c in 0..ds.matrix.n_cols() {
                out.push('\t');
                if let Some(v) = merged.value(d, g, c) {
                    out.push_str(&format!("{v}"));
                }
            }
        }
        out.push('\n');
    }
    out
}

/// Materialize a selection as a new [`Dataset`] drawn from one dataset —
/// the "load the subset back into the display" path. Genes the dataset does
/// not measure are skipped.
pub fn selection_as_dataset(
    merged: &MergedDatasets,
    dataset_index: usize,
    genes: &[GeneId],
    name: &str,
) -> Dataset {
    let ds = merged.dataset(dataset_index);
    let rows: Vec<usize> = genes
        .iter()
        .filter_map(|&g| merged.gene_row(dataset_index, g))
        .collect();
    ds.subset_rows(&rows, name)
        .expect("rows from gene_row are in bounds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fv_expr::matrix::ExprMatrix;
    use fv_expr::meta::{ConditionMeta, GeneMeta};

    fn merged() -> MergedDatasets {
        let mut m = MergedDatasets::new();
        let m1 = ExprMatrix::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        m.add(
            Dataset::new(
                "alpha",
                m1,
                vec![
                    GeneMeta::new("G1", "AAA", "first gene"),
                    GeneMeta::new("G2", "BBB", "second gene"),
                ],
                vec![ConditionMeta::new("t0"), ConditionMeta::new("t1")],
            )
            .unwrap(),
        )
        .unwrap();
        let m2 = ExprMatrix::from_rows(1, 1, &[9.0]).unwrap();
        m.add(
            Dataset::new(
                "beta",
                m2,
                vec![GeneMeta::id_only("G2")],
                vec![ConditionMeta::new("x")],
            )
            .unwrap(),
        )
        .unwrap();
        m
    }

    #[test]
    fn gene_list_plain() {
        let m = merged();
        let ids = m.resolve_genes(&["G2", "G1"]);
        let text = export_gene_list(&m, &ids);
        assert_eq!(text, "G2\nG1\n");
    }

    #[test]
    fn gene_list_annotated_pulls_first_meta() {
        let m = merged();
        let ids = m.resolve_genes(&["G2"]);
        let text = export_gene_list_annotated(&m, &ids);
        assert!(text.contains("G2\tBBB\tsecond gene"));
    }

    #[test]
    fn merged_export_header_prefixes() {
        let m = merged();
        let ids = m.resolve_genes(&["G1"]);
        let text = export_merged(&m, &ids);
        let header = text.lines().next().unwrap();
        assert_eq!(header, "ID\talpha::t0\talpha::t1\tbeta::x");
    }

    #[test]
    fn merged_export_blank_for_absent_gene() {
        let m = merged();
        let ids = m.resolve_genes(&["G1", "G2"]);
        let text = export_merged(&m, &ids);
        let lines: Vec<&str> = text.lines().collect();
        // G1 is not in beta → trailing blank field
        assert_eq!(lines[1], "G1\t1\t2\t");
        assert_eq!(lines[2], "G2\t3\t4\t9");
    }

    #[test]
    fn selection_as_dataset_subsets() {
        let m = merged();
        let ids = m.resolve_genes(&["G2", "G1"]);
        let ds = selection_as_dataset(&m, 0, &ids, "picked");
        assert_eq!(ds.name, "picked");
        assert_eq!(ds.n_genes(), 2);
        assert_eq!(ds.genes[0].id, "G2");
        // beta only has G2
        let ds2 = selection_as_dataset(&m, 1, &ids, "picked2");
        assert_eq!(ds2.n_genes(), 1);
    }

    #[test]
    fn empty_selection_exports_header_only() {
        let m = merged();
        let text = export_merged(&m, &[]);
        assert_eq!(text.lines().count(), 1);
        assert!(export_gene_list(&m, &[]).is_empty());
    }
}
