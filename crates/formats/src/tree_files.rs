//! GTR/ATR dendrogram files.
//!
//! A `.gtr` file pairs with a clustered `.cdt`: each line records one merge,
//! bottom-up, as `NODE<k>X  child  child  score`, where children are
//! `GENE<i>X` leaves or earlier `NODE<j>X` merges, and `score` is the
//! *similarity* at the merge (TreeView convention: correlation, so
//! `score = 1 − height` for correlation distances). `.atr` files are
//! identical with `ARRY<i>X` leaves.

use crate::FormatError;
use fv_cluster::tree::{ClusterTree, Merge, NodeRef};
use std::collections::HashMap;

/// Leaf id prefix for gene trees (`GENE3X`).
pub const GENE_PREFIX: &str = "GENE";
/// Leaf id prefix for array trees (`ARRY3X`).
pub const ARRAY_PREFIX: &str = "ARRY";

/// Serialize a tree as GTR/ATR text. `leaf_prefix` is [`GENE_PREFIX`] or
/// [`ARRAY_PREFIX`]. Heights are converted to similarity scores
/// (`1 − height`).
pub fn write_tree(tree: &ClusterTree, leaf_prefix: &str) -> String {
    let mut out = String::new();
    for (i, m) in tree.merges().iter().enumerate() {
        let child = |n: NodeRef| -> String {
            match n {
                NodeRef::Leaf(l) => format!("{leaf_prefix}{l}X"),
                NodeRef::Internal(k) => format!("NODE{k}X"),
            }
        };
        out.push_str(&format!(
            "NODE{i}X\t{}\t{}\t{}\n",
            child(m.left),
            child(m.right),
            1.0 - m.height
        ));
    }
    out
}

/// Parse GTR/ATR text into a [`ClusterTree`].
///
/// `n_leaves` must match the paired CDT's row (or column) count; leaves not
/// mentioned in the file are rejected as a structural error unless the tree
/// is empty.
pub fn parse_tree(
    text: &str,
    leaf_prefix: &str,
    n_leaves: usize,
) -> Result<ClusterTree, FormatError> {
    let mut merges: Vec<Merge> = Vec::new();
    let mut node_ids: HashMap<String, usize> = HashMap::new();
    let mut sizes: Vec<u32> = Vec::new();

    let parse_child = |tok: &str,
                       node_ids: &HashMap<String, usize>,
                       sizes: &[u32]|
     -> Result<(NodeRef, u32), FormatError> {
        let t = tok.trim();
        if let Some(rest) = t.strip_prefix(leaf_prefix) {
            let num = rest
                .strip_suffix('X')
                .ok_or_else(|| FormatError::UnknownNode(t.to_string()))?;
            let i: u32 = num
                .parse()
                .map_err(|_| FormatError::UnknownNode(t.to_string()))?;
            if i as usize >= n_leaves {
                return Err(FormatError::BadTree(format!(
                    "leaf {t} out of range for {n_leaves} leaves"
                )));
            }
            Ok((NodeRef::Leaf(i), 1))
        } else if t.starts_with("NODE") {
            let &idx = node_ids
                .get(t)
                .ok_or_else(|| FormatError::UnknownNode(t.to_string()))?;
            Ok((NodeRef::Internal(idx as u32), sizes[idx]))
        } else {
            Err(FormatError::UnknownNode(t.to_string()))
        }
    };

    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() < 4 {
            return Err(FormatError::RaggedRow(lineno + 1, 4, fields.len()));
        }
        let (left, sl) = parse_child(fields[1], &node_ids, &sizes)?;
        let (right, sr) = parse_child(fields[2], &node_ids, &sizes)?;
        let score: f32 = fields[3]
            .trim()
            .parse()
            .map_err(|_| FormatError::BadNumber(lineno + 1, fields[3].to_string()))?;
        let idx = merges.len();
        node_ids.insert(fields[0].trim().to_string(), idx);
        sizes.push(sl + sr);
        merges.push(Merge {
            left,
            right,
            height: 1.0 - score,
            size: sl + sr,
        });
    }

    ClusterTree::new(n_leaves, merges).map_err(|e| FormatError::BadTree(e.to_string()))
}

/// A merge child as `(is_leaf, index)`.
pub type PlainChild = (bool, usize);

/// A plain merge triple: `(left, right, height)`.
pub type PlainMerge = (PlainChild, PlainChild, f32);

/// Convert a [`ClusterTree`] into the plain merge triples the renderer's
/// dendrogram painter consumes: `(left, right, height)` with child encoding
/// `(is_leaf, index)`.
pub fn tree_to_plain_merges(tree: &ClusterTree) -> Vec<PlainMerge> {
    tree.merges()
        .iter()
        .map(|m| {
            let enc = |n: NodeRef| match n {
                NodeRef::Leaf(i) => (true, i as usize),
                NodeRef::Internal(i) => (false, i as usize),
            };
            (enc(m.left), enc(m.right), m.height)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(i: u32) -> NodeRef {
        NodeRef::Leaf(i)
    }

    fn node(i: u32) -> NodeRef {
        NodeRef::Internal(i)
    }

    fn sample_tree() -> ClusterTree {
        ClusterTree::new(
            3,
            vec![
                Merge {
                    left: leaf(0),
                    right: leaf(2),
                    height: 0.1,
                    size: 2,
                },
                Merge {
                    left: node(0),
                    right: leaf(1),
                    height: 0.6,
                    size: 3,
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn write_gtr_format() {
        let text = write_tree(&sample_tree(), GENE_PREFIX);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "NODE0X\tGENE0X\tGENE2X\t0.9");
        assert!(lines[1].starts_with("NODE1X\tNODE0X\tGENE1X\t"));
    }

    #[test]
    fn roundtrip_gtr() {
        let t1 = sample_tree();
        let text = write_tree(&t1, GENE_PREFIX);
        let t2 = parse_tree(&text, GENE_PREFIX, 3).unwrap();
        assert_eq!(t1.n_leaves(), t2.n_leaves());
        assert_eq!(t1.merges().len(), t2.merges().len());
        for (a, b) in t1.merges().iter().zip(t2.merges()) {
            assert_eq!(a.left, b.left);
            assert_eq!(a.right, b.right);
            assert!((a.height - b.height).abs() < 1e-6);
            assert_eq!(a.size, b.size);
        }
    }

    #[test]
    fn roundtrip_atr() {
        let t1 = sample_tree();
        let text = write_tree(&t1, ARRAY_PREFIX);
        assert!(text.contains("ARRY0X"));
        let t2 = parse_tree(&text, ARRAY_PREFIX, 3).unwrap();
        assert_eq!(t2.merges().len(), 2);
    }

    #[test]
    fn parse_rejects_unknown_node() {
        let text = "NODE0X\tGENE0X\tNODE9X\t0.5\n";
        assert!(matches!(
            parse_tree(text, GENE_PREFIX, 2),
            Err(FormatError::UnknownNode(_))
        ));
    }

    #[test]
    fn parse_rejects_out_of_range_leaf() {
        let text = "NODE0X\tGENE0X\tGENE7X\t0.5\n";
        assert!(matches!(
            parse_tree(text, GENE_PREFIX, 2),
            Err(FormatError::BadTree(_))
        ));
    }

    #[test]
    fn parse_rejects_wrong_leaf_prefix() {
        let text = "NODE0X\tARRY0X\tARRY1X\t0.5\n";
        assert!(parse_tree(text, GENE_PREFIX, 2).is_err());
    }

    #[test]
    fn parse_rejects_short_row() {
        let text = "NODE0X\tGENE0X\tGENE1X\n";
        assert!(matches!(
            parse_tree(text, GENE_PREFIX, 2),
            Err(FormatError::RaggedRow(1, 4, 3))
        ));
    }

    #[test]
    fn parse_validates_leaf_count() {
        // tree over 3 leaves but n_leaves=4 → missing merge
        let text = write_tree(&sample_tree(), GENE_PREFIX);
        assert!(matches!(
            parse_tree(&text, GENE_PREFIX, 4),
            Err(FormatError::BadTree(_))
        ));
    }

    #[test]
    fn empty_tree_file() {
        let t = parse_tree("", GENE_PREFIX, 0).unwrap();
        assert_eq!(t.n_leaves(), 0);
        let t1 = parse_tree("", GENE_PREFIX, 1).unwrap();
        assert_eq!(t1.n_leaves(), 1);
    }

    #[test]
    fn plain_merges_encoding() {
        let pm = tree_to_plain_merges(&sample_tree());
        assert_eq!(pm.len(), 2);
        assert_eq!(pm[0].0, (true, 0));
        assert_eq!(pm[0].1, (true, 2));
        assert_eq!(pm[1].0, (false, 0));
        assert!((pm[1].2 - 0.6).abs() < 1e-6);
    }
}
