//! CDT (clustered data table) files.
//!
//! A CDT is a PCL whose rows (and optionally columns) have been reordered
//! by clustering, with extra identity columns linking into the paired
//! `.gtr`/`.atr` tree files:
//!
//! ```text
//! GID      ID       NAME      GWEIGHT  cond0  cond1 ...
//! AID                         ARRY0X   ARRY1X ...          (if array tree)
//! EWEIGHT                     1        1      ...
//! GENE2X   YAL005C  SSA1 ...  1.0      0.45   1.21  ...
//! ```
//!
//! `GENE<i>X` / `ARRY<j>X` indices refer to the *original* (pre-clustering)
//! row and column positions, which is how the tree files and the reordered
//! table stay linked.

use crate::pcl::{format_weight, joined_name};
use crate::FormatError;
use fv_expr::matrix::ExprMatrix;
use fv_expr::meta::{ConditionMeta, GeneMeta};
use fv_expr::Dataset;

/// A parsed CDT: the dataset (rows in clustered display order) plus the
/// original-index identities needed to pair with GTR/ATR files.
#[derive(Debug, Clone)]
pub struct CdtFile {
    /// The dataset, rows in the order the file lists them.
    pub dataset: Dataset,
    /// For each displayed row, the original leaf index (`GENE<i>X`), when a
    /// gene tree is attached.
    pub gene_leaf: Option<Vec<usize>>,
    /// For each displayed column, the original leaf index (`ARRY<j>X`),
    /// when an array tree is attached.
    pub array_leaf: Option<Vec<usize>>,
}

fn parse_leaf_id(tok: &str, prefix: &str) -> Result<usize, FormatError> {
    tok.trim()
        .strip_prefix(prefix)
        .and_then(|r| r.strip_suffix('X'))
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| FormatError::UnknownNode(tok.trim().to_string()))
}

/// Parse CDT text.
pub fn parse_cdt(name: &str, text: &str) -> Result<CdtFile, FormatError> {
    let mut lines = text.lines().enumerate().peekable();
    let (_, header) = lines.next().ok_or(FormatError::EmptyInput)?;
    let head: Vec<&str> = header.split('\t').collect();
    let has_gid = head.first().map(|c| c.eq_ignore_ascii_case("GID")) == Some(true);
    let id_col = if has_gid { 1 } else { 0 };
    let gweight_col = id_col + 2;
    let has_gweight = head
        .get(gweight_col)
        .map(|c| c.eq_ignore_ascii_case("GWEIGHT"))
        == Some(true);
    let n_meta = if has_gweight {
        gweight_col + 1
    } else {
        id_col + 2
    };
    let cond_labels: Vec<String> = head[n_meta..].iter().map(|s| s.to_string()).collect();
    let n_cols = cond_labels.len();

    let mut array_leaf: Option<Vec<usize>> = None;
    let mut eweights = vec![1.0f32; n_cols];
    let mut genes: Vec<GeneMeta> = Vec::new();
    let mut gene_leaf_acc: Vec<usize> = Vec::new();
    let mut rows: Vec<Vec<Option<f32>>> = Vec::new();

    for (lineno, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        let tag = fields[0].trim();
        if tag.eq_ignore_ascii_case("AID") {
            let mut leaves = Vec::with_capacity(n_cols);
            for f in fields.iter().skip(n_meta).take(n_cols) {
                leaves.push(parse_leaf_id(f, super::tree_files::ARRAY_PREFIX)?);
            }
            if leaves.len() != n_cols {
                return Err(FormatError::RaggedRow(
                    lineno + 1,
                    n_meta + n_cols,
                    fields.len(),
                ));
            }
            array_leaf = Some(leaves);
            continue;
        }
        if tag.eq_ignore_ascii_case("EWEIGHT") {
            for (c, f) in fields.iter().skip(n_meta).take(n_cols).enumerate() {
                if !f.trim().is_empty() {
                    eweights[c] = f
                        .trim()
                        .parse()
                        .map_err(|_| FormatError::BadNumber(lineno + 1, f.to_string()))?;
                }
            }
            continue;
        }
        if fields.len() != n_meta + n_cols {
            return Err(FormatError::RaggedRow(
                lineno + 1,
                n_meta + n_cols,
                fields.len(),
            ));
        }
        if has_gid {
            gene_leaf_acc.push(parse_leaf_id(fields[0], super::tree_files::GENE_PREFIX)?);
        }
        let id = fields[id_col].trim().to_string();
        let name_field = fields[id_col + 1].trim();
        let (gname, annotation) = match name_field.split_once(' ') {
            Some((n, rest)) => (n.to_string(), rest.trim().to_string()),
            None => (name_field.to_string(), String::new()),
        };
        let weight = if has_gweight && !fields[gweight_col].trim().is_empty() {
            fields[gweight_col]
                .trim()
                .parse()
                .map_err(|_| FormatError::BadNumber(lineno + 1, fields[gweight_col].to_string()))?
        } else {
            1.0
        };
        genes.push(GeneMeta {
            id,
            name: gname,
            annotation,
            weight,
        });
        let mut row = Vec::with_capacity(n_cols);
        for f in &fields[n_meta..] {
            let t = f.trim();
            if t.is_empty() {
                row.push(None);
            } else {
                let v: f32 = t
                    .parse()
                    .map_err(|_| FormatError::BadNumber(lineno + 1, t.to_string()))?;
                row.push(if v.is_finite() { Some(v) } else { None });
            }
        }
        rows.push(row);
    }

    let matrix = if rows.is_empty() {
        ExprMatrix::missing(0, n_cols)
    } else {
        ExprMatrix::from_option_rows(&rows).map_err(|_| FormatError::RaggedRow(0, n_cols, 0))?
    };
    let conditions = cond_labels
        .into_iter()
        .zip(eweights)
        .map(|(label, weight)| ConditionMeta { label, weight })
        .collect();
    let dataset = Dataset::new(name, matrix, genes, conditions)
        .map_err(|e| FormatError::BadTree(e.to_string()))?;
    Ok(CdtFile {
        dataset,
        gene_leaf: if has_gid { Some(gene_leaf_acc) } else { None },
        array_leaf,
    })
}

/// Serialize a dataset (already in display order) as CDT text.
///
/// `gene_leaf[i]` gives the original leaf index of displayed row `i`
/// (omit for no gene tree); likewise `array_leaf` for columns.
pub fn write_cdt(
    ds: &Dataset,
    gene_leaf: Option<&[usize]>,
    array_leaf: Option<&[usize]>,
) -> String {
    let mut out = String::new();
    if gene_leaf.is_some() {
        out.push_str("GID\t");
    }
    out.push_str("ID\tNAME\tGWEIGHT");
    for c in &ds.conditions {
        out.push('\t');
        out.push_str(&c.label);
    }
    out.push('\n');
    let lead_tabs = if gene_leaf.is_some() { 3 } else { 2 };
    if let Some(al) = array_leaf {
        out.push_str("AID");
        for _ in 0..lead_tabs {
            out.push('\t');
        }
        for &a in al {
            out.push('\t');
            out.push_str(&format!("ARRY{a}X"));
        }
        out.push('\n');
    }
    out.push_str("EWEIGHT");
    for _ in 0..lead_tabs {
        out.push('\t');
    }
    for c in &ds.conditions {
        out.push('\t');
        out.push_str(&format_weight(c.weight));
    }
    out.push('\n');
    for (r, g) in ds.genes.iter().enumerate() {
        if let Some(gl) = gene_leaf {
            out.push_str(&format!("GENE{}X\t", gl[r]));
        }
        out.push_str(&g.id);
        out.push('\t');
        out.push_str(&joined_name(g));
        out.push('\t');
        out.push_str(&format_weight(g.weight));
        for c in 0..ds.matrix.n_cols() {
            out.push('\t');
            if let Some(v) = ds.matrix.get(r, c) {
                out.push_str(&format!("{v}"));
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fv_expr::matrix::ExprMatrix;

    fn sample() -> Dataset {
        let m = ExprMatrix::from_rows(2, 2, &[0.5, -1.0, 2.0, 0.0]).unwrap();
        Dataset::new(
            "s",
            m,
            vec![
                GeneMeta::new("YAL005C", "SSA1", "chaperone"),
                GeneMeta::new("YBR072W", "HSP26", "heat shock"),
            ],
            vec![ConditionMeta::new("c0"), ConditionMeta::new("c1")],
        )
        .unwrap()
    }

    #[test]
    fn write_with_trees_has_gid_and_aid() {
        let text = write_cdt(&sample(), Some(&[1, 0]), Some(&[0, 1]));
        assert!(text.starts_with("GID\tID\tNAME\tGWEIGHT\tc0\tc1\n"));
        assert!(text.contains("AID\t\t\t\tARRY0X\tARRY1X\n"));
        assert!(text.contains("GENE1X\tYAL005C"));
    }

    #[test]
    fn roundtrip_with_trees() {
        let text = write_cdt(&sample(), Some(&[1, 0]), Some(&[1, 0]));
        let cdt = parse_cdt("s", &text).unwrap();
        assert_eq!(cdt.gene_leaf, Some(vec![1, 0]));
        assert_eq!(cdt.array_leaf, Some(vec![1, 0]));
        assert_eq!(cdt.dataset.n_genes(), 2);
        assert_eq!(cdt.dataset.genes[0].name, "SSA1");
        assert_eq!(cdt.dataset.matrix.get(1, 0), Some(2.0));
    }

    #[test]
    fn roundtrip_without_trees() {
        let text = write_cdt(&sample(), None, None);
        assert!(text.starts_with("ID\tNAME"));
        let cdt = parse_cdt("s", &text).unwrap();
        assert_eq!(cdt.gene_leaf, None);
        assert_eq!(cdt.array_leaf, None);
        assert_eq!(cdt.dataset.n_genes(), 2);
    }

    #[test]
    fn parse_missing_cells() {
        let text = "GID\tID\tNAME\tGWEIGHT\tc0\nEWEIGHT\t\t\t\t1\nGENE0X\tg1\tX\t1\t\n";
        let cdt = parse_cdt("s", text).unwrap();
        assert_eq!(cdt.dataset.matrix.get(0, 0), None);
    }

    #[test]
    fn parse_bad_gid_is_error() {
        let text = "GID\tID\tNAME\tGWEIGHT\tc0\nBOGUS\tg1\tX\t1\t0.5\n";
        assert!(matches!(
            parse_cdt("s", text),
            Err(FormatError::UnknownNode(_))
        ));
    }

    #[test]
    fn parse_bad_aid_is_error() {
        let text = "GID\tID\tNAME\tGWEIGHT\tc0\nAID\t\t\t\tWRONG\n";
        assert!(parse_cdt("s", text).is_err());
    }

    #[test]
    fn cdt_pairs_with_gtr_ordering() {
        // Cluster a small dataset, write CDT in tree order, parse back and
        // confirm leaf identities invert the permutation.
        use fv_cluster::{cluster, Linkage, Metric};
        let m = ExprMatrix::from_rows(
            3,
            4,
            &[1.0, 2.0, 3.0, 4.0, 4.0, 3.0, 2.0, 1.0, 1.1, 2.1, 3.1, 4.1],
        )
        .unwrap();
        let ds = Dataset::with_default_meta("d", m);
        let tree = cluster(&ds.matrix, Metric::Pearson, Linkage::Average);
        let order = tree.leaf_order();
        let reordered = ds.subset_rows(&order, "d_clustered").unwrap();
        let text = write_cdt(&reordered, Some(&order), None);
        let cdt = parse_cdt("d", &text).unwrap();
        assert_eq!(cdt.gene_leaf.as_deref(), Some(order.as_slice()));
        // Row 0 of the CDT is the gene that was at original index order[0].
        assert_eq!(cdt.dataset.genes[0].id, ds.genes[order[0]].id);
    }
}
