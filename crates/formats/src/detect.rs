//! File-format sniffing.

/// Recognized dataset file formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileFormat {
    /// Plain PCL expression table.
    Pcl,
    /// Clustered data table (has `GID` column and/or `AID` row).
    Cdt,
    /// Gene tree file (`NODE…X` merge lines).
    Gtr,
    /// Array tree file.
    Atr,
    /// Not recognized.
    Unknown,
}

/// Sniff the format of `text` from its first non-empty lines.
pub fn detect_format(text: &str) -> FileFormat {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let Some(first) = lines.next() else {
        return FileFormat::Unknown;
    };
    let fields: Vec<&str> = first.split('\t').collect();
    let f0 = fields.first().map(|s| s.trim()).unwrap_or("");

    if f0.starts_with("NODE") && f0.ends_with('X') && fields.len() >= 4 {
        // GTR vs ATR: look at the leaf prefix used by children.
        let children = [fields[1].trim(), fields[2].trim()];
        if children.iter().any(|c| c.starts_with("ARRY")) {
            return FileFormat::Atr;
        }
        return FileFormat::Gtr;
    }
    if f0.eq_ignore_ascii_case("GID") {
        return FileFormat::Cdt;
    }
    if f0.eq_ignore_ascii_case("ID")
        || f0.eq_ignore_ascii_case("YORF")
        || f0.eq_ignore_ascii_case("UID")
    {
        // An AID row anywhere near the top also marks a CDT.
        for l in text.lines().take(4) {
            if l.split('\t')
                .next()
                .map(|t| t.trim().eq_ignore_ascii_case("AID"))
                == Some(true)
            {
                return FileFormat::Cdt;
            }
        }
        return FileFormat::Pcl;
    }
    FileFormat::Unknown
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_pcl() {
        let t = "ID\tNAME\tGWEIGHT\tc1\ng\tX\t1\t0.5\n";
        assert_eq!(detect_format(t), FileFormat::Pcl);
        let t2 = "YORF\tNAME\tGWEIGHT\tc1\n";
        assert_eq!(detect_format(t2), FileFormat::Pcl);
    }

    #[test]
    fn detects_cdt_by_gid() {
        let t = "GID\tID\tNAME\tGWEIGHT\tc1\n";
        assert_eq!(detect_format(t), FileFormat::Cdt);
    }

    #[test]
    fn detects_cdt_by_aid_row() {
        let t = "ID\tNAME\tGWEIGHT\tc1\nAID\t\t\tARRY0X\n";
        assert_eq!(detect_format(t), FileFormat::Cdt);
    }

    #[test]
    fn detects_gtr_and_atr() {
        assert_eq!(
            detect_format("NODE0X\tGENE0X\tGENE1X\t0.9\n"),
            FileFormat::Gtr
        );
        assert_eq!(
            detect_format("NODE0X\tARRY0X\tARRY1X\t0.9\n"),
            FileFormat::Atr
        );
        assert_eq!(
            detect_format("NODE1X\tNODE0X\tARRY2X\t0.5\n"),
            FileFormat::Atr
        );
    }

    #[test]
    fn unknown_for_garbage() {
        assert_eq!(detect_format(""), FileFormat::Unknown);
        assert_eq!(detect_format("hello world\n"), FileFormat::Unknown);
        assert_eq!(
            detect_format("NODE0X\tonly_three\tfields\n"),
            FileFormat::Unknown
        );
    }

    #[test]
    fn skips_leading_blank_lines() {
        let t = "\n\nID\tNAME\tGWEIGHT\tc1\n";
        assert_eq!(detect_format(t), FileFormat::Pcl);
    }
}
