//! E2 / Figure 2: rendering the synchronized three-pane display.
//!
//! The paper's dataset-size range is "6,000 to 50,000 gene measurements
//! over hundreds of experiments"; the series sweeps the gene count at the
//! desktop resolutions ForestView targets. The quantity of interest is the
//! frame time of a full synchronized render (global views with averaging
//! downsample + zoom views + dendrograms + labels × 3 panes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use forestview::renderer::render_desktop;
use forestview::Session;
use fv_synth::scenario::Scenario;
use std::hint::black_box;

fn session_for(n_genes: usize) -> Session {
    let scenario = Scenario::three_datasets(n_genes, 2007);
    let mut session = Session::new();
    for ds in scenario.datasets {
        session.load_dataset(ds).unwrap();
    }
    // Identity display order (clustering cost is fig1's subject; at 6k
    // genes NN-chain dominates setup time, not render time).
    session.select_region(0, 0, 60);
    session
}

fn bench_three_pane(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_three_pane_render");
    group.sample_size(10);
    for n_genes in [1000usize, 6000] {
        let session = session_for(n_genes);
        for (w, h, label) in [(800usize, 600usize, "800x600"), (1600, 1200, "1600x1200")] {
            group.bench_with_input(
                BenchmarkId::new(format!("genes_{n_genes}"), label),
                &session,
                |b, s| b.iter(|| black_box(render_desktop(s, w, h))),
            );
        }
    }
    group.finish();
}

fn bench_pane_count(c: &mut Criterion) {
    // "Scientists need to visualize tens of such datasets simultaneously":
    // render cost versus the number of panes at fixed surface size.
    let mut group = c.benchmark_group("fig2_pane_count");
    group.sample_size(10);
    for n_panes in [3usize, 8, 16] {
        let scenario = Scenario::spell_compendium(1000, n_panes.max(3), 7);
        let mut session = Session::new();
        for ds in scenario.datasets.into_iter().take(n_panes) {
            session.load_dataset(ds).unwrap();
        }
        session.select_region(0, 0, 40);
        group.bench_function(format!("panes_{n_panes}_1600x1200"), |b| {
            b.iter(|| black_box(render_desktop(&session, 1600, 1200)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_three_pane, bench_pane_count);
criterion_main!(benches);
