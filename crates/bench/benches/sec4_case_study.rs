//! E7 / Section 4: the stress-response case-study workflow, timed.
//!
//! The paper contrasts ForestView's one-session workflow with "launch[ing]
//! over a dozen independent instances of a program and continually cut and
//! paste selections between instances". The measurable core is: select a
//! cluster in one dataset, resolve it across all datasets (synchronized
//! views), and quantify its cross-dataset coherence.

use criterion::{criterion_group, criterion_main, Criterion};
use forestview::Session;
use fv_expr::stats;
use fv_synth::scenario::Scenario;
use std::hint::black_box;

fn bench_case_study(c: &mut Criterion) {
    let scenario = Scenario::case_study(2000, 4);
    let mut session = Session::new();
    for ds in scenario.datasets {
        session.load_dataset(ds).unwrap();
    }
    session.cluster_all();

    let mut group = c.benchmark_group("sec4_case_study");
    group.sample_size(10);

    // The selection + cross-dataset resolution step.
    group.bench_function("select_and_resolve_50_genes", |b| {
        b.iter(|| {
            session.select_region(2, 400, 450);
            let mut measured = 0usize;
            for d in 0..3 {
                measured += forestview::sync::zoom_rows(&session, d)
                    .iter()
                    .filter(|r| r.is_some())
                    .count();
            }
            black_box(measured)
        })
    });

    // The coherence quantification (50-gene group, all pairs, stress pane).
    session.select_region(2, 400, 450);
    let names: Vec<String> = session
        .selection()
        .unwrap()
        .genes()
        .iter()
        .map(|&g| session.merged().universe().name(g).to_string())
        .collect();
    group.bench_function("coherence_50_genes_stress_pane", |b| {
        b.iter(|| {
            let ds = session.dataset(0);
            let rows: Vec<usize> = names.iter().filter_map(|g| ds.find_gene(g)).collect();
            let mut sum = 0.0f64;
            for i in 0..rows.len() - 1 {
                for j in (i + 1)..rows.len() {
                    if let Some(r) =
                        stats::pearson_rows(&ds.matrix, rows[i], &ds.matrix, rows[j], 3)
                    {
                        sum += r;
                    }
                }
            }
            black_box(sum)
        })
    });

    // The merged export the user hands to downstream analysis.
    group.bench_function("export_merged_selection", |b| {
        b.iter(|| black_box(session.export_merged_selection()))
    });

    group.finish();
}

criterion_group!(benches, bench_case_study);
criterion_main!(benches);
