//! E8 / Section 1 scale claims: throughput of the data substrate at the
//! sizes the paper states (6k–50k genes × hundreds of conditions; the
//! quarter-billion-measurement compendium runs via the
//! `compendium_scale --full` example rather than criterion).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fv_expr::matrix::ExprMatrix;
use fv_expr::normalize;
use fv_synth::compendium::{generate_compendium, CompendiumSpec};
use std::hint::black_box;

fn matrix_of(n_rows: usize, n_cols: usize) -> ExprMatrix {
    let vals: Vec<f32> = (0..n_rows * n_cols)
        .map(|i| ((i as u64).wrapping_mul(2654435761) % 1000) as f32 / 100.0 - 5.0)
        .collect();
    ExprMatrix::from_rows(n_rows, n_cols, &vals).unwrap()
}

fn bench_normalization_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale_normalize");
    group.sample_size(10);
    for (genes, conds) in [(6_000usize, 100usize), (20_000, 250), (50_000, 200)] {
        let cells = genes * conds;
        group.throughput(Throughput::Elements(cells as u64));
        let m = matrix_of(genes, conds);
        group.bench_function(format!("zscore_{genes}x{conds}"), |b| {
            b.iter(|| {
                let mut copy = m.clone();
                normalize::zscore_rows(&mut copy);
                black_box(copy.present_total())
            })
        });
    }
    group.finish();
}

fn bench_compendium_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale_compendium_generation");
    group.sample_size(10);
    for n_datasets in [10usize, 25] {
        let spec = CompendiumSpec {
            n_genes: 6000,
            n_datasets,
            conds_per_dataset: 60,
            n_specific: 4,
            specific_size: 80,
            noise_sd: 0.35,
            missing_fraction: 0.02,
            seed: 5,
        };
        group.throughput(Throughput::Elements(
            (spec.n_genes * spec.conds_per_dataset * n_datasets) as u64,
        ));
        group.bench_function(format!("generate_{n_datasets}x6000x60"), |b| {
            b.iter(|| black_box(generate_compendium(&spec)))
        });
    }
    group.finish();
}

fn bench_stats_kernels(c: &mut Criterion) {
    // The correlation kernel sits inside clustering, SPELL and the case
    // study; its single-pair throughput bounds them all.
    let mut group = c.benchmark_group("scale_stats_kernels");
    group.sample_size(20);
    let m = matrix_of(1000, 200);
    group.bench_function("pearson_pair_200cols", |b| {
        b.iter(|| black_box(fv_expr::stats::pearson_rows(&m, 0, &m, 1, 3)))
    });
    group.bench_function("spearman_pair_200cols", |b| {
        b.iter(|| black_box(fv_expr::stats::spearman_rows(&m, 0, &m, 1, 3)))
    });
    group.bench_function("matrix_moments_200k_cells", |b| {
        b.iter(|| black_box(fv_expr::stats::matrix_moments(&m).mean()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_normalization_throughput,
    bench_compendium_generation,
    bench_stats_kernels
);
criterion_main!(benches);
