//! E1 / Figure 1: per-layer cost of the ForestView architecture.
//!
//! One group per architecture layer, bottom-up: file parsing (PCL), the
//! merged dataset interface (3-D random access), analysis (clustering,
//! search), synchronization (zoom-row construction), and visualization
//! (desktop render). Together these are the columns of the architecture
//! diagram; the bench shows where a session's time actually goes.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use forestview::selection::SelectionOrigin;
use forestview::Session;
use fv_formats::pcl::{parse_pcl, write_pcl};
use fv_synth::scenario::Scenario;
use std::hint::black_box;

const N_GENES: usize = 1000;

fn prepared_session() -> Session {
    let scenario = Scenario::three_datasets(N_GENES, 2007);
    let mut session = Session::new();
    for ds in scenario.datasets {
        session.load_dataset(ds).unwrap();
    }
    session
}

fn bench_layers(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_architecture");
    group.sample_size(10);

    // Layer: dataset files (PCL parse of a 1000-gene dataset).
    let scenario = Scenario::three_datasets(N_GENES, 2007);
    let pcl_text = write_pcl(&scenario.datasets[0]);
    group.bench_function("parse_pcl_1000x15", |b| {
        b.iter(|| parse_pcl("bench", black_box(&pcl_text)).unwrap())
    });

    // Layer: merged dataset interface — 10k random 3-D accesses.
    let session = prepared_session();
    let merged = session.merged();
    let genes: Vec<_> = merged.genes_in_any();
    group.bench_function("merged_interface_10k_lookups", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for i in 0..10_000usize {
                let g = genes[(i * 37) % genes.len()];
                let d = i % 3;
                let col = (i * 13) % session.dataset(d).n_conditions();
                if let Some(v) = merged.value(d, g, col) {
                    acc += v;
                }
            }
            black_box(acc)
        })
    });

    // Layer: analysis — clustering one pane and cross-dataset search.
    group.bench_function("cluster_one_pane_1000", |b| {
        b.iter_batched(
            prepared_session,
            |mut s| {
                s.cluster_dataset(0, fv_cluster::Metric::Pearson, fv_cluster::Linkage::Average);
                s
            },
            BatchSize::LargeInput,
        )
    });
    let mut search_session = prepared_session();
    group.bench_function("search_annotations", |b| {
        b.iter(|| black_box(search_session.search_and_select("stress response")))
    });

    // Layer: synchronization — zoom rows for a 200-gene selection.
    let mut sync_session = prepared_session();
    let names: Vec<String> = (0..200).map(fv_synth::names::orf_name).collect();
    let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
    sync_session.select_genes(&refs, SelectionOrigin::List);
    group.bench_function("sync_zoom_rows_200sel_x3panes", |b| {
        b.iter(|| {
            for d in 0..3 {
                black_box(forestview::sync::zoom_rows(&sync_session, d));
            }
        })
    });

    // Layer: visualization — desktop render of the synchronized session.
    group.bench_function("render_desktop_800x600", |b| {
        b.iter(|| {
            black_box(forestview::renderer::render_desktop(
                &sync_session,
                800,
                600,
            ))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_layers);
criterion_main!(benches);
