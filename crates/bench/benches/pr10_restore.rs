//! PR 10 checkpoint: what log compaction buys at restore time, measured
//! without criterion so the numbers land in a machine-readable checkpoint
//! file (`BENCH_PR10.json` at the repo root, overwritten on every run).
//!
//! The durable-session work makes restore a boot-path cost (every
//! checkpointed session replays its log before the server accepts its
//! first connection), so the log compaction that elides
//! recompute-triggering no-ops — a `cluster_all` whose inputs are
//! untouched since the last one — is measured here as the thing it is:
//! a restore-latency optimisation. The bench drives the chatty traffic
//! compaction targets (a user who re-clusters every round while
//! scrolling), then times [`Engine::restore`] twice:
//!
//! 1. raw — a hand-built image whose log is the traffic as sent,
//!    redundant `cluster_all`s included (what restore cost before
//!    PR 10's elision),
//! 2. compacted — the image [`Engine::snapshot`] actually produces.
//!
//! Both replay to the same state (asserted), so the ratio is pure
//! redundant-re-clustering cost. The compacted number is comparable to
//! `BENCH_PR9.json`'s `restore_ns` (same scenario size and scene).

use forestview::command::Command;
use fv_api::{DatasetCache, Engine, Mutation, Request, SessionImage};
use std::hint::black_box;
use std::time::Instant;

/// Best-of-`n` wall time in nanoseconds (min absorbs scheduler noise).
fn best_of<R>(n: usize, mut f: impl FnMut() -> R) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..n {
        let t = Instant::now();
        black_box(f());
        best = best.min(t.elapsed().as_nanos() as u64);
    }
    best
}

/// The interactive stream compaction exists for: load, cluster, search,
/// then 24 rounds that each re-cluster before scrolling. Every
/// `cluster_all` after the first is a state no-op (scroll and search are
/// cluster-neutral), so the engine's log elides them while the raw
/// traffic keeps them all.
fn traffic() -> Vec<Mutation> {
    let mut sent = vec![
        Mutation::LoadScenario {
            n_genes: 400,
            seed: 9,
        },
        Mutation::Command(Command::ClusterAll),
        Mutation::Command(Command::Search("stress".into())),
    ];
    for round in 0..24 {
        sent.push(Mutation::Command(Command::ClusterAll));
        sent.push(Mutation::Command(Command::Scroll(if round % 3 == 2 {
            -1
        } else {
            2
        })));
    }
    sent
}

fn main() {
    let sent = traffic();
    let mut engine = Engine::with_scene(1280, 960);
    for mutation in &sent {
        engine
            .execute(&Request::Mutate(mutation.clone()))
            .expect("bench history replays clean");
    }

    let compacted = engine.snapshot();
    assert!(
        compacted.log.len() < sent.len(),
        "the chatty traffic must actually compact"
    );
    let raw = SessionImage {
        log: sent.clone(),
        ..compacted.clone()
    };

    let cache = DatasetCache::new();
    // Both images rebuild the same session; the raw log just pays for
    // every redundant re-cluster on the way there.
    let from_raw = Engine::restore(&raw, &cache).expect("raw restore");
    assert_eq!(
        from_raw.snapshot(),
        compacted,
        "raw and compacted logs must replay to the same state"
    );

    let restore_raw_ns = best_of(3, || Engine::restore(&raw, &cache).expect("restore"));
    let restore_compacted_ns = best_of(5, || Engine::restore(&compacted, &cache).expect("restore"));

    let json = format!(
        "{{\n  \"bench\": \"pr10_restore\",\n  \
         \"log_mutations_raw\": {raw_len},\n  \"log_mutations_compacted\": {compacted_len},\n  \
         \"restore_raw_ns\": {restore_raw_ns},\n  \
         \"restore_compacted_ns\": {restore_compacted_ns},\n  \
         \"speedup_x100\": {speedup_x100}\n}}\n",
        raw_len = sent.len(),
        compacted_len = compacted.log.len(),
        speedup_x100 = restore_raw_ns * 100 / restore_compacted_ns.max(1),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR10.json");
    std::fs::write(path, &json).expect("write BENCH_PR10.json");
    println!("[pr10_restore] wrote {path}");
    print!("{json}");
}
