//! Ablation benches A1–A4: the design choices DESIGN.md calls out.
//!
//! - A1 sync on/off: cost of building synchronized vs unsynchronized views.
//! - A2 damage tracking: repaint cost of interaction with dirty-rect
//!   repaints vs full-frame redraws (the "dynamic" axis at wall scale).
//! - A3 SPELL weighting: ranking with coherence weights vs uniform weights
//!   (quality is asserted in tests; here we show the cost is identical).
//! - A4 parallelism: distance-matrix construction across thread counts.

use criterion::{criterion_group, criterion_main, Criterion};
use forestview::command::{apply, Command};
use forestview::pane::build_all;
use forestview::renderer::paint_scene;
use forestview::selection::SelectionOrigin;
use forestview::Session;
use fv_cluster::distance::{condensed_distances, Metric};
use fv_spell::rank::combine_rankings;
use fv_synth::scenario::Scenario;
use fv_wall::{TileGrid, WallRenderer};
use std::hint::black_box;

fn session_with(n_genes: usize, n_datasets: usize) -> Session {
    let scenario = Scenario::spell_compendium(n_genes, n_datasets.max(3), 7);
    let mut s = Session::new();
    for ds in scenario.datasets.into_iter().take(n_datasets) {
        s.load_dataset(ds).unwrap();
    }
    let names: Vec<String> = (0..200).map(fv_synth::names::orf_name).collect();
    let refs: Vec<&str> = names.iter().map(|x| x.as_str()).collect();
    s.select_genes(&refs, SelectionOrigin::List);
    s
}

fn a1_sync_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_a1_sync");
    group.sample_size(10);
    for n_panes in [3usize, 12, 24] {
        let mut s = session_with(1000, n_panes);
        s.set_sync(true);
        group.bench_function(format!("sync_on_{n_panes}_panes"), |b| {
            b.iter(|| {
                for d in 0..s.n_datasets() {
                    black_box(forestview::sync::zoom_rows(&s, d));
                }
            })
        });
        s.set_sync(false);
        group.bench_function(format!("sync_off_{n_panes}_panes"), |b| {
            b.iter(|| {
                for d in 0..s.n_datasets() {
                    black_box(forestview::sync::zoom_rows(&s, d));
                }
            })
        });
    }
    group.finish();
}

fn a2_damage_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_a2_damage");
    group.sample_size(10);
    let mut s = session_with(1500, 3);
    let grid = TileGrid::new(6, 4, 512, 384);
    let w = grid.wall_width();
    let h = grid.wall_height();

    // A scroll command invalidates only zoom+label strips.
    let scroll_damage = apply(&mut s, &Command::Scroll(1), w, h).damage;
    eprintln!(
        "[a2] scroll damages {} rects covering {} px of {} px total",
        scroll_damage.len(),
        scroll_damage.iter().map(|r| r.area()).sum::<usize>(),
        w * h
    );
    let panes = build_all(&s);
    let paint = |fb: &mut fv_render::Framebuffer, vp: fv_wall::tile::Viewport| {
        paint_scene(fb, &s, &panes, w, h, vp.x as i64, vp.y as i64)
    };

    group.bench_function("full_redraw_24_tiles", |b| {
        let mut renderer = WallRenderer::new(grid);
        b.iter(|| black_box(renderer.render_frame(paint)))
    });
    group.bench_function("damage_redraw_scroll", |b| {
        let mut renderer = WallRenderer::new(grid);
        renderer.render_frame(paint);
        b.iter(|| black_box(renderer.render_damage(&scroll_damage, paint)))
    });
    group.finish();
}

fn a3_weighting_ablation(c: &mut Criterion) {
    // Weighted vs uniform combination over identical per-dataset scores:
    // the quality difference is asserted in tests/spell_quality.rs; the
    // bench records that weighting adds no measurable ranking cost.
    let mut group = c.benchmark_group("ablation_a3_spell_weighting");
    group.sample_size(10);
    let n_genes = 5000usize;
    let n_datasets = 20usize;
    let per_dataset: Vec<Vec<Option<f32>>> = (0..n_datasets)
        .map(|d| {
            (0..n_genes)
                .map(|g| Some((((g * 31 + d * 17) % 200) as f32 - 100.0) / 100.0))
                .collect()
        })
        .collect();
    let names: Vec<String> = (0..n_genes).map(fv_synth::names::orf_name).collect();
    let query_set = vec![false; n_genes];
    let coherence: Vec<f32> = (0..n_datasets)
        .map(|d| (d as f32 + 1.0) / n_datasets as f32)
        .collect();
    let uniform = vec![1.0f32; n_datasets];
    group.bench_function("weighted_combine_20x5000", |b| {
        b.iter(|| {
            black_box(combine_rankings(
                &per_dataset,
                &coherence,
                &names,
                &query_set,
            ))
        })
    });
    group.bench_function("uniform_combine_20x5000", |b| {
        b.iter(|| black_box(combine_rankings(&per_dataset, &uniform, &names, &query_set)))
    });
    group.finish();
}

fn a4_parallel_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_a4_parallel_distance");
    group.sample_size(10);
    let scenario = Scenario::three_datasets(1200, 5);
    let m = &scenario.datasets[0].matrix;
    let max = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    for threads in [1usize, max] {
        group.bench_function(format!("pearson_matrix_1200_threads_{threads}"), |b| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            b.iter(|| pool.install(|| black_box(condensed_distances(m, Metric::Pearson))))
        });
    }
    group.finish();
}

fn a5_impute_ablation(c: &mut Criterion) {
    // KNN imputation vs row-mean baseline: cost here, quality in
    // fv-cluster's impute tests (KNN error < mean error / 4 on
    // module-structured data).
    use fv_cluster::impute::{knn_impute, row_mean_impute};
    let mut group = c.benchmark_group("ablation_a5_impute");
    group.sample_size(10);
    let scenario = Scenario::three_datasets(500, 3);
    let mut base = scenario.datasets[0].matrix.clone();
    // knock out 5% of cells deterministically
    let n_cols = base.n_cols();
    for i in (0..base.n_cells()).step_by(20) {
        base.set_missing(i / n_cols, i % n_cols);
    }
    group.bench_function("knn_impute_k10_500x15", |b| {
        b.iter(|| {
            let mut m = base.clone();
            black_box(knn_impute(&mut m, 10, Metric::Euclidean))
        })
    });
    group.bench_function("row_mean_impute_500x15", |b| {
        b.iter(|| {
            let mut m = base.clone();
            black_box(row_mean_impute(&mut m))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    a1_sync_ablation,
    a2_damage_ablation,
    a3_weighting_ablation,
    a4_parallel_ablation,
    a5_impute_ablation
);
criterion_main!(benches);
