//! PR 9 checkpoint: the session-image transport seam, measured without
//! criterion so the numbers land in a machine-readable checkpoint file
//! (`BENCH_PR9.json` at the repo root, overwritten on every run).
//!
//! Four stages of a cross-process migration are timed in isolation:
//! 1. snapshot — [`Engine::snapshot`] on a session with a real history,
//! 2. format — [`format_session_image`] to the wire text,
//! 3. parse — [`parse_session_image`] back to the structured image,
//! 4. restore — [`Engine::restore`] replaying the compacted log.
//!
//! Restore dominates (it replays clustering), which is why the balancer
//! budgets moves instead of shuffling sessions freely.

use forestview::command::Command;
use fv_api::{format_session_image, parse_session_image, DatasetCache, Engine, Mutation, Request};
use std::hint::black_box;
use std::time::Instant;

/// Best-of-`n` wall time in nanoseconds (min absorbs scheduler noise).
fn best_of<R>(n: usize, mut f: impl FnMut() -> R) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..n {
        let t = Instant::now();
        black_box(f());
        best = best.min(t.elapsed().as_nanos() as u64);
    }
    best
}

/// A session the shape the balancer actually migrates: a synthetic
/// scenario, a clustering, a text selection, and a scroll history —
/// every mutation lands in the compacted log.
fn session() -> Engine {
    let mut engine = Engine::with_scene(1280, 960);
    let mut run = |mutation: Mutation| {
        engine
            .execute(&Request::Mutate(mutation))
            .expect("bench history replays clean");
    };
    run(Mutation::LoadScenario {
        n_genes: 400,
        seed: 9,
    });
    run(Mutation::Command(Command::ClusterAll));
    run(Mutation::Command(Command::Search("stress".into())));
    for round in 0..24 {
        run(Mutation::Command(Command::Scroll(if round % 3 == 2 {
            -1
        } else {
            2
        })));
    }
    engine
}

fn main() {
    let engine = session();
    let snapshot_ns = best_of(50, || engine.snapshot());

    let image = engine.snapshot();
    let format_ns = best_of(50, || format_session_image(&image));

    let text = format_session_image(&image);
    let parse_ns = best_of(50, || parse_session_image(&text).expect("parse"));

    // The codec must be a lossless inverse before its speed matters.
    assert_eq!(parse_session_image(&text).expect("parse"), image);

    let cache = DatasetCache::new();
    let restore_ns = best_of(5, || Engine::restore(&image, &cache).expect("restore"));
    let restored = Engine::restore(&image, &cache).expect("restore");
    assert_eq!(restored.snapshot(), image, "restore must round-trip");

    let json = format!(
        "{{\n  \"bench\": \"pr9_session_image\",\n  \
         \"log_mutations\": {log_len},\n  \"image_text_bytes\": {text_bytes},\n  \
         \"snapshot_ns\": {snapshot_ns},\n  \"format_ns\": {format_ns},\n  \
         \"parse_ns\": {parse_ns},\n  \"restore_ns\": {restore_ns}\n}}\n",
        log_len = image.log.len(),
        text_bytes = text.len(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR9.json");
    std::fs::write(path, &json).expect("write BENCH_PR9.json");
    println!("[pr9_session_image] wrote {path}");
    print!("{json}");
}
