//! E3 / Figure 3: display-wall rendering and its scaling.
//!
//! Three series reproduce the figure's claims:
//! 1. desktop vs wall frame time (the "two orders of magnitude more
//!    pixels" axis — capacity ratios are printed alongside),
//! 2. thread scaling of the tile-parallel renderer (the wall's render
//!    cluster, collapsed into one machine),
//! 3. the rayon scheduler vs the channel pipeline (how the real
//!    distributed wall moved tiles).

use criterion::{criterion_group, criterion_main, Criterion};
use forestview::pane::build_all;
use forestview::renderer::{paint_scene, render_wall};
use forestview::Session;
use fv_synth::scenario::Scenario;
use fv_wall::pipeline::render_pipeline;
use fv_wall::{TileGrid, WallRenderer};
use std::hint::black_box;

fn session() -> Session {
    let scenario = Scenario::three_datasets(2000, 2007);
    let mut s = Session::new();
    for ds in scenario.datasets {
        s.load_dataset(ds).unwrap();
    }
    s.select_region(0, 0, 60);
    s
}

fn bench_surfaces(c: &mut Criterion) {
    let s = session();
    let mut group = c.benchmark_group("fig3_surface_size");
    group.sample_size(10);
    let desktop = TileGrid::desktop();
    let wall = TileGrid::princeton_wall();
    eprintln!(
        "[fig3] desktop {} px; princeton wall {} px (ratio {:.1}x); 6x4 HD wall ratio {:.1}x",
        desktop.total_pixels(),
        wall.total_pixels(),
        wall.capacity_ratio(&desktop),
        TileGrid::new(6, 4, 1920, 1080).capacity_ratio(&desktop),
    );
    for (name, grid) in [("desktop_2mp", desktop), ("princeton_wall_19mp", wall)] {
        group.bench_function(name, |b| {
            let mut renderer = WallRenderer::new(grid);
            b.iter(|| black_box(render_wall(&s, &mut renderer)))
        });
    }
    group.finish();
}

fn bench_thread_scaling(c: &mut Criterion) {
    let s = session();
    let panes = build_all(&s);
    let grid = TileGrid::princeton_wall();
    let mut group = c.benchmark_group("fig3_thread_scaling");
    group.sample_size(10);
    let max = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    for threads in [1usize, 2, 4, max] {
        if threads > max {
            continue;
        }
        group.bench_function(format!("threads_{threads}"), |b| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            let mut renderer = WallRenderer::new(grid);
            b.iter(|| {
                pool.install(|| {
                    renderer.render_frame(|fb, vp| {
                        paint_scene(
                            fb,
                            &s,
                            &panes,
                            grid.wall_width(),
                            grid.wall_height(),
                            vp.x as i64,
                            vp.y as i64,
                        )
                    })
                })
            })
        });
    }
    group.finish();
}

fn bench_schedulers(c: &mut Criterion) {
    let s = session();
    let panes = build_all(&s);
    let grid = TileGrid::new(4, 3, 512, 384);
    let w = grid.wall_width();
    let h = grid.wall_height();
    let paint = |fb: &mut fv_render::Framebuffer, vp: fv_wall::tile::Viewport| {
        paint_scene(fb, &s, &panes, w, h, vp.x as i64, vp.y as i64)
    };
    let mut group = c.benchmark_group("fig3_scheduler");
    group.sample_size(10);
    group.bench_function("rayon_tiles", |b| {
        let mut renderer = WallRenderer::new(grid);
        b.iter(|| black_box(renderer.render_frame(paint)))
    });
    group.bench_function("channel_pipeline", |b| {
        b.iter(|| black_box(render_pipeline(grid, 4, paint)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_surfaces,
    bench_thread_scaling,
    bench_schedulers
);
criterion_main!(benches);
