//! E4 / Figure 4: SPELL query latency and index construction across
//! compendium sizes, plus the recovery quality printed as a side channel
//! (criterion measures time; the planted-truth precision verifies the
//! search is doing its job while we time it).

use criterion::{criterion_group, criterion_main, Criterion};
use fv_spell::eval::precision_at_k;
use fv_spell::{SpellConfig, SpellEngine};
use fv_synth::names::orf_name;
use fv_synth::scenario::Scenario;
use std::collections::HashSet;
use std::hint::black_box;

fn engine_for(scenario: &Scenario) -> SpellEngine {
    let mut e = SpellEngine::new(SpellConfig::default());
    for ds in &scenario.datasets {
        e.add_dataset(ds);
    }
    e.finalize();
    e
}

fn bench_query_vs_compendium_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_spell_query");
    group.sample_size(10);
    for n_datasets in [10usize, 30, 60] {
        let scenario = Scenario::spell_compendium(2000, n_datasets, 42);
        let engine = engine_for(&scenario);
        let query: Vec<String> = scenario.truth.esr_induced()[..8]
            .iter()
            .map(|&g| orf_name(g))
            .collect();
        let refs: Vec<&str> = query.iter().map(|s| s.as_str()).collect();

        // print quality so the bench doubles as a correctness record
        let result = engine.query(&refs);
        let ranked: Vec<String> = result
            .top_new_genes(usize::MAX)
            .iter()
            .map(|g| g.gene.clone())
            .collect();
        let rrefs: Vec<&str> = ranked.iter().map(|s| s.as_str()).collect();
        let truth_names: Vec<String> = scenario
            .truth
            .esr_induced()
            .iter()
            .map(|&g| orf_name(g))
            .filter(|g| !query.contains(g))
            .collect();
        let truth: HashSet<&str> = truth_names.iter().map(|s| s.as_str()).collect();
        eprintln!(
            "[fig4] {} datasets: P@10 = {:.2}, measurements = {}",
            n_datasets,
            precision_at_k(&rrefs, &truth, 10),
            engine.total_measurements(),
        );

        group.bench_function(format!("query_{n_datasets}_datasets"), |b| {
            b.iter(|| black_box(engine.query(&refs)))
        });
    }
    group.finish();
}

fn bench_index_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_spell_index");
    group.sample_size(10);
    let scenario = Scenario::spell_compendium(2000, 10, 42);
    group.bench_function("index_10x2000", |b| {
        b.iter(|| {
            let mut e = SpellEngine::new(SpellConfig::default());
            for ds in &scenario.datasets {
                e.add_dataset(ds);
            }
            e.finalize();
            black_box(e.n_genes())
        })
    });
    group.finish();
}

fn bench_query_size(c: &mut Criterion) {
    // Larger query gene lists cost more in the weighting stage (pairwise
    // coherence is quadratic in query size).
    let mut group = c.benchmark_group("fig4_query_size");
    group.sample_size(10);
    let scenario = Scenario::spell_compendium(2000, 20, 42);
    let engine = engine_for(&scenario);
    for q in [3usize, 10, 30] {
        let names: Vec<String> = scenario.truth.esr_induced()[..q]
            .iter()
            .map(|&g| orf_name(g))
            .collect();
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        group.bench_function(format!("query_genes_{q}"), |b| {
            b.iter(|| black_box(engine.query(&refs)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_query_vs_compendium_size,
    bench_index_build,
    bench_query_size
);
criterion_main!(benches);
