//! E6 / Figure 6: the integrated tri-tool workflow, end to end.
//!
//! One iteration = seed a selection → SPELL search → reorder panes →
//! expand selection → GOLEM enrichment → local map → render all three
//! panels and compose. This is the complete interactive loop the figure
//! shows on screen, measured as a single latency.

use criterion::{criterion_group, criterion_main, Criterion};
use forestview::integrate::AnalysisSuite;
use forestview::renderer::{compose_figure6, render_desktop, render_golem_map, render_spell_panel};
use forestview::selection::SelectionOrigin;
use forestview::Session;
use fv_golem::EnrichmentConfig;
use fv_spell::SpellConfig;
use fv_synth::names::orf_name;
use fv_synth::ontogen::generate_ontology;
use fv_synth::scenario::Scenario;
use std::hint::black_box;

fn bench_integrated(c: &mut Criterion) {
    let scenario = Scenario::three_datasets(1000, 2007);
    let truth = scenario.truth.clone();
    let mut session = Session::new();
    for ds in scenario.datasets {
        session.load_dataset(ds).unwrap();
    }
    session.cluster_all();
    let onto = generate_ontology(&truth, 1500, 2007);
    let prop = onto.annotations.propagate(&onto.dag);
    let suite = AnalysisSuite::build(&session, SpellConfig::default(), onto.dag, prop);
    let seed: Vec<String> = truth.esr_induced()[..6]
        .iter()
        .map(|&g| orf_name(g))
        .collect();
    let refs: Vec<&str> = seed.iter().map(|s| s.as_str()).collect();

    let mut group = c.benchmark_group("fig6_integrated");
    group.sample_size(10);

    group.bench_function("analysis_pipeline", |b| {
        b.iter(|| {
            session.select_genes(&refs, SelectionOrigin::List);
            black_box(
                suite
                    .integrated_analysis(&mut session, 20, &EnrichmentConfig::default(), 2)
                    .unwrap(),
            )
        })
    });

    session.select_genes(&refs, SelectionOrigin::List);
    let out = suite
        .integrated_analysis(&mut session, 20, &EnrichmentConfig::default(), 2)
        .unwrap();
    group.bench_function("render_tri_panel", |b| {
        b.iter(|| {
            let left = render_desktop(&session, 900, 700);
            let spell = render_spell_panel(&out.spell, 440, 350);
            let golem = match &out.map {
                Some((m, l)) => render_golem_map(m, l, &suite.ontology, 440, 350),
                None => unreachable!("enrichment present"),
            };
            black_box(compose_figure6(&left, &golem, &spell))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_integrated);
criterion_main!(benches);
