//! PR 6 checkpoint: the fv-stream plane's hot paths, measured without
//! criterion so the numbers land in a machine-readable checkpoint file
//! (`BENCH_PR6.json` at the repo root, overwritten on every run).
//!
//! Three stages of the publish pipeline are timed in isolation:
//! 1. damage coalescing — [`DamageTracker::add`] under a storm of small
//!    rects (the path the PR 6 O(n²) cap fix bounded),
//! 2. tile delta encode — damage rects → per-tile intersections →
//!    delta frames cut from a wall-sized framebuffer,
//! 3. heatmap rasterize — the full desktop render each executed run
//!    pays before anything streams.

use forestview::renderer::render_desktop;
use forestview::Session;
use fv_synth::scenario::Scenario;
use fv_wall::damage::DamageTracker;
use fv_wall::stream::{tile_damage, TileStreamEncoder};
use fv_wall::tile::{TileGrid, Viewport};
use std::hint::black_box;
use std::time::Instant;

/// Best-of-`n` wall time in nanoseconds (min absorbs scheduler noise).
fn best_of<R>(n: usize, mut f: impl FnMut() -> R) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..n {
        let t = Instant::now();
        black_box(f());
        best = best.min(t.elapsed().as_nanos() as u64);
    }
    best
}

/// Deterministic rect storm over a `w`×`h` wall (xorshift; no rand
/// dep), clustered around a few hot spots the way scroll/selection
/// damage is — so coalescing yields several surviving rects rather
/// than one wall-sized bounding box.
fn rect_storm(n: usize, w: usize, h: usize) -> Vec<Viewport> {
    let mut state = 0x2007_1007_u64;
    let mut next = move |m: usize| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state as usize) % m.max(1)
    };
    let anchors: Vec<(usize, usize)> = (0..6).map(|_| (next(w - 128), next(h - 128))).collect();
    (0..n)
        .map(|i| {
            let (ax, ay) = anchors[i % anchors.len()];
            Viewport {
                x: ax + next(96),
                y: ay + next(96),
                w: 8 + next(24),
                h: 8 + next(24),
            }
        })
        .collect()
}

fn session() -> Session {
    let scenario = Scenario::three_datasets(800, 2007);
    let mut s = Session::new();
    for ds in scenario.datasets {
        s.load_dataset(ds).unwrap();
    }
    s.select_region(0, 0, 60);
    s
}

fn main() {
    const W: usize = 1280;
    const H: usize = 960;
    let grid = TileGrid::new(4, 2, W / 4, H / 2);
    let storm = rect_storm(1000, W, H);

    let coalesce_ns = best_of(20, || {
        let mut tracker = DamageTracker::new();
        for &r in &storm {
            tracker.add(r);
        }
        tracker.take()
    });

    let mut tracker = DamageTracker::new();
    for &r in &storm {
        tracker.add(r);
    }
    let damage = tracker.take();
    let tile_damage_ns = best_of(50, || tile_damage(&grid, &damage));

    let s = session();
    let rasterize_ns = best_of(5, || render_desktop(&s, W, H));
    let wall = render_desktop(&s, W, H);
    assert_eq!(wall.bytes().len(), W * H * 3);

    let tiles = tile_damage(&grid, &damage);
    let delta_bytes: usize = {
        let mut enc = TileStreamEncoder::new(grid);
        enc.delta(&wall, &tiles)
            .iter()
            .map(|f| f.encoded_len())
            .sum()
    };
    let delta_ns = best_of(20, || {
        let mut enc = TileStreamEncoder::new(grid);
        enc.delta(&wall, &tiles)
    });

    let key_bytes: usize = {
        let mut enc = TileStreamEncoder::new(grid);
        enc.keyframe(&wall).iter().map(|f| f.encoded_len()).sum()
    };
    let keyframe_ns = best_of(20, || {
        let mut enc = TileStreamEncoder::new(grid);
        enc.keyframe(&wall)
    });

    // Sanity: delta traffic must undercut a keyframe for partial damage.
    assert!(delta_bytes <= key_bytes);

    let json = format!(
        "{{\n  \"bench\": \"pr6_stream\",\n  \"wall\": \"{W}x{H}\",\n  \"grid\": \"4x2\",\n  \
         \"damage_coalesce_1k_rects_ns\": {coalesce_ns},\n  \
         \"damage_rects_after_coalesce\": {n_rects},\n  \
         \"tile_damage_map_ns\": {tile_damage_ns},\n  \
         \"delta_encode_ns\": {delta_ns},\n  \"delta_encode_bytes\": {delta_bytes},\n  \
         \"keyframe_encode_ns\": {keyframe_ns},\n  \"keyframe_bytes\": {key_bytes},\n  \
         \"heatmap_rasterize_ns\": {rasterize_ns}\n}}\n",
        n_rects = damage.len(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR6.json");
    std::fs::write(path, &json).expect("write BENCH_PR6.json");
    println!("[pr6_stream] wrote {path}");
    print!("{json}");
}
