//! E5 / Figure 5: GOLEM enrichment and local-map layout.
//!
//! Series: annotation propagation over the DAG, hypergeometric enrichment
//! of a cluster against all candidate terms (rayon-parallel), and local
//! exploration map construction + layered layout at radius 1–3.

use criterion::{criterion_group, criterion_main, Criterion};
use fv_golem::layout::layout_map;
use fv_golem::map::build_local_map;
use fv_golem::{enrich, EnrichmentConfig};
use fv_synth::modules::plant_modules;
use fv_synth::names::orf_name;
use fv_synth::ontogen::generate_ontology;
use std::hint::black_box;

fn bench_golem(c: &mut Criterion) {
    let truth = plant_modules(6000, 4, 80, 7);
    let onto = generate_ontology(&truth, 5000, 7);
    let prop = onto.annotations.propagate(&onto.dag);
    eprintln!(
        "[fig5] ontology: {} terms, {} edges, population {}",
        onto.dag.n_terms(),
        onto.dag.n_edges(),
        prop.n_genes()
    );

    let mut group = c.benchmark_group("fig5_golem");
    group.sample_size(10);

    group.bench_function("propagate_annotations_5k_terms", |b| {
        b.iter(|| black_box(onto.annotations.propagate(&onto.dag)))
    });

    let cluster: Vec<String> = truth.modules[2]
        .genes
        .iter()
        .take(60)
        .map(|&g| orf_name(g))
        .collect();
    let refs: Vec<&str> = cluster.iter().map(|s| s.as_str()).collect();
    group.bench_function("enrich_200gene_cluster_5k_terms", |b| {
        b.iter(|| {
            black_box(enrich(
                &onto.dag,
                &prop,
                &refs,
                &EnrichmentConfig::default(),
            ))
        })
    });

    let results = enrich(&onto.dag, &prop, &refs, &EnrichmentConfig::default());
    let focus = results[0].term;
    for radius in [1u32, 2, 3] {
        group.bench_function(format!("local_map_radius_{radius}"), |b| {
            b.iter(|| {
                let map = build_local_map(&onto.dag, focus, radius, &results);
                black_box(layout_map(&map, 2))
            })
        });
    }
    let map3 = build_local_map(&onto.dag, focus, 3, &results);
    eprintln!(
        "[fig5] radius-3 map: {} nodes, {} edges, crossings base {} -> barycenter {}",
        map3.n_nodes(),
        map3.edges.len(),
        layout_map(&map3, 0).crossings(),
        layout_map(&map3, 4).crossings(),
    );
    group.finish();
}

criterion_group!(benches, bench_golem);
criterion_main!(benches);
