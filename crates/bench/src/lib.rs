//! fv-bench: criterion harness crate; see benches/ for targets.
