//! fv-bench: criterion harness crate; see benches/ for targets.

#![forbid(unsafe_code)]
