//! Golden-file test: a multi-command wire script drives synthetic
//! sessions through the [`EngineHub`], and the full transcript (canonical
//! request echo + formatted responses, frame checksum included) must be
//! byte-identical to the checked-in golden file.
//!
//! Regenerate after intentional protocol changes with:
//! `UPDATE_GOLDEN=1 cargo test -p fv-api --test script_golden`

use fv_api::EngineHub;

const SCRIPT: &str = include_str!("data/session.fvs");
const GOLDEN_PATH: &str = "tests/data/session.golden";

#[test]
fn script_transcript_matches_golden() {
    let mut hub = EngineHub::with_scene(800, 600);
    let transcript = hub
        .run_script(SCRIPT)
        .expect("script executes")
        .transcript();

    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(GOLDEN_PATH, &transcript).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing — run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        transcript, golden,
        "transcript drifted from golden; if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn script_replay_is_deterministic_across_hubs() {
    let mut h1 = EngineHub::with_scene(800, 600);
    let mut h2 = EngineHub::with_scene(800, 600);
    let t1 = h1.run_script(SCRIPT).unwrap().transcript();
    let t2 = h2.run_script(SCRIPT).unwrap().transcript();
    assert_eq!(t1, t2);
}
