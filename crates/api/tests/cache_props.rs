//! Property tests for the shared dataset cache: random interleavings of
//! `load` / `close <session>` / on-disk rewrites across a pool of
//! sessions must uphold the cache's two ownership guarantees:
//!
//! 1. **No leak** — once every session holding a file is closed, the
//!    cache keeps nothing alive (`entries` drops to zero; the `Weak`
//!    entries cannot pin a dataset).
//! 2. **Eviction never invalidates a live handle** — rewriting a file on
//!    disk evicts its cache entry, but every session that loaded the old
//!    contents keeps seeing exactly the data it loaded.
//!
//! Contents are generation-stamped (cell `[0,0]` holds the generation,
//! and the row count varies with it so the length fingerprint always
//! changes), which lets the model check every session's view after every
//! operation.

use fv_api::{EngineHub, Mutation, Request, SessionId};
use proptest::prelude::*;
use proptest::strategy::FnStrategy;
use proptest::test_runner::TestRng;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

const SESSIONS: [&str; 4] = ["s0", "s1", "s2", "s3"];
const FILES: [&str; 2] = ["f0", "f1"];

#[derive(Debug, Clone)]
enum Op {
    /// Load file `f` into session `s`.
    Load { s: usize, f: usize },
    /// Close session `s`.
    Close { s: usize },
    /// Rewrite file `f` on disk with the next generation's contents.
    Rewrite { f: usize },
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    FnStrategy::new(|rng: &mut TestRng| {
        let len = 4 + rng.below(17) as usize;
        (0..len)
            .map(|_| match rng.below(5) {
                // loads dominate: they are the interesting operation
                0..=2 => Op::Load {
                    s: rng.below(SESSIONS.len() as u64) as usize,
                    f: rng.below(FILES.len() as u64) as usize,
                },
                3 => Op::Close {
                    s: rng.below(SESSIONS.len() as u64) as usize,
                },
                _ => Op::Rewrite {
                    f: rng.below(FILES.len() as u64) as usize,
                },
            })
            .collect()
    })
}

/// Write generation `generation` of file `f`: cell `[0,0]` stamps the
/// generation; `generation + 1` rows make the byte length (and thus the
/// fingerprint) unique per generation.
fn write_generation(dir: &Path, f: usize, generation: usize) -> PathBuf {
    let mut text = String::from("ID\tNAME\tGWEIGHT\tc0\tc1\n");
    for row in 0..=generation {
        let value = if row == 0 { generation } else { row };
        text.push_str(&format!("G{row}\tG{row}\t1\t{value}.0\t0.5\n"));
    }
    let path = dir.join(format!("{}.pcl", FILES[f]));
    std::fs::write(&path, text).unwrap();
    path
}

fn fresh_dir() -> PathBuf {
    static CASE: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "fv-cache-props-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn interleaved_load_close_never_leaks_or_invalidates(ops in arb_ops()) {
        let dir = fresh_dir();
        let mut generations = [0usize; FILES.len()];
        let mut paths: Vec<PathBuf> = (0..FILES.len())
            .map(|f| write_generation(&dir, f, 0))
            .collect();
        let mut hub = EngineHub::with_scene(640, 480);
        // model: session -> (file -> generation loaded)
        let mut held: BTreeMap<usize, BTreeMap<usize, usize>> = BTreeMap::new();
        // Every Load op consults the cache (even one the session then
        // rejects as a duplicate name), so the hit+miss ledger counts
        // attempts, not successful session loads.
        let mut load_attempts: u64 = 0;

        for op in &ops {
            match *op {
                Op::Load { s, f } => {
                    let id = SessionId::new(SESSIONS[s]).unwrap();
                    let request = Request::Mutate(Mutation::LoadDataset {
                        path: paths[f].to_string_lossy().into_owned(),
                    });
                    let result = hub.execute_on(&id, &request);
                    load_attempts += 1;
                    if held.get(&s).is_some_and(|m| m.contains_key(&f)) {
                        // same stem already loaded: duplicate-name error,
                        // the session keeps its original handle
                        let err = result.expect_err("duplicate load must fail");
                        prop_assert_eq!(err.code, fv_api::ErrorCode::AlreadyExists);
                    } else {
                        prop_assert!(result.is_ok(), "load failed: {:?}", result);
                        held.entry(s).or_default().insert(f, generations[f]);
                    }
                }
                Op::Close { s } => {
                    let id = SessionId::new(SESSIONS[s]).unwrap();
                    let existed = hub.close(&id);
                    prop_assert_eq!(existed, held.contains_key(&s));
                    held.remove(&s);
                }
                Op::Rewrite { f } => {
                    generations[f] += 1;
                    paths[f] = write_generation(&dir, f, generations[f]);
                }
            }
            // Invariant: every live session still sees exactly the
            // generation it loaded — eviction and rewrites are invisible
            // to held handles.
            for (&s, files) in &held {
                let id = SessionId::new(SESSIONS[s]).unwrap();
                let engine = hub.get(&id).expect("held session exists");
                for (&f, &generation) in files {
                    let d = engine
                        .session()
                        .merged()
                        .index_of(FILES[f])
                        .expect("dataset present");
                    let ds = engine.session().dataset(d);
                    prop_assert_eq!(
                        ds.matrix.get(0, 0),
                        Some(generation as f32),
                        "session {} sees wrong generation of {}",
                        SESSIONS[s],
                        FILES[f]
                    );
                    prop_assert_eq!(ds.n_genes(), generation + 1);
                }
            }
            // The cache never holds more live entries than there are
            // files, and its ledger accounts for every successful load.
            let stats = hub.cache_stats();
            prop_assert!(stats.entries <= FILES.len());
            prop_assert_eq!(stats.hits + stats.misses, load_attempts);
        }

        // Teardown: closing every session must drop every refcount to
        // zero — the cache's weak entries cannot leak datasets.
        for s in SESSIONS {
            hub.close(&SessionId::new(s).unwrap());
        }
        prop_assert_eq!(hub.cache_stats().entries, 0, "cache leaked entries");
        std::fs::remove_dir_all(&dir).ok();
    }
}
