//! `SessionImage` property tests: the codec inverse
//! (`parse_session_image(format_session_image(i)) == i` for arbitrary
//! images) and the engine round trip — snapshot → format → parse →
//! restore rebuilds a session whose probe transcripts are byte-identical
//! to the original's, with `Engine::cost()` and cluster settings
//! preserved, and whose own snapshot is the same image again.

use forestview::command::Command;
use fv_api::hub::TranscriptEntry;
use fv_api::image::{format_session_image, parse_session_image, DatasetStamp, SessionImage};
use fv_api::{
    DatasetCache, Engine, Mutation, NormalizeMethod, Query, Request, Response, SessionId,
};
use fv_cluster::distance::Metric;
use fv_cluster::linkage::Linkage;
use proptest::prelude::*;
use proptest::strategy::FnStrategy;
use proptest::test_runner::TestRng;

const SCENARIO_DATASETS: usize = 3;

fn rng_pick<T: Copy>(rng: &mut TestRng, items: &[T]) -> T {
    items[rng.below(items.len() as u64) as usize]
}

/// A mutation that is valid against a session holding the three scenario
/// datasets — so generated sequences replay without errors and every
/// draw lands in the log.
fn arb_session_mutation(rng: &mut TestRng) -> Mutation {
    match rng.below(12) {
        0 => Mutation::Command(Command::SelectRegion {
            dataset: rng.below(SCENARIO_DATASETS as u64) as usize,
            start_frac: (rng.unit_f64() as f32) * 0.5,
            end_frac: 0.5 + (rng.unit_f64() as f32) * 0.5,
        }),
        1 => Mutation::Command(Command::Search("stress".into())),
        2 => Mutation::Command(Command::ClearSelection),
        3 => Mutation::Command(Command::Scroll(rng.below(7) as i64 - 3)),
        4 => Mutation::Command(Command::ClusterAll),
        5 => Mutation::Command(Command::SetContrast {
            dataset: if rng.below(2) == 0 {
                None
            } else {
                Some(rng.below(SCENARIO_DATASETS as u64) as usize)
            },
            contrast: 0.5 + rng.unit_f64() as f32 * 3.0,
        }),
        6 => Mutation::Command(Command::SetLinkage(rng_pick(
            rng,
            &[
                Linkage::Single,
                Linkage::Complete,
                Linkage::Average,
                Linkage::Ward,
            ],
        ))),
        7 => Mutation::Command(Command::SetMetric(rng_pick(
            rng,
            &[
                Metric::Pearson,
                Metric::AbsPearson,
                Metric::Uncentered,
                Metric::Spearman,
                Metric::Euclidean,
            ],
        ))),
        8 => Mutation::Command(Command::OrderByName),
        9 => Mutation::Impute {
            dataset: rng.below(SCENARIO_DATASETS as u64) as usize,
            k: 1 + rng.below(4) as usize,
        },
        10 => Mutation::Normalize {
            dataset: if rng.below(2) == 0 {
                None
            } else {
                Some(rng.below(SCENARIO_DATASETS as u64) as usize)
            },
            method: rng_pick(
                rng,
                &[
                    NormalizeMethod::Log2,
                    NormalizeMethod::CenterRows,
                    NormalizeMethod::MedianCenterRows,
                    NormalizeMethod::ZscoreRows,
                ],
            ),
        },
        _ => Mutation::ClusterArrays {
            dataset: rng.below(SCENARIO_DATASETS as u64) as usize,
        },
    }
}

fn arb_history() -> impl Strategy<Value = Vec<Request>> {
    FnStrategy::new(|rng: &mut TestRng| {
        let mut reqs = vec![Request::Mutate(Mutation::LoadScenario {
            n_genes: 60 + rng.below(40) as usize,
            seed: rng.next_u64() % 1000,
        })];
        for _ in 0..rng.below(12) {
            // queries interleave: they bump the attempted-request counter
            // without entering the log
            if rng.below(4) == 0 {
                reqs.push(Request::Query(Query::SessionInfo));
            } else {
                reqs.push(Request::Mutate(arb_session_mutation(rng)));
            }
        }
        reqs
    })
}

/// Probe transcript: render the replies to a fixed query run exactly the
/// way transports do (`TranscriptEntry::render`), so "byte-identical"
/// means the same bytes a client would see.
fn probe_transcript(engine: &mut Engine) -> String {
    let session = SessionId::new("probe").unwrap();
    let probes = [
        Request::Query(Query::SessionInfo),
        Request::Query(Query::ListDatasets),
        Request::Query(Query::Render {
            width: 200,
            height: 150,
            path: None,
        }),
    ];
    probes
        .iter()
        .enumerate()
        .map(|(i, request)| {
            let response: Response = engine.execute(request).unwrap();
            TranscriptEntry {
                line_no: i + 1,
                session: session.clone(),
                request: request.clone(),
                response,
            }
            .render()
        })
        .collect()
}

fn arb_image() -> impl Strategy<Value = SessionImage> {
    FnStrategy::new(|rng: &mut TestRng| {
        let n_datasets = rng.below(3) as usize;
        let datasets = (0..n_datasets)
            .map(|i| DatasetStamp {
                len: rng.next_u64() % 1_000_000,
                mtime_nanos: if rng.below(3) == 0 {
                    None
                } else {
                    Some(rng.next_u64())
                },
                hash: rng.next_u64(),
                path: format!("data/set {i}.pcl"),
            })
            .collect();
        let log = (0..rng.below(6) as usize)
            .map(|_| arb_session_mutation(rng))
            .collect();
        SessionImage {
            scene: (1 + rng.below(4000) as usize, 1 + rng.below(4000) as usize),
            requests: rng.next_u64(),
            datasets,
            log,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn image_format_then_parse_is_identity(image in arb_image()) {
        let text = format_session_image(&image);
        let parsed = parse_session_image(&text);
        prop_assert!(parsed.is_ok(), "format produced unparseable {text:?}: {parsed:?}");
        prop_assert_eq!(parsed.unwrap(), image, "text was {}", text);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn snapshot_format_parse_restore_round_trips(history in arb_history()) {
        let mut original = Engine::with_scene(640, 480);
        for request in &history {
            original.execute(request).unwrap();
        }
        let image = original.snapshot();
        let text = format_session_image(&image);
        let parsed = parse_session_image(&text).unwrap();
        prop_assert_eq!(&parsed, &image, "image text round-trips");
        let mut restored = Engine::restore(&parsed, &DatasetCache::new()).unwrap();
        prop_assert_eq!(restored.cost(), original.cost(), "EngineCost survives");
        prop_assert_eq!(
            restored.session().cluster_settings(),
            original.session().cluster_settings(),
            "cluster settings survive"
        );
        prop_assert_eq!(
            format_session_image(&restored.snapshot()),
            text,
            "re-snapshot is the same image"
        );
        prop_assert_eq!(
            probe_transcript(&mut restored),
            probe_transcript(&mut original),
            "probe transcripts are byte-identical"
        );
    }
}
