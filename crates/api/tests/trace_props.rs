//! Trace-codec round-trip property tests:
//! `parse_trace_line(format_trace_line(e)) == e` for every representable
//! [`TraceEvent`] — send lines with non-ASCII session names, multi-line
//! `recv ok` bodies (blank lines, frame-header lookalikes, indented
//! continuations), and `recv err` events across every frozen error code
//! — plus the whole-trace inverse `parse_trace(format_trace(es)) == es`.

use fv_api::trace::{format_trace, format_trace_line, parse_trace, parse_trace_line, TraceEvent};
use fv_api::{ApiError, ErrorCode};
use proptest::prelude::*;
use proptest::strategy::FnStrategy;
use proptest::test_runner::TestRng;

fn rng_char(rng: &mut TestRng, chars: &[char]) -> char {
    chars[rng.below(chars.len() as u64) as usize]
}

/// A session-name token: single word, no whitespace — including the
/// non-ASCII alphabets the wire grammar allows in session names.
fn arb_session_token(rng: &mut TestRng) -> String {
    const CHARS: &[char] = &[
        'a', 'b', 'z', 'A', 'Z', '0', '9', '_', '.', '-', 'α', 'λ', 'φ', 'Ω', 'ß', 'é', '京', '都',
        '🜁',
    ];
    let len = 1 + rng.below(8) as usize;
    (0..len).map(|_| rng_char(rng, CHARS)).collect()
}

/// A send payload: either a `use`/`close` directive with a (possibly
/// non-ASCII) session name, or a word-salad request-looking line. The
/// trace codec carries payloads verbatim, so the domain is any single
/// line without newlines.
fn arb_send_line(rng: &mut TestRng) -> String {
    match rng.below(4) {
        0 => format!("use {}", arb_session_token(rng)),
        1 => format!("close {}", arb_session_token(rng)),
        2 => "ping".to_string(),
        _ => {
            const WORDS: &[&str] = &[
                "scenario",
                "200",
                "42",
                "cluster_all",
                "render",
                "320",
                "240",
                "spell",
                "5",
                "YAL001C,YBR002W",
                "search",
                "heat",
                "shock",
            ];
            let n = 1 + rng.below(4) as usize;
            (0..n)
                .map(|_| WORDS[rng.below(WORDS.len() as u64) as usize])
                .collect::<Vec<_>>()
                .join(" ")
        }
    }
}

/// A reply body line: plain words, blank, a frame-header lookalike, or a
/// line already carrying the response codec's two-space indent — all of
/// which the trace continuation framing must preserve byte-for-byte.
fn arb_body_line(rng: &mut TestRng) -> String {
    match rng.below(6) {
        0 => String::new(),
        1 => "ok 3 looks like a success frame".to_string(),
        2 => "err E_FAKE looks like an error frame".to_string(),
        3 => format!("  session {} shard=0 datasets=2", arb_session_token(rng)),
        _ => format!("applied selection={} damage=-", rng.below(100)),
    }
}

fn arb_body(rng: &mut TestRng) -> String {
    let n = rng.below(5) as usize;
    (0..n + usize::from(n == 0 && rng.below(2) == 0))
        .map(|_| arb_body_line(rng))
        .collect::<Vec<_>>()
        .join("\n")
}

const CODES: &[ErrorCode] = &[
    ErrorCode::Parse,
    ErrorCode::InvalidRequest,
    ErrorCode::NotFound,
    ErrorCode::AlreadyExists,
    ErrorCode::Io,
    ErrorCode::Format,
    ErrorCode::MissingContext,
    ErrorCode::Busy,
    ErrorCode::Internal,
];

fn arb_error(rng: &mut TestRng) -> ApiError {
    let code = CODES[rng.below(CODES.len() as u64) as usize];
    let message = match rng.below(4) {
        0 => String::new(),
        1 => "pending request queue is full (3 pending, limit 3); the request was not executed"
            .to_string(),
        2 => format!(
            "skipped: request {} earlier in this run failed",
            rng.below(9)
        ),
        _ => format!("no session named {}", arb_session_token(rng)),
    };
    ApiError::new(code, message)
}

fn arb_event() -> impl Strategy<Value = TraceEvent> {
    FnStrategy::new(|rng: &mut TestRng| match rng.below(3) {
        0 => TraceEvent::Send(arb_send_line(rng)),
        1 => TraceEvent::Recv(Ok(arb_body(rng))),
        _ => TraceEvent::Recv(Err(arb_error(rng))),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn format_then_parse_line_is_identity(event in arb_event()) {
        let text = format_trace_line(&event);
        let parsed = parse_trace_line(&text);
        prop_assert!(parsed.is_ok(), "format produced unparseable {text:?}: {parsed:?}");
        prop_assert_eq!(parsed.unwrap(), event, "text was {}", text);
        // canonical form is a fixed point
        let again = parse_trace_line(&text).unwrap();
        prop_assert_eq!(format_trace_line(&again), text);
    }

    #[test]
    fn format_then_parse_trace_is_identity(
        events in prop::collection::vec(arb_event(), 0..20),
    ) {
        let text = format_trace(&events);
        let parsed = parse_trace(&text);
        prop_assert!(parsed.is_ok(), "format produced unparseable trace: {parsed:?}\n{text}");
        prop_assert_eq!(parsed.unwrap(), events.clone());
        // annotations between events don't change the parse (comments
        // cannot interrupt a continuation block, so they go before heads)
        let mut annotated: String = text
            .lines()
            .map(|l| {
                if l.starts_with("  ") {
                    format!("{l}\n")
                } else {
                    format!("# note\n\n{l}\n")
                }
            })
            .collect();
        annotated.push_str("# trailing note\n");
        prop_assert_eq!(parse_trace(&annotated).unwrap(), events);
    }
}
