//! Wire-codec round-trip property tests: `parse(format(req)) == req` for
//! every [`Request`] variant, through both the single-request parser and
//! the script parser — and the response side's
//! `format_response(parse_response(t)) == t` for every `t` that
//! `format_response` can produce (multi-line bodies, empty damage-rect
//! lists, and free-text fields included). The generators cover the
//! documented lexical domain (tokens without whitespace/commas, free
//! text without leading/trailing whitespace) — the codec's losslessness
//! contract.

use forestview::command::Command;
use fv_api::codec::{format_request, format_response, parse_request, parse_script, ScriptItem};
use fv_api::response::{
    DamageRect, DatasetRow, EnrichmentRow, SessionInfoData, SpellDatasetRow, SpellGeneRow,
};
use fv_api::{
    parse_response, Mutation, NormalizeMethod, Query, Request, Response, SelectionExport,
};
use fv_cluster::distance::Metric;
use fv_cluster::linkage::Linkage;
use proptest::prelude::*;
use proptest::strategy::FnStrategy;
use proptest::test_runner::TestRng;

/// A wire-safe token: no whitespace, no commas, not `-` (the empty-list
/// sentinel), not `all` (the all-datasets sentinel).
fn arb_token() -> impl Strategy<Value = String> {
    FnStrategy::new(|rng: &mut TestRng| {
        const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.";
        let len = 1 + rng.below(11) as usize;
        let s: String = (0..len)
            .map(|_| CHARS[rng.below(CHARS.len() as u64) as usize] as char)
            .collect();
        if s == "-" || s == "all" {
            "tok".to_string()
        } else {
            s
        }
    })
}

/// A path-ish token (may contain `/`).
fn arb_path() -> impl Strategy<Value = String> {
    FnStrategy::new(|rng: &mut TestRng| {
        const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_./";
        let len = 1 + rng.below(19) as usize;
        let s: String = (0..len).map(|_| rng_char(rng, CHARS)).collect();
        // keep it a clean token: no leading '-' (sentinel confusion)
        format!("p{s}")
    })
}

fn rng_char(rng: &mut TestRng, chars: &[u8]) -> char {
    chars[rng.below(chars.len() as u64) as usize] as char
}

/// Free text: space-separated tokens, no leading/trailing whitespace
/// (the codec's documented constraint for trailing-text fields).
fn arb_text() -> impl Strategy<Value = String> {
    FnStrategy::new(|rng: &mut TestRng| {
        let words = 1 + rng.below(4) as usize;
        (0..words)
            .map(|_| {
                const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";
                let len = 1 + rng.below(7) as usize;
                (0..len).map(|_| rng_char(rng, CHARS)).collect::<String>()
            })
            .collect::<Vec<_>>()
            .join(" ")
    })
}

fn arb_gene_list() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(arb_token(), 0..5)
}

/// Finite, sign-varied floats; `{:?}` round-trips any finite float, so
/// the exact distribution only needs to exercise breadth.
fn arb_f32() -> impl Strategy<Value = f32> {
    FnStrategy::new(|rng: &mut TestRng| {
        let v = (rng.unit_f64() as f32 - 0.5) * 2000.0;
        // include exact-integer and tiny values on some draws
        match rng.below(4) {
            0 => v.round(),
            1 => v / 1.0e4,
            _ => v,
        }
    })
}

fn arb_linkage() -> impl Strategy<Value = Linkage> {
    prop_oneof![
        Just(Linkage::Single),
        Just(Linkage::Complete),
        Just(Linkage::Average),
        Just(Linkage::Ward),
    ]
}

fn arb_metric() -> impl Strategy<Value = Metric> {
    prop_oneof![
        Just(Metric::Pearson),
        Just(Metric::AbsPearson),
        Just(Metric::Uncentered),
        Just(Metric::Spearman),
        Just(Metric::Euclidean),
    ]
}

fn arb_normalize_method() -> impl Strategy<Value = NormalizeMethod> {
    prop_oneof![
        Just(NormalizeMethod::Log2),
        Just(NormalizeMethod::CenterRows),
        Just(NormalizeMethod::MedianCenterRows),
        Just(NormalizeMethod::ZscoreRows),
    ]
}

fn arb_selection_export() -> impl Strategy<Value = SelectionExport> {
    prop_oneof![
        Just(SelectionExport::GeneList),
        Just(SelectionExport::Merged),
        Just(SelectionExport::Coverage),
    ]
}

prop_compose! {
    fn arb_target()(d in 0usize..10, all in any::<bool>()) -> Option<usize> {
        if all { None } else { Some(d) }
    }
}

/// Every Request variant, with generated payloads.
fn arb_request() -> impl Strategy<Value = Request> {
    let cmd: Vec<Box<dyn Strategy<Value = Request>>> = vec![
        Box::new(FnStrategy::new(|rng: &mut TestRng| {
            Request::from(Command::SelectRegion {
                dataset: rng.below(8) as usize,
                start_frac: (rng.unit_f64() as f32).clamp(0.0, 1.0),
                end_frac: (rng.unit_f64() as f32).clamp(0.0, 1.0),
            })
        })),
        Box::new(FnStrategy::new(|rng: &mut TestRng| {
            let genes = arb_gene_list().generate(rng);
            Request::from(Command::SelectGenes(genes))
        })),
        Box::new(FnStrategy::new(|rng: &mut TestRng| {
            Request::from(Command::Search(arb_text().generate(rng)))
        })),
        Box::new(Just(Request::from(Command::ClearSelection))),
        Box::new(Just(Request::from(Command::ToggleSync))),
        Box::new(FnStrategy::new(|rng: &mut TestRng| {
            Request::from(Command::Scroll(rng.next_u64() as i64 % 10_000))
        })),
        Box::new(Just(Request::from(Command::OrderByName))),
        Box::new(FnStrategy::new(|rng: &mut TestRng| {
            let n = rng.below(5) as usize;
            let scores: Vec<f32> = (0..n).map(|_| arb_f32().generate(rng)).collect();
            Request::from(Command::OrderByRelevance(scores))
        })),
        Box::new(Just(Request::from(Command::ClusterAll))),
        Box::new(FnStrategy::new(|rng: &mut TestRng| {
            Request::from(Command::SetContrast {
                dataset: arb_target().generate(rng),
                contrast: arb_f32().generate(rng),
            })
        })),
        Box::new(FnStrategy::new(|rng: &mut TestRng| {
            Request::from(Command::SetLinkage(arb_linkage().generate(rng)))
        })),
        Box::new(FnStrategy::new(|rng: &mut TestRng| {
            Request::from(Command::SetMetric(arb_metric().generate(rng)))
        })),
    ];
    let mutations: Vec<Box<dyn Strategy<Value = Request>>> = vec![
        Box::new(FnStrategy::new(|rng: &mut TestRng| {
            Request::from(Mutation::LoadDataset {
                path: arb_path().generate(rng),
            })
        })),
        Box::new(FnStrategy::new(|rng: &mut TestRng| {
            Request::from(Mutation::LoadScenario {
                n_genes: 1 + rng.below(5000) as usize,
                seed: rng.next_u64(),
            })
        })),
        Box::new(FnStrategy::new(|rng: &mut TestRng| {
            Request::from(Mutation::LoadCompendium {
                n_genes: 1 + rng.below(5000) as usize,
                n_datasets: 1 + rng.below(100) as usize,
                seed: rng.next_u64(),
            })
        })),
        Box::new(FnStrategy::new(|rng: &mut TestRng| {
            Request::from(Mutation::BuildOntology {
                n_filler: rng.below(2000) as usize,
                seed: rng.next_u64(),
            })
        })),
        Box::new(FnStrategy::new(|rng: &mut TestRng| {
            Request::from(Mutation::Impute {
                dataset: rng.below(8) as usize,
                k: 1 + rng.below(30) as usize,
            })
        })),
        Box::new(FnStrategy::new(|rng: &mut TestRng| {
            Request::from(Mutation::Normalize {
                dataset: arb_target().generate(rng),
                method: arb_normalize_method().generate(rng),
            })
        })),
        Box::new(FnStrategy::new(|rng: &mut TestRng| {
            Request::from(Mutation::ClusterArrays {
                dataset: rng.below(8) as usize,
            })
        })),
    ];
    let queries: Vec<Box<dyn Strategy<Value = Request>>> = vec![
        Box::new(FnStrategy::new(|rng: &mut TestRng| {
            Request::from(Query::Search {
                query: arb_text().generate(rng),
            })
        })),
        Box::new(FnStrategy::new(|rng: &mut TestRng| {
            let mut genes = arb_gene_list().generate(rng);
            if genes.is_empty() {
                genes.push("YAL001C".into());
            }
            Request::from(Query::Spell {
                genes,
                top_n: rng.below(200) as usize,
            })
        })),
        Box::new(FnStrategy::new(|rng: &mut TestRng| {
            let genes = if rng.below(2) == 0 {
                None
            } else {
                let mut g = arb_gene_list().generate(rng);
                if g.is_empty() {
                    g.push("YBR002W".into());
                }
                Some(g)
            };
            Request::from(Query::Enrich {
                genes,
                max_terms: rng.below(50) as usize,
            })
        })),
        Box::new(FnStrategy::new(|rng: &mut TestRng| {
            let path = if rng.below(2) == 0 {
                None
            } else {
                Some(arb_path().generate(rng))
            };
            Request::from(Query::Render {
                width: 1 + rng.below(4000) as usize,
                height: 1 + rng.below(4000) as usize,
                path,
            })
        })),
        Box::new(FnStrategy::new(|rng: &mut TestRng| {
            let prefix = if rng.below(2) == 0 {
                None
            } else {
                Some(arb_path().generate(rng))
            };
            Request::from(Query::ExportCdt {
                dataset: rng.below(8) as usize,
                prefix,
            })
        })),
        Box::new(FnStrategy::new(|rng: &mut TestRng| {
            Request::from(Query::ExportPcl {
                dataset: rng.below(8) as usize,
                path: arb_path().generate(rng),
            })
        })),
        Box::new(FnStrategy::new(|rng: &mut TestRng| {
            Request::from(Query::ExportSelection {
                what: arb_selection_export().generate(rng),
            })
        })),
        Box::new(Just(Request::from(Query::SessionInfo))),
        Box::new(Just(Request::from(Query::ListDatasets))),
    ];
    let mut all = cmd;
    all.extend(mutations);
    all.extend(queries);
    proptest::strategy::OneOf::new(all)
}

/// Multi-line free text for `Response::Text` bodies and session
/// summaries: word lines, blank lines, and adversarial lines that mimic
/// frame headers (`err …`, `ok …`) — all of which the continuation
/// indent plus advertised byte length must carry losslessly.
fn arb_multiline(rng: &mut TestRng) -> String {
    let n_lines = rng.below(5) as usize;
    let mut text = String::new();
    for _ in 0..n_lines {
        match rng.below(5) {
            0 => {} // blank line
            1 => text.push_str("err E_FAKE looks like an error frame"),
            2 => text.push_str("ok 3 looks like a success frame"),
            _ => {
                let words = 1 + rng.below(4) as usize;
                for w in 0..words {
                    if w > 0 {
                        text.push(' ');
                    }
                    text.push_str(arb_token().generate(rng).as_str());
                }
            }
        }
        text.push('\n');
    }
    if !text.is_empty() && rng.below(3) == 0 {
        text.pop(); // sometimes no trailing newline
    }
    text
}

fn arb_rects(rng: &mut TestRng) -> Vec<DamageRect> {
    // 0 rects on a third of draws: the empty-damage-list case.
    let n = rng.below(3) as usize * rng.below(2) as usize + rng.below(2) as usize;
    (0..n)
        .map(|_| DamageRect {
            x: rng.below(4000) as usize,
            y: rng.below(4000) as usize,
            w: rng.below(2000) as usize,
            h: rng.below(2000) as usize,
        })
        .collect()
}

fn arb_opt_len(rng: &mut TestRng) -> Option<usize> {
    if rng.below(3) == 0 {
        None
    } else {
        Some(rng.below(10_000) as usize)
    }
}

/// Every Response variant, with generated payloads.
fn arb_response() -> impl Strategy<Value = Response> {
    let variants: Vec<Box<dyn Strategy<Value = Response>>> = vec![
        Box::new(FnStrategy::new(|rng: &mut TestRng| Response::Applied {
            selection_len: arb_opt_len(rng),
            damage: arb_rects(rng),
        })),
        Box::new(FnStrategy::new(|rng: &mut TestRng| Response::Loaded {
            dataset: rng.below(16) as usize,
            name: arb_token().generate(rng),
            genes: rng.below(10_000) as usize,
            conditions: rng.below(500) as usize,
        })),
        Box::new(FnStrategy::new(|rng: &mut TestRng| {
            Response::ScenarioLoaded {
                names: arb_gene_list().generate(rng),
                n_genes: rng.below(10_000) as usize,
            }
        })),
        Box::new(FnStrategy::new(|rng: &mut TestRng| {
            Response::OntologyReady {
                terms: rng.below(5000) as usize,
            }
        })),
        Box::new(FnStrategy::new(|rng: &mut TestRng| Response::Imputed {
            filled: rng.below(100_000) as usize,
            missing_before: rng.below(100_000) as usize,
        })),
        Box::new(FnStrategy::new(|rng: &mut TestRng| Response::Normalized {
            datasets: rng.below(32) as usize,
        })),
        Box::new(FnStrategy::new(|rng: &mut TestRng| {
            Response::ArraysClustered {
                dataset: rng.below(16) as usize,
            }
        })),
        Box::new(FnStrategy::new(|rng: &mut TestRng| Response::SearchHits {
            genes: arb_gene_list().generate(rng),
        })),
        Box::new(FnStrategy::new(|rng: &mut TestRng| {
            let n_ds = rng.below(4) as usize;
            let n_genes = rng.below(4) as usize;
            Response::SpellRanking {
                datasets: (0..n_ds)
                    .map(|_| SpellDatasetRow {
                        name: arb_text().generate(rng),
                        weight: arb_f32().generate(rng),
                        query_genes_present: rng.below(20) as usize,
                    })
                    .collect(),
                genes: (0..n_genes)
                    .map(|_| SpellGeneRow {
                        gene: arb_token().generate(rng),
                        score: arb_f32().generate(rng),
                        n_datasets: rng.below(32) as usize,
                    })
                    .collect(),
                query_missing: arb_gene_list().generate(rng),
            }
        })),
        Box::new(FnStrategy::new(|rng: &mut TestRng| {
            let n = rng.below(4) as usize;
            Response::Enrichment {
                rows: (0..n)
                    .map(|_| EnrichmentRow {
                        accession: format!("GO:{:07}", rng.below(10_000_000)),
                        name: arb_text().generate(rng),
                        p_value: rng.unit_f64() / 1.0e6,
                        q_value: rng.unit_f64() / 1.0e3,
                        overlap: rng.below(50) as usize,
                        annotated: rng.below(500) as usize,
                    })
                    .collect(),
            }
        })),
        Box::new(FnStrategy::new(|rng: &mut TestRng| Response::Frame {
            width: 1 + rng.below(4000) as usize,
            height: 1 + rng.below(4000) as usize,
            panes: rng.below(16) as usize,
            checksum: rng.next_u64(),
            path: if rng.below(2) == 0 {
                None
            } else {
                Some(arb_path().generate(rng))
            },
        })),
        Box::new(FnStrategy::new(|rng: &mut TestRng| Response::CdtExported {
            dataset: rng.below(16) as usize,
            files: (0..rng.below(4) as usize)
                .map(|_| arb_path().generate(rng))
                .collect(),
            cdt_bytes: rng.below(1 << 20) as usize,
            has_gtr: rng.below(2) == 0,
            has_atr: rng.below(2) == 0,
        })),
        Box::new(FnStrategy::new(|rng: &mut TestRng| Response::PclExported {
            dataset: rng.below(16) as usize,
            path: arb_path().generate(rng),
            genes: rng.below(10_000) as usize,
            conditions: rng.below(500) as usize,
        })),
        Box::new(FnStrategy::new(|rng: &mut TestRng| Response::Text {
            text: arb_multiline(rng),
        })),
        Box::new(FnStrategy::new(|rng: &mut TestRng| {
            let n = rng.below(6) as usize;
            Response::SessionInfo(SessionInfoData {
                n_datasets: n,
                universe_genes: rng.below(10_000) as usize,
                total_measurements: rng.below(1_000_000) as usize,
                selection_len: arb_opt_len(rng),
                sync_enabled: rng.below(2) == 0,
                scroll: rng.below(1000) as usize,
                dataset_order: (0..n).map(|_| rng.below(16) as usize).collect(),
                summary: arb_multiline(rng),
            })
        })),
        Box::new(FnStrategy::new(|rng: &mut TestRng| {
            let n = rng.below(4) as usize;
            Response::Datasets {
                rows: (0..n)
                    .map(|d| DatasetRow {
                        dataset: d,
                        name: arb_token().generate(rng),
                        genes: rng.below(10_000) as usize,
                        conditions: rng.below(500) as usize,
                        gene_clustered: rng.below(2) == 0,
                        array_clustered: rng.below(2) == 0,
                    })
                    .collect(),
            }
        })),
    ];
    proptest::strategy::OneOf::new(variants)
}

/// Whether the variant's canonical text carries every bit of the value
/// (no display-precision floats), so typed equality must hold too.
fn is_float_free(r: &Response) -> bool {
    !matches!(
        r,
        Response::SpellRanking { .. } | Response::Enrichment { .. }
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn format_then_parse_is_identity(req in arb_request()) {
        let line = format_request(&req);
        let parsed = parse_request(&line);
        prop_assert!(parsed.is_ok(), "format produced unparseable {line:?}: {parsed:?}");
        prop_assert_eq!(parsed.unwrap(), req.clone(), "line was {}", line);
        // canonical form is a fixed point
        let parsed_again = parse_request(&line).unwrap();
        prop_assert_eq!(format_request(&parsed_again), line);
    }

    #[test]
    fn script_parser_agrees_with_request_parser(reqs in prop::collection::vec(arb_request(), 1..10)) {
        let text: String = reqs
            .iter()
            .map(|r| format!("{}\n", format_request(r)))
            .collect();
        let lines = parse_script(&text).unwrap();
        prop_assert_eq!(lines.len(), reqs.len());
        for (line, req) in lines.iter().zip(&reqs) {
            match &line.item {
                ScriptItem::Request(parsed) => prop_assert_eq!(parsed, req),
                other => prop_assert!(false, "unexpected item {other:?}"),
            }
        }
    }

    #[test]
    fn scripts_survive_comments_and_whitespace(reqs in prop::collection::vec(arb_request(), 1..6)) {
        let mut text = String::from("# header comment\n\n");
        for r in &reqs {
            text.push_str(&format!("  {}  \n# trailing note\n\n", format_request(r)));
        }
        let lines = parse_script(&text).unwrap();
        prop_assert_eq!(lines.len(), reqs.len());
    }

    #[test]
    fn response_format_then_parse_is_identity(resp in arb_response()) {
        // Canonical-text identity holds for EVERY response the formatter
        // can produce — multi-line bodies, empty damage-rect lists,
        // frame-header-lookalike text lines, the lot. (Floats round-trip
        // at display precision, hence text-level identity; float-free
        // variants must also be typed-equal.)
        let text = format_response(&resp);
        let parsed = parse_response(&text);
        prop_assert!(parsed.is_ok(), "format produced undecodable {text:?}: {parsed:?}");
        let parsed = parsed.unwrap();
        prop_assert_eq!(
            format_response(&parsed),
            text.clone(),
            "decode must preserve the canonical text"
        );
        if is_float_free(&resp) {
            prop_assert_eq!(parsed, resp, "lossless variant drifted; text was {}", text);
        }
    }
}
