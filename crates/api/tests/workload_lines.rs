//! The workload generator (fv-synth) is deliberately decoupled from this
//! crate's codec — it formats its own wire lines. These tests close the
//! loop: every line every scenario emits must parse under the real wire
//! grammar as a *script* item (never a transport control), and a
//! generated client stream must replay cleanly through a local
//! [`EngineHub`].

use fv_api::codec::{parse_script, parse_wire_line, WireItem};
use fv_api::EngineHub;
use fv_synth::workload::{generate, WorkloadKind, WorkloadSpec, WORKLOAD_KINDS};

#[test]
fn every_generated_line_parses_as_a_script_item() {
    for &kind in WORKLOAD_KINDS {
        let spec = WorkloadSpec {
            kind,
            clients: 4,
            bursts: 12,
            n_genes: 90,
            seed: 20070331,
        };
        for script in generate(&spec) {
            for line in script.wire_lines() {
                match parse_wire_line(&line) {
                    Ok(Some(WireItem::Script(_))) => {}
                    other => panic!("{kind}: line {line:?} is not a script item: {other:?}"),
                }
            }
            // the stream is also a valid script file, wholesale
            parse_script(&script.script_text())
                .unwrap_or_else(|e| panic!("{kind}: stream rejected as a script: {e}"));
        }
    }
}

#[test]
fn generated_streams_replay_cleanly_through_a_local_hub() {
    let spec = WorkloadSpec {
        kind: WorkloadKind::Mixed,
        clients: 3,
        bursts: 4,
        n_genes: 60,
        seed: 7,
    };
    for script in generate(&spec) {
        let mut hub = EngineHub::with_scene(640, 480);
        let outcome = hub
            .run_script(&script.script_text())
            .unwrap_or_else(|e| panic!("{}: generated stream failed locally: {e}", script.session));
        assert!(
            !outcome.entries.is_empty(),
            "{}: replay produced no transcript",
            script.session
        );
    }
}

#[test]
fn replay_of_equal_streams_is_byte_identical() {
    let spec = WorkloadSpec {
        kind: WorkloadKind::ClusterLoop,
        clients: 1,
        bursts: 3,
        n_genes: 60,
        seed: 99,
    };
    let script = &generate(&spec)[0];
    let run = || {
        let mut hub = EngineHub::with_scene(640, 480);
        hub.run_script(&script.script_text()).unwrap().transcript()
    };
    assert_eq!(run(), run(), "two fresh local replays must match");
}
