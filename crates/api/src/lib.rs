//! # fv-api — the unified request/response protocol and execution engine
//!
//! Every front end of the ForestView reproduction (the `fvtool` CLI,
//! examples, tests, and the future network server) drives sessions through
//! one typed, serializable surface defined here. The paper's ForestView is
//! a single-user GUI whose interactions are mouse events; this crate is
//! what turns the reproduction into a *system*: one source of truth for
//! what the application can be asked, with many expressions (Rust values,
//! wire text, replayable script files).
//!
//! ## Layering
//!
//! ```text
//!   front ends          fvtool · examples · tests · (network, later)
//!        │ Request / Response / ApiError        [`request`], [`response`], [`error`]
//!        ▼
//!   EngineHub           named sessions, script replay        [`hub`]
//!        │ SessionId routing
//!        ▼
//!   Engine              single session, batch damage         [`engine`]
//!        │ Command perform + one damage pass per batch
//!        ▼
//!   forestview core     Session · command · renderer · export
//! ```
//!
//! The wire codec ([`codec`]) converts between the typed surface and
//! line-oriented text: `parse_script` / `parse_request` inbound,
//! `format_request` / `format_response` outbound. `parse(format(r)) == r`
//! holds for every request — the protocol is replayable by construction.
//!
//! ## Example
//!
//! ```
//! use fv_api::{Engine, Request, Mutation, Query, Response};
//! use forestview::command::Command;
//!
//! let mut engine = Engine::with_scene(800, 600);
//! engine
//!     .execute(&Request::Mutate(Mutation::LoadScenario { n_genes: 60, seed: 1 }))
//!     .unwrap();
//! // Batches coalesce damage: one layout pass for the whole stream.
//! let outcome = engine
//!     .execute_batch(&[
//!         Request::Mutate(Mutation::Command(Command::ClusterAll)),
//!         Request::Mutate(Mutation::Command(Command::Search("stress".into()))),
//!         Request::Query(Query::SessionInfo),
//!     ])
//!     .unwrap();
//! assert_eq!(outcome.responses.len(), 3);
//! assert!(!outcome.damage.is_empty());
//! match &outcome.responses[2] {
//!     Response::SessionInfo(info) => assert_eq!(info.n_datasets, 3),
//!     other => panic!("unexpected: {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]

pub mod cache;
pub mod codec;
pub mod decode;
pub mod engine;
pub mod error;
pub mod hub;
pub mod image;
pub mod request;
pub mod response;
pub mod store;
pub mod trace;

pub use cache::{CacheStats, DatasetCache};
pub use codec::{
    format_request, format_response, format_sessions_reply, parse_request, parse_script,
    parse_wire_line, BalanceMode, SessionEntry, WireItem,
};
pub use decode::{parse_response, parse_sessions_reply};
pub use engine::{BatchOutcome, Engine, EngineCost, RunOutcome};
pub use error::{ApiError, ErrorCode};
pub use hub::{EngineHub, ScriptOutcome, SessionId};
pub use image::{format_session_image, parse_session_image, DatasetStamp, SessionImage};
pub use request::{Mutation, NormalizeMethod, Query, Request, SelectionExport};
pub use response::Response;
pub use store::{ScanOutcome, SessionStore};
pub use trace::{
    format_trace, format_trace_line, parse_trace, parse_trace_line, trace_recvs, trace_sends,
    TraceEvent, TRACE_HEADER, TRACE_VERSION,
};
