//! The inbound half of the response codec: recover a typed [`Response`]
//! from its [`crate::codec::format_response`] text.
//!
//! Network clients receive response *text* over the wire; this module is
//! what lets them hand typed responses back to callers (so `fvtool
//! --remote` prints byte-identical output through the same formatting
//! code as local execution). The decoder is an exact inverse of the
//! formatter up to the documented display-precision loss:
//! `format_response(parse_response(s)?) == s` for every `s` produced by
//! `format_response` (property-tested), and the recovered floats are the
//! displayed `{:.3}` / `{:.3e}` values rather than the original bits.
//!
//! Lexical assumptions (shared with the formatter): names embedded
//! mid-line (dataset names) must not contain the literal delimiter of the
//! field that follows them (e.g. `" weight="` in a SPELL dataset row);
//! free-text fields at end of line (enrichment term names) may contain
//! anything but newlines.

use crate::codec::{parse_list, SessionEntry, NONE};
use crate::error::ApiError;
use crate::response::{
    DamageRect, DatasetRow, EnrichmentRow, Response, SessionInfoData, SpellDatasetRow, SpellGeneRow,
};

/// Parse a `list-sessions` reply (as produced by
/// [`crate::codec::format_sessions_reply`]) back into its entries.
pub fn parse_sessions_reply(text: &str) -> Result<Vec<SessionEntry>, ApiError> {
    let mut lines = text.lines();
    let head = lines
        .next()
        .ok_or_else(|| ApiError::parse("empty sessions reply"))?;
    let tail = head
        .strip_prefix("sessions ")
        .ok_or_else(|| ApiError::parse(format!("not a sessions reply: {head:?}")))?;
    let n: usize = num(field(tail, "n")?, "n")?;
    let cont: Vec<&str> = lines.collect();
    let cont = de_indent(&cont)?;
    let mut entries = Vec::with_capacity(n);
    for line in &cont {
        let row = line
            .strip_prefix("session ")
            .ok_or_else(|| ApiError::parse(format!("unexpected session row {line:?}")))?;
        let (name, rest) = row
            .split_once(' ')
            .ok_or_else(|| ApiError::parse("session row needs fields"))?;
        entries.push(SessionEntry {
            name: name.to_string(),
            shard: num(field(rest, "shard")?, "shard")?,
            n_datasets: num(field(rest, "datasets")?, "datasets")?,
        });
    }
    if entries.len() != n {
        return Err(ApiError::parse(
            "session row count disagrees with the header",
        ));
    }
    Ok(entries)
}

/// Parse canonical response text (as produced by
/// [`crate::codec::format_response`]) back into a typed [`Response`].
pub fn parse_response(text: &str) -> Result<Response, ApiError> {
    let mut lines = text.lines();
    let head = lines
        .next()
        .ok_or_else(|| ApiError::parse("empty response text"))?;
    let rest: Vec<&str> = lines.collect();
    let cont = de_indent(&rest)?;
    let (keyword, tail) = match head.split_once(' ') {
        Some((k, t)) => (k, t),
        None => (head, ""),
    };
    match keyword {
        "applied" => {
            no_continuation(&cont, "applied")?;
            Ok(Response::Applied {
                selection_len: opt_num_of(field(tail, "selection")?)?,
                damage: parse_rects(field(tail, "damage")?)?,
            })
        }
        "loaded" => {
            no_continuation(&cont, "loaded")?;
            let (name, around) = mid_name(tail, "name=", " genes=")?;
            Ok(Response::Loaded {
                dataset: num(field(&around, "dataset")?, "dataset")?,
                name,
                genes: num(field(&around, "genes")?, "genes")?,
                conditions: num(field(&around, "conditions")?, "conditions")?,
            })
        }
        "scenario" => {
            no_continuation(&cont, "scenario")?;
            Ok(Response::ScenarioLoaded {
                names: parse_list(field(tail, "datasets")?)?,
                n_genes: num(field(tail, "genes")?, "genes")?,
            })
        }
        "ontology" => {
            no_continuation(&cont, "ontology")?;
            Ok(Response::OntologyReady {
                terms: num(field(tail, "terms")?, "terms")?,
            })
        }
        "imputed" => {
            no_continuation(&cont, "imputed")?;
            Ok(Response::Imputed {
                filled: num(field(tail, "filled")?, "filled")?,
                missing_before: num(field(tail, "missing")?, "missing")?,
            })
        }
        "normalized" => {
            no_continuation(&cont, "normalized")?;
            Ok(Response::Normalized {
                datasets: num(field(tail, "datasets")?, "datasets")?,
            })
        }
        "arrays_clustered" => {
            no_continuation(&cont, "arrays_clustered")?;
            Ok(Response::ArraysClustered {
                dataset: num(field(tail, "dataset")?, "dataset")?,
            })
        }
        "search" => {
            no_continuation(&cont, "search")?;
            let genes = parse_list(field(tail, "genes")?)?;
            let hits: usize = num(field(tail, "hits")?, "hits")?;
            if hits != genes.len() {
                return Err(ApiError::parse(format!(
                    "search hit count {hits} disagrees with gene list length {}",
                    genes.len()
                )));
            }
            Ok(Response::SearchHits { genes })
        }
        "spell" => parse_spell(tail, &cont),
        "enrich" => parse_enrich(tail, &cont),
        "frame" => {
            no_continuation(&cont, "frame")?;
            let (dims, tail) = tail
                .split_once(' ')
                .ok_or_else(|| ApiError::parse("frame needs <w>x<h>"))?;
            let (w, h) = dims
                .split_once('x')
                .ok_or_else(|| ApiError::parse("frame dimensions are <w>x<h>"))?;
            let checksum = u64::from_str_radix(field(tail, "checksum")?, 16)
                .map_err(|_| ApiError::parse("bad frame checksum"))?;
            Ok(Response::Frame {
                width: num(w, "width")?,
                height: num(h, "height")?,
                panes: num(field(tail, "panes")?, "panes")?,
                checksum,
                path: opt_str_of(field(tail, "path")?),
            })
        }
        "cdt" => {
            no_continuation(&cont, "cdt")?;
            Ok(Response::CdtExported {
                dataset: num(field(tail, "dataset")?, "dataset")?,
                files: parse_list(field(tail, "files")?)?,
                cdt_bytes: num(field(tail, "bytes")?, "bytes")?,
                has_gtr: yes_no_of(field(tail, "gtr")?)?,
                has_atr: yes_no_of(field(tail, "atr")?)?,
            })
        }
        "pcl" => {
            no_continuation(&cont, "pcl")?;
            Ok(Response::PclExported {
                dataset: num(field(tail, "dataset")?, "dataset")?,
                path: field(tail, "path")?.to_string(),
                genes: num(field(tail, "genes")?, "genes")?,
                conditions: num(field(tail, "conditions")?, "conditions")?,
            })
        }
        "text" => Ok(Response::Text {
            text: rebuild_text(&cont, num(field(tail, "bytes")?, "bytes")?)?,
        }),
        "session" => {
            let order = parse_list(field(tail, "order")?)?
                .iter()
                .map(|t| num(t, "order index"))
                .collect::<Result<Vec<usize>, _>>()?;
            let summary =
                rebuild_text(&cont, num(field(tail, "summary_bytes")?, "summary_bytes")?)?;
            Ok(Response::SessionInfo(SessionInfoData {
                n_datasets: num(field(tail, "datasets")?, "datasets")?,
                universe_genes: num(field(tail, "universe")?, "universe")?,
                total_measurements: num(field(tail, "measurements")?, "measurements")?,
                selection_len: opt_num_of(field(tail, "selection")?)?,
                sync_enabled: on_off_of(field(tail, "sync")?)?,
                scroll: num(field(tail, "scroll")?, "scroll")?,
                dataset_order: order,
                summary,
            }))
        }
        "datasets" => parse_datasets(tail, &cont),
        other => Err(ApiError::parse(format!("unknown response {other:?}"))),
    }
}

fn parse_spell(tail: &str, cont: &[String]) -> Result<Response, ApiError> {
    let n_datasets: usize = num(field(tail, "datasets")?, "datasets")?;
    let n_genes: usize = num(field(tail, "genes")?, "genes")?;
    let query_missing = parse_list(field(tail, "missing")?)?;
    let mut datasets = Vec::with_capacity(n_datasets);
    let mut genes = Vec::with_capacity(n_genes);
    for line in cont {
        if let Some(row) = line.strip_prefix("dataset ") {
            let (name, rest) = name_before(row, " weight=")?;
            datasets.push(SpellDatasetRow {
                name,
                weight: num(field(&rest, "weight")?, "weight")?,
                query_genes_present: num(field(&rest, "present")?, "present")?,
            });
        } else if let Some(row) = line.strip_prefix("gene ") {
            let (gene, rest) = name_before(row, " score=")?;
            genes.push(SpellGeneRow {
                gene,
                score: num(field(&rest, "score")?, "score")?,
                n_datasets: num(field(&rest, "datasets")?, "datasets")?,
            });
        } else {
            return Err(ApiError::parse(format!("unexpected spell row {line:?}")));
        }
    }
    if datasets.len() != n_datasets || genes.len() != n_genes {
        return Err(ApiError::parse("spell row counts disagree with the header"));
    }
    Ok(Response::SpellRanking {
        datasets,
        genes,
        query_missing,
    })
}

fn parse_enrich(tail: &str, cont: &[String]) -> Result<Response, ApiError> {
    let n: usize = num(field(tail, "terms")?, "terms")?;
    let mut rows = Vec::with_capacity(n);
    for line in cont {
        let row = line
            .strip_prefix("term ")
            .ok_or_else(|| ApiError::parse(format!("unexpected enrich row {line:?}")))?;
        let (accession, rest) = row
            .split_once(' ')
            .ok_or_else(|| ApiError::parse("enrich term row needs fields"))?;
        let name = rest
            .split_once("name=")
            .map(|(_, n)| n.to_string())
            .ok_or_else(|| ApiError::parse("enrich term row needs name="))?;
        let (overlap, annotated) = field(rest, "overlap")?
            .split_once('/')
            .ok_or_else(|| ApiError::parse("enrich overlap is <overlap>/<annotated>"))?;
        rows.push(EnrichmentRow {
            accession: accession.to_string(),
            name,
            p_value: num(field(rest, "p")?, "p")?,
            q_value: num(field(rest, "q")?, "q")?,
            overlap: num(overlap, "overlap")?,
            annotated: num(annotated, "annotated")?,
        });
    }
    if rows.len() != n {
        return Err(ApiError::parse("enrich row count disagrees with header"));
    }
    Ok(Response::Enrichment { rows })
}

fn parse_datasets(tail: &str, cont: &[String]) -> Result<Response, ApiError> {
    let n: usize = num(field(tail, "n")?, "n")?;
    let mut rows = Vec::with_capacity(n);
    for line in cont {
        let row = line
            .strip_prefix("dataset ")
            .ok_or_else(|| ApiError::parse(format!("unexpected dataset row {line:?}")))?;
        let (d, rest) = row
            .split_once(' ')
            .ok_or_else(|| ApiError::parse("dataset row needs fields"))?;
        let (name, around) = mid_name(rest, "name=", " genes=")?;
        let (gene_clustered, array_clustered) = match field(&around, "clustered")? {
            "gene+array" => (true, true),
            "gene" => (true, false),
            "array" => (false, true),
            "none" => (false, false),
            other => return Err(ApiError::parse(format!("unknown cluster state {other:?}"))),
        };
        rows.push(DatasetRow {
            dataset: num(d, "dataset")?,
            name,
            genes: num(field(&around, "genes")?, "genes")?,
            conditions: num(field(&around, "conditions")?, "conditions")?,
            gene_clustered,
            array_clustered,
        });
    }
    if rows.len() != n {
        return Err(ApiError::parse("dataset row count disagrees with header"));
    }
    Ok(Response::Datasets { rows })
}

// ── helpers ─────────────────────────────────────────────────────────────

/// Strip the two-space continuation indent from every line after the
/// first.
fn de_indent(lines: &[&str]) -> Result<Vec<String>, ApiError> {
    lines
        .iter()
        .map(|l| {
            l.strip_prefix("  ")
                .map(str::to_string)
                .ok_or_else(|| ApiError::parse(format!("continuation line not indented: {l:?}")))
        })
        .collect()
}

fn no_continuation(cont: &[String], what: &str) -> Result<(), ApiError> {
    if cont.is_empty() {
        Ok(())
    } else {
        Err(ApiError::parse(format!(
            "{what} responses are single-line, got {} continuation line(s)",
            cont.len()
        )))
    }
}

/// Whitespace-delimited `key=value` lookup. Only safe for values without
/// spaces — use [`mid_name`] / [`name_before`] for embedded names.
/// Public because transport-level reply decoders (e.g. fv-net's `stats`
/// parser) share this exact grammar — one parser, no drift.
pub fn field<'a>(s: &'a str, key: &str) -> Result<&'a str, ApiError> {
    s.split_whitespace()
        .find_map(|tok| tok.strip_prefix(key).and_then(|v| v.strip_prefix('=')))
        .ok_or_else(|| ApiError::parse(format!("missing field {key}=")))
}

/// Extract a mid-line name value delimited by `prefix` (e.g. `name=`) and
/// the literal start of the next field (e.g. `" genes="`). Returns the
/// name and the line with `prefix+name` removed, so the remaining
/// token-safe fields can be looked up with [`field`].
fn mid_name(s: &str, prefix: &str, next: &str) -> Result<(String, String), ApiError> {
    let start = s
        .find(prefix)
        .ok_or_else(|| ApiError::parse(format!("missing field {prefix}")))?;
    let after = &s[start + prefix.len()..];
    let end = after
        .rfind(next)
        .ok_or_else(|| ApiError::parse(format!("missing field {next}")))?;
    let name = after[..end].to_string();
    let around = format!("{}{}", &s[..start], &after[end + 1..]);
    Ok((name, around))
}

/// Extract a leading name that runs until the literal `delim` (e.g.
/// `" weight="`), returning the name and the rest from `delim`'s
/// key onward.
fn name_before(s: &str, delim: &str) -> Result<(String, String), ApiError> {
    let at = s
        .rfind(delim)
        .ok_or_else(|| ApiError::parse(format!("missing field {delim}")))?;
    Ok((s[..at].to_string(), s[at + 1..].to_string()))
}

/// Parse a numeric field value; `what` names the field in the error.
/// Public for the same reason as [`field`].
pub fn num<T: std::str::FromStr>(token: &str, what: &str) -> Result<T, ApiError> {
    token
        .parse()
        .map_err(|_| ApiError::parse(format!("bad {what}: {token:?}")))
}

fn opt_num_of(token: &str) -> Result<Option<usize>, ApiError> {
    if token == NONE {
        Ok(None)
    } else {
        num(token, "optional count").map(Some)
    }
}

fn opt_str_of(token: &str) -> Option<String> {
    if token == NONE {
        None
    } else {
        Some(token.to_string())
    }
}

fn yes_no_of(token: &str) -> Result<bool, ApiError> {
    match token {
        "yes" => Ok(true),
        "no" => Ok(false),
        other => Err(ApiError::parse(format!("expected yes/no, got {other:?}"))),
    }
}

fn on_off_of(token: &str) -> Result<bool, ApiError> {
    match token {
        "on" => Ok(true),
        "off" => Ok(false),
        other => Err(ApiError::parse(format!("expected on/off, got {other:?}"))),
    }
}

/// `x:y:w:h` rectangle list; `-` is empty.
fn parse_rects(token: &str) -> Result<Vec<DamageRect>, ApiError> {
    if token == NONE {
        return Ok(Vec::new());
    }
    token
        .split(',')
        .map(|r| {
            let parts: Vec<&str> = r.split(':').collect();
            let [x, y, w, h] = parts.as_slice() else {
                return Err(ApiError::parse(format!("bad damage rect {r:?}")));
            };
            Ok(DamageRect {
                x: num(x, "rect x")?,
                y: num(y, "rect y")?,
                w: num(w, "rect w")?,
                h: num(h, "rect h")?,
            })
        })
        .collect()
}

/// Rebuild multi-line text from de-indented continuation lines plus the
/// advertised byte length (which disambiguates a trailing newline).
fn rebuild_text(lines: &[String], bytes: usize) -> Result<String, ApiError> {
    let joined = lines.join("\n");
    if joined.len() == bytes {
        Ok(joined)
    } else if joined.len() + 1 == bytes {
        Ok(joined + "\n")
    } else {
        Err(ApiError::parse(format!(
            "text length {} disagrees with advertised {bytes} bytes",
            joined.len()
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::format_response;

    fn roundtrip(r: &Response) {
        let text = format_response(r);
        let parsed = parse_response(&text).expect("canonical text parses");
        assert_eq!(
            format_response(&parsed),
            text,
            "decode must preserve the canonical text"
        );
    }

    #[test]
    fn simple_responses_roundtrip_exactly() {
        for r in [
            Response::Applied {
                selection_len: Some(4),
                damage: vec![
                    DamageRect {
                        x: 0,
                        y: 0,
                        w: 10,
                        h: 5,
                    },
                    DamageRect {
                        x: 10,
                        y: 0,
                        w: 2,
                        h: 3,
                    },
                ],
            },
            Response::Applied {
                selection_len: None,
                damage: vec![],
            },
            Response::Loaded {
                dataset: 2,
                name: "gasch_stress".into(),
                genes: 100,
                conditions: 12,
            },
            Response::ScenarioLoaded {
                names: vec!["a".into(), "b".into()],
                n_genes: 150,
            },
            Response::OntologyReady { terms: 42 },
            Response::Imputed {
                filled: 7,
                missing_before: 9,
            },
            Response::Normalized { datasets: 3 },
            Response::ArraysClustered { dataset: 1 },
            Response::SearchHits {
                genes: vec!["YAL001C".into(), "YBR002W".into()],
            },
            Response::Frame {
                width: 400,
                height: 300,
                panes: 3,
                checksum: 0x0123_4567_89ab_cdef,
                path: None,
            },
            Response::CdtExported {
                dataset: 0,
                files: vec!["out.cdt".into(), "out.gtr".into()],
                cdt_bytes: 1234,
                has_gtr: true,
                has_atr: false,
            },
            Response::PclExported {
                dataset: 0,
                path: "out.pcl".into(),
                genes: 100,
                conditions: 8,
            },
            Response::Text {
                text: "G1\nG2\n".into(),
            },
            Response::Text {
                text: String::new(),
            },
        ] {
            let text = format_response(&r);
            assert_eq!(parse_response(&text).unwrap(), r, "text was {text:?}");
            roundtrip(&r);
        }
    }

    #[test]
    fn structured_responses_roundtrip() {
        roundtrip(&Response::SpellRanking {
            datasets: vec![SpellDatasetRow {
                name: "heat shock response".into(),
                weight: 1.25,
                query_genes_present: 3,
            }],
            genes: vec![SpellGeneRow {
                gene: "YAL001C".into(),
                score: 0.875,
                n_datasets: 2,
            }],
            query_missing: vec!["YZZ999X".into()],
        });
        roundtrip(&Response::Enrichment {
            rows: vec![EnrichmentRow {
                accession: "GO:0000042".into(),
                name: "protein folding chaperone".into(),
                p_value: 1.25e-7,
                q_value: 2.5e-6,
                overlap: 5,
                annotated: 20,
            }],
        });
        roundtrip(&Response::SessionInfo(SessionInfoData {
            n_datasets: 2,
            universe_genes: 100,
            total_measurements: 800,
            selection_len: Some(7),
            sync_enabled: true,
            scroll: 3,
            dataset_order: vec![1, 0],
            summary: "ForestView session: 2 dataset(s)\n  pane  0: alpha\n".into(),
        }));
        roundtrip(&Response::Datasets {
            rows: vec![DatasetRow {
                dataset: 0,
                name: "osmotic_shock".into(),
                genes: 100,
                conditions: 10,
                gene_clustered: true,
                array_clustered: false,
            }],
        });
    }

    #[test]
    fn sessions_reply_roundtrips() {
        use crate::codec::format_sessions_reply;
        for entries in [
            vec![],
            vec![
                SessionEntry {
                    name: "alpha".into(),
                    shard: 1,
                    n_datasets: 3,
                },
                SessionEntry {
                    name: "beta".into(),
                    shard: 0,
                    n_datasets: 0,
                },
            ],
        ] {
            let text = format_sessions_reply(&entries);
            assert_eq!(parse_sessions_reply(&text).unwrap(), entries, "{text:?}");
        }
        assert!(parse_sessions_reply("sessions n=2\n  session a shard=0 datasets=0").is_err());
        assert!(parse_sessions_reply("wat n=0").is_err());
    }

    #[test]
    fn garbage_is_a_parse_error() {
        for bad in [
            "",
            "wat 7",
            "applied selection=x damage=-",
            "applied selection=4",
            "search hits=2 genes=YAL001C",
            "frame 400 panes=3 checksum=00 path=-",
            "text bytes=5\n  G1",
            "session datasets=1 universe=1 measurements=1 selection=- sync=maybe scroll=0 order=0 summary_bytes=0",
        ] {
            let err = parse_response(bad).unwrap_err();
            assert_eq!(
                err.code,
                crate::error::ErrorCode::Parse,
                "{bad:?} must be E_PARSE, got {err:?}"
            );
        }
    }
}
