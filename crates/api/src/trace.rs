//! Versioned, line-oriented wire traces: a recorded conversation between
//! one client and a server, replayable deterministically.
//!
//! A trace is text. The first line is the header `fvtrace 1` (format
//! name + version); every following logical line is one event in
//! transcript order:
//!
//! ```text
//! fvtrace 1
//! send <request line>          # one line the client sent
//! recv ok <body first line>    # a success frame the server answered
//!   <body continuation line>   #   (2-space indent, one per extra line)
//! recv err <CODE> <message>    # a typed error frame
//! ```
//!
//! `send` payloads are kept verbatim (any single line the wire grammar
//! accepts, including `use` directives with non-ASCII session names).
//! `recv ok` bodies may span lines: the first body line rides on the
//! event line and each further line is indented by exactly two spaces —
//! the same continuation convention `format_response` uses, so traces
//! stay greppable line-by-line. `recv err` mirrors an `err` frame: a
//! frozen `E_*` code plus a one-line human message.
//!
//! Blank lines and column-0 `#` comments between events are ignored on
//! parse (and never emitted by the formatter), so traces can be annotated
//! by hand. [`format_trace_line`] and [`parse_trace_line`] are exact
//! inverses over the representable domain (no `\n` inside a send payload
//! or an error message; body lines carry no trailing `\r`) — property
//! tested, like the request codec.

use crate::error::{ApiError, ErrorCode};

/// Trace format version. Bump when the event grammar changes shape;
/// parsers reject every version they do not know.
pub const TRACE_VERSION: u32 = 1;

/// The exact header line of a version-1 trace.
pub const TRACE_HEADER: &str = "fvtrace 1";

/// One event in a recorded wire conversation, in transcript order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A request line the client sent, verbatim (untrimmed, no newline).
    Send(String),
    /// A response frame the server answered: `Ok(body)` for an `ok`
    /// frame's text, `Err(e)` for a typed `err` frame.
    Recv(Result<String, ApiError>),
}

impl TraceEvent {
    /// Convenience constructor for a successful reply event.
    pub fn recv_ok(body: impl Into<String>) -> TraceEvent {
        TraceEvent::Recv(Ok(body.into()))
    }

    /// Convenience constructor for an error reply event.
    pub fn recv_err(e: ApiError) -> TraceEvent {
        TraceEvent::Recv(Err(e))
    }

    /// Whether this event is a client-to-server line.
    pub fn is_send(&self) -> bool {
        matches!(self, TraceEvent::Send(_))
    }

    /// The reply body when this is a successful `recv`, else `None`.
    pub fn ok_body(&self) -> Option<&str> {
        match self {
            TraceEvent::Recv(Ok(body)) => Some(body),
            _ => None,
        }
    }

    /// The typed error when this is an error `recv`, else `None`.
    pub fn err(&self) -> Option<&ApiError> {
        match self {
            TraceEvent::Recv(Err(e)) => Some(e),
            _ => None,
        }
    }
}

/// Canonical text of one event — one physical line for `send` and
/// `recv err`, `1 + extra body lines` physical lines for `recv ok`
/// (continuations indented by two spaces). No trailing newline. The
/// exact inverse of [`parse_trace_line`]. Newlines that cannot be
/// represented (in a send payload or an error message) are flattened to
/// spaces, mirroring the frame writer's guarantee.
pub fn format_trace_line(event: &TraceEvent) -> String {
    match event {
        TraceEvent::Send(line) => {
            let line = line.replace(['\n', '\r'], " ");
            format!("send {line}")
        }
        TraceEvent::Recv(Ok(body)) => {
            let mut lines = body.split('\n');
            let first = lines.next().unwrap_or("");
            let mut out = if first.is_empty() {
                "recv ok".to_string()
            } else {
                format!("recv ok {first}")
            };
            for cont in lines {
                out.push_str("\n  ");
                out.push_str(cont);
            }
            out
        }
        TraceEvent::Recv(Err(e)) => {
            let msg = e.message.replace(['\n', '\r'], " ");
            if msg.is_empty() {
                format!("recv err {}", e.code.as_str())
            } else {
                format!("recv err {} {msg}", e.code.as_str())
            }
        }
    }
}

/// Parse one logical trace line (an event line plus any 2-space-indented
/// continuation lines); the exact inverse of [`format_trace_line`].
pub fn parse_trace_line(text: &str) -> Result<TraceEvent, ApiError> {
    let mut lines = text.split('\n');
    let head = lines.next().unwrap_or("");
    let event = parse_event_head(head)?;
    let mut body = match event {
        HeadEvent::Send(line) => {
            if let Some(extra) = lines.next() {
                return Err(ApiError::parse(format!(
                    "send events are one line, got continuation {extra:?}"
                )));
            }
            return Ok(TraceEvent::Send(line));
        }
        HeadEvent::RecvErr(e) => {
            if let Some(extra) = lines.next() {
                return Err(ApiError::parse(format!(
                    "recv err events are one line, got continuation {extra:?}"
                )));
            }
            return Ok(TraceEvent::Recv(Err(e)));
        }
        HeadEvent::RecvOk(first) => first,
    };
    for cont in lines {
        let Some(stripped) = cont.strip_prefix("  ") else {
            return Err(ApiError::parse(format!(
                "continuation lines start with two spaces, got {cont:?}"
            )));
        };
        body.push('\n');
        body.push_str(stripped);
    }
    Ok(TraceEvent::Recv(Ok(body)))
}

/// The head (first physical) line of an event, classified.
enum HeadEvent {
    Send(String),
    RecvOk(String),
    RecvErr(ApiError),
}

fn parse_event_head(head: &str) -> Result<HeadEvent, ApiError> {
    if let Some(rest) = head.strip_prefix("send ") {
        if rest.trim().is_empty() {
            return Err(ApiError::parse("send event has an empty payload"));
        }
        return Ok(HeadEvent::Send(rest.to_string()));
    }
    if head == "recv ok" {
        return Ok(HeadEvent::RecvOk(String::new()));
    }
    if let Some(rest) = head.strip_prefix("recv ok ") {
        return Ok(HeadEvent::RecvOk(rest.to_string()));
    }
    if let Some(rest) = head.strip_prefix("recv err ") {
        let (code, message) = match rest.split_once(' ') {
            Some((c, m)) => (c, m.to_string()),
            None => (rest, String::new()),
        };
        let code = ErrorCode::from_wire(code)
            .ok_or_else(|| ApiError::parse(format!("unknown error code in event {head:?}")))?;
        return Ok(HeadEvent::RecvErr(ApiError::new(code, message)));
    }
    Err(ApiError::parse(format!("unknown trace event {head:?}")))
}

/// Canonical text of a whole trace: the version header, then every event
/// through [`format_trace_line`], newline-terminated. The exact inverse
/// of [`parse_trace`].
pub fn format_trace(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 32);
    out.push_str(TRACE_HEADER);
    out.push('\n');
    for event in events {
        out.push_str(&format_trace_line(event));
        out.push('\n');
    }
    out
}

/// Parse a whole trace: the version header (which must be a version this
/// parser knows), then events. Blank lines and column-0 `#` comments
/// between events are skipped; lines indented by two spaces attach to
/// the preceding `recv ok` event as body continuations.
pub fn parse_trace(text: &str) -> Result<Vec<TraceEvent>, ApiError> {
    fn flush(
        chunk: &mut Option<(usize, String)>,
        events: &mut Vec<TraceEvent>,
    ) -> Result<(), ApiError> {
        if let Some((line_no, text)) = chunk.take() {
            let event = parse_trace_line(&text)
                .map_err(|e| ApiError::parse(format!("line {line_no}: {}", e.message)))?;
            events.push(event);
        }
        Ok(())
    }
    let mut events = Vec::new();
    let mut chunk: Option<(usize, String)> = None;
    let mut saw_header = false;
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        if let Some(cont) = raw.strip_prefix("  ") {
            let Some((_, chunk_text)) = chunk.as_mut() else {
                return Err(ApiError::parse(format!(
                    "line {line_no}: continuation line {cont:?} without a recv ok event"
                )));
            };
            chunk_text.push('\n');
            chunk_text.push_str(raw);
            continue;
        }
        if raw.trim().is_empty() || raw.starts_with('#') {
            flush(&mut chunk, &mut events)?;
            continue;
        }
        if !saw_header {
            if raw != TRACE_HEADER {
                return Err(ApiError::parse(format!(
                    "line {line_no}: expected trace header {TRACE_HEADER:?}, got {raw:?}"
                )));
            }
            saw_header = true;
            continue;
        }
        flush(&mut chunk, &mut events)?;
        chunk = Some((line_no, raw.to_string()));
    }
    flush(&mut chunk, &mut events)?;
    if !saw_header {
        return Err(ApiError::parse(format!(
            "empty trace: expected header {TRACE_HEADER:?}"
        )));
    }
    Ok(events)
}

/// The request lines of a trace, in order — what a replay sends.
pub fn trace_sends(events: &[TraceEvent]) -> Vec<&str> {
    events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Send(line) => Some(line.as_str()),
            TraceEvent::Recv(_) => None,
        })
        .collect()
}

/// The reply frames of a trace, in order — what a replay must observe.
pub fn trace_recvs(events: &[TraceEvent]) -> Vec<&Result<String, ApiError>> {
    events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Send(_) => None,
            TraceEvent::Recv(reply) => Some(reply),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(event: TraceEvent) {
        let text = format_trace_line(&event);
        let parsed = parse_trace_line(&text).unwrap();
        assert_eq!(parsed, event, "text was {text:?}");
        assert_eq!(format_trace_line(&parsed), text, "canonical fixed point");
    }

    #[test]
    fn events_roundtrip() {
        roundtrip(TraceEvent::Send("scenario 200 42".into()));
        roundtrip(TraceEvent::Send("use αλφα".into()));
        roundtrip(TraceEvent::recv_ok("pong"));
        roundtrip(TraceEvent::recv_ok("")); // write_ok frames "" as one empty line
        roundtrip(TraceEvent::recv_ok("text bytes=6\n  G1\n  G2"));
        roundtrip(TraceEvent::recv_ok("\nsecond line after an empty first"));
        roundtrip(TraceEvent::recv_err(ApiError::busy(
            "pending request queue is full (3 pending, limit 3); the request was not executed",
        )));
        roundtrip(TraceEvent::recv_err(ApiError::new(ErrorCode::Internal, "")));
    }

    #[test]
    fn whole_trace_roundtrips_and_is_annotated_friendly() {
        let events = vec![
            TraceEvent::Send("use alpha".into()),
            TraceEvent::recv_ok("using alpha"),
            TraceEvent::Send("session_info".into()),
            TraceEvent::recv_ok("session datasets=0\n  empty session"),
            TraceEvent::Send("wat 7".into()),
            TraceEvent::recv_err(ApiError::parse("unknown request \"wat\"")),
        ];
        let text = format_trace(&events);
        assert!(text.starts_with("fvtrace 1\n"));
        assert_eq!(parse_trace(&text).unwrap(), events);
        // hand annotations survive
        let annotated = format!("# captured by a test\n\n{text}\n# trailing note\n");
        assert_eq!(parse_trace(&annotated).unwrap(), events);
    }

    #[test]
    fn header_is_mandatory_and_versioned() {
        assert!(parse_trace("").is_err());
        assert!(parse_trace("send ping\n").is_err());
        assert!(parse_trace("fvtrace 2\nsend ping\n").is_err());
        assert_eq!(parse_trace("fvtrace 1\n").unwrap(), Vec::new());
    }

    #[test]
    fn malformed_events_are_rejected_with_line_numbers() {
        let err = parse_trace("fvtrace 1\nsend ping\nwat\n").unwrap_err();
        assert!(err.message.contains("line 3"), "{}", err.message);
        let err = parse_trace("fvtrace 1\n  orphan continuation\n").unwrap_err();
        assert!(err.message.contains("line 2"), "{}", err.message);
        assert!(parse_trace_line("send ").is_err());
        assert!(parse_trace_line("recv err E_NOPE nope").is_err());
        assert!(parse_trace_line("send ping\n  tail").is_err());
        assert!(parse_trace_line("recv err E_IO x\n  tail").is_err());
        assert!(parse_trace_line("recv ok x\nbad continuation").is_err());
    }

    #[test]
    fn sends_and_recvs_project_in_order() {
        let events = vec![
            TraceEvent::Send("ping".into()),
            TraceEvent::Send("ping".into()),
            TraceEvent::recv_ok("pong"),
            TraceEvent::recv_err(ApiError::busy("full")),
        ];
        assert_eq!(trace_sends(&events), vec!["ping", "ping"]);
        assert_eq!(trace_recvs(&events).len(), 2);
    }

    #[test]
    fn newlines_in_unrepresentable_fields_are_flattened() {
        let text = format_trace_line(&TraceEvent::Send("a\nb".into()));
        assert_eq!(text, "send a b");
        let text = format_trace_line(&TraceEvent::recv_err(ApiError::io("x\ny")));
        assert_eq!(text, "recv err E_IO x y");
    }
}
