//! The unified request surface: everything a front end can ask of a
//! ForestView engine, as one serializable type.
//!
//! Requests split into **mutations** (state changes: interaction commands,
//! dataset loading, in-place transforms) and **queries** (read-only
//! computations: search, SPELL, enrichment, rendering, exports, session
//! introspection). The split is what makes batching sound: an engine can
//! coalesce the damage of consecutive mutations because queries declare
//! they touch nothing.

use forestview::command::Command;
use fv_cluster::distance::Metric;
use fv_cluster::linkage::Linkage;

/// One request to a ForestView engine.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// A state change.
    Mutate(Mutation),
    /// A read-only computation.
    Query(Query),
}

impl Request {
    /// Whether this request can change session state.
    pub fn is_mutation(&self) -> bool {
        matches!(self, Request::Mutate(_))
    }
}

impl From<Mutation> for Request {
    fn from(m: Mutation) -> Self {
        Request::Mutate(m)
    }
}

impl From<Query> for Request {
    fn from(q: Query) -> Self {
        Request::Query(q)
    }
}

impl From<Command> for Request {
    fn from(c: Command) -> Self {
        Request::Mutate(Mutation::Command(c))
    }
}

/// State-changing requests.
#[derive(Debug, Clone, PartialEq)]
pub enum Mutation {
    /// A deterministic interaction command (selection, sync, scrolling,
    /// ordering, clustering, display settings) — the full
    /// [`forestview::command::Command`] stream, embedded losslessly.
    Command(Command),
    /// Load a PCL/CDT dataset from disk (format auto-detected).
    LoadDataset {
        /// Path to the file; the dataset is named after the file stem.
        path: String,
    },
    /// Load the three-dataset synthetic scenario (deterministic per
    /// seed) — the paper's demo workspace, and the way scripts get a
    /// session without touching the filesystem.
    LoadScenario {
        /// Genes per dataset.
        n_genes: usize,
        /// Generator seed.
        seed: u64,
    },
    /// Load the SPELL-compendium synthetic scenario: `n_datasets` datasets
    /// over a shared `n_genes`-gene universe with planted modules.
    LoadCompendium {
        /// Genes in the shared universe.
        n_genes: usize,
        /// Number of datasets.
        n_datasets: usize,
        /// Generator seed.
        seed: u64,
    },
    /// Generate and attach the synthetic ontology derived from the loaded
    /// scenario's ground truth, enabling `enrich` queries.
    BuildOntology {
        /// Number of filler (non-module) terms.
        n_filler: usize,
        /// Generator seed.
        seed: u64,
    },
    /// KNN-impute missing cells of one dataset in place.
    Impute {
        /// Dataset index.
        dataset: usize,
        /// Neighbour count.
        k: usize,
    },
    /// Normalize dataset expression values in place
    /// (`None` = every dataset).
    Normalize {
        /// Target dataset, or all.
        dataset: Option<usize>,
        /// The transform.
        method: NormalizeMethod,
    },
    /// Hierarchically cluster one dataset's **conditions** (the array
    /// tree) with the session's current cluster settings.
    ClusterArrays {
        /// Dataset index.
        dataset: usize,
    },
}

/// In-place normalization transforms (from `fv_expr::normalize`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NormalizeMethod {
    /// `log2(x)` per cell.
    Log2,
    /// Subtract row means.
    CenterRows,
    /// Subtract row medians.
    MedianCenterRows,
    /// Per-row z-score.
    ZscoreRows,
}

impl NormalizeMethod {
    /// Wire keyword.
    pub fn as_str(self) -> &'static str {
        match self {
            NormalizeMethod::Log2 => "log2",
            NormalizeMethod::CenterRows => "center",
            NormalizeMethod::MedianCenterRows => "median",
            NormalizeMethod::ZscoreRows => "zscore",
        }
    }

    pub fn from_keyword(s: &str) -> Option<Self> {
        Some(match s {
            "log2" => NormalizeMethod::Log2,
            "center" => NormalizeMethod::CenterRows,
            "median" => NormalizeMethod::MedianCenterRows,
            "zscore" => NormalizeMethod::ZscoreRows,
            _ => return None,
        })
    }
}

/// Read-only requests.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// Substring search over gene metadata across all datasets. Unlike
    /// the `Command::Search` mutation this does **not** change the
    /// selection — it just reports the hits.
    Search {
        /// Case-insensitive substring.
        query: String,
    },
    /// SPELL similarity query over the session's datasets.
    Spell {
        /// Query gene names.
        genes: Vec<String>,
        /// How many ranked non-query genes to report.
        top_n: usize,
    },
    /// GOLEM enrichment. Requires `BuildOntology` to have run.
    Enrich {
        /// Explicit query genes, or `None` to enrich the current
        /// selection.
        genes: Option<Vec<String>>,
        /// Maximum number of enriched terms to report.
        max_terms: usize,
    },
    /// Render the session to a desktop frame, optionally writing a PPM.
    Render {
        /// Frame width in pixels.
        width: usize,
        /// Frame height in pixels.
        height: usize,
        /// Output path for the PPM image, if any.
        path: Option<String>,
    },
    /// Export one dataset as a clustered-data-table bundle
    /// (`.cdt` / `.gtr` / `.atr`), written to `<prefix>.<ext>` when a
    /// prefix is given.
    ExportCdt {
        /// Dataset index.
        dataset: usize,
        /// Output path prefix; `None` keeps the bundle in the response.
        prefix: Option<String>,
    },
    /// Export one dataset as PCL text to a file.
    ExportPcl {
        /// Dataset index.
        dataset: usize,
        /// Output path.
        path: String,
    },
    /// Export the current selection in one of the selection formats.
    ExportSelection {
        /// Which rendering of the selection.
        what: SelectionExport,
    },
    /// Structured summary of the whole session.
    SessionInfo,
    /// One row per dataset: name, shape, cluster state.
    ListDatasets,
}

/// Selection export formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SelectionExport {
    /// Plain gene list, one name per line.
    GeneList,
    /// Expression of the selection across every dataset (TSV).
    Merged,
    /// Per-dataset coverage table (TSV).
    Coverage,
}

impl SelectionExport {
    /// Wire keyword.
    pub fn as_str(self) -> &'static str {
        match self {
            SelectionExport::GeneList => "gene_list",
            SelectionExport::Merged => "merged",
            SelectionExport::Coverage => "coverage",
        }
    }

    pub fn from_keyword(s: &str) -> Option<Self> {
        Some(match s {
            "gene_list" => SelectionExport::GeneList,
            "merged" => SelectionExport::Merged,
            "coverage" => SelectionExport::Coverage,
            _ => return None,
        })
    }
}

/// Wire keyword for a linkage criterion.
pub fn linkage_str(l: Linkage) -> &'static str {
    match l {
        Linkage::Single => "single",
        Linkage::Complete => "complete",
        Linkage::Average => "average",
        Linkage::Ward => "ward",
    }
}

/// Parse a linkage keyword.
pub fn linkage_from_str(s: &str) -> Option<Linkage> {
    Some(match s {
        "single" => Linkage::Single,
        "complete" => Linkage::Complete,
        "average" => Linkage::Average,
        "ward" => Linkage::Ward,
        _ => return None,
    })
}

/// Wire keyword for a distance metric.
pub fn metric_str(m: Metric) -> &'static str {
    match m {
        Metric::Pearson => "pearson",
        Metric::AbsPearson => "abspearson",
        Metric::Uncentered => "uncentered",
        Metric::Spearman => "spearman",
        Metric::Euclidean => "euclidean",
    }
}

/// Parse a metric keyword.
pub fn metric_from_str(s: &str) -> Option<Metric> {
    Some(match s {
        "pearson" => Metric::Pearson,
        "abspearson" => Metric::AbsPearson,
        "uncentered" => Metric::Uncentered,
        "spearman" => Metric::Spearman,
        "euclidean" => Metric::Euclidean,
        _ => return None,
    })
}
