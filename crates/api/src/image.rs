//! `SessionImage`: a session as durable, transportable text.
//!
//! The replayable-script design makes a session's state a pure function
//! of the successful mutations applied to it, so a session can be
//! represented *exactly* as (scene, attempted-request counter, dataset
//! fingerprints, compacted mutation log) — no engine internals cross the
//! boundary. [`Engine::snapshot`](crate::Engine::snapshot) produces one;
//! [`Engine::restore`](crate::Engine::restore) replays it through the
//! normal execute path. Process-backed shard transports ship images
//! instead of engines, and the same text is the future on-disk
//! persistence format.
//!
//! The canonical text form:
//!
//! ```text
//! session-image v2 scene=800x600 requests=12 datasets=1 log=3
//!   dataset len=482 mtime=1754550000000000000 hash=9637325990313059835 path=data/gasch_stress.pcl
//!   load data/gasch_stress.pcl
//!   set_metric euclidean
//!   cluster_all
//! ```
//!
//! The header carries exact row counts; `datasets` rows fingerprint every
//! file-loaded dataset (byte length + mtime in nanoseconds since the Unix
//! epoch, `-` when the filesystem reports none, plus an FNV-1a hash of
//! the file bytes so a touched-but-identical file still restores; the
//! path comes last so it may contain spaces), and `log` rows are
//! canonical [`format_request`](crate::format_request) mutation lines,
//! replayed in order on restore. [`format_session_image`] and
//! [`parse_session_image`] are exact inverses (property-tested),
//! mirroring the `format_request`/`parse_request` contract. The v1 form
//! (no `hash=` column) is rejected, not silently upgraded — images only
//! ever travel between processes of one build, or through the versioned
//! on-disk [`SessionStore`](crate::store::SessionStore) layout.

use crate::codec::{format_request, parse_request, NONE};
use crate::error::ApiError;
use crate::request::{Mutation, Request};

/// Fingerprint of one file-backed dataset a session loaded: enough for a
/// restoring process to assert it is replaying against the same bytes.
/// Paths are the user-spelled `load` argument, not the canonicalized
/// cache key, so the image replays through the same cache lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetStamp {
    /// File length in bytes at load time.
    pub len: u64,
    /// Modification time in nanoseconds since the Unix epoch; `None`
    /// when the filesystem reports no (or a pre-epoch) mtime.
    pub mtime_nanos: Option<u64>,
    /// FNV-1a hash of the file's bytes at load time. The restore-time
    /// fallback: when only the mtime disagrees (the file was copied or
    /// `touch`ed), identical bytes — proven by this hash — still
    /// restore.
    pub hash: u64,
    /// The path as the `load` request spelled it.
    pub path: String,
}

/// A session, durably: everything needed to rebuild its engine exactly,
/// provided its dataset files are unchanged (which [`DatasetStamp`]s
/// assert at restore time).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionImage {
    /// Scene dimensions damage resolves against.
    pub scene: (usize, usize),
    /// The engine's attempted-request counter. Queries and failed
    /// requests count here but never appear in the log, so the counter
    /// must travel explicitly for `Engine::cost` to survive a restore.
    pub requests: u64,
    /// Fingerprints of every file-loaded dataset, sorted by path. One
    /// stamp per path (the latest observation) — an image is exact
    /// provided each file is unchanged since the session loaded it.
    pub datasets: Vec<DatasetStamp>,
    /// The compacted log of successful mutations, in application order.
    /// Replaying it through the normal execute path rebuilds the session
    /// state exactly.
    pub log: Vec<Mutation>,
}

/// Canonical text form of a session image; inverse of
/// [`parse_session_image`].
pub fn format_session_image(image: &SessionImage) -> String {
    let mut out = format!(
        "session-image v2 scene={}x{} requests={} datasets={} log={}",
        image.scene.0,
        image.scene.1,
        image.requests,
        image.datasets.len(),
        image.log.len()
    );
    for d in &image.datasets {
        out.push_str(&format!(
            "\n  dataset len={} mtime={} hash={} path={}",
            d.len,
            match d.mtime_nanos {
                Some(ns) => ns.to_string(),
                None => NONE.to_string(),
            },
            d.hash,
            d.path
        ));
    }
    for m in &image.log {
        out.push_str("\n  ");
        out.push_str(&format_request(&Request::Mutate(m.clone())));
    }
    out
}

/// Parse a session image back from its canonical text; inverse of
/// [`format_session_image`]. Strict: the header's row counts must match
/// the rows present, dataset rows must precede log rows, and every log
/// row must be a mutation (queries never enter a session log).
pub fn parse_session_image(text: &str) -> Result<SessionImage, ApiError> {
    let mut lines = text.lines();
    let head = lines
        .next()
        .ok_or_else(|| ApiError::parse("empty session image"))?;
    let tail = head
        .strip_prefix("session-image v2 ")
        .ok_or_else(|| ApiError::parse(format!("not a v2 session image: {head:?}")))?;
    let scene_tok = crate::decode::field(tail, "scene")?;
    let (sw, sh) = scene_tok
        .split_once('x')
        .ok_or_else(|| ApiError::parse(format!("scene is <w>x<h>, got {scene_tok:?}")))?;
    let scene = (
        crate::decode::num(sw, "scene width")?,
        crate::decode::num(sh, "scene height")?,
    );
    let requests: u64 = crate::decode::num(crate::decode::field(tail, "requests")?, "requests")?;
    let n_datasets: usize =
        crate::decode::num(crate::decode::field(tail, "datasets")?, "datasets")?;
    let n_log: usize = crate::decode::num(crate::decode::field(tail, "log")?, "log")?;
    let mut datasets = Vec::with_capacity(n_datasets);
    for _ in 0..n_datasets {
        let line = lines
            .next()
            .ok_or_else(|| ApiError::parse("session image is missing dataset rows"))?;
        datasets.push(parse_dataset_row(line)?);
    }
    let mut log = Vec::with_capacity(n_log);
    for _ in 0..n_log {
        let line = lines
            .next()
            .ok_or_else(|| ApiError::parse("session image is missing log rows"))?;
        let row = line
            .strip_prefix("  ")
            .ok_or_else(|| ApiError::parse(format!("log rows are indented, got {line:?}")))?;
        match parse_request(row)? {
            Request::Mutate(m) => log.push(m),
            Request::Query(_) => {
                return Err(ApiError::parse(format!(
                    "session image log rows are mutations, got query {row:?}"
                )))
            }
        }
    }
    if let Some(extra) = lines.next() {
        return Err(ApiError::parse(format!(
            "session image has rows past its declared counts: {extra:?}"
        )));
    }
    Ok(SessionImage {
        scene,
        requests,
        datasets,
        log,
    })
}

fn parse_dataset_row(line: &str) -> Result<DatasetStamp, ApiError> {
    let row = line
        .strip_prefix("  dataset ")
        .ok_or_else(|| ApiError::parse(format!("expected a dataset row, got {line:?}")))?;
    let len: u64 = crate::decode::num(crate::decode::field(row, "len")?, "len")?;
    let mtime_tok = crate::decode::field(row, "mtime")?;
    let mtime_nanos = if mtime_tok == NONE {
        None
    } else {
        Some(crate::decode::num(mtime_tok, "mtime")?)
    };
    let hash: u64 = crate::decode::num(crate::decode::field(row, "hash")?, "hash")?;
    // The path is the trailing field and may contain spaces.
    let path = row
        .split_once("path=")
        .map(|(_, p)| p)
        .ok_or_else(|| ApiError::parse("dataset row needs path="))?;
    if path.is_empty() || path.contains('\n') || path.trim() != path {
        return Err(ApiError::parse(format!("bad dataset path {path:?}")));
    }
    Ok(DatasetStamp {
        len,
        mtime_nanos,
        hash,
        path: path.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::NormalizeMethod;
    use forestview::command::Command;

    fn sample() -> SessionImage {
        SessionImage {
            scene: (800, 600),
            requests: 12,
            datasets: vec![
                DatasetStamp {
                    len: 482,
                    mtime_nanos: Some(1_754_550_000_000_000_000),
                    hash: 9_637_325_990_313_059_835,
                    path: "data/gasch stress.pcl".into(),
                },
                DatasetStamp {
                    len: 77,
                    mtime_nanos: None,
                    hash: 42,
                    path: "data/other.pcl".into(),
                },
            ],
            log: vec![
                Mutation::LoadDataset {
                    path: "data/gasch stress.pcl".into(),
                },
                Mutation::Command(Command::SetMetric(fv_cluster::distance::Metric::Euclidean)),
                Mutation::Normalize {
                    dataset: None,
                    method: NormalizeMethod::ZscoreRows,
                },
            ],
        }
    }

    #[test]
    fn image_text_is_stable_and_roundtrips() {
        let image = sample();
        let text = format_session_image(&image);
        assert_eq!(
            text,
            "session-image v2 scene=800x600 requests=12 datasets=2 log=3\n  \
             dataset len=482 mtime=1754550000000000000 hash=9637325990313059835 \
             path=data/gasch stress.pcl\n  \
             dataset len=77 mtime=- hash=42 path=data/other.pcl\n  \
             load data/gasch stress.pcl\n  \
             set_metric euclidean\n  \
             normalize all zscore"
        );
        assert_eq!(parse_session_image(&text).unwrap(), image);
    }

    #[test]
    fn empty_image_roundtrips() {
        let image = SessionImage {
            scene: (1280, 960),
            requests: 0,
            datasets: Vec::new(),
            log: Vec::new(),
        };
        let text = format_session_image(&image);
        assert_eq!(
            text,
            "session-image v2 scene=1280x960 requests=0 datasets=0 log=0"
        );
        assert_eq!(parse_session_image(&text).unwrap(), image);
    }

    #[test]
    fn garbage_is_a_parse_error() {
        for bad in [
            "",
            "wat",
            // wrong versions: the hash-less v1 form and a future v3
            "session-image v1 scene=800x600 requests=0 datasets=0 log=0",
            "session-image v1 scene=800x600 requests=0 datasets=1 log=0\n  dataset len=1 mtime=2 path=a.pcl",
            "session-image v3 scene=800x600 requests=0 datasets=0 log=0",
            // counts disagree with rows
            "session-image v2 scene=800x600 requests=0 datasets=1 log=0",
            "session-image v2 scene=800x600 requests=0 datasets=0 log=1",
            "session-image v2 scene=800x600 requests=0 datasets=0 log=0\n  cluster_all",
            // a query in the log
            "session-image v2 scene=800x600 requests=1 datasets=0 log=1\n  session_info",
            // malformed dataset rows (truncated; v1 row without hash=)
            "session-image v2 scene=800x600 requests=0 datasets=1 log=0\n  dataset len=1 mtime=2",
            "session-image v2 scene=800x600 requests=0 datasets=1 log=0\n  dataset len=1 mtime=2 path=a.pcl",
            // bad scene token
            "session-image v2 scene=800 requests=0 datasets=0 log=0",
        ] {
            assert!(parse_session_image(bad).is_err(), "{bad:?} must not parse");
        }
    }
}
