//! Typed API errors with stable, machine-readable codes.
//!
//! Every failure surfaced by the engine carries an [`ErrorCode`] that is
//! part of the wire protocol: front ends branch on the code (and map it to
//! a process exit code), never on the message text. Messages are for
//! humans and may change; codes may not.

use std::fmt;

/// Stable error codes. The `as_str` names are wire-visible and frozen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// Malformed request text or arguments (wire-level).
    Parse,
    /// Request is well-formed but invalid for the current state
    /// (bad dataset index, missing selection where one is required, …).
    InvalidRequest,
    /// Named entity (dataset, session) does not exist.
    NotFound,
    /// A name that must be unique already exists.
    AlreadyExists,
    /// Filesystem failure (open, read, write).
    Io,
    /// Input file contents not recognized / not parseable.
    Format,
    /// Query needs state that has not been built (ontology, scenario
    /// ground truth).
    MissingContext,
    /// The server's per-connection pending-request queue is full; the
    /// request was rejected without executing. Transient — back off and
    /// retry once earlier responses have been drained.
    Busy,
    /// Internal invariant violation — a bug, not a user error.
    Internal,
    /// The shard process (or worker) serving the session is gone —
    /// crashed, killed, or unreachable. Transient from the protocol's
    /// point of view: the session is lost, but the server is healthy and
    /// a new session can be created immediately.
    ShardDown,
    /// A serialized session image no longer matches the world it was
    /// taken against: a stamped dataset's bytes changed on disk, so
    /// replaying the image would silently rebuild a different session.
    /// The image itself is intact — this is a refusal, not corruption.
    StaleImage,
}

impl ErrorCode {
    /// Frozen wire name of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Parse => "E_PARSE",
            ErrorCode::InvalidRequest => "E_INVALID",
            ErrorCode::NotFound => "E_NOT_FOUND",
            ErrorCode::AlreadyExists => "E_EXISTS",
            ErrorCode::Io => "E_IO",
            ErrorCode::Format => "E_FORMAT",
            ErrorCode::MissingContext => "E_MISSING_CONTEXT",
            ErrorCode::Busy => "E_BUSY",
            ErrorCode::Internal => "E_INTERNAL",
            ErrorCode::ShardDown => "E_SHARD_DOWN",
            ErrorCode::StaleImage => "E_STALE_IMAGE",
        }
    }

    /// Parse a frozen wire name back to its code — the inverse of
    /// [`ErrorCode::as_str`], used by network clients decoding `err`
    /// frames.
    pub fn from_wire(s: &str) -> Option<ErrorCode> {
        Some(match s {
            "E_PARSE" => ErrorCode::Parse,
            "E_INVALID" => ErrorCode::InvalidRequest,
            "E_NOT_FOUND" => ErrorCode::NotFound,
            "E_EXISTS" => ErrorCode::AlreadyExists,
            "E_IO" => ErrorCode::Io,
            "E_FORMAT" => ErrorCode::Format,
            "E_MISSING_CONTEXT" => ErrorCode::MissingContext,
            "E_BUSY" => ErrorCode::Busy,
            "E_INTERNAL" => ErrorCode::Internal,
            "E_SHARD_DOWN" => ErrorCode::ShardDown,
            "E_STALE_IMAGE" => ErrorCode::StaleImage,
            _ => return None,
        })
    }

    /// Process exit code a CLI should use for this error class. Usage
    /// errors get 2 (the conventional "bad invocation"), I/O and format
    /// problems get the sysexits-style 66/65, everything else 1.
    pub fn exit_code(self) -> u8 {
        match self {
            ErrorCode::Parse | ErrorCode::InvalidRequest => 2,
            ErrorCode::Format => 65,
            ErrorCode::Io | ErrorCode::NotFound => 66,
            ErrorCode::AlreadyExists => 73,
            ErrorCode::MissingContext => 78,
            // sysexits EX_TEMPFAIL: try again later.
            ErrorCode::Busy => 75,
            ErrorCode::Internal => 70,
            // sysexits EX_UNAVAILABLE: the serving process is gone.
            ErrorCode::ShardDown => 69,
            // sysexits EX_PROTOCOL: the image and the files it stamps
            // no longer agree.
            ErrorCode::StaleImage => 76,
        }
    }
}

/// An API failure: stable code + human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// Stable, wire-visible error class.
    pub code: ErrorCode,
    /// Human-readable detail; not part of the stable surface.
    pub message: String,
}

impl ApiError {
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        ApiError {
            code,
            message: message.into(),
        }
    }

    pub fn parse(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::Parse, message)
    }

    pub fn invalid(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::InvalidRequest, message)
    }

    pub fn not_found(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::NotFound, message)
    }

    pub fn io(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::Io, message)
    }

    pub fn format(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::Format, message)
    }

    pub fn missing_context(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::MissingContext, message)
    }

    pub fn busy(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::Busy, message)
    }

    pub fn shard_down(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::ShardDown, message)
    }

    pub fn stale_image(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::StaleImage, message)
    }

    /// Exit code a CLI process should terminate with.
    pub fn exit_code(&self) -> u8 {
        self.code.exit_code()
    }
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code.as_str(), self.message)
    }
}

impl std::error::Error for ApiError {}

impl From<fv_expr::ExprError> for ApiError {
    fn from(e: fv_expr::ExprError) -> Self {
        let code = match &e {
            fv_expr::ExprError::DuplicateDataset(_) => ErrorCode::AlreadyExists,
            _ => ErrorCode::InvalidRequest,
        };
        ApiError::new(code, e.to_string())
    }
}

impl From<std::io::Error> for ApiError {
    fn from(e: std::io::Error) -> Self {
        ApiError::new(ErrorCode::Io, e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_strings() {
        assert_eq!(ErrorCode::Parse.as_str(), "E_PARSE");
        assert_eq!(ErrorCode::NotFound.as_str(), "E_NOT_FOUND");
        assert_eq!(ErrorCode::MissingContext.as_str(), "E_MISSING_CONTEXT");
    }

    #[test]
    fn wire_names_roundtrip() {
        for code in [
            ErrorCode::Parse,
            ErrorCode::InvalidRequest,
            ErrorCode::NotFound,
            ErrorCode::AlreadyExists,
            ErrorCode::Io,
            ErrorCode::Format,
            ErrorCode::MissingContext,
            ErrorCode::Busy,
            ErrorCode::Internal,
            ErrorCode::ShardDown,
            ErrorCode::StaleImage,
        ] {
            assert_eq!(ErrorCode::from_wire(code.as_str()), Some(code));
        }
        assert_eq!(ErrorCode::from_wire("E_NOPE"), None);
    }

    #[test]
    fn exit_codes_distinguish_classes() {
        assert_eq!(ApiError::parse("x").exit_code(), 2);
        assert_eq!(ApiError::io("x").exit_code(), 66);
        assert_eq!(ApiError::format("x").exit_code(), 65);
        assert_eq!(ApiError::busy("x").exit_code(), 75);
        assert_eq!(ApiError::stale_image("x").exit_code(), 76);
        assert_ne!(
            ApiError::missing_context("x").exit_code(),
            ApiError::parse("x").exit_code()
        );
    }

    #[test]
    fn display_includes_code_and_message() {
        let e = ApiError::not_found("dataset 7");
        assert_eq!(e.to_string(), "E_NOT_FOUND: dataset 7");
    }
}
