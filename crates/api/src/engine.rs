//! The execution engine: one [`Session`] driven entirely through
//! [`Request`]s.
//!
//! `Engine` is the seam between the protocol and the application core.
//! Single requests execute immediately; [`Engine::execute_batch`] applies
//! a whole request stream with **one layout/damage pass for the entire
//! batch** — the coalescing that makes replayed scripts and future
//! network transports cheap, since damage resolution (pane layout) is the
//! per-command fixed cost.
//!
//! The engine owns lazily-built analysis state: a SPELL index rebuilt only
//! when dataset contents change (a version counter tracks mutations), and
//! an optional GOLEM ontology context attached by
//! [`Mutation::BuildOntology`].

use crate::cache::DatasetCache;
use crate::error::ApiError;
use crate::image::{DatasetStamp, SessionImage};
use crate::request::{Mutation, NormalizeMethod, Query, Request, SelectionExport};
use crate::response::{
    DamageRect, DatasetRow, EnrichmentRow, Response, SessionInfoData, SpellDatasetRow, SpellGeneRow,
};
use forestview::command::{self, DamageClass};
use forestview::Session;
use fv_golem::{enrich, EnrichmentConfig};
use fv_ontology::annotations::PropagatedAnnotations;
use fv_ontology::dag::OntologyDag;
use fv_spell::{SpellConfig, SpellEngine};
use fv_synth::modules::GroundTruth;
use fv_synth::ontogen::generate_ontology;
use fv_synth::scenario::Scenario;
use std::path::Path;

/// Default scene dimensions damage rectangles are resolved against.
pub const DEFAULT_SCENE: (usize, usize) = (1280, 960);

/// Outcome of a batch execution: per-request responses plus the single
/// coalesced damage set for all mutations in the batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchOutcome {
    /// One response per request, in order.
    pub responses: Vec<Response>,
    /// Deduplicated union of all mutation damage, resolved in one layout
    /// pass after the last request.
    pub damage: Vec<DamageRect>,
}

/// Outcome of a request *run* ([`Engine::execute_run`]): the responses of
/// the completed prefix, plus the first error (with its request index) if
/// the run stopped early. Unlike [`BatchOutcome`], each `Applied` response
/// carries its own damage rectangles — byte-identical to what sequential
/// [`Engine::execute`] calls would have produced — so a transport can
/// relay per-request results while still sharing layout passes.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// One response per *completed* request, in order.
    pub responses: Vec<Response>,
    /// `(index of the failing request, its error)`, if the run aborted.
    /// Requests after the index never executed; mutations before it stay
    /// applied (the protocol has no rollback).
    pub error: Option<(usize, ApiError)>,
    /// Wall-clock execution time of each attempted request (the failing
    /// request included, if any) — one entry per response plus one for
    /// the error. Transports fold these into per-shard latency
    /// histograms; the values never cross the wire themselves.
    pub latencies: Vec<std::time::Duration>,
}

/// Placement-cost estimate of one engine — the per-session signals an
/// automatic rebalancer consumes. `requests` is cumulative and travels
/// with the engine across a migration, so load deltas stay meaningful
/// whichever shard the session lands on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineCost {
    /// Requests this engine has *attempted* since creation (a failing
    /// request counts; requests skipped after an error do not) — the same
    /// population per-shard latency histograms observe.
    pub requests: u64,
    /// Approximate resident bytes of the loaded datasets (expression
    /// values plus presence masks), counted through the shared-cache
    /// handles. Sessions sharing one cached parse each report the full
    /// size: the estimate prices what the session *uses*, not what an
    /// eviction would free.
    pub dataset_bytes: u64,
}

struct GolemContext {
    dag: OntologyDag,
    annotations: PropagatedAnnotations,
}

/// One session behind the request/response protocol.
pub struct Engine {
    session: Session,
    scene: (usize, usize),
    /// Shared parse cache `load` goes through. Hub-created engines share
    /// their hub's cache (and, under fv-net, the whole server's); a
    /// standalone engine gets a private one — which still dedupes
    /// repeated loads of the same file within the session.
    cache: DatasetCache,
    /// Bumped by every mutation that can change expression values or the
    /// dataset roster; invalidates the SPELL index.
    dataset_version: u64,
    /// Attempted requests since creation (see [`EngineCost::requests`]).
    requests_executed: u64,
    /// Compacted log of every successful mutation, in application order —
    /// the replay half of [`Engine::snapshot`]. Consecutive same-slot
    /// absolute writes (contrast on one target, linkage, metric) collapse
    /// to the latest, which is provably state-preserving; nothing else is
    /// dropped.
    log: Vec<Mutation>,
    /// Fingerprint of each file-loaded dataset — `(len, mtime_nanos,
    /// content hash)`, keyed by the user-spelled path (latest observation
    /// wins) — the restore-time assertion that replay sees the same
    /// bytes.
    stamps: std::collections::BTreeMap<String, (u64, Option<u64>, u64)>,
    spell: Option<(u64, SpellEngine)>,
    golem: Option<GolemContext>,
    truth: Option<GroundTruth>,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// Engine over an empty session with the default scene size.
    pub fn new() -> Self {
        Engine::with_scene(DEFAULT_SCENE.0, DEFAULT_SCENE.1)
    }

    /// Engine over an empty session; damage resolves against
    /// `scene_w × scene_h`.
    pub fn with_scene(scene_w: usize, scene_h: usize) -> Self {
        Engine::with_scene_and_cache(scene_w, scene_h, DatasetCache::new())
    }

    /// Engine whose `load` requests go through a shared [`DatasetCache`]
    /// — how hubs (and sharded transports) make N sessions share one
    /// parse of the same file.
    pub fn with_scene_and_cache(scene_w: usize, scene_h: usize, cache: DatasetCache) -> Self {
        Engine {
            session: Session::new(),
            scene: (scene_w, scene_h),
            cache,
            dataset_version: 0,
            requests_executed: 0,
            log: Vec::new(),
            stamps: std::collections::BTreeMap::new(),
            spell: None,
            golem: None,
            truth: None,
        }
    }

    /// Read access to the underlying session (rendering helpers, tests).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// The dataset cache this engine loads through.
    pub fn cache(&self) -> &DatasetCache {
        &self.cache
    }

    /// Scene dimensions damage is resolved against.
    pub fn scene(&self) -> (usize, usize) {
        self.scene
    }

    /// The engine's placement-cost estimate (see [`EngineCost`]).
    pub fn cost(&self) -> EngineCost {
        let mut dataset_bytes: u64 = 0;
        for d in 0..self.session.n_datasets() {
            let ds = self.session.dataset(d);
            let cells = (ds.n_genes() as u64) * (ds.n_conditions() as u64);
            // f32 values plus one presence bit per cell.
            dataset_bytes += cells * 4 + cells.div_ceil(8);
        }
        EngineCost {
            requests: self.requests_executed,
            dataset_bytes,
        }
    }

    /// Execute one request.
    pub fn execute(&mut self, request: &Request) -> Result<Response, ApiError> {
        self.requests_executed += 1;
        match request {
            Request::Mutate(m) => {
                let (response, class) = self.perform_mutation(m)?;
                // Only `Applied` carries rectangles on the wire; for the
                // data-management mutations the damage class is implied by
                // the response kind, so skip the layout pass entirely.
                match (response, class) {
                    (Response::Applied { selection_len, .. }, Some(class)) => {
                        let rects = command::resolve_damage(
                            &self.session,
                            class,
                            self.scene.0,
                            self.scene.1,
                        );
                        Ok(Response::Applied {
                            selection_len,
                            damage: rects.into_iter().map(DamageRect::from).collect(),
                        })
                    }
                    (other, _) => Ok(other),
                }
            }
            Request::Query(q) => self.run_query(q),
        }
    }

    /// Execute a request stream with one layout/damage pass for the whole
    /// batch. Fails fast: the first error aborts the batch (mutations
    /// already performed stay performed — the protocol has no rollback).
    pub fn execute_batch(&mut self, requests: &[Request]) -> Result<BatchOutcome, ApiError> {
        let mut responses = Vec::with_capacity(requests.len());
        let mut classes: Vec<DamageClass> = Vec::new();
        for request in requests {
            self.requests_executed += 1;
            match request {
                Request::Mutate(m) => {
                    let (response, class) = self.perform_mutation(m)?;
                    if let Some(class) = class {
                        classes.push(class);
                    }
                    responses.push(response);
                }
                Request::Query(q) => responses.push(self.run_query(q)?),
            }
        }
        let damage =
            command::resolve_damage_batch(&self.session, &classes, self.scene.0, self.scene.1);
        Ok(BatchOutcome {
            responses,
            damage: damage.into_iter().map(DamageRect::from).collect(),
        })
    }

    /// Execute a request run: like sequential [`Engine::execute`] calls —
    /// same responses, same per-request damage rectangles — but layout
    /// passes are shared across the run via [`command::LayoutCache`], so a
    /// run of layout-stable requests (the common interactive stream) pays
    /// for ONE pane-layout pass instead of one per command. This is the
    /// entry point network transports map contiguous same-session request
    /// runs onto. Stops at the first error, keeping the completed prefix's
    /// responses.
    pub fn execute_run(&mut self, requests: &[Request]) -> RunOutcome {
        let mut responses = Vec::with_capacity(requests.len());
        let mut latencies = Vec::with_capacity(requests.len());
        let mut layouts = command::LayoutCache::new(self.scene.0, self.scene.1);
        for (i, request) in requests.iter().enumerate() {
            let started = std::time::Instant::now();
            self.requests_executed += 1;
            let result = match request {
                Request::Mutate(m) => {
                    self.perform_mutation(m)
                        .map(|(response, class)| match (response, class) {
                            (Response::Applied { selection_len, .. }, Some(class)) => {
                                let rects = layouts.resolve(&self.session, class);
                                Response::Applied {
                                    selection_len,
                                    damage: rects.into_iter().map(DamageRect::from).collect(),
                                }
                            }
                            (other, _) => other,
                        })
                }
                Request::Query(q) => self.run_query(q),
            };
            latencies.push(started.elapsed());
            match result {
                Ok(r) => responses.push(r),
                Err(e) => {
                    return RunOutcome {
                        responses,
                        error: Some((i, e)),
                        latencies,
                    }
                }
            }
        }
        RunOutcome {
            responses,
            error: None,
            latencies,
        }
    }

    /// Durably represent this session: scene, attempted-request counter,
    /// dataset fingerprints (sorted by path), and the compacted mutation
    /// log. [`Engine::restore`] rebuilds an identical session from it —
    /// the representation process-backed shard transports migrate and the
    /// future on-disk persistence format.
    pub fn snapshot(&self) -> SessionImage {
        SessionImage {
            scene: self.scene,
            requests: self.requests_executed,
            datasets: self
                .stamps
                .iter()
                .map(|(path, &(len, mtime_nanos, hash))| DatasetStamp {
                    len,
                    mtime_nanos,
                    hash,
                    path: path.clone(),
                })
                .collect(),
            log: self.log.clone(),
        }
    }

    /// Rebuild a session from its image: assert every dataset fingerprint
    /// still matches the file on disk (an image is exact only against
    /// unchanged bytes — a process-backed install must refuse otherwise),
    /// then replay the log through the normal execute path against
    /// `cache`. The restored engine re-snapshots to the same image.
    pub fn restore(image: &SessionImage, cache: &DatasetCache) -> Result<Engine, ApiError> {
        for stamp in &image.datasets {
            let (len, mtime_nanos) = probe_stamp(&stamp.path)
                .map_err(|e| ApiError::io(format!("{}: {e}", stamp.path)))?;
            if len == stamp.len && mtime_nanos == stamp.mtime_nanos {
                continue;
            }
            // The cheap fingerprint disagrees — but a copied or `touch`ed
            // file changes only the mtime while the bytes stay identical.
            // Prove it with the content hash before refusing.
            if len == stamp.len {
                let hash = hash_file(&stamp.path)
                    .map_err(|e| ApiError::io(format!("{}: {e}", stamp.path)))?;
                if hash == stamp.hash {
                    continue;
                }
            }
            return Err(ApiError::stale_image(format!(
                "dataset {} changed since the session image was taken \
                 (len {} -> {len}); refusing to restore",
                stamp.path, stamp.len
            )));
        }
        let mut engine = Engine::with_scene_and_cache(image.scene.0, image.scene.1, cache.clone());
        for mutation in &image.log {
            engine
                .execute(&Request::Mutate(mutation.clone()))
                .map_err(|e| {
                    ApiError::new(
                        e.code,
                        format!(
                            "session image replay failed at `{}`: {}",
                            crate::codec::format_request(&Request::Mutate(mutation.clone())),
                            e.message
                        ),
                    )
                })?;
        }
        // Queries and failed requests counted toward the original
        // engine's attempted-request total but never entered the log;
        // the explicit counter restores `Engine::cost` exactly.
        engine.requests_executed = image.requests;
        Ok(engine)
    }

    /// Apply a mutation without resolving damage, recording it (and, for
    /// file loads, the dataset fingerprint) in the session log on
    /// success. Returns the response (with empty damage for `Applied`)
    /// and the damage class, if any.
    fn perform_mutation(
        &mut self,
        mutation: &Mutation,
    ) -> Result<(Response, Option<DamageClass>), ApiError> {
        let result = self.apply_mutation(mutation);
        if result.is_ok() {
            if let Mutation::LoadDataset { path } = mutation {
                // The cache just parsed (or served) this file, so its
                // stamp carries the content hash without re-reading;
                // fall back to hashing directly if the entry is gone.
                let stamp = self
                    .cache
                    .stamp_of(path)
                    .or_else(|| full_stamp(path).ok())
                    .unwrap_or((0, None, 0));
                self.stamps.insert(path.clone(), stamp);
            }
            self.record_mutation(mutation);
        }
        result
    }

    /// Append a successful mutation to the log: a consecutive same-slot
    /// absolute write collapses into the latest value, and a mutation the
    /// log already makes a state no-op (see [`replays_as_noop`]) is not
    /// recorded at all — so restore replay never pays for redundant
    /// re-clustering.
    fn record_mutation(&mut self, mutation: &Mutation) {
        if let Some(last) = self.log.last() {
            if supersedes(mutation, last) {
                self.log.pop();
            }
        }
        if replays_as_noop(&self.log, mutation) {
            return;
        }
        self.log.push(mutation.clone());
    }

    fn apply_mutation(
        &mut self,
        mutation: &Mutation,
    ) -> Result<(Response, Option<DamageClass>), ApiError> {
        match mutation {
            Mutation::Command(cmd) => {
                self.validate_command(cmd)?;
                let class = command::perform(&mut self.session, cmd);
                if matches!(cmd, forestview::command::Command::ClusterAll) {
                    // Re-clustering reorders rows; SPELL indexes by gene id
                    // and is unaffected, but cheap invalidation is safer
                    // than reasoning about every future command.
                    self.dataset_version += 1;
                }
                Ok((
                    Response::Applied {
                        selection_len: self.session.selection().map(|s| s.len()),
                        damage: Vec::new(),
                    },
                    Some(class),
                ))
            }
            Mutation::LoadDataset { path } => {
                let ds = self.cache.load(path)?;
                let (name, genes, conditions) = (ds.name.clone(), ds.n_genes(), ds.n_conditions());
                let idx = self.session.load_shared_dataset(ds)?;
                self.dataset_version += 1;
                Ok((
                    Response::Loaded {
                        dataset: idx,
                        name,
                        genes,
                        conditions,
                    },
                    Some(DamageClass::Full),
                ))
            }
            Mutation::LoadScenario { n_genes, seed } => {
                if *n_genes == 0 {
                    return Err(ApiError::invalid("scenario needs at least one gene"));
                }
                let scenario = Scenario::three_datasets(*n_genes, *seed);
                let names: Vec<String> = scenario.datasets.iter().map(|d| d.name.clone()).collect();
                for ds in scenario.datasets {
                    self.session.load_dataset(ds)?;
                }
                self.truth = Some(scenario.truth);
                self.dataset_version += 1;
                Ok((
                    Response::ScenarioLoaded {
                        names,
                        n_genes: *n_genes,
                    },
                    Some(DamageClass::Full),
                ))
            }
            Mutation::LoadCompendium {
                n_genes,
                n_datasets,
                seed,
            } => {
                if *n_genes == 0 || *n_datasets == 0 {
                    return Err(ApiError::invalid(
                        "compendium needs at least one gene and one dataset",
                    ));
                }
                let scenario = Scenario::spell_compendium(*n_genes, *n_datasets, *seed);
                let names: Vec<String> = scenario.datasets.iter().map(|d| d.name.clone()).collect();
                for ds in scenario.datasets {
                    self.session.load_dataset(ds)?;
                }
                self.truth = Some(scenario.truth);
                self.dataset_version += 1;
                Ok((
                    Response::ScenarioLoaded {
                        names,
                        n_genes: *n_genes,
                    },
                    Some(DamageClass::Full),
                ))
            }
            Mutation::BuildOntology { n_filler, seed } => {
                let truth = self.truth.as_ref().ok_or_else(|| {
                    ApiError::missing_context(
                        "ontology generation needs scenario ground truth; run `scenario` first",
                    )
                })?;
                let generated = generate_ontology(truth, *n_filler, *seed);
                let annotations = generated.annotations.propagate(&generated.dag);
                let terms = generated.dag.ids().count();
                self.golem = Some(GolemContext {
                    dag: generated.dag,
                    annotations,
                });
                Ok((Response::OntologyReady { terms }, None))
            }
            Mutation::Impute { dataset, k } => {
                self.check_dataset(*dataset)?;
                if *k == 0 {
                    return Err(ApiError::invalid("impute needs k >= 1"));
                }
                // KNN imputation always uses Euclidean neighbours — the
                // session's cluster metric is a *clustering* setting and
                // must not silently change imputed values.
                let stats = fv_cluster::impute::knn_impute(
                    self.session.dataset_matrix_mut(*dataset),
                    *k,
                    fv_cluster::distance::Metric::Euclidean,
                );
                self.dataset_version += 1;
                Ok((
                    Response::Imputed {
                        filled: stats.filled,
                        missing_before: stats.missing_before,
                    },
                    Some(DamageClass::SinglePane(*dataset)),
                ))
            }
            Mutation::Normalize { dataset, method } => {
                let targets: Vec<usize> = match dataset {
                    Some(d) => {
                        self.check_dataset(*d)?;
                        vec![*d]
                    }
                    None => (0..self.session.n_datasets()).collect(),
                };
                for &d in &targets {
                    let m = self.session.dataset_matrix_mut(d);
                    match method {
                        NormalizeMethod::Log2 => fv_expr::normalize::log2_transform(m),
                        NormalizeMethod::CenterRows => fv_expr::normalize::mean_center_rows(m),
                        NormalizeMethod::MedianCenterRows => {
                            fv_expr::normalize::median_center_rows(m)
                        }
                        NormalizeMethod::ZscoreRows => fv_expr::normalize::zscore_rows(m),
                    }
                }
                self.dataset_version += 1;
                let class = match dataset {
                    Some(d) => DamageClass::SinglePane(*d),
                    None => DamageClass::Full,
                };
                Ok((
                    Response::Normalized {
                        datasets: targets.len(),
                    },
                    Some(class),
                ))
            }
            Mutation::ClusterArrays { dataset } => {
                self.check_dataset(*dataset)?;
                // The FIRST array tree in the session turns on the
                // array-tree strip, which shifts every pane's content down
                // (see forestview::layout) — that repaints the whole scene,
                // not just this pane.
                let first_array_tree =
                    (0..self.session.n_datasets()).all(|d| self.session.array_tree(d).is_none());
                let (metric, linkage) = self.session.cluster_settings();
                self.session.cluster_arrays(*dataset, metric, linkage);
                let class = if first_array_tree {
                    DamageClass::Full
                } else {
                    DamageClass::SinglePane(*dataset)
                };
                Ok((Response::ArraysClustered { dataset: *dataset }, Some(class)))
            }
        }
    }

    fn run_query(&mut self, query: &Query) -> Result<Response, ApiError> {
        match query {
            Query::Search { query } => {
                let merged = self.session.merged();
                let genes = forestview::search::search_genes(merged, query)
                    .into_iter()
                    .map(|g| merged.universe().name(g).to_string())
                    .collect();
                Ok(Response::SearchHits { genes })
            }
            Query::Spell { genes, top_n } => {
                if genes.is_empty() {
                    return Err(ApiError::invalid("spell needs at least one query gene"));
                }
                if self.session.n_datasets() == 0 {
                    return Err(ApiError::invalid("spell needs at least one loaded dataset"));
                }
                self.ensure_spell_index();
                let (_, engine) = self.spell.as_ref().expect("index just ensured");
                let refs: Vec<&str> = genes.iter().map(|s| s.as_str()).collect();
                let result = engine.query(&refs);
                Ok(Response::SpellRanking {
                    datasets: result
                        .datasets
                        .iter()
                        .map(|d| SpellDatasetRow {
                            name: d.name.clone(),
                            weight: d.weight,
                            query_genes_present: d.query_genes_present,
                        })
                        .collect(),
                    genes: result
                        .top_new_genes(*top_n)
                        .into_iter()
                        .map(|g| SpellGeneRow {
                            gene: g.gene.clone(),
                            score: g.score,
                            n_datasets: g.n_datasets,
                        })
                        .collect(),
                    query_missing: result.query_missing.clone(),
                })
            }
            Query::Enrich { genes, max_terms } => {
                let golem = self.golem.as_ref().ok_or_else(|| {
                    ApiError::missing_context("enrichment needs an ontology; run `ontology` first")
                })?;
                let names: Vec<String> = match genes {
                    Some(g) => g.clone(),
                    None => {
                        let sel = self.session.selection().ok_or_else(|| {
                            ApiError::invalid("enrich over selection, but nothing is selected")
                        })?;
                        sel.genes()
                            .iter()
                            .map(|&g| self.session.merged().universe().name(g).to_string())
                            .collect()
                    }
                };
                let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
                let results = enrich(
                    &golem.dag,
                    &golem.annotations,
                    &refs,
                    &EnrichmentConfig::default(),
                );
                Ok(Response::Enrichment {
                    rows: results
                        .iter()
                        .take(*max_terms)
                        .map(|r| EnrichmentRow {
                            accession: golem.dag.term(r.term).accession.clone(),
                            name: golem.dag.term(r.term).name.clone(),
                            p_value: r.p_value,
                            q_value: r.q_value,
                            overlap: r.overlap,
                            annotated: r.annotated,
                        })
                        .collect(),
                })
            }
            Query::Render {
                width,
                height,
                path,
            } => {
                if *width == 0 || *height == 0 {
                    return Err(ApiError::invalid("render needs nonzero dimensions"));
                }
                let fb = forestview::renderer::render_desktop(&self.session, *width, *height);
                if let Some(p) = path {
                    fv_render::image::write_ppm(&fb, p)
                        .map_err(|e| ApiError::io(format!("{p}: {e}")))?;
                }
                Ok(Response::Frame {
                    width: *width,
                    height: *height,
                    panes: self.session.n_datasets(),
                    checksum: fnv1a(fb.bytes()),
                    path: path.clone(),
                })
            }
            Query::ExportCdt { dataset, prefix } => {
                self.check_dataset(*dataset)?;
                let (cdt, gtr, atr) = self.session.export_clustered_cdt(*dataset);
                let mut files = Vec::new();
                if let Some(prefix) = prefix {
                    let cdt_path = format!("{prefix}.cdt");
                    std::fs::write(&cdt_path, &cdt)
                        .map_err(|e| ApiError::io(format!("{cdt_path}: {e}")))?;
                    files.push(cdt_path);
                    if let Some(g) = &gtr {
                        let p = format!("{prefix}.gtr");
                        std::fs::write(&p, g).map_err(|e| ApiError::io(format!("{p}: {e}")))?;
                        files.push(p);
                    }
                    if let Some(a) = &atr {
                        let p = format!("{prefix}.atr");
                        std::fs::write(&p, a).map_err(|e| ApiError::io(format!("{p}: {e}")))?;
                        files.push(p);
                    }
                }
                Ok(Response::CdtExported {
                    dataset: *dataset,
                    files,
                    cdt_bytes: cdt.len(),
                    has_gtr: gtr.is_some(),
                    has_atr: atr.is_some(),
                })
            }
            Query::ExportPcl { dataset, path } => {
                self.check_dataset(*dataset)?;
                let ds = self.session.dataset(*dataset);
                std::fs::write(path, fv_formats::pcl::write_pcl(ds))
                    .map_err(|e| ApiError::io(format!("{path}: {e}")))?;
                Ok(Response::PclExported {
                    dataset: *dataset,
                    path: path.clone(),
                    genes: ds.n_genes(),
                    conditions: ds.n_conditions(),
                })
            }
            Query::ExportSelection { what } => {
                let text = match what {
                    SelectionExport::GeneList => self.session.export_gene_list(),
                    SelectionExport::Merged => self.session.export_merged_selection(),
                    SelectionExport::Coverage => {
                        forestview::export::selection_coverage_tsv(&self.session)
                    }
                };
                Ok(Response::Text { text })
            }
            Query::SessionInfo => {
                let s = &self.session;
                Ok(Response::SessionInfo(SessionInfoData {
                    n_datasets: s.n_datasets(),
                    universe_genes: s.merged().universe().len(),
                    total_measurements: s.merged().total_measurements(),
                    selection_len: s.selection().map(|sel| sel.len()),
                    sync_enabled: s.sync_enabled(),
                    scroll: s.scroll(),
                    dataset_order: s.dataset_order().to_vec(),
                    summary: forestview::export::session_summary(s),
                }))
            }
            Query::ListDatasets => {
                let s = &self.session;
                Ok(Response::Datasets {
                    rows: (0..s.n_datasets())
                        .map(|d| {
                            let ds = s.dataset(d);
                            DatasetRow {
                                dataset: d,
                                name: ds.name.clone(),
                                genes: ds.n_genes(),
                                conditions: ds.n_conditions(),
                                gene_clustered: s.gene_tree(d).is_some(),
                                array_clustered: s.array_tree(d).is_some(),
                            }
                        })
                        .collect(),
                })
            }
        }
    }

    /// Commands index datasets without their own bounds checks (the
    /// session panics); validate up front so the API reports typed errors.
    fn validate_command(&self, cmd: &forestview::command::Command) -> Result<(), ApiError> {
        use forestview::command::Command;
        match cmd {
            Command::SelectRegion { dataset, .. } => self.check_dataset(*dataset),
            Command::SetContrast {
                dataset: Some(d), ..
            } => self.check_dataset(*d),
            Command::OrderByRelevance(scores) => {
                if scores.len() != self.session.n_datasets() {
                    return Err(ApiError::invalid(format!(
                        "relevance ordering needs one score per dataset ({} given, {} loaded)",
                        scores.len(),
                        self.session.n_datasets()
                    )));
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }

    fn check_dataset(&self, d: usize) -> Result<(), ApiError> {
        if d >= self.session.n_datasets() {
            return Err(ApiError::not_found(format!(
                "dataset {d} (session has {})",
                self.session.n_datasets()
            )));
        }
        Ok(())
    }

    /// (Re)build the SPELL index when dataset contents changed since the
    /// last build.
    fn ensure_spell_index(&mut self) {
        let stale = match &self.spell {
            Some((v, _)) => *v != self.dataset_version,
            None => true,
        };
        if stale {
            let mut engine = SpellEngine::new(SpellConfig::default());
            for d in 0..self.session.n_datasets() {
                engine.add_dataset(self.session.dataset(d));
            }
            engine.finalize();
            self.spell = Some((self.dataset_version, engine));
        }
    }
}

/// Observe a dataset file's fingerprint (byte length + mtime nanos since
/// the Unix epoch) for a [`DatasetStamp`]. `None` mtime when the
/// filesystem reports none (or a pre-epoch time).
fn probe_stamp(path: &str) -> std::io::Result<(u64, Option<u64>)> {
    let meta = std::fs::metadata(path)?;
    let mtime_nanos = meta
        .modified()
        .ok()
        .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
        .map(|d| d.as_nanos().min(u64::MAX as u128) as u64);
    Ok((meta.len(), mtime_nanos))
}

/// FNV-1a of a file's raw bytes — the content half of a
/// [`DatasetStamp`], matching what [`DatasetCache`] records at parse
/// time.
fn hash_file(path: &str) -> std::io::Result<u64> {
    Ok(fnv1a(&std::fs::read(path)?))
}

/// Metadata fingerprint plus content hash in one observation — the
/// fallback stamp source when the cache entry is already gone.
fn full_stamp(path: &str) -> std::io::Result<(u64, Option<u64>, u64)> {
    let (len, mtime_nanos) = probe_stamp(path)?;
    Ok((len, mtime_nanos, hash_file(path)?))
}

/// Does recording `new` right after `last` make `last` unobservable?
/// True only for consecutive absolute single-slot writes — the later
/// value fully determines the slot, so dropping the earlier entry is
/// provably state-preserving.
fn supersedes(new: &Mutation, last: &Mutation) -> bool {
    use forestview::command::Command;
    match (new, last) {
        (
            Mutation::Command(Command::SetContrast { dataset: a, .. }),
            Mutation::Command(Command::SetContrast { dataset: b, .. }),
        ) => a == b,
        (Mutation::Command(Command::SetLinkage(_)), Mutation::Command(Command::SetLinkage(_))) => {
            true
        }
        (Mutation::Command(Command::SetMetric(_)), Mutation::Command(Command::SetMetric(_))) => {
            true
        }
        _ => false,
    }
}

/// Would replaying `new` at the end of `log` leave the session state
/// unchanged? True for the recompute-triggering no-ops interactive
/// streams produce: a linkage/metric write whose value the log already
/// establishes, and a `cluster_all` whose inputs (dataset contents,
/// metric, linkage) are untouched since a previous `cluster_all` —
/// `Session::cluster_dataset` is a pure function of the underlying
/// matrix and settings, so repeating it is idempotent. Skipping these keeps restore replay from paying for
/// redundant re-clustering (the dominant cost in `BENCH_PR9.json`).
fn replays_as_noop(log: &[Mutation], new: &Mutation) -> bool {
    use forestview::command::Command;
    match new {
        Mutation::Command(Command::SetLinkage(value)) => log
            .iter()
            .rev()
            .find_map(|m| match m {
                Mutation::Command(Command::SetLinkage(prior)) => Some(prior == value),
                _ => None,
            })
            .unwrap_or(false),
        Mutation::Command(Command::SetMetric(value)) => log
            .iter()
            .rev()
            .find_map(|m| match m {
                Mutation::Command(Command::SetMetric(prior)) => Some(prior == value),
                _ => None,
            })
            .unwrap_or(false),
        Mutation::Command(Command::ClusterAll) => {
            for m in log.iter().rev() {
                match m {
                    Mutation::Command(Command::ClusterAll) => return true,
                    m if cluster_neutral(m) => continue,
                    _ => return false,
                }
            }
            false
        }
        _ => false,
    }
}

/// Mutations that cannot change what `cluster_all` computes or
/// overwrites: pure selection/view state. Ordering commands are NOT
/// neutral — they overwrite the display order `cluster_all` writes, so
/// a re-cluster after them is meaningful. Everything else (loads,
/// normalize, impute, linkage/metric writes, array clustering)
/// conservatively blocks the redundant-`cluster_all` elision.
fn cluster_neutral(m: &Mutation) -> bool {
    use forestview::command::Command;
    matches!(
        m,
        Mutation::Command(
            Command::SelectRegion { .. }
                | Command::SelectGenes(_)
                | Command::Search(_)
                | Command::ClearSelection
                | Command::ToggleSync
                | Command::Scroll(_)
                | Command::SetContrast { .. }
        )
    )
}

/// Load a PCL or CDT dataset from disk, named after the file stem.
pub fn load_dataset_file(path: &str) -> Result<fv_expr::Dataset, ApiError> {
    let text = std::fs::read_to_string(path).map_err(|e| ApiError::io(format!("{path}: {e}")))?;
    parse_dataset_text(path, &text)
}

/// Parse dataset `text` (PCL or CDT) as if read from `path`, named
/// after the file stem. Split from [`load_dataset_file`] so
/// [`DatasetCache`] can hash the exact bytes it parses without a second
/// read.
pub(crate) fn parse_dataset_text(path: &str, text: &str) -> Result<fv_expr::Dataset, ApiError> {
    let name = Path::new(path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.to_string());
    match fv_formats::detect_format(text) {
        fv_formats::FileFormat::Pcl => fv_formats::pcl::parse_pcl(&name, text)
            .map_err(|e| ApiError::format(format!("{path}: {e}"))),
        fv_formats::FileFormat::Cdt => fv_formats::cdt::parse_cdt(&name, text)
            .map(|c| c.dataset)
            .map_err(|e| ApiError::format(format!("{path}: {e}"))),
        other => Err(ApiError::format(format!(
            "{path}: unsupported format {other:?}"
        ))),
    }
}

/// FNV-1a over raw bytes; the frame checksum of [`Response::Frame`].
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use forestview::command::Command;

    fn loaded_engine() -> Engine {
        let mut e = Engine::with_scene(800, 600);
        e.execute(&Request::Mutate(Mutation::LoadScenario {
            n_genes: 120,
            seed: 7,
        }))
        .unwrap();
        e
    }

    #[test]
    fn scenario_then_info() {
        let mut e = loaded_engine();
        let info = e.execute(&Request::Query(Query::SessionInfo)).unwrap();
        match info {
            Response::SessionInfo(data) => {
                assert_eq!(data.n_datasets, 3);
                assert_eq!(data.universe_genes, 120);
                assert!(data.sync_enabled);
            }
            other => panic!("wrong response: {other:?}"),
        }
    }

    #[test]
    fn command_mutations_report_damage() {
        let mut e = loaded_engine();
        let r = e
            .execute(&Request::Mutate(Mutation::Command(Command::Search(
                "stress".into(),
            ))))
            .unwrap();
        match r {
            Response::Applied {
                selection_len,
                damage,
            } => {
                assert!(selection_len.unwrap_or(0) > 0);
                assert!(!damage.is_empty());
            }
            other => panic!("wrong response: {other:?}"),
        }
    }

    #[test]
    fn bad_dataset_index_is_typed_error() {
        let mut e = loaded_engine();
        let err = e
            .execute(&Request::Mutate(Mutation::Impute { dataset: 9, k: 3 }))
            .unwrap_err();
        assert_eq!(err.code, crate::error::ErrorCode::NotFound);
    }

    #[test]
    fn enrich_without_ontology_is_missing_context() {
        let mut e = loaded_engine();
        let err = e
            .execute(&Request::Query(Query::Enrich {
                genes: Some(vec!["YAL001C".into()]),
                max_terms: 5,
            }))
            .unwrap_err();
        assert_eq!(err.code, crate::error::ErrorCode::MissingContext);
    }

    #[test]
    fn ontology_enables_enrich() {
        let mut e = loaded_engine();
        e.execute(&Request::Mutate(Mutation::BuildOntology {
            n_filler: 60,
            seed: 7,
        }))
        .unwrap();
        e.execute(&Request::Mutate(Mutation::Command(Command::Search(
            "general stress response".into(),
        ))))
        .unwrap();
        let r = e
            .execute(&Request::Query(Query::Enrich {
                genes: None,
                max_terms: 5,
            }))
            .unwrap();
        match r {
            Response::Enrichment { rows } => assert!(!rows.is_empty()),
            other => panic!("wrong response: {other:?}"),
        }
    }

    #[test]
    fn spell_index_caches_until_mutation() {
        let mut e = loaded_engine();
        let q = Request::Query(Query::Spell {
            genes: vec![fv_synth::names::orf_name(0)],
            top_n: 5,
        });
        e.execute(&q).unwrap();
        let v1 = e.spell.as_ref().unwrap().0;
        e.execute(&q).unwrap();
        assert_eq!(e.spell.as_ref().unwrap().0, v1, "cache reused");
        e.execute(&Request::Mutate(Mutation::Normalize {
            dataset: None,
            method: NormalizeMethod::CenterRows,
        }))
        .unwrap();
        e.execute(&q).unwrap();
        assert_ne!(e.spell.as_ref().unwrap().0, v1, "cache rebuilt");
    }

    #[test]
    fn batch_damage_is_single_pass_union() {
        // The same request stream through a batch and through singles must
        // mutate identically, and the batch damage must equal the
        // deduplicated union of the singles' damage.
        let script = vec![
            Request::Mutate(Mutation::Command(Command::SelectRegion {
                dataset: 0,
                start_frac: 0.0,
                end_frac: 0.4,
            })),
            Request::Mutate(Mutation::Command(Command::Scroll(2))),
            Request::Mutate(Mutation::Command(Command::SetContrast {
                dataset: Some(1),
                contrast: 2.0,
            })),
        ];
        let mut seq = loaded_engine();
        let mut union: Vec<DamageRect> = Vec::new();
        for r in &script {
            if let Response::Applied { damage, .. } = seq.execute(r).unwrap() {
                for d in damage {
                    if !union.contains(&d) {
                        union.push(d);
                    }
                }
            }
        }
        let mut batched = loaded_engine();
        let outcome = batched.execute_batch(&script).unwrap();
        assert_eq!(outcome.damage, union);
        assert_eq!(
            batched.session().selection().map(|s| s.len()),
            seq.session().selection().map(|s| s.len())
        );
        assert_eq!(batched.session().scroll(), seq.session().scroll());
    }

    #[test]
    fn first_array_tree_damages_whole_scene() {
        // The first array tree toggles the array-tree strip, shifting
        // every pane's content — the damage must cover the whole scene,
        // not just the clustered pane. Later array trees are pane-local.
        let mut e = loaded_engine();
        let first = e
            .execute_batch(&[Request::Mutate(Mutation::ClusterArrays { dataset: 0 })])
            .unwrap();
        assert_eq!(
            first.damage,
            vec![DamageRect {
                x: 0,
                y: 0,
                w: 800,
                h: 600
            }]
        );
        let second = e
            .execute_batch(&[Request::Mutate(Mutation::ClusterArrays { dataset: 1 })])
            .unwrap();
        assert_eq!(second.damage.len(), 1);
        assert_ne!(second.damage, first.damage, "later trees are pane-local");
    }

    #[test]
    fn run_matches_sequential_execution_exactly() {
        // execute_run must produce byte-for-byte the responses (damage
        // rects included) of sequential execute calls — including across
        // layout changes mid-run (scenario load, first array tree,
        // reordering) — while sharing layout passes where possible.
        let script = vec![
            Request::Mutate(Mutation::LoadScenario {
                n_genes: 90,
                seed: 3,
            }),
            Request::Mutate(Mutation::Command(Command::Search("stress".into()))),
            Request::Mutate(Mutation::Command(Command::Scroll(1))),
            Request::Mutate(Mutation::ClusterArrays { dataset: 0 }),
            Request::Mutate(Mutation::Command(Command::SetContrast {
                dataset: Some(1),
                contrast: 2.0,
            })),
            Request::Mutate(Mutation::Command(Command::OrderByRelevance(vec![
                0.2, 0.9, 0.4,
            ]))),
            Request::Mutate(Mutation::Command(Command::SelectRegion {
                dataset: 2,
                start_frac: 0.1,
                end_frac: 0.6,
            })),
            Request::Query(Query::SessionInfo),
        ];
        let mut seq = Engine::with_scene(800, 600);
        let expected: Vec<Response> = script.iter().map(|r| seq.execute(r).unwrap()).collect();
        let mut run = Engine::with_scene(800, 600);
        let outcome = run.execute_run(&script);
        assert!(outcome.error.is_none());
        assert_eq!(outcome.responses, expected);
    }

    #[test]
    fn run_stops_at_first_error_keeping_prefix() {
        let mut e = Engine::with_scene(800, 600);
        let outcome = e.execute_run(&[
            Request::Mutate(Mutation::LoadScenario {
                n_genes: 60,
                seed: 1,
            }),
            Request::Mutate(Mutation::Impute { dataset: 9, k: 3 }),
            Request::Query(Query::SessionInfo),
        ]);
        assert_eq!(outcome.responses.len(), 1, "prefix before the error");
        let (idx, err) = outcome.error.expect("run must report the error");
        assert_eq!(idx, 1);
        assert_eq!(err.code, crate::error::ErrorCode::NotFound);
        // the mutation before the error stays applied
        assert_eq!(e.session().n_datasets(), 3);
    }

    #[test]
    fn snapshot_restore_rebuilds_the_session_exactly() {
        let mut e = Engine::with_scene(800, 600);
        for r in [
            Request::Mutate(Mutation::LoadScenario {
                n_genes: 90,
                seed: 3,
            }),
            Request::Mutate(Mutation::Command(Command::Search("stress".into()))),
            Request::Mutate(Mutation::ClusterArrays { dataset: 0 }),
            Request::Mutate(Mutation::Command(Command::Scroll(2))),
        ] {
            e.execute(&r).unwrap();
        }
        // queries and failures bump the counter without entering the log
        e.execute(&Request::Query(Query::SessionInfo)).unwrap();
        let _ = e.execute(&Request::Mutate(Mutation::Impute { dataset: 9, k: 3 }));
        let image = e.snapshot();
        assert_eq!(image.requests, 6);
        assert_eq!(image.log.len(), 4, "only successful mutations recorded");
        let text = crate::image::format_session_image(&image);
        let parsed = crate::image::parse_session_image(&text).unwrap();
        assert_eq!(parsed, image);
        let mut restored = Engine::restore(&parsed, &DatasetCache::new()).unwrap();
        assert_eq!(restored.cost(), e.cost());
        assert_eq!(
            restored.session().cluster_settings(),
            e.session().cluster_settings()
        );
        // a second snapshot of the restored engine is byte-identical
        // (replaying a compacted log re-records exactly that log)
        assert_eq!(
            crate::image::format_session_image(&restored.snapshot()),
            text
        );
        let probe = Request::Query(Query::Render {
            width: 320,
            height: 240,
            path: None,
        });
        assert_eq!(
            restored.execute(&probe).unwrap(),
            e.execute(&probe).unwrap()
        );
    }

    #[test]
    fn log_compacts_consecutive_absolute_writes() {
        let mut e = loaded_engine();
        for r in [
            Request::Mutate(Mutation::Command(Command::SetContrast {
                dataset: Some(1),
                contrast: 2.0,
            })),
            Request::Mutate(Mutation::Command(Command::SetContrast {
                dataset: Some(1),
                contrast: 3.0,
            })),
            // different target: both stay
            Request::Mutate(Mutation::Command(Command::SetContrast {
                dataset: None,
                contrast: 1.5,
            })),
            Request::Mutate(Mutation::Command(Command::SetLinkage(
                fv_cluster::linkage::Linkage::Complete,
            ))),
            Request::Mutate(Mutation::Command(Command::SetLinkage(
                fv_cluster::linkage::Linkage::Ward,
            ))),
            Request::Mutate(Mutation::Command(Command::SetMetric(
                fv_cluster::distance::Metric::Euclidean,
            ))),
        ] {
            e.execute(&r).unwrap();
        }
        let image = e.snapshot();
        // scenario + contrast(1) + contrast(all) + linkage + metric
        assert_eq!(image.log.len(), 5, "consecutive same-slot writes collapse");
        let restored = Engine::restore(&image, &DatasetCache::new()).unwrap();
        assert_eq!(
            restored.session().cluster_settings(),
            e.session().cluster_settings()
        );
        assert_eq!(restored.snapshot(), image, "re-snapshot is stable");
    }

    #[test]
    fn restore_asserts_dataset_fingerprints() {
        let dir = std::env::temp_dir().join(format!("fv-image-stamp-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("d.pcl");
        std::fs::write(
            &path,
            "ID\tNAME\tGWEIGHT\tc0\tc1\nG1\tG1\t1\t1.0\t2.0\nG2\tG2\t1\t3.0\t4.0\n",
        )
        .unwrap();
        let mut e = Engine::with_scene(640, 480);
        e.execute(&Request::Mutate(Mutation::LoadDataset {
            path: path.to_string_lossy().into_owned(),
        }))
        .unwrap();
        let image = e.snapshot();
        assert_eq!(image.datasets.len(), 1);
        assert!(image.datasets[0].len > 0);
        assert_ne!(image.datasets[0].hash, 0, "stamps carry a content hash");
        assert!(Engine::restore(&image, &DatasetCache::new()).is_ok());
        // grow the file: the stamp no longer matches and restore refuses
        std::fs::write(
            &path,
            "ID\tNAME\tGWEIGHT\tc0\tc1\nG1\tG1\t1\t9.0\t9.0\nG2\tG2\t1\t3.0\t4.0\nG3\tG3\t1\t5.0\t6.0\n",
        )
        .unwrap();
        let err = Engine::restore(&image, &DatasetCache::new()).err().unwrap();
        assert_eq!(err.code, crate::error::ErrorCode::StaleImage);
        // same length, different bytes: the cheap fingerprint may pass on
        // coarse-mtime filesystems, but the content hash must refuse
        let original = "ID\tNAME\tGWEIGHT\tc0\tc1\nG1\tG1\t1\t1.0\t2.0\nG2\tG2\t1\t3.0\t4.0\n";
        let altered = original.replace("1.0\t2.0", "9.0\t8.0");
        assert_eq!(altered.len(), original.len());
        std::fs::write(&path, &altered).unwrap();
        let err = Engine::restore(&image, &DatasetCache::new()).err().unwrap();
        assert_eq!(err.code, crate::error::ErrorCode::StaleImage);
        // a missing file is a typed I/O error
        std::fs::remove_file(&path).unwrap();
        let err = Engine::restore(&image, &DatasetCache::new()).err().unwrap();
        assert_eq!(err.code, crate::error::ErrorCode::Io);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restore_accepts_touched_but_identical_file() {
        let dir = std::env::temp_dir().join(format!("fv-image-touch-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("d.pcl");
        let body = "ID\tNAME\tGWEIGHT\tc0\tc1\nG1\tG1\t1\t1.0\t2.0\nG2\tG2\t1\t3.0\t4.0\n";
        std::fs::write(&path, body).unwrap();
        let mut e = Engine::with_scene(640, 480);
        e.execute(&Request::Mutate(Mutation::LoadDataset {
            path: path.to_string_lossy().into_owned(),
        }))
        .unwrap();
        let image = e.snapshot();
        // rewrite the same bytes with a strictly newer mtime — the
        // regression: a copy or `touch` used to break restore/migration
        std::thread::sleep(std::time::Duration::from_millis(20));
        std::fs::write(&path, body).unwrap();
        let (len, mtime) = (
            std::fs::metadata(&path).unwrap().len(),
            std::fs::metadata(&path)
                .unwrap()
                .modified()
                .ok()
                .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
                .map(|d| d.as_nanos() as u64),
        );
        assert_eq!(len, image.datasets[0].len);
        if mtime == image.datasets[0].mtime_nanos {
            // mtime granularity too coarse to observe the rewrite; the
            // cheap fingerprint already passes and proves nothing
            std::fs::remove_dir_all(&dir).ok();
            return;
        }
        let restored = Engine::restore(&image, &DatasetCache::new())
            .expect("identical bytes behind a changed mtime must restore");
        assert_eq!(restored.cost(), e.cost());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn log_elides_recompute_noops() {
        let mut e = loaded_engine();
        for r in [
            Request::Mutate(Mutation::Command(Command::SetMetric(
                fv_cluster::distance::Metric::Euclidean,
            ))),
            Request::Mutate(Mutation::Command(Command::ClusterAll)),
            // view-only traffic between the clusterings
            Request::Mutate(Mutation::Command(Command::Scroll(3))),
            Request::Mutate(Mutation::Command(Command::Search("stress".into()))),
            // same metric re-asserted, then a redundant re-cluster: both
            // are state no-ops and must not survive into the log
            Request::Mutate(Mutation::Command(Command::SetMetric(
                fv_cluster::distance::Metric::Euclidean,
            ))),
            Request::Mutate(Mutation::Command(Command::ClusterAll)),
        ] {
            e.execute(&r).unwrap();
        }
        let image = e.snapshot();
        // scenario + set_metric + cluster_all + scroll + search
        assert_eq!(image.log.len(), 5, "recompute no-ops are elided");
        let mut restored = Engine::restore(&image, &DatasetCache::new()).unwrap();
        assert_eq!(
            restored.session().cluster_settings(),
            e.session().cluster_settings()
        );
        assert_eq!(restored.snapshot(), image, "re-snapshot is stable");
        let probe = Request::Query(Query::Render {
            width: 320,
            height: 240,
            path: None,
        });
        assert_eq!(
            restored.execute(&probe).unwrap(),
            e.execute(&probe).unwrap(),
            "eliding idempotent re-clustering must not change pixels"
        );
    }

    #[test]
    fn ordering_blocks_cluster_all_elision() {
        let mut e = loaded_engine();
        for r in [
            Request::Mutate(Mutation::Command(Command::ClusterAll)),
            // OrderByName overwrites the display order cluster_all wrote,
            // so the second cluster_all is meaningful and must stay
            Request::Mutate(Mutation::Command(Command::OrderByName)),
            Request::Mutate(Mutation::Command(Command::ClusterAll)),
        ] {
            e.execute(&r).unwrap();
        }
        let image = e.snapshot();
        // scenario + cluster_all + order_by_name + cluster_all
        assert_eq!(image.log.len(), 4);
        let restored = Engine::restore(&image, &DatasetCache::new()).unwrap();
        assert_eq!(restored.snapshot(), image, "re-snapshot is stable");
    }

    #[test]
    fn render_checksum_deterministic() {
        let mut a = loaded_engine();
        let mut b = loaded_engine();
        let q = Request::Query(Query::Render {
            width: 320,
            height: 240,
            path: None,
        });
        let (ra, rb) = (a.execute(&q).unwrap(), b.execute(&q).unwrap());
        assert_eq!(ra, rb);
        match ra {
            Response::Frame {
                checksum, panes, ..
            } => {
                assert_ne!(checksum, 0);
                assert_eq!(panes, 3);
            }
            other => panic!("wrong response: {other:?}"),
        }
    }
}
