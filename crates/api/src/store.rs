//! `SessionStore`: durable session checkpoints on disk.
//!
//! A server restart used to lose every session — the engine state lived
//! only in memory. The store closes that hole with the smallest possible
//! durable surface: one [`SessionImage`] text file per session, written
//! with the classic torn-write-safe sequence (temp file in the same
//! directory → `fsync` → atomic rename), under a versioned layout:
//!
//! ```text
//! <state_dir>/
//!   v1/
//!     manifest               "fv-state v1"
//!     sessions/
//!       <encoded-name>.img   format_session_image text
//! ```
//!
//! Session names are arbitrary whitespace-free tokens (they may contain
//! `/` or `..`), so file names percent-encode every byte outside
//! `[A-Za-z0-9_-]` — the encoding is injective and reversible, and a
//! hostile name can never escape `sessions/`.
//!
//! Crash-safety contract, which the torn-write tests assert byte by
//! byte: a `kill -9` at *any* point during [`SessionStore::save`] leaves
//! either the previous checkpoint or the new one, never a mix and never
//! a partial file. Interrupted temp files (`*.tmp`) are ignored and
//! swept by [`SessionStore::scan`]; a checkpoint that fails to parse
//! (disk corruption, a file planted by hand) is reported per-entry in
//! [`ScanOutcome::corrupt`] rather than aborting recovery of the healthy
//! sessions.

use crate::error::ApiError;
use crate::hub::SessionId;
use crate::image::{format_session_image, parse_session_image, SessionImage};
use std::io::Write;
use std::path::{Path, PathBuf};

/// First line of the store manifest; bumped if the layout ever changes.
pub const MANIFEST: &str = "fv-state v1";

/// Result of scanning a store at boot: every recoverable checkpoint,
/// plus per-file diagnostics for the ones that were not.
#[derive(Debug, Default)]
pub struct ScanOutcome {
    /// Parsed checkpoints, sorted by session name.
    pub sessions: Vec<(SessionId, SessionImage)>,
    /// Checkpoints that could not be read or parsed (and why). Recovery
    /// proceeds without them; the files are left in place for autopsy.
    pub corrupt: Vec<(PathBuf, ApiError)>,
    /// Interrupted temp files swept during the scan — evidence of a
    /// crash mid-save, never a recovery candidate.
    pub swept_tmp: usize,
}

/// Durable per-session checkpoint store. Cheap to clone conceptually —
/// it holds only paths; every operation re-opens the files it needs.
#[derive(Debug, Clone)]
pub struct SessionStore {
    /// `<state_dir>/v1/sessions`, created by [`SessionStore::open`].
    sessions_dir: PathBuf,
}

impl SessionStore {
    /// Open (creating if absent) a store under `state_dir`. Refuses a
    /// directory whose manifest names a different layout version rather
    /// than guessing at its contents.
    pub fn open(state_dir: &Path) -> Result<SessionStore, ApiError> {
        let v1 = state_dir.join("v1");
        let sessions_dir = v1.join("sessions");
        std::fs::create_dir_all(&sessions_dir)
            .map_err(|e| ApiError::io(format!("{}: {e}", sessions_dir.display())))?;
        let manifest = v1.join("manifest");
        match std::fs::read_to_string(&manifest) {
            Ok(text) => {
                if text.trim_end() != MANIFEST {
                    return Err(ApiError::format(format!(
                        "{}: unknown state layout {:?} (expected {MANIFEST:?})",
                        manifest.display(),
                        text.trim_end()
                    )));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                write_atomic(&manifest, format!("{MANIFEST}\n").as_bytes())?;
            }
            Err(e) => return Err(ApiError::io(format!("{}: {e}", manifest.display()))),
        }
        Ok(SessionStore { sessions_dir })
    }

    /// The checkpoint file a session maps to.
    pub fn checkpoint_path(&self, session: &SessionId) -> PathBuf {
        self.sessions_dir
            .join(format!("{}.img", encode_name(session.as_str())))
    }

    /// Durably replace `session`'s checkpoint with `image`: temp file in
    /// the same directory, `fsync`, atomic rename. A crash at any byte
    /// offset leaves the previous checkpoint intact.
    pub fn save(&self, session: &SessionId, image: &SessionImage) -> Result<(), ApiError> {
        let mut text = format_session_image(image);
        text.push('\n');
        write_atomic(&self.checkpoint_path(session), text.as_bytes())
    }

    /// Drop `session`'s checkpoint. Removing a checkpoint that does not
    /// exist is not an error — close paths race with checkpoint cadence.
    pub fn remove(&self, session: &SessionId) -> Result<(), ApiError> {
        let path = self.checkpoint_path(session);
        match std::fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(ApiError::io(format!("{}: {e}", path.display()))),
        }
    }

    /// Read every checkpoint for boot-time recovery. Never fails on a
    /// single bad file: unparseable checkpoints are reported in
    /// [`ScanOutcome::corrupt`], interrupted `*.tmp` files are deleted
    /// and counted, and everything else is returned sorted by name.
    pub fn scan(&self) -> Result<ScanOutcome, ApiError> {
        let mut out = ScanOutcome::default();
        let entries = std::fs::read_dir(&self.sessions_dir)
            .map_err(|e| ApiError::io(format!("{}: {e}", self.sessions_dir.display())))?;
        for entry in entries {
            let path = entry
                .map_err(|e| ApiError::io(format!("{}: {e}", self.sessions_dir.display())))?
                .path();
            let name = path.file_name().unwrap_or_default().to_string_lossy();
            if name.ends_with(".tmp") {
                // A save was interrupted before its rename; the previous
                // checkpoint (if any) is still the good one.
                std::fs::remove_file(&path).ok();
                out.swept_tmp += 1;
                continue;
            }
            let Some(encoded) = name.strip_suffix(".img") else {
                out.corrupt.push((
                    path.clone(),
                    ApiError::format(format!("{name}: not a checkpoint file")),
                ));
                continue;
            };
            let session = match decode_name(encoded).and_then(SessionId::new) {
                Ok(s) => s,
                Err(e) => {
                    out.corrupt.push((path.clone(), e));
                    continue;
                }
            };
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    out.corrupt
                        .push((path.clone(), ApiError::io(e.to_string())));
                    continue;
                }
            };
            match parse_session_image(text.trim_end_matches('\n')) {
                Ok(image) => out.sessions.push((session, image)),
                Err(e) => out.corrupt.push((path.clone(), e)),
            }
        }
        out.sessions.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }
}

/// Write `bytes` to `path` torn-write-safely: unique temp file in the
/// same directory, `fsync` the data, rename over the target, `fsync` the
/// directory so the rename itself is durable.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), ApiError> {
    let dir = path
        .parent()
        .ok_or_else(|| ApiError::io(format!("{}: no parent directory", path.display())))?;
    let tmp = path.with_extension(format!("{}.tmp", std::process::id()));
    let io_err = |e: std::io::Error| ApiError::io(format!("{}: {e}", tmp.display()));
    let mut file = std::fs::File::create(&tmp).map_err(io_err)?;
    file.write_all(bytes).map_err(io_err)?;
    file.sync_all().map_err(io_err)?;
    drop(file);
    std::fs::rename(&tmp, path).map_err(|e| {
        std::fs::remove_file(&tmp).ok();
        ApiError::io(format!("{} -> {}: {e}", tmp.display(), path.display()))
    })?;
    if let Ok(d) = std::fs::File::open(dir) {
        d.sync_all().ok();
    }
    Ok(())
}

/// Percent-encode a session name for use as a file name: every byte
/// outside `[A-Za-z0-9_-]` (including `.`, so `..` cannot appear) is
/// `%XX`. Injective, so distinct sessions never collide on disk.
pub fn encode_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for &b in name.as_bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'_' | b'-' => out.push(b as char),
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Inverse of [`encode_name`]. Strict: rejects stray `%`, non-hex
/// digits, and byte sequences that are not valid UTF-8.
pub fn decode_name(encoded: &str) -> Result<String, ApiError> {
    let mut bytes = Vec::with_capacity(encoded.len());
    let mut it = encoded.bytes();
    while let Some(b) = it.next() {
        if b == b'%' {
            let hex = [
                it.next()
                    .ok_or_else(|| ApiError::format(format!("{encoded}: truncated %-escape")))?,
                it.next()
                    .ok_or_else(|| ApiError::format(format!("{encoded}: truncated %-escape")))?,
            ];
            let hex = std::str::from_utf8(&hex)
                .ok()
                .and_then(|h| u8::from_str_radix(h, 16).ok())
                .ok_or_else(|| ApiError::format(format!("{encoded}: bad %-escape")))?;
            bytes.push(hex);
        } else {
            bytes.push(b);
        }
    }
    String::from_utf8(bytes).map_err(|_| ApiError::format(format!("{encoded}: not UTF-8")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Mutation;
    use forestview::command::Command;
    use proptest::prelude::*;

    fn temp_store(tag: &str) -> (PathBuf, SessionStore) {
        let dir = std::env::temp_dir().join(format!(
            "fv-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let store = SessionStore::open(&dir).unwrap();
        (dir, store)
    }

    fn sample_image(requests: u64) -> SessionImage {
        SessionImage {
            scene: (800, 600),
            requests,
            datasets: Vec::new(),
            log: vec![
                Mutation::LoadScenario {
                    n_genes: 60,
                    seed: 1,
                },
                Mutation::Command(Command::Search("stress".into())),
            ],
        }
    }

    #[test]
    fn save_scan_roundtrips_and_overwrites() {
        let (dir, store) = temp_store("roundtrip");
        let a = SessionId::new("alice").unwrap();
        let b = SessionId::new("bob/with/slashes").unwrap();
        store.save(&a, &sample_image(3)).unwrap();
        store.save(&b, &sample_image(7)).unwrap();
        // overwrite: latest checkpoint wins
        store.save(&a, &sample_image(5)).unwrap();
        let scan = store.scan().unwrap();
        assert!(scan.corrupt.is_empty());
        assert_eq!(scan.sessions.len(), 2);
        assert_eq!(scan.sessions[0].0, a);
        assert_eq!(scan.sessions[0].1.requests, 5);
        assert_eq!(scan.sessions[1].0, b);
        assert_eq!(scan.sessions[1].1.requests, 7);
        store.remove(&a).unwrap();
        store.remove(&a).unwrap(); // idempotent
        assert_eq!(store.scan().unwrap().sessions.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_preserves_checkpoints_and_checks_manifest() {
        let (dir, store) = temp_store("reopen");
        let s = SessionId::new("s1").unwrap();
        store.save(&s, &sample_image(2)).unwrap();
        let again = SessionStore::open(&dir).unwrap();
        assert_eq!(again.scan().unwrap().sessions.len(), 1);
        // a future layout version is refused, not misread
        std::fs::write(dir.join("v1/manifest"), "fv-state v9\n").unwrap();
        let err = SessionStore::open(&dir).err().unwrap();
        assert_eq!(err.code, crate::error::ErrorCode::Format);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn kill_at_any_byte_offset_mid_write_keeps_last_good() {
        let (dir, store) = temp_store("torn");
        let s = SessionId::new("victim").unwrap();
        let good = sample_image(41);
        store.save(&s, &good).unwrap();
        let next = {
            let mut text = format_session_image(&sample_image(42));
            text.push('\n');
            text.into_bytes()
        };
        // Simulate kill -9 after writing exactly `cut` bytes of the temp
        // file (the rename never happened): recovery must see the
        // previous checkpoint, bit-for-bit, at every offset.
        for cut in 0..=next.len() {
            let tmp = store.checkpoint_path(&s).with_extension("img.99999.tmp");
            std::fs::write(&tmp, &next[..cut]).unwrap();
            let scan = store.scan().unwrap();
            assert_eq!(scan.swept_tmp, 1, "cut={cut}");
            assert!(scan.corrupt.is_empty(), "cut={cut}: {:?}", scan.corrupt);
            assert_eq!(scan.sessions.len(), 1, "cut={cut}");
            assert_eq!(scan.sessions[0].1, good, "cut={cut}");
        }
        // A torn *checkpoint* (disk corruption after rename) is isolated:
        // reported corrupt, other sessions still recover.
        let other = SessionId::new("other").unwrap();
        store.save(&other, &sample_image(7)).unwrap();
        std::fs::write(store.checkpoint_path(&s), &next[..next.len() / 2]).unwrap();
        let scan = store.scan().unwrap();
        assert_eq!(scan.corrupt.len(), 1);
        assert_eq!(scan.sessions.len(), 1);
        assert_eq!(scan.sessions[0].0, other);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hostile_names_stay_inside_the_store() {
        let (dir, store) = temp_store("hostile");
        for name in ["../escape", "..", "a/b", "%41", "ü", "c:d"] {
            let s = SessionId::new(name).unwrap();
            let path = store.checkpoint_path(&s);
            assert!(
                path.parent().unwrap().ends_with("v1/sessions"),
                "{name:?} must map inside sessions/, got {}",
                path.display()
            );
            store.save(&s, &sample_image(1)).unwrap();
        }
        let scan = store.scan().unwrap();
        assert!(scan.corrupt.is_empty(), "{:?}", scan.corrupt);
        let names: Vec<&str> = scan.sessions.iter().map(|(s, _)| s.as_str()).collect();
        assert_eq!(names, ["%41", "..", "../escape", "a/b", "c:d", "ü"]);
        std::fs::remove_dir_all(&dir).ok();
    }

    fn arb_name() -> impl Strategy<Value = String> {
        use proptest::strategy::FnStrategy;
        use proptest::test_runner::TestRng;
        const POOL: &[char] = &[
            'a', 'Z', '0', '_', '-', '.', '/', '%', 'ü', 'λ', ':', '~', '+', '=', '\\',
        ];
        FnStrategy::new(|rng: &mut TestRng| {
            let len = 1 + rng.below(24) as usize;
            (0..len)
                .map(|_| POOL[rng.below(POOL.len() as u64) as usize])
                .collect()
        })
    }

    proptest! {
        #[test]
        fn name_encoding_roundtrips(name in arb_name()) {
            let encoded = encode_name(&name);
            prop_assert!(
                encoded.bytes().all(|b| matches!(
                    b,
                    b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'_' | b'-' | b'%'
                )),
                "encoded {encoded:?} has a raw special byte"
            );
            prop_assert_eq!(decode_name(&encoded).unwrap(), name);
        }
    }
}
