//! Multi-session hub: many named engines behind one dispatch surface.
//!
//! `EngineHub` is the seam where horizontal scaling attaches. Today it is
//! an in-process map from [`SessionId`] to [`Engine`]; a network transport
//! (the next planned layer — see ROADMAP.md) serializes requests with the
//! wire codec, routes them here by session id, and shards hubs across
//! workers without the protocol changing shape.

use crate::codec::{format_response, parse_script, ScriptItem};
use crate::engine::{BatchOutcome, Engine};
use crate::error::ApiError;
use crate::request::Request;
use crate::response::Response;
use std::collections::BTreeMap;

/// Name of an engine session within a hub. Session names are single
/// whitespace-free tokens (enforced by [`SessionId::new`]).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(String);

impl SessionId {
    /// Validate and wrap a session name.
    pub fn new(name: impl Into<String>) -> Result<SessionId, ApiError> {
        let name = name.into();
        if name.is_empty() || name.contains(char::is_whitespace) {
            return Err(ApiError::invalid(format!(
                "session names are non-empty single tokens, got {name:?}"
            )));
        }
        Ok(SessionId(name))
    }

    /// The session name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// One executed script line in a transcript.
#[derive(Debug, Clone, PartialEq)]
pub struct TranscriptEntry {
    /// 1-based line number in the script source.
    pub line_no: usize,
    /// Session the request ran against.
    pub session: SessionId,
    /// The executed request.
    pub request: Request,
    /// Its response.
    pub response: Response,
}

impl TranscriptEntry {
    /// Canonical transcript block for this entry:
    /// `<session>:<line>> <canonical request>` followed by the formatted
    /// response, newline-terminated. The single source of the transcript
    /// shape — both [`ScriptOutcome::transcript`] and streaming front ends
    /// (`fvtool script`) emit exactly this.
    pub fn render(&self) -> String {
        format!(
            "{}:{}> {}\n{}\n",
            self.session,
            self.line_no,
            crate::codec::format_request(&self.request),
            format_response(&self.response)
        )
    }
}

/// Result of replaying a script through a hub.
#[derive(Debug, Clone, PartialEq)]
pub struct ScriptOutcome {
    /// Executed lines, in order.
    pub entries: Vec<TranscriptEntry>,
}

impl ScriptOutcome {
    /// Deterministic text transcript: the concatenated
    /// [`TranscriptEntry::render`] blocks of every executed request.
    pub fn transcript(&self) -> String {
        self.entries.iter().map(TranscriptEntry::render).collect()
    }
}

/// Many named engine sessions; the default session is `"main"`.
pub struct EngineHub {
    scene: (usize, usize),
    sessions: BTreeMap<SessionId, Engine>,
}

impl Default for EngineHub {
    fn default() -> Self {
        EngineHub::new()
    }
}

impl EngineHub {
    /// Hub whose engines use the default scene size.
    pub fn new() -> Self {
        EngineHub::with_scene(
            crate::engine::DEFAULT_SCENE.0,
            crate::engine::DEFAULT_SCENE.1,
        )
    }

    /// Hub whose engines resolve damage against `scene_w × scene_h`.
    pub fn with_scene(scene_w: usize, scene_h: usize) -> Self {
        EngineHub {
            scene: (scene_w, scene_h),
            sessions: BTreeMap::new(),
        }
    }

    /// The default session id.
    pub fn default_session() -> SessionId {
        SessionId("main".to_string())
    }

    /// Session ids, sorted by name.
    pub fn session_ids(&self) -> Vec<SessionId> {
        self.sessions.keys().cloned().collect()
    }

    /// Number of live sessions.
    pub fn n_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// The engine behind `id`, created empty on first use.
    pub fn engine(&mut self, id: &SessionId) -> &mut Engine {
        let scene = self.scene;
        self.sessions
            .entry(id.clone())
            .or_insert_with(|| Engine::with_scene(scene.0, scene.1))
    }

    /// Read-only engine access; `None` until the session exists.
    pub fn get(&self, id: &SessionId) -> Option<&Engine> {
        self.sessions.get(id)
    }

    /// Drop a session and everything it owns. Returns whether it existed.
    pub fn close(&mut self, id: &SessionId) -> bool {
        self.sessions.remove(id).is_some()
    }

    /// Execute one request against a named session.
    pub fn execute_on(&mut self, id: &SessionId, request: &Request) -> Result<Response, ApiError> {
        self.engine(id).execute(request)
    }

    /// Execute a batch against a named session (one layout/damage pass).
    pub fn execute_batch_on(
        &mut self,
        id: &SessionId,
        requests: &[Request],
    ) -> Result<BatchOutcome, ApiError> {
        self.engine(id).execute_batch(requests)
    }

    /// Replay a wire-format script. `use <name>` lines switch (and create)
    /// sessions; requests run against the current session, starting at
    /// `"main"`. Stops at the first error, reporting its script line.
    pub fn run_script(&mut self, text: &str) -> Result<ScriptOutcome, ApiError> {
        let mut entries = Vec::new();
        self.run_script_streaming(text, |e| entries.push(e.clone()))?;
        Ok(ScriptOutcome { entries })
    }

    /// Like [`EngineHub::run_script`], but hands each executed entry to
    /// `sink` as soon as its response exists — so a front end can emit the
    /// transcript incrementally, and the already-executed prefix survives
    /// a mid-script error (mutations are not rolled back; the transcript
    /// should not pretend they never ran).
    pub fn run_script_streaming(
        &mut self,
        text: &str,
        mut sink: impl FnMut(&TranscriptEntry),
    ) -> Result<(), ApiError> {
        let lines = parse_script(text)?;
        let mut current = EngineHub::default_session();
        for line in lines {
            match line.item {
                ScriptItem::Use(name) => {
                    current = SessionId::new(name)?;
                    // touch it so `use` alone materializes the session
                    self.engine(&current);
                }
                ScriptItem::Request(request) => {
                    let response = self.execute_on(&current, &request).map_err(|e| {
                        ApiError::new(e.code, format!("line {}: {}", line.line_no, e.message))
                    })?;
                    sink(&TranscriptEntry {
                        line_no: line.line_no,
                        session: current.clone(),
                        request,
                        response,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{Mutation, Query};

    #[test]
    fn sessions_isolated() {
        let mut hub = EngineHub::with_scene(640, 480);
        let a = SessionId::new("a").unwrap();
        let b = SessionId::new("b").unwrap();
        hub.execute_on(
            &a,
            &Request::Mutate(Mutation::LoadScenario {
                n_genes: 60,
                seed: 1,
            }),
        )
        .unwrap();
        let info_a = hub
            .execute_on(&a, &Request::Query(Query::SessionInfo))
            .unwrap();
        let info_b = hub
            .execute_on(&b, &Request::Query(Query::SessionInfo))
            .unwrap();
        match (info_a, info_b) {
            (Response::SessionInfo(ia), Response::SessionInfo(ib)) => {
                assert_eq!(ia.n_datasets, 3);
                assert_eq!(ib.n_datasets, 0, "session b must be untouched");
            }
            other => panic!("wrong responses: {other:?}"),
        }
        assert_eq!(hub.n_sessions(), 2);
        assert!(hub.close(&b));
        assert!(!hub.close(&b));
    }

    #[test]
    fn script_switches_sessions() {
        let mut hub = EngineHub::with_scene(640, 480);
        let script = "\
# two sessions side by side
scenario 60 1
use other
scenario 60 2
search_select stress
use main
session_info
";
        let out = hub.run_script(script).unwrap();
        assert_eq!(out.entries.len(), 4);
        assert_eq!(out.entries[0].session.as_str(), "main");
        assert_eq!(out.entries[1].session.as_str(), "other");
        assert_eq!(out.entries[3].session.as_str(), "main");
        let transcript = out.transcript();
        assert!(transcript.contains("main:2> scenario 60 1"));
        assert!(transcript.contains("other:5> search_select stress"));
    }

    #[test]
    fn script_errors_name_the_line() {
        let mut hub = EngineHub::new();
        let err = hub.run_script("scenario 60 1\nimpute 99 3\n").unwrap_err();
        assert!(err.message.contains("line 2"), "{}", err.message);
        assert_eq!(err.code, crate::error::ErrorCode::NotFound);
    }

    #[test]
    fn replay_is_deterministic() {
        let script = "\
scenario 120 7
set_metric euclidean
set_linkage ward
cluster_all
search_select general stress response
scroll 2
render 320 240
session_info
";
        let mut h1 = EngineHub::with_scene(800, 600);
        let mut h2 = EngineHub::with_scene(800, 600);
        let t1 = h1.run_script(script).unwrap().transcript();
        let t2 = h2.run_script(script).unwrap().transcript();
        assert_eq!(t1, t2);
        assert!(t1.contains("frame 320x240 panes=3"));
    }

    #[test]
    fn bad_session_names_rejected() {
        assert!(SessionId::new("").is_err());
        assert!(SessionId::new("two words").is_err());
        assert!(SessionId::new("ok-name_1").is_ok());
    }
}
