//! Multi-session hub: many named engines behind one dispatch surface.
//!
//! `EngineHub` is the seam where horizontal scaling attaches. Today it is
//! an in-process map from [`SessionId`] to [`Engine`]; a network transport
//! (the next planned layer — see ROADMAP.md) serializes requests with the
//! wire codec, routes them here by session id, and shards hubs across
//! workers without the protocol changing shape.

use crate::cache::{CacheStats, DatasetCache};
use crate::codec::{format_response, parse_script, ScriptItem};
use crate::engine::{BatchOutcome, Engine, RunOutcome};
use crate::error::ApiError;
use crate::request::Request;
use crate::response::Response;
use std::collections::BTreeMap;

// The hub (and everything under it) must be movable into worker threads —
// it is the unit a sharded transport partitions sessions across. Compile-
// time proof; a transport crate should not discover `!Send` at a distance.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<EngineHub>();
    assert_send::<Engine>();
};

/// Name of an engine session within a hub. Session names are single
/// whitespace-free tokens (enforced by [`SessionId::new`]).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(String);

impl SessionId {
    /// Validate and wrap a session name.
    pub fn new(name: impl Into<String>) -> Result<SessionId, ApiError> {
        let name = name.into();
        if name.is_empty() || name.contains(char::is_whitespace) {
            return Err(ApiError::invalid(format!(
                "session names are non-empty single tokens, got {name:?}"
            )));
        }
        Ok(SessionId(name))
    }

    /// The session name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// One executed script line in a transcript.
#[derive(Debug, Clone, PartialEq)]
pub struct TranscriptEntry {
    /// 1-based line number in the script source.
    pub line_no: usize,
    /// Session the request ran against.
    pub session: SessionId,
    /// The executed request.
    pub request: Request,
    /// Its response.
    pub response: Response,
}

impl TranscriptEntry {
    /// Canonical transcript block for this entry:
    /// `<session>:<line>> <canonical request>` followed by the formatted
    /// response, newline-terminated. The single source of the transcript
    /// shape — both [`ScriptOutcome::transcript`] and streaming front ends
    /// (`fvtool script`) emit exactly this.
    pub fn render(&self) -> String {
        format!(
            "{}:{}> {}\n{}\n",
            self.session,
            self.line_no,
            crate::codec::format_request(&self.request),
            format_response(&self.response)
        )
    }
}

/// Result of replaying a script through a hub.
#[derive(Debug, Clone, PartialEq)]
pub struct ScriptOutcome {
    /// Executed lines, in order.
    pub entries: Vec<TranscriptEntry>,
}

impl ScriptOutcome {
    /// Deterministic text transcript: the concatenated
    /// [`TranscriptEntry::render`] blocks of every executed request.
    pub fn transcript(&self) -> String {
        self.entries.iter().map(TranscriptEntry::render).collect()
    }
}

/// Many named engine sessions; the default session is `"main"`.
///
/// Every session the hub creates loads datasets through one shared
/// [`DatasetCache`], so N sessions loading the same file cost one parse.
/// A sharded transport goes one step further and hands the *same* cache
/// to every hub (see [`EngineHub::with_cache`]).
pub struct EngineHub {
    scene: (usize, usize),
    cache: DatasetCache,
    sessions: BTreeMap<SessionId, Engine>,
}

impl Default for EngineHub {
    fn default() -> Self {
        EngineHub::new()
    }
}

impl EngineHub {
    /// Hub whose engines use the default scene size.
    pub fn new() -> Self {
        EngineHub::with_scene(
            crate::engine::DEFAULT_SCENE.0,
            crate::engine::DEFAULT_SCENE.1,
        )
    }

    /// Hub whose engines resolve damage against `scene_w × scene_h`.
    pub fn with_scene(scene_w: usize, scene_h: usize) -> Self {
        EngineHub::with_cache(scene_w, scene_h, DatasetCache::new())
    }

    /// Hub whose sessions load through a caller-provided [`DatasetCache`]
    /// — the hook a sharded transport uses to share one cache across
    /// every shard's hub.
    pub fn with_cache(scene_w: usize, scene_h: usize, cache: DatasetCache) -> Self {
        EngineHub {
            scene: (scene_w, scene_h),
            cache,
            sessions: BTreeMap::new(),
        }
    }

    /// The dataset cache this hub's sessions share.
    pub fn cache(&self) -> &DatasetCache {
        &self.cache
    }

    /// Snapshot of the shared cache's gauges (entries / hits / misses /
    /// evictions).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The default session id.
    pub fn default_session() -> SessionId {
        SessionId("main".to_string())
    }

    /// Session ids, sorted by name.
    pub fn session_ids(&self) -> Vec<SessionId> {
        self.sessions.keys().cloned().collect()
    }

    /// Number of live sessions.
    pub fn n_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Every live session with its loaded-dataset count, sorted by name —
    /// the per-hub half of a cross-shard `list-sessions` (a sharded
    /// transport fans this out over its workers and merges the replies).
    pub fn list_sessions(&self) -> Vec<(SessionId, usize)> {
        self.sessions
            .iter()
            .map(|(id, engine)| (id.clone(), engine.session().n_datasets()))
            .collect()
    }

    /// Per-session placement-cost estimates, sorted by name — the signals
    /// an automatic rebalancer consumes: cumulative attempted-request
    /// counts (recent load is the caller's delta between snapshots) and
    /// approximate dataset bytes via the shared-cache handles.
    pub fn session_costs(&self) -> Vec<(SessionId, crate::engine::EngineCost)> {
        self.sessions
            .iter()
            .map(|(id, engine)| (id.clone(), engine.cost()))
            .collect()
    }

    /// The engine behind `id`, created empty on first use.
    pub fn engine(&mut self, id: &SessionId) -> &mut Engine {
        let scene = self.scene;
        let cache = self.cache.clone();
        self.sessions
            .entry(id.clone())
            .or_insert_with(|| Engine::with_scene_and_cache(scene.0, scene.1, cache))
    }

    /// Read-only engine access; `None` until the session exists.
    pub fn get(&self, id: &SessionId) -> Option<&Engine> {
        self.sessions.get(id)
    }

    /// Drop a session and everything it owns. Returns whether it existed.
    pub fn close(&mut self, id: &SessionId) -> bool {
        self.sessions.remove(id).is_some()
    }

    /// Remove the session and hand its engine out intact — the extract
    /// half of cross-shard session migration. The engine keeps its loaded
    /// dataset handles (`Arc`s), so migrating never re-reads or re-parses
    /// a file.
    pub fn take_session(&mut self, id: &SessionId) -> Option<Engine> {
        self.sessions.remove(id)
    }

    /// Install a previously extracted engine under `id` — the other half
    /// of migration. Returns `false` (and drops the incoming engine) if a
    /// session with that name already lives here; routing guarantees
    /// callers never hit that in practice.
    pub fn install_session(&mut self, id: &SessionId, engine: Engine) -> bool {
        match self.sessions.entry(id.clone()) {
            std::collections::btree_map::Entry::Occupied(_) => false,
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(engine);
                true
            }
        }
    }

    /// Execute one request against a named session.
    pub fn execute_on(&mut self, id: &SessionId, request: &Request) -> Result<Response, ApiError> {
        self.engine(id).execute(request)
    }

    /// Execute a batch against a named session (one layout/damage pass).
    pub fn execute_batch_on(
        &mut self,
        id: &SessionId,
        requests: &[Request],
    ) -> Result<BatchOutcome, ApiError> {
        self.engine(id).execute_batch(requests)
    }

    /// Execute a request run against a named session — the entry point
    /// both script replay and network transports use for contiguous
    /// same-session request runs. Responses (damage rects included) are
    /// identical to sequential [`EngineHub::execute_on`] calls, but
    /// layout passes are shared across the run
    /// (see [`Engine::execute_run`]).
    ///
    /// Session lifecycle: a session this call implicitly creates is
    /// **rolled back** if the run's very first request fails — an error
    /// must not leave a partially-created session behind. Once any
    /// request has succeeded the session stays, whatever happens later
    /// (mutations are never rolled back). A session materialized
    /// beforehand (by `use`, [`EngineHub::engine`], or an earlier run) is
    /// never removed.
    pub fn execute_run_on(&mut self, id: &SessionId, requests: &[Request]) -> RunOutcome {
        let created = !self.sessions.contains_key(id);
        let outcome = self.engine(id).execute_run(requests);
        if created && outcome.responses.is_empty() && outcome.error.is_some() {
            self.sessions.remove(id);
        }
        outcome
    }

    /// Replay a wire-format script. `use <name>` lines switch (and create)
    /// sessions, `close <name>` lines drop them; requests run against the
    /// current session, starting at `"main"`. Stops at the first error,
    /// reporting its script line.
    pub fn run_script(&mut self, text: &str) -> Result<ScriptOutcome, ApiError> {
        let mut entries = Vec::new();
        self.run_script_streaming(text, |e| entries.push(e.clone()))?;
        Ok(ScriptOutcome { entries })
    }

    /// Like [`EngineHub::run_script`], but hands each executed entry to
    /// `sink` as soon as its response exists — so a front end can emit the
    /// transcript incrementally, and the already-executed prefix survives
    /// a mid-script error (mutations are not rolled back; the transcript
    /// should not pretend they never ran).
    ///
    /// Contiguous same-session request lines execute as one *run* via
    /// [`EngineHub::execute_run_on`] — the exact grouping a network
    /// transport applies — so local replay and remote serving share both
    /// code path and semantics (including the rollback of a session whose
    /// first-ever request fails). `use <name>` materializes its session
    /// immediately and is itself never rolled back.
    pub fn run_script_streaming(
        &mut self,
        text: &str,
        mut sink: impl FnMut(&TranscriptEntry),
    ) -> Result<(), ApiError> {
        let lines = parse_script(text)?;
        let mut current = EngineHub::default_session();
        let mut i = 0;
        while i < lines.len() {
            match &lines[i].item {
                ScriptItem::Use(name) => {
                    current = SessionId::new(name.clone())?;
                    // `use` alone materializes the session
                    self.engine(&current);
                    i += 1;
                }
                ScriptItem::Close(name) => {
                    // Dropping a session is idempotent; a later `use` (or
                    // request routed at it) recreates it empty — never a
                    // stale-session error. The current session pointer is
                    // left alone even when it names the closed session.
                    let id = SessionId::new(name.clone())?;
                    self.close(&id);
                    i += 1;
                }
                ScriptItem::Request(_) => {
                    let start = i;
                    while i < lines.len() && matches!(lines[i].item, ScriptItem::Request(_)) {
                        i += 1;
                    }
                    let requests: Vec<Request> = lines[start..i]
                        .iter()
                        .map(|l| match &l.item {
                            ScriptItem::Request(r) => r.clone(),
                            _ => unreachable!("run holds only requests"),
                        })
                        .collect();
                    let outcome = self.execute_run_on(&current, &requests);
                    for (j, response) in outcome.responses.iter().enumerate() {
                        sink(&TranscriptEntry {
                            line_no: lines[start + j].line_no,
                            session: current.clone(),
                            request: requests[j].clone(),
                            response: response.clone(),
                        });
                    }
                    if let Some((idx, e)) = outcome.error {
                        return Err(ApiError::new(
                            e.code,
                            format!("line {}: {}", lines[start + idx].line_no, e.message),
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{Mutation, Query};

    #[test]
    fn sessions_isolated() {
        let mut hub = EngineHub::with_scene(640, 480);
        let a = SessionId::new("a").unwrap();
        let b = SessionId::new("b").unwrap();
        hub.execute_on(
            &a,
            &Request::Mutate(Mutation::LoadScenario {
                n_genes: 60,
                seed: 1,
            }),
        )
        .unwrap();
        let info_a = hub
            .execute_on(&a, &Request::Query(Query::SessionInfo))
            .unwrap();
        let info_b = hub
            .execute_on(&b, &Request::Query(Query::SessionInfo))
            .unwrap();
        match (info_a, info_b) {
            (Response::SessionInfo(ia), Response::SessionInfo(ib)) => {
                assert_eq!(ia.n_datasets, 3);
                assert_eq!(ib.n_datasets, 0, "session b must be untouched");
            }
            other => panic!("wrong responses: {other:?}"),
        }
        assert_eq!(hub.n_sessions(), 2);
        assert!(hub.close(&b));
        assert!(!hub.close(&b));
    }

    #[test]
    fn list_sessions_reports_names_and_dataset_counts() {
        let mut hub = EngineHub::with_scene(640, 480);
        assert!(hub.list_sessions().is_empty());
        let b = SessionId::new("b").unwrap();
        hub.execute_on(
            &b,
            &Request::Mutate(Mutation::LoadScenario {
                n_genes: 60,
                seed: 1,
            }),
        )
        .unwrap();
        hub.engine(&SessionId::new("a").unwrap()); // materialized, empty
        let listed: Vec<(String, usize)> = hub
            .list_sessions()
            .into_iter()
            .map(|(id, n)| (id.to_string(), n))
            .collect();
        assert_eq!(listed, [("a".to_string(), 0), ("b".to_string(), 3)]);
    }

    #[test]
    fn script_switches_sessions() {
        let mut hub = EngineHub::with_scene(640, 480);
        let script = "\
# two sessions side by side
scenario 60 1
use other
scenario 60 2
search_select stress
use main
session_info
";
        let out = hub.run_script(script).unwrap();
        assert_eq!(out.entries.len(), 4);
        assert_eq!(out.entries[0].session.as_str(), "main");
        assert_eq!(out.entries[1].session.as_str(), "other");
        assert_eq!(out.entries[3].session.as_str(), "main");
        let transcript = out.transcript();
        assert!(transcript.contains("main:2> scenario 60 1"));
        assert!(transcript.contains("other:5> search_select stress"));
    }

    #[test]
    fn script_errors_name_the_line() {
        let mut hub = EngineHub::new();
        let err = hub.run_script("scenario 60 1\nimpute 99 3\n").unwrap_err();
        assert!(err.message.contains("line 2"), "{}", err.message);
        assert_eq!(err.code, crate::error::ErrorCode::NotFound);
    }

    #[test]
    fn replay_is_deterministic() {
        let script = "\
scenario 120 7
set_metric euclidean
set_linkage ward
cluster_all
search_select general stress response
scroll 2
render 320 240
session_info
";
        let mut h1 = EngineHub::with_scene(800, 600);
        let mut h2 = EngineHub::with_scene(800, 600);
        let t1 = h1.run_script(script).unwrap().transcript();
        let t2 = h2.run_script(script).unwrap().transcript();
        assert_eq!(t1, t2);
        assert!(t1.contains("frame 320x240 panes=3"));
    }

    #[test]
    fn bad_session_names_rejected() {
        assert!(SessionId::new("").is_err());
        assert!(SessionId::new("two words").is_err());
        assert!(SessionId::new("ok-name_1").is_ok());
    }

    #[test]
    fn script_transcript_identical_to_per_request_execution() {
        // Run-grouped replay must be byte-identical to naive per-request
        // execution — the property the remote transport's conformance
        // rests on.
        let script = "\
scenario 100 5
cluster_all
search_select stress
scroll 2
cluster_arrays 0
set_contrast 1 2.0
use other
scenario 100 5
order_by_relevance 0.3,0.9,0.1
select_region 2 0.2 0.7
session_info
";
        let mut grouped = EngineHub::with_scene(800, 600);
        let run_transcript = grouped.run_script(script).unwrap().transcript();
        // naive replay: one execute_on per parsed line
        let mut naive = EngineHub::with_scene(800, 600);
        let mut naive_transcript = String::new();
        let mut current = EngineHub::default_session();
        for line in crate::codec::parse_script(script).unwrap() {
            match line.item {
                crate::codec::ScriptItem::Use(name) => {
                    current = SessionId::new(name).unwrap();
                }
                crate::codec::ScriptItem::Close(name) => {
                    naive.close(&SessionId::new(name).unwrap());
                }
                crate::codec::ScriptItem::Request(request) => {
                    let response = naive.execute_on(&current, &request).unwrap();
                    naive_transcript.push_str(
                        &TranscriptEntry {
                            line_no: line.line_no,
                            session: current.clone(),
                            request,
                            response,
                        }
                        .render(),
                    );
                }
            }
        }
        assert_eq!(run_transcript, naive_transcript);
    }

    #[test]
    fn failed_first_request_rolls_back_created_session() {
        // Regression (session-lifecycle semantics): a session implicitly
        // created by a run whose FIRST request fails must not linger.
        let mut hub = EngineHub::new();
        let err = hub.run_script("impute 0 3\n").unwrap_err();
        assert_eq!(err.code, crate::error::ErrorCode::NotFound);
        assert_eq!(hub.n_sessions(), 0, "main must be rolled back");
        // …but once any request succeeded, the session stays, error or not.
        let err = hub.run_script("scenario 60 1\nimpute 99 3\n").unwrap_err();
        assert_eq!(err.code, crate::error::ErrorCode::NotFound);
        assert_eq!(hub.n_sessions(), 1, "main executed a request; it stays");
    }

    #[test]
    fn use_materializes_and_survives_later_errors() {
        // `use` is a materializing directive: the named session exists
        // even if the script then dies on another session — documented
        // semantics, pinned here.
        let mut hub = EngineHub::new();
        let err = hub
            .run_script("use a\nscenario 60 1\nuse b\nuse main\nimpute 0 3\n")
            .unwrap_err();
        assert_eq!(err.code, crate::error::ErrorCode::NotFound);
        let names: Vec<String> = hub.session_ids().iter().map(|s| s.to_string()).collect();
        // `a` ran a request, `b` was materialized by `use`; `main`'s first
        // request failed but `use main` had already materialized it.
        assert_eq!(names, ["a", "b", "main"]);
    }

    #[test]
    fn use_after_close_recreates_the_session_cleanly() {
        // Regression: `use <name>` after `close <name>` in one script must
        // recreate the session empty — no stale-session error, no leftover
        // datasets from the closed incarnation.
        let mut hub = EngineHub::with_scene(640, 480);
        let script = "\
use scratch
scenario 60 1
close scratch
use scratch
session_info
";
        let out = hub.run_script(script).unwrap();
        assert_eq!(out.entries.len(), 2);
        match &out.entries[1].response {
            Response::SessionInfo(info) => {
                assert_eq!(info.n_datasets, 0, "recreated session starts empty");
            }
            other => panic!("wrong response: {other:?}"),
        }
        assert_eq!(hub.n_sessions(), 1);
        // closing a session that never existed is a quiet no-op
        hub.run_script("close never\nsession_info\n").unwrap();
    }

    #[test]
    fn sessions_share_one_parse_through_the_hub_cache() {
        let dir = std::env::temp_dir().join(format!("fv-hub-cache-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shared.pcl");
        std::fs::write(
            &path,
            "ID\tNAME\tGWEIGHT\tc0\tc1\nG1\tG1\t1\t1.0\t2.0\nG2\tG2\t1\t3.0\t4.0\n",
        )
        .unwrap();
        let mut hub = EngineHub::with_scene(640, 480);
        let load = Request::Mutate(Mutation::LoadDataset {
            path: path.to_string_lossy().into_owned(),
        });
        for name in ["a", "b", "c"] {
            hub.execute_on(&SessionId::new(name).unwrap(), &load)
                .unwrap();
        }
        let stats = hub.cache_stats();
        assert_eq!(stats.misses, 1, "one parse for three sessions");
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.entries, 1);
        // the three sessions hold the *same* allocation
        let a = SessionId::new("a").unwrap();
        let b = SessionId::new("b").unwrap();
        let ha = hub.get(&a).unwrap().session().dataset_handle(0).clone();
        let hb = hub.get(&b).unwrap().session().dataset_handle(0).clone();
        assert!(std::sync::Arc::ptr_eq(&ha, &hb));
        drop((ha, hb));
        // closing every holder frees the entry — the cache never leaks
        for name in ["a", "b", "c"] {
            hub.close(&SessionId::new(name).unwrap());
        }
        assert_eq!(hub.cache_stats().entries, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn session_costs_track_attempted_requests_and_dataset_bytes() {
        let mut hub = EngineHub::with_scene(640, 480);
        let a = SessionId::new("a").unwrap();
        let b = SessionId::new("b").unwrap();
        hub.execute_on(
            &a,
            &Request::Mutate(Mutation::LoadScenario {
                n_genes: 60,
                seed: 1,
            }),
        )
        .unwrap();
        hub.execute_on(&a, &Request::Query(Query::SessionInfo))
            .unwrap();
        hub.engine(&b); // materialized, never executed anything
        let costs = hub.session_costs();
        assert_eq!(costs.len(), 2);
        assert_eq!(costs[0].0, a);
        assert_eq!(costs[0].1.requests, 2);
        assert!(costs[0].1.dataset_bytes > 0, "scenario datasets have size");
        assert_eq!(costs[1].1, crate::engine::EngineCost::default());
        // A failing request is attempted — it counts, exactly like the
        // shard latency histograms count it.
        let _ = hub.execute_on(&a, &Request::Mutate(Mutation::Impute { dataset: 9, k: 3 }));
        assert_eq!(hub.session_costs()[0].1.requests, 3);
        // The counter travels with the engine across extract/install.
        let engine = hub.take_session(&a).unwrap();
        assert_eq!(engine.cost().requests, 3);
        hub.install_session(&a, engine);
        assert_eq!(hub.session_costs()[0].1.requests, 3);
    }

    #[test]
    fn run_on_fresh_session_rolls_back_only_if_nothing_succeeded() {
        let mut hub = EngineHub::new();
        let id = SessionId::new("fresh").unwrap();
        let outcome = hub.execute_run_on(
            &id,
            &[Request::Mutate(Mutation::Impute { dataset: 0, k: 3 })],
        );
        assert!(outcome.error.is_some());
        assert_eq!(hub.n_sessions(), 0);
        // empty run (the `use` materialization path) keeps the session
        let outcome = hub.execute_run_on(&id, &[]);
        assert!(outcome.error.is_none());
        assert_eq!(hub.n_sessions(), 1);
    }
}
