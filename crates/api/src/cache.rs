//! Content-addressed dataset cache: one parse per file, shared by every
//! session that loads it.
//!
//! The paper's premise is many concurrent analysis views over *one* large
//! genomic dataset. Before this cache, every `load <path>` re-read and
//! re-parsed the file into a private copy — N sessions holding the same
//! PCL cost N× the memory and N× the parse time. [`DatasetCache`] fixes
//! that at the sharing seam: it hands out [`Arc<Dataset>`] handles keyed
//! by the file's **canonicalized path** (so `./a.pcl`, `a.pcl`, and
//! `dir/../a.pcl` are one entry) plus an **mtime/length fingerprint** (so
//! a rewritten file is re-parsed, never served stale).
//!
//! Ownership rules, chosen so sharing is invisible to session semantics:
//!
//! - The cache holds [`Weak`] references. It never keeps a dataset alive:
//!   when the last session drops its handle, the memory is freed and the
//!   entry is pruned on the next access (`no leak`).
//! - Eviction (a fingerprint change) replaces the cache *entry* only.
//!   Sessions holding the old handle keep byte-identical data — eviction
//!   can never invalidate a live session's view.
//! - In-place transforms (normalize, impute) copy-on-write through
//!   `Arc::make_mut` in `fv_expr`, so a session mutating its view never
//!   writes into another session's (or the cache's) copy.
//!
//! The cache is `Clone + Send + Sync` (an `Arc<Mutex<…>>`), so one
//! instance can back every session of an [`crate::EngineHub`] — and, one
//! layer up, every hub of a sharded transport (fv-net gives all shard
//! workers one cache). Concurrent loads of **the same file** serialize
//! on a per-file parse gate — when 64 sessions race to load one PCL,
//! exactly one parse happens and 63 loads are hits (what the hit/miss
//! gauges in server stats assert) — while loads of *different* files
//! parse in parallel: the map lock is only ever held for map lookups,
//! never across a parse.

use crate::engine::{fnv1a, parse_dataset_text};
use crate::error::ApiError;
use fv_expr::Dataset;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, Weak};
use std::time::SystemTime;

/// Identity of a file's contents without reading them: length plus
/// modification time. Cheap to compute on every load; any rewrite that
/// changes either evicts the entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Fingerprint {
    len: u64,
    mtime: Option<SystemTime>,
}

impl Fingerprint {
    fn of(meta: &std::fs::Metadata) -> Fingerprint {
        Fingerprint {
            len: meta.len(),
            mtime: meta.modified().ok(),
        }
    }

    /// Mtime in nanoseconds since the Unix epoch, as
    /// [`crate::image::DatasetStamp`] spells it (`None` for missing or pre-epoch mtimes).
    fn mtime_nanos(&self) -> Option<u64> {
        self.mtime
            .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
            .map(|d| d.as_nanos().min(u64::MAX as u128) as u64)
    }
}

struct Entry {
    fingerprint: Fingerprint,
    /// FNV-1a of the file bytes the parse consumed — the content half
    /// of a [`crate::image::DatasetStamp`], captured here so sessions stamp loads
    /// without re-reading the file.
    hash: u64,
    dataset: Weak<Dataset>,
}

#[derive(Default)]
struct Inner {
    entries: BTreeMap<PathBuf, Entry>,
    /// Per-file parse gates: loads of one file serialize on its gate (so
    /// racing loads cost one parse), loads of different files do not.
    /// Gates are taken *without* holding the map lock.
    parsing: BTreeMap<PathBuf, Arc<Mutex<()>>>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl Inner {
    /// A live entry with a matching fingerprint, counted as a hit.
    fn lookup_hit(&mut self, canonical: &Path, fingerprint: Fingerprint) -> Option<Arc<Dataset>> {
        let entry = self.entries.get(canonical)?;
        if entry.fingerprint != fingerprint {
            return None;
        }
        let ds = entry.dataset.upgrade()?;
        self.hits += 1;
        Some(ds)
    }

    /// Drop entries whose dataset is gone (counting them as evictions)
    /// and parse gates nobody holds or waits on.
    fn prune(&mut self) {
        let before = self.entries.len();
        self.entries.retain(|_, e| e.dataset.strong_count() > 0);
        self.evictions += (before - self.entries.len()) as u64;
        let entries = &self.entries;
        self.parsing
            .retain(|path, gate| Arc::strong_count(gate) > 1 || entries.contains_key(path));
    }
}

/// Counters a cache snapshot reports (the `cache_*` gauges of fv-net's
/// `stats` reply).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Entries whose dataset is still alive (held by at least one
    /// session). Dead entries are pruned before counting.
    pub entries: usize,
    /// Loads served from a live entry with a matching fingerprint.
    pub hits: u64,
    /// Loads that parsed the file (first load, or after eviction).
    pub misses: u64,
    /// Entries replaced because the file changed on disk (live handles
    /// stay valid) or pruned after their last holder dropped them.
    pub evictions: u64,
}

/// Shared, content-addressed map from canonical file path to parsed
/// dataset. See the module docs for the ownership rules.
#[derive(Clone, Default)]
pub struct DatasetCache {
    inner: Arc<Mutex<Inner>>,
}

impl DatasetCache {
    /// Empty cache.
    pub fn new() -> DatasetCache {
        DatasetCache::default()
    }

    /// Load `path`, reusing a live parse when the canonical path and
    /// fingerprint match. Errors name the *offending path as given* (the
    /// canonical path may differ and would send the user hunting).
    pub fn load(&self, path: &str) -> Result<Arc<Dataset>, ApiError> {
        let canonical =
            std::fs::canonicalize(path).map_err(|e| ApiError::io(format!("{path}: {e}")))?;
        let meta =
            std::fs::metadata(&canonical).map_err(|e| ApiError::io(format!("{path}: {e}")))?;
        let fingerprint = Fingerprint::of(&meta);
        // Fast path: a live hit, under the map lock only.
        let gate = {
            let mut inner = self.inner.lock().expect("cache lock poisoned");
            if let Some(ds) = inner.lookup_hit(&canonical, fingerprint) {
                return Ok(ds);
            }
            Arc::clone(inner.parsing.entry(canonical.clone()).or_default())
        };
        // Serialize with other loads of THIS file only (lock order is
        // always gate → map, never map → gate, so no deadlock).
        let _parsing = gate.lock().expect("parse gate poisoned");
        {
            // Re-check: whoever held the gate before us may have parsed.
            let mut inner = self.inner.lock().expect("cache lock poisoned");
            if let Some(ds) = inner.lookup_hit(&canonical, fingerprint) {
                return Ok(ds);
            }
        }
        // Mtime-only drift over a live entry (a copy or `touch`): hash
        // the bytes; identical contents refresh the stored fingerprint
        // instead of re-parsing, so session restores stay cache hits.
        if let Some(ds) = self.refresh_if_identical(&canonical, fingerprint) {
            return Ok(ds);
        }
        {
            let mut inner = self.inner.lock().expect("cache lock poisoned");
            if inner.entries.remove(&canonical).is_some() {
                // Stale: the file changed, or every holder dropped the
                // handle. Either way the entry is replaced below.
                inner.evictions += 1;
            }
        }
        let (ds, hash) = load_dataset_file_named(&canonical, path)?;
        let ds = Arc::new(ds);
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        inner.misses += 1;
        inner.entries.insert(
            canonical,
            Entry {
                fingerprint,
                hash,
                dataset: Arc::downgrade(&ds),
            },
        );
        Ok(ds)
    }

    /// When `canonical`'s entry is live and only the mtime disagrees
    /// with `fingerprint` (same length), hash the file; identical bytes
    /// update the stored fingerprint and count as a hit. Called with the
    /// per-file parse gate held, so the file I/O happens outside the map
    /// lock without racing other loads of this file.
    fn refresh_if_identical(
        &self,
        canonical: &Path,
        fingerprint: Fingerprint,
    ) -> Option<Arc<Dataset>> {
        let (ds, stored_hash) = {
            let inner = self.inner.lock().expect("cache lock poisoned");
            let entry = inner.entries.get(canonical)?;
            if entry.fingerprint.len != fingerprint.len || entry.fingerprint == fingerprint {
                return None;
            }
            (entry.dataset.upgrade()?, entry.hash)
        };
        let bytes = std::fs::read(canonical).ok()?;
        if fnv1a(&bytes) != stored_hash {
            return None;
        }
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        match inner.entries.get_mut(canonical) {
            Some(entry) => entry.fingerprint = fingerprint,
            None => return None,
        }
        inner.hits += 1;
        Some(ds)
    }

    /// The `(len, mtime_nanos, content hash)` stamp of the live cache
    /// entry for `path`, if any — what [`crate::Engine`] records in its
    /// dataset stamps right after a successful load, without re-reading
    /// the file.
    pub fn stamp_of(&self, path: &str) -> Option<(u64, Option<u64>, u64)> {
        let canonical = std::fs::canonicalize(path).ok()?;
        let inner = self.inner.lock().expect("cache lock poisoned");
        let entry = inner.entries.get(&canonical)?;
        entry.dataset.upgrade()?;
        Some((
            entry.fingerprint.len,
            entry.fingerprint.mtime_nanos(),
            entry.hash,
        ))
    }

    /// Drop entries whose dataset is gone; returns how many were pruned.
    /// Pruned entries count as evictions (the slot is reclaimed).
    pub fn prune(&self) -> usize {
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        let before = inner.entries.len();
        inner.prune();
        before - inner.entries.len()
    }

    /// Snapshot of the gauges. Prunes dead entries first, so `entries`
    /// counts only datasets some session still holds.
    pub fn stats(&self) -> CacheStats {
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        inner.prune();
        CacheStats {
            entries: inner.entries.len(),
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
        }
    }
}

/// Parse `canonical` from disk but attribute errors (and the dataset
/// name) to `display_path`, the path the user actually typed. Also
/// returns the FNV-1a hash of the bytes the parse consumed, so the
/// entry's content stamp costs no second read.
fn load_dataset_file_named(
    canonical: &Path,
    display_path: &str,
) -> Result<(Dataset, u64), ApiError> {
    let canonical_str = canonical.to_string_lossy();
    let text = std::fs::read_to_string(canonical)
        .map_err(|e| ApiError::io(format!("{display_path}: {e}")))?;
    let hash = fnv1a(text.as_bytes());
    let ds = parse_dataset_text(&canonical_str, &text).map_err(|e| {
        // Errors from the parse carry the canonical path; rewrite them to
        // the user's spelling so `E_IO`/`E_FORMAT` messages are actionable.
        ApiError::new(
            e.code,
            e.message.replace(canonical_str.as_ref(), display_path),
        )
    })?;
    Ok((ds, hash))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_pcl(dir: &Path, name: &str, rows: &[(&str, &[f32])], n_cols: usize) -> PathBuf {
        let mut text = String::from("ID\tNAME\tGWEIGHT");
        for c in 0..n_cols {
            text.push_str(&format!("\tc{c}"));
        }
        text.push('\n');
        text.push_str("EWEIGHT\t\t");
        for _ in 0..n_cols {
            text.push_str("\t1");
        }
        text.push('\n');
        for (id, vals) in rows {
            text.push_str(&format!("{id}\t{id}\t1"));
            for v in *vals {
                text.push_str(&format!("\t{v}"));
            }
            text.push('\n');
        }
        let path = dir.join(name);
        std::fs::write(&path, text).unwrap();
        path
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "fv-cache-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn same_file_parses_once_across_spellings() {
        let dir = temp_dir("spellings");
        let path = write_pcl(&dir, "a.pcl", &[("G1", &[1.0, 2.0])], 2);
        let cache = DatasetCache::new();
        let direct = cache.load(path.to_str().unwrap()).unwrap();
        // a different spelling of the same file: dir/../dir/a.pcl
        let dotted = format!(
            "{}/../{}/a.pcl",
            dir.display(),
            dir.file_name().unwrap().to_string_lossy()
        );
        let aliased = cache.load(&dotted).unwrap();
        assert!(Arc::ptr_eq(&direct, &aliased), "one parse, one allocation");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn racing_loads_of_one_file_share_one_parse() {
        let dir = temp_dir("race");
        let path = write_pcl(&dir, "r.pcl", &[("G1", &[1.0, 2.0])], 2);
        let cache = DatasetCache::new();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let cache = cache.clone();
                let p = path.to_str().unwrap().to_string();
                std::thread::spawn(move || cache.load(&p).unwrap())
            })
            .collect();
        let loaded: Vec<_> = threads.into_iter().map(|t| t.join().unwrap()).collect();
        for ds in &loaded[1..] {
            assert!(Arc::ptr_eq(&loaded[0], ds), "all racers share one copy");
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "the per-file gate admits one parse");
        assert_eq!(stats.hits, 7);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_error_names_the_given_path() {
        let cache = DatasetCache::new();
        let err = cache.load("no/such/file.pcl").unwrap_err();
        assert_eq!(err.code, crate::error::ErrorCode::Io);
        assert!(
            err.message.contains("no/such/file.pcl"),
            "error must name the offending path: {}",
            err.message
        );
    }

    #[test]
    fn rewrite_evicts_but_live_handles_survive() {
        let dir = temp_dir("rewrite");
        let path = write_pcl(&dir, "d.pcl", &[("G1", &[1.0])], 1);
        let path_str = path.to_str().unwrap().to_string();
        let cache = DatasetCache::new();
        let old = cache.load(&path_str).unwrap();
        assert_eq!(old.matrix.get(0, 0), Some(1.0));
        // rewrite with different contents (length changes ⇒ fingerprint
        // changes even if mtime granularity is coarse)
        write_pcl(&dir, "d.pcl", &[("G1", &[7.5]), ("G2", &[8.5])], 1);
        let new = cache.load(&path_str).unwrap();
        assert!(!Arc::ptr_eq(&old, &new), "changed file must re-parse");
        assert_eq!(new.n_genes(), 2);
        // the evicted handle still sees its original data
        assert_eq!(old.matrix.get(0, 0), Some(1.0));
        let stats = cache.stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn touched_identical_file_refreshes_without_reparse() {
        let dir = temp_dir("touch");
        let path = write_pcl(&dir, "t.pcl", &[("G1", &[1.0, 2.0])], 2);
        let path_str = path.to_str().unwrap().to_string();
        let cache = DatasetCache::new();
        let first = cache.load(&path_str).unwrap();
        // rewrite the same bytes: at worst only the mtime changes
        std::thread::sleep(std::time::Duration::from_millis(20));
        let text = std::fs::read(&path).unwrap();
        std::fs::write(&path, &text).unwrap();
        let again = cache.load(&path_str).unwrap();
        assert!(
            Arc::ptr_eq(&first, &again),
            "identical bytes must not re-parse"
        );
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "one parse across the touch");
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.evictions, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stamp_of_reports_the_live_entry() {
        let dir = temp_dir("stamp");
        let path = write_pcl(&dir, "s.pcl", &[("G1", &[1.0, 2.0])], 2);
        let path_str = path.to_str().unwrap().to_string();
        let cache = DatasetCache::new();
        assert!(cache.stamp_of(&path_str).is_none(), "no entry before load");
        let ds = cache.load(&path_str).unwrap();
        let (len, _mtime, hash) = cache.stamp_of(&path_str).unwrap();
        assert_eq!(len, std::fs::metadata(&path).unwrap().len());
        assert_eq!(hash, fnv1a(&std::fs::read(&path).unwrap()));
        drop(ds);
        assert!(
            cache.stamp_of(&path_str).is_none(),
            "dead entries do not stamp"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dropping_all_handles_frees_the_entry() {
        let dir = temp_dir("drop");
        let path = write_pcl(&dir, "d.pcl", &[("G1", &[1.0])], 1);
        let cache = DatasetCache::new();
        let ds = cache.load(path.to_str().unwrap()).unwrap();
        assert_eq!(cache.stats().entries, 1);
        drop(ds);
        // the Weak entry cannot keep the dataset alive; stats prunes it
        assert_eq!(cache.stats().entries, 0, "no leak after last drop");
        std::fs::remove_dir_all(&dir).ok();
    }
}
