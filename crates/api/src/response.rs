//! Structured results — the other half of the protocol.
//!
//! Every [`crate::Request`] executed successfully produces exactly one
//! `Response` variant; the pairing is part of the protocol contract (see
//! `crates/api/README.md`). Responses carry data, not prose: front ends
//! format them (or use [`crate::codec::format_response`] for the canonical
//! text form).

use fv_wall::tile::Viewport;

/// A scene rectangle invalidated by a mutation, in scene pixels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DamageRect {
    pub x: usize,
    pub y: usize,
    pub w: usize,
    pub h: usize,
}

impl From<Viewport> for DamageRect {
    fn from(v: Viewport) -> Self {
        DamageRect {
            x: v.x,
            y: v.y,
            w: v.w,
            h: v.h,
        }
    }
}

/// One dataset's relevance in a SPELL ranking.
#[derive(Debug, Clone, PartialEq)]
pub struct SpellDatasetRow {
    /// Dataset name.
    pub name: String,
    /// SPELL weight (higher = more informative for the query).
    pub weight: f32,
    /// Query genes measured in the dataset.
    pub query_genes_present: usize,
}

/// One gene in a SPELL ranking.
#[derive(Debug, Clone, PartialEq)]
pub struct SpellGeneRow {
    /// Systematic gene name.
    pub gene: String,
    /// Weighted mean correlation score.
    pub score: f32,
    /// Datasets contributing to the score.
    pub n_datasets: usize,
}

/// Rebuild the engine-native [`fv_spell::SpellResult`] from protocol rows
/// — for view-layer code (e.g. the Figure-4 panel renderer) that consumes
/// the classic struct. `query_found` is derived as the query genes not
/// reported missing.
pub fn spell_result_from_rows(
    datasets: &[SpellDatasetRow],
    genes: &[SpellGeneRow],
    query: &[String],
    query_missing: Vec<String>,
) -> fv_spell::SpellResult {
    fv_spell::SpellResult {
        datasets: datasets
            .iter()
            .enumerate()
            .map(|(i, d)| fv_spell::engine::DatasetRelevance {
                dataset: i,
                name: d.name.clone(),
                weight: d.weight,
                query_genes_present: d.query_genes_present,
            })
            .collect(),
        genes: genes
            .iter()
            .map(|g| fv_spell::rank::RankedGene {
                gene: g.gene.clone(),
                score: g.score,
                n_datasets: g.n_datasets,
                in_query: false,
            })
            .collect(),
        query_found: query
            .iter()
            .filter(|q| !query_missing.iter().any(|m| m.eq_ignore_ascii_case(q)))
            .cloned()
            .collect(),
        query_missing,
    }
}

/// One enriched term.
#[derive(Debug, Clone, PartialEq)]
pub struct EnrichmentRow {
    /// Term accession (e.g. `GO:0000042`).
    pub accession: String,
    /// Human-readable term name.
    pub name: String,
    /// Raw hypergeometric p-value.
    pub p_value: f64,
    /// Benjamini–Hochberg q-value.
    pub q_value: f64,
    /// Query genes annotated to the term.
    pub overlap: usize,
    /// Population genes annotated to the term.
    pub annotated: usize,
}

/// One dataset row in a session listing.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetRow {
    /// Dataset index (stable across reordering).
    pub dataset: usize,
    /// Dataset name.
    pub name: String,
    /// Gene (row) count.
    pub genes: usize,
    /// Condition (column) count.
    pub conditions: usize,
    /// Whether the gene axis has been clustered.
    pub gene_clustered: bool,
    /// Whether the condition axis has been clustered.
    pub array_clustered: bool,
}

/// Session-level summary.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionInfoData {
    /// Loaded dataset count.
    pub n_datasets: usize,
    /// Distinct genes across all datasets.
    pub universe_genes: usize,
    /// Present (non-missing) measurements across all datasets.
    pub total_measurements: usize,
    /// Current selection size, if any.
    pub selection_len: Option<usize>,
    /// Synchronized-viewing flag.
    pub sync_enabled: bool,
    /// Shared zoom scroll offset.
    pub scroll: usize,
    /// Pane order as dataset indices.
    pub dataset_order: Vec<usize>,
    /// Human-readable multi-line summary (the classic
    /// `session_summary` text, kept verbatim for CLI parity).
    pub summary: String,
}

/// The result of a successfully executed request.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A mutation command was applied.
    Applied {
        /// Selection size after the mutation, if a selection exists.
        selection_len: Option<usize>,
        /// Scene rectangles invalidated (empty inside batches, where
        /// damage is reported once at batch level).
        damage: Vec<DamageRect>,
    },
    /// A dataset was loaded.
    Loaded {
        /// Index assigned to the dataset.
        dataset: usize,
        /// Dataset name.
        name: String,
        /// Gene count.
        genes: usize,
        /// Condition count.
        conditions: usize,
    },
    /// A synthetic scenario was loaded.
    ScenarioLoaded {
        /// Names of the loaded datasets, in index order.
        names: Vec<String>,
        /// Genes per dataset.
        n_genes: usize,
    },
    /// An ontology is attached; `enrich` is now available.
    OntologyReady {
        /// Term count in the DAG.
        terms: usize,
    },
    /// Imputation finished.
    Imputed {
        /// Cells filled.
        filled: usize,
        /// Missing cells before imputation.
        missing_before: usize,
    },
    /// Normalization finished.
    Normalized {
        /// Datasets transformed.
        datasets: usize,
    },
    /// Condition clustering finished.
    ArraysClustered {
        /// The dataset whose array tree was built.
        dataset: usize,
    },
    /// Search hits (no selection change).
    SearchHits {
        /// Matching gene names, in universe order.
        genes: Vec<String>,
    },
    /// SPELL ranking.
    SpellRanking {
        /// Datasets by descending relevance.
        datasets: Vec<SpellDatasetRow>,
        /// Top non-query genes by descending score.
        genes: Vec<SpellGeneRow>,
        /// Query genes not found in the compendium.
        query_missing: Vec<String>,
    },
    /// Enrichment table.
    Enrichment {
        /// Terms by ascending p-value.
        rows: Vec<EnrichmentRow>,
    },
    /// A frame was rendered.
    Frame {
        /// Frame width.
        width: usize,
        /// Frame height.
        height: usize,
        /// Pane count in the scene.
        panes: usize,
        /// FNV-1a checksum of the raw RGB bytes — lets scripts assert
        /// pixel-exact determinism without storing images.
        checksum: u64,
        /// Where the PPM was written, if requested.
        path: Option<String>,
    },
    /// CDT bundle export.
    CdtExported {
        /// Source dataset.
        dataset: usize,
        /// Files written (empty when exporting in-memory).
        files: Vec<String>,
        /// CDT text size in bytes.
        cdt_bytes: usize,
        /// Whether a gene-tree file exists.
        has_gtr: bool,
        /// Whether an array-tree file exists.
        has_atr: bool,
    },
    /// PCL export.
    PclExported {
        /// Source dataset.
        dataset: usize,
        /// File written.
        path: String,
        /// Gene count.
        genes: usize,
        /// Condition count.
        conditions: usize,
    },
    /// A textual selection export.
    Text {
        /// The exported text (possibly empty when nothing is selected).
        text: String,
    },
    /// Session summary.
    SessionInfo(SessionInfoData),
    /// Dataset listing.
    Datasets {
        /// One row per dataset, in index order.
        rows: Vec<DatasetRow>,
    },
}
