//! Line-oriented wire codec: replayable request scripts and canonical
//! response text.
//!
//! One request per line, whitespace-separated tokens, `#` comments, blank
//! lines ignored. The full grammar is documented in `crates/api/README.md`.
//! [`format_request`] and [`parse_request`] are exact inverses for every
//! representable request (`parse(format(r)) == r` — property-tested), with
//! the documented lexical limits: free-text fields (search queries, paths)
//! must not contain newlines or leading/trailing whitespace, and list
//! items (gene names, paths in lists) must not contain commas or
//! whitespace. Floats are printed in Rust's shortest round-trip form, so
//! no precision is lost.
//!
//! Scripts may also carry a `use <session>` directive, which the
//! [`crate::hub::EngineHub`] interprets as "switch to (or create) this
//! named session", and a `close <session>` directive, which drops the
//! named session (a later `use` recreates it empty); everything else
//! flows to the current session's engine.

use crate::error::ApiError;
use crate::request::{
    linkage_from_str, linkage_str, metric_from_str, metric_str, Mutation, NormalizeMethod, Query,
    Request, SelectionExport,
};
use crate::response::Response;
use forestview::command::Command;

/// Sentinel for empty lists and absent optionals on the wire.
pub(crate) const NONE: &str = "-";

/// One parsed script line.
#[derive(Debug, Clone, PartialEq)]
pub enum ScriptItem {
    /// `use <name>` — switch the hub to a named session.
    Use(String),
    /// `close <name>` — drop the named session and everything it owns.
    /// A later `use <name>` cleanly recreates it empty; datasets it held
    /// stay shared-cached, so re-loading them costs no parse.
    Close(String),
    /// A request for the current session.
    Request(Request),
}

/// One parsed *wire* line: everything a script line can be, plus the
/// transport-level control requests. Control lines are answered by the
/// server itself (`ping` → `pong`, `shutdown` → `bye` + server stop,
/// `close` → `closed <name>`, `stats` → a server-metrics reply,
/// `list-sessions` → a merged cross-shard session listing, `migrate` →
/// `migrated <name> shard=<s>`) and never reach an engine's request
/// surface; scripts deliberately reject them ([`parse_script`] treats
/// control keywords as unknown requests). `use <name>` and
/// `close <name>` are script items — they work identically in scripts
/// and on the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum WireItem {
    /// A script item (`use`, `close <name>`, or a request).
    Script(ScriptItem),
    /// `ping` — liveness probe.
    Ping,
    /// `shutdown` — stop the server after acknowledging.
    Shutdown,
    /// Bare `close` — drop the connection's current session (and
    /// everything it owns), then fall back to the default session. How a
    /// one-shot remote client avoids leaking its scratch session. The
    /// named form `close <name>` parses as
    /// [`ScriptItem::Close`] instead.
    Close,
    /// `stats` — server metrics snapshot (connections, per-shard queue
    /// depth, run sizes, latency histograms, cache gauges, frame
    /// counters).
    Stats,
    /// `list-sessions` — every live session across all shards, merged and
    /// sorted by name (see [`format_sessions_reply`]).
    ListSessions,
    /// `migrate <session> <shard>` — move a live session to another
    /// shard without re-parsing its datasets. Answered
    /// `migrated <name> shard=<s>`.
    Migrate {
        /// Session to move.
        session: String,
        /// Destination shard index.
        shard: usize,
    },
    /// `balance` (status snapshot of the automatic rebalancer) or
    /// `balance auto` / `balance off` (flip its mode at runtime,
    /// acknowledged `balance mode=<mode>`).
    Balance {
        /// `None` asks for status; `Some(mode)` sets the mode.
        set: Option<BalanceMode>,
    },
    /// `subscribe <session> <tiles_x>x<tiles_y>` — register this
    /// connection as a streaming viewer of a session through a tile grid.
    /// Acknowledged `subscribed <session> <tx>x<ty> <wall_w>x<wall_h>`,
    /// then followed by an out-of-band keyframe burst of binary tile
    /// frames (see fv-wall's stream codec) and damage-limited deltas after
    /// every executed run.
    Subscribe {
        /// Session to view.
        session: String,
        /// Horizontal tile count of the viewer's grid.
        tiles_x: usize,
        /// Vertical tile count of the viewer's grid.
        tiles_y: usize,
    },
    /// Bare `unsubscribe` — stop streaming to this connection.
    /// Acknowledged `unsubscribed` (idempotent).
    Unsubscribe,
    /// `ack <seq>` — subscriber flow control: the highest tile-frame
    /// sequence number fully consumed. Never answered; a subscriber that
    /// acks and then falls far behind is re-synced with a keyframe.
    Ack {
        /// Highest fully consumed sequence number.
        seq: u64,
    },
}

/// Mode of a transport's automatic shard rebalancer, as it appears in the
/// `balance` wire grammar. The policy itself lives transport-side
/// (`fv-net`); the codec only names the two states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BalanceMode {
    /// The server periodically plans and executes session migrations.
    Auto,
    /// Placement is operator-driven (`migrate` lines) only.
    Off,
}

impl BalanceMode {
    /// Canonical wire token (`auto` / `off`).
    pub fn as_str(self) -> &'static str {
        match self {
            BalanceMode::Auto => "auto",
            BalanceMode::Off => "off",
        }
    }

    /// Parse a wire token; inverse of [`BalanceMode::as_str`].
    pub fn from_str_token(token: &str) -> Result<BalanceMode, ApiError> {
        match token {
            "auto" => Ok(BalanceMode::Auto),
            "off" => Ok(BalanceMode::Off),
            other => Err(ApiError::parse(format!(
                "balance mode is auto|off, got {other:?}"
            ))),
        }
    }
}

impl std::fmt::Display for BalanceMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Parse one line as a network transport sees it: `Ok(None)` for blank
/// lines and `#` comments (which produce no response frame), otherwise a
/// [`WireItem`].
pub fn parse_wire_line(raw: &str) -> Result<Option<WireItem>, ApiError> {
    let line = raw.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    if line == "ping" {
        return Ok(Some(WireItem::Ping));
    }
    if line == "shutdown" {
        return Ok(Some(WireItem::Shutdown));
    }
    if line == "close" {
        return Ok(Some(WireItem::Close));
    }
    if line == "stats" {
        return Ok(Some(WireItem::Stats));
    }
    if line == "list-sessions" {
        return Ok(Some(WireItem::ListSessions));
    }
    if let Some(rest) = line.strip_prefix("migrate ") {
        let [session, shard] = fixed_args("migrate", rest.trim())?;
        if session.is_empty() || session.contains(char::is_whitespace) {
            return Err(ApiError::parse("session names are single tokens"));
        }
        return Ok(Some(WireItem::Migrate {
            session: session.to_string(),
            shard: parse_num(shard, "shard")?,
        }));
    }
    if line == "balance" {
        return Ok(Some(WireItem::Balance { set: None }));
    }
    if let Some(rest) = line.strip_prefix("balance ") {
        let [mode] = fixed_args("balance", rest.trim())?;
        return Ok(Some(WireItem::Balance {
            set: Some(BalanceMode::from_str_token(mode)?),
        }));
    }
    if let Some(rest) = line.strip_prefix("subscribe ") {
        let [session, grid] = fixed_args("subscribe", rest.trim())?;
        if session.is_empty() || session.contains(char::is_whitespace) {
            return Err(ApiError::parse("session names are single tokens"));
        }
        let (tiles_x, tiles_y) = parse_grid_token(grid)?;
        return Ok(Some(WireItem::Subscribe {
            session: session.to_string(),
            tiles_x,
            tiles_y,
        }));
    }
    if line == "unsubscribe" {
        return Ok(Some(WireItem::Unsubscribe));
    }
    if let Some(rest) = line.strip_prefix("ack ") {
        let [seq] = fixed_args("ack", rest.trim())?;
        return Ok(Some(WireItem::Ack {
            seq: parse_num(seq, "seq")?,
        }));
    }
    if let Some(name) = parse_session_directive(line, "use ")? {
        return Ok(Some(WireItem::Script(ScriptItem::Use(name))));
    }
    if let Some(name) = parse_session_directive(line, "close ")? {
        return Ok(Some(WireItem::Script(ScriptItem::Close(name))));
    }
    Ok(Some(WireItem::Script(ScriptItem::Request(parse_request(
        line,
    )?))))
}

/// `<tiles_x>x<tiles_y>` → the two non-zero tile counts of a subscriber
/// grid.
fn parse_grid_token(token: &str) -> Result<(usize, usize), ApiError> {
    let Some((tx, ty)) = token.split_once('x') else {
        return Err(ApiError::parse(format!(
            "tile grid is <tiles_x>x<tiles_y>, got {token:?}"
        )));
    };
    let tiles_x: usize = parse_num(tx, "tiles_x")?;
    let tiles_y: usize = parse_num(ty, "tiles_y")?;
    if tiles_x == 0 || tiles_y == 0 {
        return Err(ApiError::parse("tile counts must be non-zero"));
    }
    Ok((tiles_x, tiles_y))
}

/// `<keyword><name>` → `Some(name)` for the session directives (`use `,
/// `close `); anything else → `None`.
fn parse_session_directive(line: &str, keyword: &str) -> Result<Option<String>, ApiError> {
    let Some(rest) = line.strip_prefix(keyword) else {
        return Ok(None);
    };
    let name = rest.trim();
    if name.is_empty() || name.contains(char::is_whitespace) {
        return Err(ApiError::parse("session names are single tokens"));
    }
    Ok(Some(name.to_string()))
}

/// A script line with its 1-based source line number (for error context).
#[derive(Debug, Clone, PartialEq)]
pub struct ScriptLine {
    /// 1-based line number in the source text.
    pub line_no: usize,
    /// The parsed item.
    pub item: ScriptItem,
}

/// Parse a whole script: blank lines and `#` comments are skipped, every
/// other line is a `use` / `close <name>` directive or a request.
pub fn parse_script(text: &str) -> Result<Vec<ScriptLine>, ApiError> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let line_no = i + 1;
        let with_line = |e: ApiError| ApiError::parse(format!("line {line_no}: {}", e.message));
        let item = if let Some(name) = parse_session_directive(line, "use ").map_err(with_line)? {
            ScriptItem::Use(name)
        } else if let Some(name) = parse_session_directive(line, "close ").map_err(with_line)? {
            ScriptItem::Close(name)
        } else {
            ScriptItem::Request(parse_request(line).map_err(with_line)?)
        };
        out.push(ScriptLine { line_no, item });
    }
    Ok(out)
}

/// Parse one request line.
pub fn parse_request(line: &str) -> Result<Request, ApiError> {
    let line = line.trim();
    let (keyword, rest) = match line.split_once(char::is_whitespace) {
        Some((k, r)) => (k, r.trim()),
        None => (line, ""),
    };
    match keyword {
        // ── mutations: interaction commands ─────────────────────────────
        "select_region" => {
            let [d, a, b] = fixed_args(keyword, rest)?;
            Ok(Command::SelectRegion {
                dataset: parse_num(d, "dataset")?,
                start_frac: parse_num(a, "start fraction")?,
                end_frac: parse_num(b, "end fraction")?,
            }
            .into())
        }
        "select_genes" => Ok(Command::SelectGenes(parse_list(rest)?).into()),
        "search_select" => Ok(Command::Search(rest.to_string()).into()),
        "clear_selection" => {
            no_args(keyword, rest)?;
            Ok(Command::ClearSelection.into())
        }
        "toggle_sync" => {
            no_args(keyword, rest)?;
            Ok(Command::ToggleSync.into())
        }
        "scroll" => {
            let [delta] = fixed_args(keyword, rest)?;
            Ok(Command::Scroll(parse_num(delta, "scroll delta")?).into())
        }
        "order_by_name" => {
            no_args(keyword, rest)?;
            Ok(Command::OrderByName.into())
        }
        "order_by_relevance" => {
            let scores = parse_list(rest)?
                .iter()
                .map(|s| parse_num::<f32>(s, "relevance score"))
                .collect::<Result<Vec<f32>, _>>()?;
            Ok(Command::OrderByRelevance(scores).into())
        }
        "cluster_all" => {
            no_args(keyword, rest)?;
            Ok(Command::ClusterAll.into())
        }
        "set_contrast" => {
            let [target, value] = fixed_args(keyword, rest)?;
            Ok(Command::SetContrast {
                dataset: parse_target(target)?,
                contrast: parse_num(value, "contrast")?,
            }
            .into())
        }
        "set_linkage" => {
            let [kw] = fixed_args(keyword, rest)?;
            let linkage = linkage_from_str(kw)
                .ok_or_else(|| ApiError::parse(format!("unknown linkage {kw:?}")))?;
            Ok(Command::SetLinkage(linkage).into())
        }
        "set_metric" => {
            let [kw] = fixed_args(keyword, rest)?;
            let metric = metric_from_str(kw)
                .ok_or_else(|| ApiError::parse(format!("unknown metric {kw:?}")))?;
            Ok(Command::SetMetric(metric).into())
        }

        // ── mutations: data management ──────────────────────────────────
        "load" => {
            if rest.is_empty() {
                return Err(ApiError::parse("load needs a path"));
            }
            Ok(Mutation::LoadDataset {
                path: rest.to_string(),
            }
            .into())
        }
        "scenario" => {
            let [n, seed] = fixed_args(keyword, rest)?;
            Ok(Mutation::LoadScenario {
                n_genes: parse_num(n, "gene count")?,
                seed: parse_num(seed, "seed")?,
            }
            .into())
        }
        "compendium" => {
            let [n, d, seed] = fixed_args(keyword, rest)?;
            Ok(Mutation::LoadCompendium {
                n_genes: parse_num(n, "gene count")?,
                n_datasets: parse_num(d, "dataset count")?,
                seed: parse_num(seed, "seed")?,
            }
            .into())
        }
        "ontology" => {
            let [n, seed] = fixed_args(keyword, rest)?;
            Ok(Mutation::BuildOntology {
                n_filler: parse_num(n, "filler term count")?,
                seed: parse_num(seed, "seed")?,
            }
            .into())
        }
        "impute" => {
            let [d, k] = fixed_args(keyword, rest)?;
            Ok(Mutation::Impute {
                dataset: parse_num(d, "dataset")?,
                k: parse_num(k, "k")?,
            }
            .into())
        }
        "normalize" => {
            let [target, method] = fixed_args(keyword, rest)?;
            let method = NormalizeMethod::from_keyword(method)
                .ok_or_else(|| ApiError::parse(format!("unknown normalize method {method:?}")))?;
            Ok(Mutation::Normalize {
                dataset: parse_target(target)?,
                method,
            }
            .into())
        }
        "cluster_arrays" => {
            let [d] = fixed_args(keyword, rest)?;
            Ok(Mutation::ClusterArrays {
                dataset: parse_num(d, "dataset")?,
            }
            .into())
        }

        // ── queries ─────────────────────────────────────────────────────
        "search" => Ok(Query::Search {
            query: rest.to_string(),
        }
        .into()),
        "spell" => {
            let (top_n, genes) = rest
                .split_once(char::is_whitespace)
                .ok_or_else(|| ApiError::parse("spell needs <top_n> <gene,gene,...>"))?;
            Ok(Query::Spell {
                genes: parse_list(genes.trim())?,
                top_n: parse_num(top_n, "top_n")?,
            }
            .into())
        }
        "enrich" => {
            let (max_terms, genes) = rest
                .split_once(char::is_whitespace)
                .ok_or_else(|| ApiError::parse("enrich needs <max_terms> selection|<genes>"))?;
            let genes = match genes.trim() {
                "selection" => None,
                list => Some(parse_list(list)?),
            };
            Ok(Query::Enrich {
                genes,
                max_terms: parse_num(max_terms, "max_terms")?,
            }
            .into())
        }
        "render" => {
            let mut parts = rest.splitn(3, char::is_whitespace);
            let (w, h) = match (parts.next(), parts.next()) {
                (Some(w), Some(h)) => (w, h),
                _ => return Err(ApiError::parse("render needs <width> <height> [path]")),
            };
            let path = parts
                .next()
                .map(|p| p.trim().to_string())
                .filter(|p| !p.is_empty());
            Ok(Query::Render {
                width: parse_num(w, "width")?,
                height: parse_num(h, "height")?,
                path,
            }
            .into())
        }
        "export_cdt" => {
            let mut parts = rest.splitn(2, char::is_whitespace);
            let d = parts
                .next()
                .filter(|s| !s.is_empty())
                .ok_or_else(|| ApiError::parse("export_cdt needs <dataset> [prefix]"))?;
            let prefix = parts
                .next()
                .map(|p| p.trim().to_string())
                .filter(|p| !p.is_empty());
            Ok(Query::ExportCdt {
                dataset: parse_num(d, "dataset")?,
                prefix,
            }
            .into())
        }
        "export_pcl" => {
            let (d, path) = rest
                .split_once(char::is_whitespace)
                .ok_or_else(|| ApiError::parse("export_pcl needs <dataset> <path>"))?;
            Ok(Query::ExportPcl {
                dataset: parse_num(d, "dataset")?,
                path: path.trim().to_string(),
            }
            .into())
        }
        "export_selection" => {
            let [what] = fixed_args(keyword, rest)?;
            let what = SelectionExport::from_keyword(what)
                .ok_or_else(|| ApiError::parse(format!("unknown selection export {what:?}")))?;
            Ok(Query::ExportSelection { what }.into())
        }
        "session_info" => {
            no_args(keyword, rest)?;
            Ok(Query::SessionInfo.into())
        }
        "list_datasets" => {
            no_args(keyword, rest)?;
            Ok(Query::ListDatasets.into())
        }
        other => Err(ApiError::parse(format!("unknown request {other:?}"))),
    }
}

/// Canonical text form of a request; the exact inverse of
/// [`parse_request`].
pub fn format_request(request: &Request) -> String {
    match request {
        Request::Mutate(Mutation::Command(cmd)) => match cmd {
            Command::SelectRegion {
                dataset,
                start_frac,
                end_frac,
            } => format!("select_region {dataset} {start_frac:?} {end_frac:?}"),
            Command::SelectGenes(genes) => {
                format!("select_genes {}", format_list(genes))
            }
            Command::Search(q) => format_trailing("search_select", q),
            Command::ClearSelection => "clear_selection".into(),
            Command::ToggleSync => "toggle_sync".into(),
            Command::Scroll(delta) => format!("scroll {delta}"),
            Command::OrderByName => "order_by_name".into(),
            Command::OrderByRelevance(scores) => {
                let items: Vec<String> = scores.iter().map(|s| format!("{s:?}")).collect();
                format!("order_by_relevance {}", format_list(&items))
            }
            Command::ClusterAll => "cluster_all".into(),
            Command::SetContrast { dataset, contrast } => {
                format!("set_contrast {} {contrast:?}", format_target(*dataset))
            }
            Command::SetLinkage(l) => format!("set_linkage {}", linkage_str(*l)),
            Command::SetMetric(m) => format!("set_metric {}", metric_str(*m)),
        },
        Request::Mutate(Mutation::LoadDataset { path }) => format!("load {path}"),
        Request::Mutate(Mutation::LoadScenario { n_genes, seed }) => {
            format!("scenario {n_genes} {seed}")
        }
        Request::Mutate(Mutation::LoadCompendium {
            n_genes,
            n_datasets,
            seed,
        }) => format!("compendium {n_genes} {n_datasets} {seed}"),
        Request::Mutate(Mutation::BuildOntology { n_filler, seed }) => {
            format!("ontology {n_filler} {seed}")
        }
        Request::Mutate(Mutation::Impute { dataset, k }) => format!("impute {dataset} {k}"),
        Request::Mutate(Mutation::Normalize { dataset, method }) => {
            format!("normalize {} {}", format_target(*dataset), method.as_str())
        }
        Request::Mutate(Mutation::ClusterArrays { dataset }) => {
            format!("cluster_arrays {dataset}")
        }
        Request::Query(Query::Search { query }) => format_trailing("search", query),
        Request::Query(Query::Spell { genes, top_n }) => {
            format!("spell {top_n} {}", format_list(genes))
        }
        Request::Query(Query::Enrich { genes, max_terms }) => match genes {
            Some(genes) => format!("enrich {max_terms} {}", format_list(genes)),
            None => format!("enrich {max_terms} selection"),
        },
        Request::Query(Query::Render {
            width,
            height,
            path,
        }) => match path {
            Some(p) => format!("render {width} {height} {p}"),
            None => format!("render {width} {height}"),
        },
        Request::Query(Query::ExportCdt { dataset, prefix }) => match prefix {
            Some(p) => format!("export_cdt {dataset} {p}"),
            None => format!("export_cdt {dataset}"),
        },
        Request::Query(Query::ExportPcl { dataset, path }) => {
            format!("export_pcl {dataset} {path}")
        }
        Request::Query(Query::ExportSelection { what }) => {
            format!("export_selection {}", what.as_str())
        }
        Request::Query(Query::SessionInfo) => "session_info".into(),
        Request::Query(Query::ListDatasets) => "list_datasets".into(),
    }
}

/// Canonical, deterministic text form of a response. Multi-line responses
/// indent continuation lines by two spaces so transcripts stay parseable
/// line-by-line. The text is structured enough for
/// [`crate::decode::parse_response`] to recover the typed response —
/// network clients rely on this — with one documented loss: floating-point
/// statistics print with fixed display precision (`{:.3}` / `{:.3e}`), so
/// the decoder recovers the displayed value, not the original bits.
pub fn format_response(response: &Response) -> String {
    match response {
        Response::Applied {
            selection_len,
            damage,
        } => {
            format!(
                "applied selection={} damage={}",
                opt_num(*selection_len),
                format_rects(damage)
            )
        }
        Response::Loaded {
            dataset,
            name,
            genes,
            conditions,
        } => format!("loaded dataset={dataset} name={name} genes={genes} conditions={conditions}"),
        Response::ScenarioLoaded { names, n_genes } => {
            format!("scenario datasets={} genes={n_genes}", format_list(names))
        }
        Response::OntologyReady { terms } => format!("ontology terms={terms}"),
        Response::Imputed {
            filled,
            missing_before,
        } => format!("imputed filled={filled} missing={missing_before}"),
        Response::Normalized { datasets } => format!("normalized datasets={datasets}"),
        Response::ArraysClustered { dataset } => format!("arrays_clustered dataset={dataset}"),
        Response::SearchHits { genes } => {
            format!("search hits={} genes={}", genes.len(), format_list(genes))
        }
        Response::SpellRanking {
            datasets,
            genes,
            query_missing,
        } => {
            let mut out = format!(
                "spell datasets={} genes={} missing={}",
                datasets.len(),
                genes.len(),
                format_list(query_missing)
            );
            for d in datasets {
                out.push_str(&format!(
                    "\n  dataset {} weight={:.3} present={}",
                    d.name, d.weight, d.query_genes_present
                ));
            }
            for g in genes {
                out.push_str(&format!(
                    "\n  gene {} score={:.3} datasets={}",
                    g.gene, g.score, g.n_datasets
                ));
            }
            out
        }
        Response::Enrichment { rows } => {
            let mut out = format!("enrich terms={}", rows.len());
            for r in rows {
                out.push_str(&format!(
                    "\n  term {} p={:.3e} q={:.3e} overlap={}/{} name={}",
                    r.accession, r.p_value, r.q_value, r.overlap, r.annotated, r.name
                ));
            }
            out
        }
        Response::Frame {
            width,
            height,
            panes,
            checksum,
            path,
        } => format!(
            "frame {width}x{height} panes={panes} checksum={checksum:016x} path={}",
            path.as_deref().unwrap_or(NONE)
        ),
        Response::CdtExported {
            dataset,
            files,
            cdt_bytes,
            has_gtr,
            has_atr,
        } => format!(
            "cdt dataset={dataset} bytes={cdt_bytes} gtr={} atr={} files={}",
            yes_no(*has_gtr),
            yes_no(*has_atr),
            format_list(files)
        ),
        Response::PclExported {
            dataset,
            path,
            genes,
            conditions,
        } => format!("pcl dataset={dataset} path={path} genes={genes} conditions={conditions}"),
        Response::Text { text } => {
            let mut out = format!("text bytes={}", text.len());
            for line in text.lines() {
                out.push_str("\n  ");
                out.push_str(line);
            }
            out
        }
        Response::SessionInfo(info) => {
            let mut out = format!(
                "session datasets={} universe={} measurements={} selection={} sync={} scroll={} order={} summary_bytes={}",
                info.n_datasets,
                info.universe_genes,
                info.total_measurements,
                opt_num(info.selection_len),
                if info.sync_enabled { "on" } else { "off" },
                info.scroll,
                format_list(
                    &info
                        .dataset_order
                        .iter()
                        .map(|d| d.to_string())
                        .collect::<Vec<_>>()
                ),
                info.summary.len()
            );
            for line in info.summary.lines() {
                out.push_str("\n  ");
                out.push_str(line);
            }
            out
        }
        Response::Datasets { rows } => {
            let mut out = format!("datasets n={}", rows.len());
            for r in rows {
                out.push_str(&format!(
                    "\n  dataset {} name={} genes={} conditions={} clustered={}",
                    r.dataset,
                    r.name,
                    r.genes,
                    r.conditions,
                    match (r.gene_clustered, r.array_clustered) {
                        (true, true) => "gene+array",
                        (true, false) => "gene",
                        (false, true) => "array",
                        (false, false) => "none",
                    }
                ));
            }
            out
        }
    }
}

/// One session in a cross-shard `list-sessions` reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionEntry {
    /// Session name (a single whitespace-free token, per
    /// [`crate::SessionId`]).
    pub name: String,
    /// Shard the session lives on.
    pub shard: usize,
    /// Datasets loaded into the session.
    pub n_datasets: usize,
}

/// Canonical reply text for a `list-sessions` control line. Entries are
/// emitted in the order given — servers merge shard listings and sort by
/// name before formatting. The inverse is
/// [`crate::decode::parse_sessions_reply`].
pub fn format_sessions_reply(entries: &[SessionEntry]) -> String {
    let mut out = format!("sessions n={}", entries.len());
    for e in entries {
        out.push_str(&format!(
            "\n  session {} shard={} datasets={}",
            e.name, e.shard, e.n_datasets
        ));
    }
    out
}

// ── token helpers ───────────────────────────────────────────────────────

fn no_args(keyword: &str, rest: &str) -> Result<(), ApiError> {
    if rest.is_empty() {
        Ok(())
    } else {
        Err(ApiError::parse(format!("{keyword} takes no arguments")))
    }
}

fn fixed_args<'a, const N: usize>(keyword: &str, rest: &'a str) -> Result<[&'a str; N], ApiError> {
    let parts: Vec<&str> = rest.split_whitespace().collect();
    if parts.len() != N {
        return Err(ApiError::parse(format!(
            "{keyword} needs {N} argument(s), got {}",
            parts.len()
        )));
    }
    parts
        .try_into()
        .map_err(|_| ApiError::parse("argument count mismatch"))
}

fn parse_num<T: std::str::FromStr>(token: &str, what: &str) -> Result<T, ApiError> {
    token
        .parse()
        .map_err(|_| ApiError::parse(format!("bad {what}: {token:?}")))
}

/// `all` → None, `<index>` → Some(index).
fn parse_target(token: &str) -> Result<Option<usize>, ApiError> {
    if token == "all" {
        Ok(None)
    } else {
        parse_num(token, "dataset").map(Some)
    }
}

fn format_target(target: Option<usize>) -> String {
    match target {
        Some(d) => d.to_string(),
        None => "all".into(),
    }
}

/// Comma-separated list; `-` is the empty list.
pub(crate) fn parse_list(token: &str) -> Result<Vec<String>, ApiError> {
    if token.is_empty() {
        return Err(ApiError::parse("expected a comma-separated list (or `-`)"));
    }
    if token == NONE {
        return Ok(Vec::new());
    }
    token
        .split(',')
        .map(|s| {
            let s = s.trim();
            if s.is_empty() {
                Err(ApiError::parse("empty list item"))
            } else {
                Ok(s.to_string())
            }
        })
        .collect()
}

fn format_list<S: AsRef<str>>(items: &[S]) -> String {
    if items.is_empty() {
        NONE.to_string()
    } else {
        items
            .iter()
            .map(|s| s.as_ref())
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// Keyword plus free trailing text (empty text → bare keyword).
fn format_trailing(keyword: &str, text: &str) -> String {
    if text.is_empty() {
        keyword.to_string()
    } else {
        format!("{keyword} {text}")
    }
}

/// Damage rectangles as `x:y:w:h` items; `-` for no damage. Keeping the
/// full rectangles on the wire (rather than a count/area digest) is what
/// lets a remote client recover the exact [`Response::Applied`].
fn format_rects(rects: &[crate::response::DamageRect]) -> String {
    if rects.is_empty() {
        return NONE.to_string();
    }
    rects
        .iter()
        .map(|r| format!("{}:{}:{}:{}", r.x, r.y, r.w, r.h))
        .collect::<Vec<_>>()
        .join(",")
}

fn opt_num(v: Option<usize>) -> String {
    match v {
        Some(n) => n.to_string(),
        None => NONE.into(),
    }
}

fn yes_no(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "no"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::response::DamageRect;

    fn roundtrip(line: &str) -> String {
        format_request(&parse_request(line).unwrap())
    }

    #[test]
    fn canonical_lines_roundtrip() {
        for line in [
            "select_region 0 0.25 0.5",
            "select_genes YAL001C,YBR002W",
            "select_genes -",
            "search_select heat shock",
            "clear_selection",
            "toggle_sync",
            "scroll -3",
            "order_by_name",
            "order_by_relevance 0.5,1.0,0.25",
            "cluster_all",
            "set_contrast all 2.0",
            "set_contrast 1 3.5",
            "set_linkage ward",
            "set_metric euclidean",
            "load data/gasch_stress.pcl",
            "scenario 800 2007",
            "compendium 2000 30 42",
            "ontology 120 7",
            "impute 0 10",
            "normalize all zscore",
            "normalize 2 log2",
            "cluster_arrays 0",
            "search ribosome biogenesis",
            "spell 20 YAL001C,YBR002W",
            "enrich 10 selection",
            "enrich 5 YAL001C,YCL009C",
            "render 1600 1200 out/frame.ppm",
            "render 320 240",
            "export_cdt 0 out/clustered",
            "export_cdt 1",
            "export_pcl 0 out/data.pcl",
            "export_selection gene_list",
            "export_selection coverage",
            "session_info",
            "list_datasets",
        ] {
            assert_eq!(roundtrip(line), line, "canonical form must be stable");
        }
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let script = "# a comment\n\n  cluster_all\n   # indented comment\nscroll 2\n";
        let lines = parse_script(script).unwrap();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].line_no, 3);
        assert_eq!(lines[1].line_no, 5);
    }

    #[test]
    fn use_directive_parses() {
        let lines = parse_script("use alpha\ncluster_all\n").unwrap();
        assert_eq!(lines[0].item, ScriptItem::Use("alpha".into()));
        assert!(matches!(lines[1].item, ScriptItem::Request(_)));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = parse_script("cluster_all\nwat 7\n").unwrap_err();
        assert!(err.message.contains("line 2"), "{}", err.message);
        assert_eq!(err.code, crate::error::ErrorCode::Parse);
    }

    #[test]
    fn bad_arity_rejected() {
        assert!(parse_request("select_region 0 0.5").is_err());
        assert!(parse_request("cluster_all extra").is_err());
        assert!(parse_request("set_linkage diagonal").is_err());
        assert!(parse_request("normalize all sqrt").is_err());
        assert!(parse_request("scroll abc").is_err());
    }

    #[test]
    fn float_precision_survives() {
        let r = parse_request("select_region 0 0.1 0.30000001").unwrap();
        match &r {
            Request::Mutate(Mutation::Command(Command::SelectRegion {
                start_frac,
                end_frac,
                ..
            })) => {
                assert_eq!(*start_frac, 0.1f32);
                assert_eq!(*end_frac, 0.3_f32);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        assert_eq!(parse_request(&format_request(&r)).unwrap(), r);
    }

    #[test]
    fn response_formats_are_stable() {
        let applied = Response::Applied {
            selection_len: Some(4),
            damage: vec![
                DamageRect {
                    x: 0,
                    y: 0,
                    w: 10,
                    h: 5,
                },
                DamageRect {
                    x: 10,
                    y: 0,
                    w: 2,
                    h: 3,
                },
            ],
        };
        assert_eq!(
            format_response(&applied),
            "applied selection=4 damage=0:0:10:5,10:0:2:3"
        );
        let empty = Response::Applied {
            selection_len: None,
            damage: vec![],
        };
        assert_eq!(format_response(&empty), "applied selection=- damage=-");
        let text = Response::Text {
            text: "G1\nG2\n".into(),
        };
        assert_eq!(format_response(&text), "text bytes=6\n  G1\n  G2");
    }

    #[test]
    fn wire_lines_parse_controls_scripts_reject_them() {
        assert_eq!(parse_wire_line("ping").unwrap(), Some(WireItem::Ping));
        assert_eq!(
            parse_wire_line(" shutdown ").unwrap(),
            Some(WireItem::Shutdown)
        );
        assert_eq!(parse_wire_line("# comment").unwrap(), None);
        assert_eq!(parse_wire_line("   ").unwrap(), None);
        match parse_wire_line("use alpha").unwrap() {
            Some(WireItem::Script(ScriptItem::Use(name))) => assert_eq!(name, "alpha"),
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(matches!(
            parse_wire_line("cluster_all").unwrap(),
            Some(WireItem::Script(ScriptItem::Request(_)))
        ));
        assert_eq!(parse_wire_line("close").unwrap(), Some(WireItem::Close));
        assert_eq!(parse_wire_line("stats").unwrap(), Some(WireItem::Stats));
        assert_eq!(
            parse_wire_line("list-sessions").unwrap(),
            Some(WireItem::ListSessions)
        );
        assert_eq!(
            parse_wire_line("migrate alpha 2").unwrap(),
            Some(WireItem::Migrate {
                session: "alpha".into(),
                shard: 2,
            })
        );
        assert!(parse_wire_line("migrate alpha").is_err());
        assert!(parse_wire_line("migrate alpha x").is_err());
        assert_eq!(
            parse_wire_line("balance").unwrap(),
            Some(WireItem::Balance { set: None })
        );
        assert_eq!(
            parse_wire_line("balance auto").unwrap(),
            Some(WireItem::Balance {
                set: Some(BalanceMode::Auto)
            })
        );
        assert_eq!(
            parse_wire_line(" balance off ").unwrap(),
            Some(WireItem::Balance {
                set: Some(BalanceMode::Off)
            })
        );
        assert!(parse_wire_line("balance sideways").is_err());
        assert!(parse_wire_line("balance auto now").is_err());
        assert!(
            parse_script("balance\n").is_err(),
            "balance is transport-only"
        );
        // named close is a script item on the wire too
        match parse_wire_line("close alpha").unwrap() {
            Some(WireItem::Script(ScriptItem::Close(name))) => assert_eq!(name, "alpha"),
            other => panic!("wrong parse: {other:?}"),
        }
        assert_eq!(
            parse_wire_line("subscribe alpha 4x2").unwrap(),
            Some(WireItem::Subscribe {
                session: "alpha".into(),
                tiles_x: 4,
                tiles_y: 2,
            })
        );
        assert!(parse_wire_line("subscribe alpha").is_err());
        assert!(parse_wire_line("subscribe alpha 4x2 extra").is_err());
        assert!(parse_wire_line("subscribe alpha 4by2").is_err());
        assert!(parse_wire_line("subscribe alpha 0x2").is_err());
        assert!(parse_wire_line("subscribe alpha 4x0").is_err());
        assert_eq!(
            parse_wire_line(" unsubscribe ").unwrap(),
            Some(WireItem::Unsubscribe)
        );
        assert_eq!(
            parse_wire_line("ack 17").unwrap(),
            Some(WireItem::Ack { seq: 17 })
        );
        assert!(parse_wire_line("ack").is_err());
        assert!(parse_wire_line("ack nope").is_err());
        assert!(parse_wire_line("ack 1 2").is_err());
        assert!(parse_wire_line("wat 7").is_err());
        // control keywords are transport-only: scripts reject them
        assert!(parse_script("ping\n").is_err());
        assert!(parse_script("shutdown\n").is_err());
        assert!(parse_script("close\n").is_err(), "bare close is wire-only");
        assert!(parse_script("stats\n").is_err());
        assert!(parse_script("list-sessions\n").is_err());
        assert!(parse_script("migrate a 0\n").is_err());
        assert!(parse_script("subscribe a 2x2\n").is_err());
        assert!(parse_script("unsubscribe\n").is_err());
        assert!(parse_script("ack 3\n").is_err());
    }

    #[test]
    fn close_directive_parses_in_scripts() {
        let lines = parse_script("use alpha\nclose alpha\nuse alpha\n").unwrap();
        assert_eq!(lines[1].item, ScriptItem::Close("alpha".into()));
        assert!(parse_script("close two words\n").is_err());
    }

    #[test]
    fn sessions_reply_format_is_stable() {
        assert_eq!(format_sessions_reply(&[]), "sessions n=0");
        let entries = [
            SessionEntry {
                name: "alpha".into(),
                shard: 1,
                n_datasets: 3,
            },
            SessionEntry {
                name: "beta".into(),
                shard: 0,
                n_datasets: 0,
            },
        ];
        assert_eq!(
            format_sessions_reply(&entries),
            "sessions n=2\n  session alpha shard=1 datasets=3\n  session beta shard=0 datasets=0"
        );
    }
}
