//! Agglomerative clustering via the nearest-neighbor-chain algorithm.
//!
//! NN-chain repeatedly extends a chain of nearest neighbors until it finds a
//! reciprocal pair, merges it, and continues — O(n²) time with one condensed
//! distance matrix of memory. It is exact for *reducible* linkages
//! (single, complete, average, Ward under Lance–Williams updates), which is
//! why those four are offered. Merges are emitted in height order (the
//! scipy relabeling convention) so [`crate::tree::ClusterTree::cut_k`] can
//! cut by simply dropping the top merges.

use crate::distance::{condensed_distances, CondensedMatrix, Metric};
use crate::tree::{ClusterTree, Merge, NodeRef};
use fv_expr::matrix::ExprMatrix;

/// Linkage criterion (all reducible; see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Linkage {
    /// Minimum inter-cluster distance.
    Single,
    /// Maximum inter-cluster distance.
    Complete,
    /// Unweighted average (UPGMA) — the microarray default.
    #[default]
    Average,
    /// Ward's minimum-variance criterion.
    Ward,
}

impl Linkage {
    /// Lance–Williams update: distance from cluster `k` (size `nk`) to the
    /// merge of `a` (size `na`) and `b` (size `nb`).
    fn update(&self, dka: f32, dkb: f32, dab: f32, na: f32, nb: f32, nk: f32) -> f32 {
        match self {
            Linkage::Single => 0.5 * dka + 0.5 * dkb - 0.5 * (dka - dkb).abs(),
            Linkage::Complete => 0.5 * dka + 0.5 * dkb + 0.5 * (dka - dkb).abs(),
            Linkage::Average => (na * dka + nb * dkb) / (na + nb),
            Linkage::Ward => {
                let total = na + nb + nk;
                ((na + nk) * dka + (nb + nk) * dkb - nk * dab) / total
            }
        }
    }
}

/// Cluster the rows of `m`: compute the condensed distance matrix under
/// `metric` (rayon-parallel), then run NN-chain under `linkage`.
pub fn cluster(m: &ExprMatrix, metric: Metric, linkage: Linkage) -> ClusterTree {
    let d = condensed_distances(m, metric);
    cluster_condensed(d, linkage)
}

/// Run NN-chain over a precomputed condensed distance matrix (consumed —
/// it is updated in place as clusters merge).
pub fn cluster_condensed(mut d: CondensedMatrix, linkage: Linkage) -> ClusterTree {
    let n = d.n();
    if n <= 1 {
        return ClusterTree::new(n, Vec::new()).expect("trivial tree");
    }

    let mut active: Vec<bool> = vec![true; n];
    let mut size: Vec<f32> = vec![1.0; n];
    // Any leaf inside each active cluster, used for post-sort relabeling.
    let rep_leaf: Vec<u32> = (0..n as u32).collect();

    // Raw merges in NN-chain emission order: (leaf in A, leaf in B, height, size).
    let mut raw: Vec<(u32, u32, f32, u32)> = Vec::with_capacity(n - 1);
    let mut chain: Vec<usize> = Vec::with_capacity(n);

    for _ in 0..n - 1 {
        if chain.is_empty() {
            let start = (0..n)
                .find(|&i| active[i])
                .expect("an active cluster exists");
            chain.push(start);
        }
        // Extend the chain until a reciprocal nearest-neighbor pair appears.
        loop {
            let tip = *chain.last().unwrap();
            let prev = if chain.len() >= 2 {
                Some(chain[chain.len() - 2])
            } else {
                None
            };
            // Nearest active neighbor of tip, preferring `prev` on ties —
            // the tie rule that guarantees chain termination.
            let mut best: Option<(usize, f32)> = None;
            for j in 0..n {
                if j == tip || !active[j] {
                    continue;
                }
                let dj = d.get(tip, j);
                let better = match best {
                    None => true,
                    Some((bj, bd)) => dj < bd || (dj == bd && Some(j) == prev && Some(bj) != prev),
                };
                if better {
                    best = Some((j, dj));
                }
            }
            let (nn, dist) = best.expect("at least two active clusters");
            if Some(nn) == prev {
                // Reciprocal pair (tip, nn): merge.
                chain.pop();
                chain.pop();
                let (a, b) = (tip, nn);
                let (na, nb) = (size[a], size[b]);
                raw.push((rep_leaf[a], rep_leaf[b], dist, (na + nb) as u32));
                // Fold b into a.
                let dab = dist;
                for k in 0..n {
                    if k == a || k == b || !active[k] {
                        continue;
                    }
                    let dka = d.get(k, a);
                    let dkb = d.get(k, b);
                    d.set(k, a, linkage.update(dka, dkb, dab, na, nb, size[k]));
                }
                active[b] = false;
                size[a] = na + nb;
                // rep_leaf[a] keeps representing the merged cluster.
                break;
            }
            chain.push(nn);
        }
    }

    // Sort merges by height (stable: equal heights keep emission order) and
    // relabel via union-find over representative leaves.
    let mut order: Vec<usize> = (0..raw.len()).collect();
    order.sort_by(|&x, &y| {
        raw[x]
            .2
            .partial_cmp(&raw[y].2)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(x.cmp(&y))
    });

    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    // Each union-find root maps to its current NodeRef.
    let mut node_of_root: Vec<NodeRef> = (0..n as u32).map(NodeRef::Leaf).collect();
    let mut merges: Vec<Merge> = Vec::with_capacity(raw.len());
    for (mi, &oi) in order.iter().enumerate() {
        let (la, lb, h, sz) = raw[oi];
        let ra = find(&mut parent, la as usize);
        let rb = find(&mut parent, lb as usize);
        debug_assert_ne!(ra, rb, "merge joins two distinct clusters");
        merges.push(Merge {
            left: node_of_root[ra],
            right: node_of_root[rb],
            height: h,
            size: sz,
        });
        parent[rb] = ra;
        node_of_root[ra] = NodeRef::Internal(mi as u32);
    }

    ClusterTree::new(n, merges).expect("NN-chain produces a valid tree")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 1-D points embedded as single-column-free rows: use a matrix whose
    /// pairwise Euclidean distances equal |xi - xj|.
    fn points(xs: &[f32]) -> ExprMatrix {
        // Three identical columns: satisfies Metric::MIN_OVERLAP while
        // keeping pairwise Euclidean distance equal to |xi - xj|.
        let mut vals = Vec::with_capacity(xs.len() * 3);
        for &x in xs {
            vals.extend_from_slice(&[x, x, x]);
        }
        ExprMatrix::from_rows(xs.len(), 3, &vals).unwrap()
    }

    #[test]
    fn three_points_single_linkage() {
        // points 0, 1, 10: first merge (0,1) at d=1, then with 10 at d=9.
        let m = points(&[0.0, 1.0, 10.0]);
        let t = cluster(&m, Metric::Euclidean, Linkage::Single);
        assert_eq!(t.merges().len(), 2);
        assert!((t.merges()[0].height - 1.0).abs() < 1e-6);
        assert!((t.merges()[1].height - 9.0).abs() < 1e-6);
        assert_eq!(t.cut_k(2), vec![0, 0, 1]);
    }

    #[test]
    fn complete_vs_single_heights() {
        let m = points(&[0.0, 1.0, 3.0]);
        let s = cluster(&m, Metric::Euclidean, Linkage::Single);
        let c = cluster(&m, Metric::Euclidean, Linkage::Complete);
        // single: root at d(1,3)=2; complete: root at d(0,3)=3
        assert!((s.merges()[1].height - 2.0).abs() < 1e-6);
        assert!((c.merges()[1].height - 3.0).abs() < 1e-6);
    }

    #[test]
    fn average_linkage_height() {
        let m = points(&[0.0, 1.0, 4.0]);
        let t = cluster(&m, Metric::Euclidean, Linkage::Average);
        // root joins {0,1} with {4}: average of d=4 and d=3 → 3.5
        assert!((t.merges()[1].height - 3.5).abs() < 1e-6);
    }

    #[test]
    fn heights_monotone_nondecreasing() {
        let xs: Vec<f32> = (0..32).map(|i| ((i * 79 % 131) as f32) * 0.37).collect();
        let m = points(&xs);
        for link in [
            Linkage::Single,
            Linkage::Complete,
            Linkage::Average,
            Linkage::Ward,
        ] {
            let t = cluster(&m, Metric::Euclidean, link);
            let mut last = f32::NEG_INFINITY;
            for mg in t.merges() {
                assert!(
                    mg.height >= last - 1e-5,
                    "{link:?} heights decreased: {} after {last}",
                    mg.height
                );
                last = mg.height;
            }
        }
    }

    #[test]
    fn merge_sizes_sum_to_n() {
        let m = points(&[5.0, 1.0, 9.0, 2.0, 7.0, 3.0]);
        let t = cluster(&m, Metric::Euclidean, Linkage::Average);
        assert_eq!(t.merges().last().unwrap().size, 6);
        // each merge size equals leaves under it
        for (i, mg) in t.merges().iter().enumerate() {
            let leaves = t.node_leaves(NodeRef::Internal(i as u32));
            assert_eq!(leaves.len() as u32, mg.size);
        }
    }

    #[test]
    fn two_well_separated_groups_recovered() {
        let m = points(&[0.0, 0.1, 0.2, 10.0, 10.1, 10.2]);
        for link in [
            Linkage::Single,
            Linkage::Complete,
            Linkage::Average,
            Linkage::Ward,
        ] {
            let t = cluster(&m, Metric::Euclidean, link);
            let labels = t.cut_k(2);
            assert_eq!(labels[0], labels[1]);
            assert_eq!(labels[1], labels[2]);
            assert_eq!(labels[3], labels[4]);
            assert_eq!(labels[4], labels[5]);
            assert_ne!(labels[0], labels[3], "{link:?} failed to separate groups");
        }
    }

    #[test]
    fn pearson_metric_clusters_correlated_rows() {
        // rows 0,1 perfectly correlated; row 2 anti-correlated.
        let m = ExprMatrix::from_rows(
            3,
            4,
            &[1.0, 2.0, 3.0, 4.0, 2.0, 4.0, 6.0, 8.0, 4.0, 3.0, 2.0, 1.0],
        )
        .unwrap();
        let t = cluster(&m, Metric::Pearson, Linkage::Average);
        assert_eq!(t.cut_k(2), vec![0, 0, 1]);
    }

    #[test]
    fn tiny_inputs() {
        let t0 = cluster(
            &ExprMatrix::zeros(0, 3),
            Metric::Euclidean,
            Linkage::Average,
        );
        assert_eq!(t0.n_leaves(), 0);
        let t1 = cluster(
            &ExprMatrix::zeros(1, 3),
            Metric::Euclidean,
            Linkage::Average,
        );
        assert_eq!(t1.n_leaves(), 1);
        let t2 = cluster(&points(&[0.0, 2.0]), Metric::Euclidean, Linkage::Average);
        assert_eq!(t2.merges().len(), 1);
        assert!((t2.merges()[0].height - 2.0).abs() < 1e-6);
    }

    #[test]
    fn ties_are_deterministic() {
        // Equidistant points: repeated runs must give identical trees.
        let m = points(&[0.0, 1.0, 2.0, 3.0]);
        let t1 = cluster(&m, Metric::Euclidean, Linkage::Single);
        let t2 = cluster(&m, Metric::Euclidean, Linkage::Single);
        assert_eq!(t1, t2);
    }

    #[test]
    fn matches_bruteforce_average_linkage_small() {
        // Brute-force UPGMA reference on 7 random points.
        let xs: Vec<f32> = vec![0.3, 2.9, 1.1, 7.7, 6.5, 0.9, 4.2];
        let m = points(&xs);
        let t = cluster(&m, Metric::Euclidean, Linkage::Average);

        // reference: naive O(n^3) agglomeration tracking member lists
        let n = xs.len();
        let mut clusters: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
        let dist = |a: &[usize], b: &[usize]| -> f32 {
            let mut s = 0.0;
            for &i in a {
                for &j in b {
                    s += (xs[i] - xs[j]).abs();
                }
            }
            s / (a.len() * b.len()) as f32
        };
        let mut ref_heights = Vec::new();
        while clusters.len() > 1 {
            let mut best = (0, 1, f32::INFINITY);
            for i in 0..clusters.len() - 1 {
                for j in (i + 1)..clusters.len() {
                    let d = dist(&clusters[i], &clusters[j]);
                    if d < best.2 {
                        best = (i, j, d);
                    }
                }
            }
            ref_heights.push(best.2);
            let merged = [clusters[best.0].clone(), clusters[best.1].clone()].concat();
            clusters.remove(best.1);
            clusters.remove(best.0);
            clusters.push(merged);
        }
        ref_heights.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut got: Vec<f32> = t.merges().iter().map(|m| m.height).collect();
        got.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (g, r) in got.iter().zip(&ref_heights) {
            assert!((g - r).abs() < 1e-4, "height mismatch {g} vs {r}");
        }
    }
}
