//! Row distance metrics and the condensed pairwise distance matrix.
//!
//! Metrics follow Cluster 3.0 conventions: correlation-based metrics become
//! distances as `1 − r` (range `[0, 2]`); pairs of rows with insufficient
//! pairwise-present overlap fall back to the metric's *neutral* distance
//! (`1.0` for correlation metrics — "uncorrelated" — and the matrix-wide
//! mean for Euclidean), so sparse rows neither attract nor repel.

use fv_expr::matrix::ExprMatrix;
use fv_expr::stats;
use rayon::prelude::*;

/// Row dissimilarity metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Metric {
    /// `1 − pearson(a, b)`, the microarray default.
    #[default]
    Pearson,
    /// `1 − |pearson(a, b)|`: co-regulation regardless of sign.
    AbsPearson,
    /// `1 − uncentered_pearson(a, b)` (cosine distance).
    Uncentered,
    /// `1 − spearman(a, b)` (rank correlation distance).
    Spearman,
    /// Normalized Euclidean distance (per shared column).
    Euclidean,
}

impl Metric {
    /// Minimum pairwise-present columns required before falling back.
    pub const MIN_OVERLAP: usize = 3;

    /// Neutral fallback distance when two rows share too few columns.
    pub fn neutral(&self) -> f32 {
        match self {
            Metric::Pearson | Metric::AbsPearson | Metric::Uncentered | Metric::Spearman => 1.0,
            Metric::Euclidean => 1.0,
        }
    }

    /// Distance between two rows of `m`.
    pub fn distance(&self, m: &ExprMatrix, a: usize, b: usize) -> f32 {
        let d = match self {
            Metric::Pearson => stats::pearson_rows(m, a, m, b, Self::MIN_OVERLAP).map(|r| 1.0 - r),
            Metric::AbsPearson => {
                stats::pearson_rows(m, a, m, b, Self::MIN_OVERLAP).map(|r| 1.0 - r.abs())
            }
            Metric::Uncentered => {
                stats::uncentered_pearson_rows(m, a, m, b, Self::MIN_OVERLAP).map(|r| 1.0 - r)
            }
            Metric::Spearman => {
                stats::spearman_rows(m, a, m, b, Self::MIN_OVERLAP).map(|r| 1.0 - r)
            }
            Metric::Euclidean => stats::euclidean_rows(m, a, m, b, Self::MIN_OVERLAP),
        };
        d.map(|x| x as f32).unwrap_or_else(|| self.neutral())
    }
}

/// Upper-triangle condensed distance matrix over `n` observations.
///
/// Entry `(i, j)` for `i < j` lives at `offset(i) + (j − i − 1)`; storage is
/// `n(n−1)/2` `f32`s — half the naive square matrix, which is what makes
/// whole-dataset gene clustering feasible at paper scale.
#[derive(Debug, Clone)]
pub struct CondensedMatrix {
    n: usize,
    data: Vec<f32>,
}

impl CondensedMatrix {
    /// Condensed matrix of `n` observations, all distances zero.
    pub fn zeros(n: usize) -> Self {
        CondensedMatrix {
            n,
            data: vec![0.0; n * (n - 1) / 2],
        }
    }

    /// Build from a row-parallel generator: `f(i, j)` for `i < j`.
    pub fn from_fn_par<F>(n: usize, f: F) -> Self
    where
        F: Fn(usize, usize) -> f32 + Sync,
    {
        if n < 2 {
            return CondensedMatrix {
                n,
                data: Vec::new(),
            };
        }
        // Each row i owns the contiguous segment for pairs (i, i+1..n).
        let rows: Vec<Vec<f32>> = (0..n - 1)
            .into_par_iter()
            .map(|i| ((i + 1)..n).map(|j| f(i, j)).collect())
            .collect();
        let mut data = Vec::with_capacity(n * (n - 1) / 2);
        for r in rows {
            data.extend_from_slice(&r);
        }
        CondensedMatrix { n, data }
    }

    /// Number of observations.
    pub fn n(&self) -> usize {
        self.n
    }

    #[inline]
    fn index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < j && j < self.n, "bad condensed index ({i},{j})");
        // offset(i) = i*n - i(i+1)/2 - i  … derived from summing row lengths
        i * self.n - i * (i + 1) / 2 + (j - i - 1)
    }

    /// Distance between observations `a` and `b` (order-free); 0 for `a==b`.
    #[inline]
    pub fn get(&self, a: usize, b: usize) -> f32 {
        if a == b {
            return 0.0;
        }
        let (i, j) = if a < b { (a, b) } else { (b, a) };
        self.data[self.index(i, j)]
    }

    /// Set the distance between `a` and `b` (order-free; `a != b`).
    #[inline]
    pub fn set(&mut self, a: usize, b: usize, v: f32) {
        assert_ne!(a, b, "diagonal is fixed at zero");
        let (i, j) = if a < b { (a, b) } else { (b, a) };
        let idx = self.index(i, j);
        self.data[idx] = v;
    }

    /// The closest pair `(i, j, d)` with `i < j`; `None` when `n < 2`.
    pub fn min_pair(&self) -> Option<(usize, usize, f32)> {
        if self.n < 2 {
            return None;
        }
        let mut best = (0usize, 1usize, f32::INFINITY);
        for i in 0..self.n - 1 {
            for j in (i + 1)..self.n {
                let d = self.get(i, j);
                if d < best.2 {
                    best = (i, j, d);
                }
            }
        }
        Some(best)
    }
}

/// Compute the condensed distance matrix of all row pairs of `m` under
/// `metric`, parallelized across rows with rayon.
pub fn condensed_distances(m: &ExprMatrix, metric: Metric) -> CondensedMatrix {
    CondensedMatrix::from_fn_par(m.n_rows(), |i, j| metric.distance(m, i, j))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: usize, cols: usize, v: &[f32]) -> ExprMatrix {
        ExprMatrix::from_rows(rows, cols, v).unwrap()
    }

    #[test]
    fn pearson_distance_range() {
        // identical → 0, anti-correlated → 2
        let m = mat(
            3,
            4,
            &[
                1.0, 2.0, 3.0, 4.0, //
                2.0, 4.0, 6.0, 8.0, //
                4.0, 3.0, 2.0, 1.0,
            ],
        );
        assert!(Metric::Pearson.distance(&m, 0, 1).abs() < 1e-6);
        assert!((Metric::Pearson.distance(&m, 0, 2) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn abs_pearson_folds_sign() {
        let m = mat(2, 4, &[1.0, 2.0, 3.0, 4.0, 4.0, 3.0, 2.0, 1.0]);
        assert!(Metric::AbsPearson.distance(&m, 0, 1).abs() < 1e-6);
    }

    #[test]
    fn euclidean_distance_value() {
        let m = mat(2, 4, &[0.0, 0.0, 0.0, 0.0, 2.0, 2.0, 2.0, 2.0]);
        assert!((Metric::Euclidean.distance(&m, 0, 1) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn insufficient_overlap_neutral() {
        let mut m = mat(2, 4, &[1.0, 2.0, 3.0, 4.0, 1.0, 2.0, 3.0, 4.0]);
        // leave only 2 shared columns < MIN_OVERLAP
        m.set_missing(0, 0);
        m.set_missing(1, 1);
        assert_eq!(Metric::Pearson.distance(&m, 0, 1), 1.0);
    }

    #[test]
    fn constant_row_neutral() {
        let m = mat(2, 4, &[5.0, 5.0, 5.0, 5.0, 1.0, 2.0, 3.0, 4.0]);
        // zero variance → correlation undefined → neutral
        assert_eq!(Metric::Pearson.distance(&m, 0, 1), 1.0);
    }

    #[test]
    fn spearman_distance_monotone_zero() {
        let m = mat(2, 5, &[1.0, 2.0, 3.0, 4.0, 5.0, 1.0, 4.0, 9.0, 16.0, 25.0]);
        assert!(Metric::Spearman.distance(&m, 0, 1).abs() < 1e-6);
    }

    #[test]
    fn condensed_indexing() {
        let mut c = CondensedMatrix::zeros(4);
        let mut v = 1.0;
        for i in 0..3 {
            for j in (i + 1)..4 {
                c.set(i, j, v);
                v += 1.0;
            }
        }
        assert_eq!(c.get(0, 1), 1.0);
        assert_eq!(c.get(0, 3), 3.0);
        assert_eq!(c.get(1, 2), 4.0);
        assert_eq!(c.get(2, 3), 6.0);
        assert_eq!(c.get(3, 2), 6.0); // symmetric access
        assert_eq!(c.get(2, 2), 0.0); // diagonal
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn condensed_set_diagonal_panics() {
        let mut c = CondensedMatrix::zeros(3);
        c.set(1, 1, 5.0);
    }

    #[test]
    fn condensed_from_fn_matches_direct() {
        let c = CondensedMatrix::from_fn_par(5, |i, j| (i * 10 + j) as f32);
        for i in 0..4 {
            for j in (i + 1)..5 {
                assert_eq!(c.get(i, j), (i * 10 + j) as f32);
            }
        }
    }

    #[test]
    fn condensed_tiny_n() {
        let c0 = CondensedMatrix::from_fn_par(0, |_, _| 1.0);
        assert_eq!(c0.n(), 0);
        assert_eq!(c0.min_pair(), None);
        let c1 = CondensedMatrix::from_fn_par(1, |_, _| 1.0);
        assert_eq!(c1.min_pair(), None);
    }

    #[test]
    fn min_pair_finds_closest() {
        let mut c = CondensedMatrix::zeros(3);
        c.set(0, 1, 5.0);
        c.set(0, 2, 2.0);
        c.set(1, 2, 9.0);
        assert_eq!(c.min_pair(), Some((0, 2, 2.0)));
    }

    #[test]
    fn parallel_distances_match_serial() {
        let n = 40;
        let cols = 11;
        let vals: Vec<f32> = (0..n * cols)
            .map(|i| ((i * 37 % 101) as f32 - 50.0) * 0.13)
            .collect();
        let m = mat(n, cols, &vals);
        let par = condensed_distances(&m, Metric::Pearson);
        for i in 0..n - 1 {
            for j in (i + 1)..n {
                let serial = Metric::Pearson.distance(&m, i, j);
                assert!(
                    (par.get(i, j) - serial).abs() < 1e-6,
                    "mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn distance_symmetry() {
        let m = mat(
            3,
            5,
            &[
                0.1, 0.9, -0.3, 2.0, 1.1, //
                -1.0, 0.2, 0.4, 0.4, -2.2, //
                3.0, -0.5, 0.0, 1.0, 0.7,
            ],
        );
        for metric in [
            Metric::Pearson,
            Metric::AbsPearson,
            Metric::Uncentered,
            Metric::Spearman,
            Metric::Euclidean,
        ] {
            for i in 0..3 {
                for j in 0..3 {
                    assert!(
                        (metric.distance(&m, i, j) - metric.distance(&m, j, i)).abs() < 1e-9,
                        "{metric:?} not symmetric"
                    );
                }
            }
        }
    }
}
