//! Leaf-ordering improvement.
//!
//! A dendrogram fixes the *grouping* of leaves but each internal node may
//! present its children in either order — 2^(n−1) equivalent orderings.
//! TreeView-style displays look much better when adjacent rows are similar,
//! so we greedily flip children to reduce the summed distance between
//! neighbouring leaves (a cheap approximation of Bar-Joseph optimal leaf
//! ordering that preserves the tree).

use crate::distance::CondensedMatrix;
use crate::tree::ClusterTree;

/// Summed distance between adjacent leaves of `order` under `d`.
pub fn adjacent_cost(order: &[usize], d: &CondensedMatrix) -> f64 {
    order.windows(2).map(|w| d.get(w[0], w[1]) as f64).sum()
}

/// Greedy flip passes: for each internal node (bottom-up), flip its children
/// if that reduces the adjacent-leaf cost of the full ordering. Repeats up
/// to `passes` times or until no flip helps. Returns the improved leaf order
/// and the flip mask that produces it.
pub fn improve_order(
    tree: &ClusterTree,
    d: &CondensedMatrix,
    passes: usize,
) -> (Vec<usize>, Vec<bool>) {
    let n_merges = tree.merges().len();
    let mut flip = vec![false; n_merges];
    if n_merges == 0 {
        return (tree.leaf_order(), flip);
    }
    let mut best_order = tree.leaf_order_flipped(&flip);
    let mut best_cost = adjacent_cost(&best_order, d);

    for _ in 0..passes.max(1) {
        let mut improved = false;
        for m in 0..n_merges {
            flip[m] = !flip[m];
            let cand = tree.leaf_order_flipped(&flip);
            let cost = adjacent_cost(&cand, d);
            if cost + 1e-12 < best_cost {
                best_cost = cost;
                best_order = cand;
                improved = true;
            } else {
                flip[m] = !flip[m]; // revert
            }
        }
        if !improved {
            break;
        }
    }
    (best_order, flip)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::Metric;
    use crate::linkage::{cluster, Linkage};
    use fv_expr::matrix::ExprMatrix;

    fn points(xs: &[f32]) -> ExprMatrix {
        let mut vals = Vec::with_capacity(xs.len() * 3);
        for &x in xs {
            vals.extend_from_slice(&[x, x, x]);
        }
        ExprMatrix::from_rows(xs.len(), 3, &vals).unwrap()
    }

    fn dmat(xs: &[f32]) -> CondensedMatrix {
        let m = points(xs);
        crate::distance::condensed_distances(&m, Metric::Euclidean)
    }

    #[test]
    fn adjacent_cost_computes() {
        let d = dmat(&[0.0, 1.0, 3.0]);
        // order 0,1,2 → |0-1| + |1-3| = 1 + 2
        assert!((adjacent_cost(&[0, 1, 2], &d) - 3.0).abs() < 1e-6);
        // order 1,0,2 → 1 + 3
        assert!((adjacent_cost(&[1, 0, 2], &d) - 4.0).abs() < 1e-6);
    }

    #[test]
    fn improve_never_worsens() {
        let xs: Vec<f32> = vec![3.0, 0.5, 2.2, 9.0, 0.1, 5.5, 4.4, 8.8];
        let d = dmat(&xs);
        let t = cluster(&points(&xs), Metric::Euclidean, Linkage::Average);
        let before = adjacent_cost(&t.leaf_order(), &d);
        let (order, _) = improve_order(&t, &d, 5);
        let after = adjacent_cost(&order, &d);
        assert!(
            after <= before + 1e-9,
            "cost increased: {before} -> {after}"
        );
    }

    #[test]
    fn improved_order_is_permutation() {
        let xs: Vec<f32> = (0..16).map(|i| ((i * 53 % 97) as f32) * 0.11).collect();
        let d = dmat(&xs);
        let t = cluster(&points(&xs), Metric::Euclidean, Linkage::Complete);
        let (order, flip) = improve_order(&t, &d, 3);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>());
        assert_eq!(flip.len(), t.merges().len());
        // flip mask reproduces the order
        assert_eq!(t.leaf_order_flipped(&flip), order);
    }

    #[test]
    fn trivial_trees() {
        let t = ClusterTree::new(1, vec![]).unwrap();
        let d = CondensedMatrix::from_fn_par(1, |_, _| 0.0);
        let (order, flip) = improve_order(&t, &d, 3);
        assert_eq!(order, vec![0]);
        assert!(flip.is_empty());
    }

    #[test]
    fn flip_actually_helps_constructed_case() {
        // Points laid out so the default DFS order is suboptimal: tree
        // merges (0,1) then (2,3) then root; placing 1 next to 2 matters.
        let xs = vec![0.0, 5.0, 5.1, 10.0];
        let d = dmat(&xs);
        let t = cluster(&points(&xs), Metric::Euclidean, Linkage::Single);
        let (order, _) = improve_order(&t, &d, 4);
        let cost = adjacent_cost(&order, &d);
        // optimal chains the points monotonically: cost = 10.0
        assert!(cost <= 10.0 + 1e-5, "cost {cost} not near optimal");
    }
}
