//! The agglomerative merge tree (dendrogram).

use std::fmt;

/// Reference to a tree node: an original observation or a prior merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeRef {
    /// Original observation (gene or array row) index.
    Leaf(u32),
    /// Index into the merge list.
    Internal(u32),
}

/// One agglomerative merge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Merge {
    /// First merged subtree.
    pub left: NodeRef,
    /// Second merged subtree.
    pub right: NodeRef,
    /// Merge height (linkage distance).
    pub height: f32,
    /// Number of leaves under this node.
    pub size: u32,
}

/// Errors from tree construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// Merge count must be `n_leaves − 1` (or 0 for n ≤ 1).
    WrongMergeCount {
        /// Leaves in the tree.
        n_leaves: usize,
        /// Merges supplied.
        n_merges: usize,
    },
    /// A merge referenced a leaf index out of range.
    BadLeaf(u32),
    /// A merge referenced a merge at or after itself.
    ForwardReference(u32),
    /// A node was used as a child more than once.
    Reused(String),
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::WrongMergeCount { n_leaves, n_merges } => write!(
                f,
                "{n_leaves} leaves require {} merges, got {n_merges}",
                n_leaves.saturating_sub(1)
            ),
            TreeError::BadLeaf(i) => write!(f, "leaf index {i} out of range"),
            TreeError::ForwardReference(i) => write!(f, "merge references later merge {i}"),
            TreeError::Reused(n) => write!(f, "node {n} used as child twice"),
        }
    }
}

impl std::error::Error for TreeError {}

/// A validated dendrogram over `n_leaves` observations.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterTree {
    n_leaves: usize,
    merges: Vec<Merge>,
}

impl ClusterTree {
    /// Validate and construct. Requirements: exactly `n_leaves − 1` merges;
    /// every leaf/merge referenced at most once and merges only reference
    /// earlier merges (so the list is a valid bottom-up construction).
    pub fn new(n_leaves: usize, merges: Vec<Merge>) -> Result<Self, TreeError> {
        let expected = n_leaves.saturating_sub(1);
        if merges.len() != expected {
            return Err(TreeError::WrongMergeCount {
                n_leaves,
                n_merges: merges.len(),
            });
        }
        let mut leaf_used = vec![false; n_leaves];
        let mut merge_used = vec![false; merges.len()];
        for (mi, m) in merges.iter().enumerate() {
            for child in [m.left, m.right] {
                match child {
                    NodeRef::Leaf(i) => {
                        if i as usize >= n_leaves {
                            return Err(TreeError::BadLeaf(i));
                        }
                        if leaf_used[i as usize] {
                            return Err(TreeError::Reused(format!("leaf {i}")));
                        }
                        leaf_used[i as usize] = true;
                    }
                    NodeRef::Internal(i) => {
                        if i as usize >= mi {
                            return Err(TreeError::ForwardReference(i));
                        }
                        if merge_used[i as usize] {
                            return Err(TreeError::Reused(format!("merge {i}")));
                        }
                        merge_used[i as usize] = true;
                    }
                }
            }
        }
        Ok(ClusterTree { n_leaves, merges })
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.n_leaves
    }

    /// The merge list, bottom-up.
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// The root node (last merge), or the single leaf for n = 1.
    pub fn root(&self) -> Option<NodeRef> {
        if self.merges.is_empty() {
            if self.n_leaves == 1 {
                Some(NodeRef::Leaf(0))
            } else {
                None
            }
        } else {
            Some(NodeRef::Internal(self.merges.len() as u32 - 1))
        }
    }

    /// Leaves under `node`, left-to-right.
    pub fn node_leaves(&self, node: NodeRef) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_leaves(node, &mut out, None);
        out
    }

    fn collect_leaves(&self, node: NodeRef, out: &mut Vec<usize>, flip: Option<&[bool]>) {
        match node {
            NodeRef::Leaf(i) => out.push(i as usize),
            NodeRef::Internal(i) => {
                let m = &self.merges[i as usize];
                let flipped = flip.map(|f| f[i as usize]).unwrap_or(false);
                let (first, second) = if flipped {
                    (m.right, m.left)
                } else {
                    (m.left, m.right)
                };
                self.collect_leaves(first, out, flip);
                self.collect_leaves(second, out, flip);
            }
        }
    }

    /// Depth-first leaf order (left children first).
    pub fn leaf_order(&self) -> Vec<usize> {
        match self.root() {
            Some(r) => self.node_leaves(r),
            None => Vec::new(),
        }
    }

    /// Leaf order under a per-merge child-flip mask (see [`crate::order`]).
    pub fn leaf_order_flipped(&self, flip: &[bool]) -> Vec<usize> {
        assert_eq!(flip.len(), self.merges.len(), "flip mask length mismatch");
        match self.root() {
            Some(r) => {
                let mut out = Vec::with_capacity(self.n_leaves);
                self.collect_leaves(r, &mut out, Some(flip));
                out
            }
            None => Vec::new(),
        }
    }

    /// Assign each leaf to one of `k` flat clusters by cutting the `k − 1`
    /// highest merges. Returns cluster labels `0..k` in order of first
    /// appearance. `k` is clamped to `[1, n_leaves]`.
    pub fn cut_k(&self, k: usize) -> Vec<usize> {
        let k = k.clamp(1, self.n_leaves.max(1));
        // Union the first n-1-(k-1) merges (lowest, since the linkage
        // algorithm emits merges sorted by height).
        let keep = self.merges.len().saturating_sub(k - 1);
        self.cut_merges(keep)
    }

    /// Assign flat clusters by cutting all merges with height > `h`.
    pub fn cut_height(&self, h: f32) -> Vec<usize> {
        let keep = self.merges.iter().take_while(|m| m.height <= h).count();
        // merges are sorted by height; anything after `keep` is above the cut
        self.cut_merges(keep)
    }

    fn cut_merges(&self, keep: usize) -> Vec<usize> {
        let mut uf = UnionFind::new(self.n_leaves);
        // Map each merge to a representative leaf so later merges can union
        // through internal references.
        let mut rep: Vec<usize> = Vec::with_capacity(self.merges.len());
        for (mi, m) in self.merges.iter().enumerate() {
            let la = self.first_leaf(m.left, &rep);
            let lb = self.first_leaf(m.right, &rep);
            if mi < keep {
                uf.union(la, lb);
            }
            rep.push(la);
        }
        // Relabel roots densely in order of first appearance.
        let mut label = vec![usize::MAX; self.n_leaves];
        let mut next = 0usize;
        let mut out = Vec::with_capacity(self.n_leaves);
        for i in 0..self.n_leaves {
            let r = uf.find(i);
            if label[r] == usize::MAX {
                label[r] = next;
                next += 1;
            }
            out.push(label[r]);
        }
        out
    }

    fn first_leaf(&self, node: NodeRef, rep: &[usize]) -> usize {
        match node {
            NodeRef::Leaf(i) => i as usize,
            NodeRef::Internal(i) => rep[i as usize],
        }
    }

    /// Maximum merge height (0 for trivial trees).
    pub fn max_height(&self) -> f32 {
        self.merges.iter().map(|m| m.height).fold(0.0, f32::max)
    }
}

/// Minimal union-find with path halving.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[rb] = ra;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(i: u32) -> NodeRef {
        NodeRef::Leaf(i)
    }

    fn node(i: u32) -> NodeRef {
        NodeRef::Internal(i)
    }

    /// ((0,1) at 1.0, (2,3) at 2.0, those two at 3.0)
    fn four_leaf() -> ClusterTree {
        ClusterTree::new(
            4,
            vec![
                Merge {
                    left: leaf(0),
                    right: leaf(1),
                    height: 1.0,
                    size: 2,
                },
                Merge {
                    left: leaf(2),
                    right: leaf(3),
                    height: 2.0,
                    size: 2,
                },
                Merge {
                    left: node(0),
                    right: node(1),
                    height: 3.0,
                    size: 4,
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn new_validates_merge_count() {
        let err = ClusterTree::new(3, vec![]).unwrap_err();
        assert!(matches!(err, TreeError::WrongMergeCount { .. }));
    }

    #[test]
    fn new_rejects_bad_leaf() {
        let err = ClusterTree::new(
            2,
            vec![Merge {
                left: leaf(0),
                right: leaf(5),
                height: 1.0,
                size: 2,
            }],
        )
        .unwrap_err();
        assert_eq!(err, TreeError::BadLeaf(5));
    }

    #[test]
    fn new_rejects_forward_reference() {
        let err = ClusterTree::new(
            3,
            vec![
                Merge {
                    left: leaf(0),
                    right: node(1),
                    height: 1.0,
                    size: 2,
                },
                Merge {
                    left: leaf(1),
                    right: leaf(2),
                    height: 2.0,
                    size: 2,
                },
            ],
        )
        .unwrap_err();
        assert_eq!(err, TreeError::ForwardReference(1));
    }

    #[test]
    fn new_rejects_reuse() {
        let err = ClusterTree::new(
            3,
            vec![
                Merge {
                    left: leaf(0),
                    right: leaf(0),
                    height: 1.0,
                    size: 2,
                },
                Merge {
                    left: node(0),
                    right: leaf(1),
                    height: 2.0,
                    size: 3,
                },
            ],
        )
        .unwrap_err();
        assert!(matches!(err, TreeError::Reused(_)));
    }

    #[test]
    fn leaf_order_dfs() {
        assert_eq!(four_leaf().leaf_order(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn leaf_order_flipped() {
        let t = four_leaf();
        // flip the root: right subtree first
        assert_eq!(
            t.leaf_order_flipped(&[false, false, true]),
            vec![2, 3, 0, 1]
        );
        // flip first merge only
        assert_eq!(
            t.leaf_order_flipped(&[true, false, false]),
            vec![1, 0, 2, 3]
        );
    }

    #[test]
    fn node_leaves_subtree() {
        let t = four_leaf();
        assert_eq!(t.node_leaves(node(1)), vec![2, 3]);
        assert_eq!(t.node_leaves(leaf(2)), vec![2]);
    }

    #[test]
    fn cut_k_extremes() {
        let t = four_leaf();
        assert_eq!(t.cut_k(1), vec![0, 0, 0, 0]);
        assert_eq!(t.cut_k(4), vec![0, 1, 2, 3]);
    }

    #[test]
    fn cut_k_two() {
        let t = four_leaf();
        assert_eq!(t.cut_k(2), vec![0, 0, 1, 1]);
    }

    #[test]
    fn cut_k_clamps() {
        let t = four_leaf();
        assert_eq!(t.cut_k(0), t.cut_k(1));
        assert_eq!(t.cut_k(99), t.cut_k(4));
    }

    #[test]
    fn cut_height_thresholds() {
        let t = four_leaf();
        assert_eq!(t.cut_height(0.5), vec![0, 1, 2, 3]);
        assert_eq!(t.cut_height(1.5), vec![0, 0, 1, 2]);
        assert_eq!(t.cut_height(2.5), vec![0, 0, 1, 1]);
        assert_eq!(t.cut_height(3.5), vec![0, 0, 0, 0]);
    }

    #[test]
    fn root_and_max_height() {
        let t = four_leaf();
        assert_eq!(t.root(), Some(node(2)));
        assert_eq!(t.max_height(), 3.0);
    }

    #[test]
    fn singleton_tree() {
        let t = ClusterTree::new(1, vec![]).unwrap();
        assert_eq!(t.root(), Some(leaf(0)));
        assert_eq!(t.leaf_order(), vec![0]);
        assert_eq!(t.cut_k(1), vec![0]);
    }

    #[test]
    fn empty_tree() {
        let t = ClusterTree::new(0, vec![]).unwrap();
        assert_eq!(t.root(), None);
        assert!(t.leaf_order().is_empty());
    }
}
