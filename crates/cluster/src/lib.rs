//! # fv-cluster — hierarchical clustering for ForestView
//!
//! ForestView panes display "the gene and array hierarchies" (paper,
//! Section 2) — the dendrograms produced by agglomerative clustering of
//! genes (rows) and arrays (columns), in the tradition of Eisen's Cluster /
//! Java TreeView. CDT/GTR/ATR files store the result; this crate computes
//! it:
//!
//! - [`distance`] — the Cluster-3.0 family of row metrics (Pearson,
//!   absolute/uncentered Pearson, Spearman, Euclidean), with missing-value
//!   aware pairwise computation and a rayon-parallel condensed distance
//!   matrix,
//! - [`linkage`] — agglomerative clustering via the nearest-neighbor-chain
//!   algorithm with Lance–Williams updates (single, complete, average,
//!   Ward), O(n²) time, one condensed matrix of space,
//! - [`tree`] — the merge tree, leaf ordering, and cluster extraction by
//!   count or height,
//! - [`order`] — leaf-ordering improvement by subtree flipping,
//! - [`kmeans`] — k-means (k-means++ seeding) for flat clustering, the
//!   other workhorse of microarray analysis,
//! - [`impute`] — KNN imputation of missing values (Troyanskaya et al.
//!   2001), the standard preprocessing before clustering sparse arrays.

#![forbid(unsafe_code)]

pub mod distance;
pub mod impute;
pub mod kmeans;
pub mod linkage;
pub mod order;
pub mod tree;

pub use distance::{condensed_distances, CondensedMatrix, Metric};
pub use linkage::{cluster, Linkage};
pub use tree::{ClusterTree, Merge, NodeRef};
