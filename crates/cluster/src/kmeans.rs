//! K-means flat clustering (k-means++ seeding).
//!
//! Cluster 3.0 offers k-means alongside hierarchical clustering, and
//! ForestView's analysis menu exposes both; SPELL evaluation also uses flat
//! clusters as query sets. Missing values are handled per-row: distances
//! and centroid updates only use present cells.

use fv_expr::matrix::ExprMatrix;

/// Result of a k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KmeansResult {
    /// Cluster label per row, in `0..k`.
    pub labels: Vec<usize>,
    /// Cluster centroids, `k × n_cols`.
    pub centroids: Vec<Vec<f32>>,
    /// Iterations executed before convergence (or the cap).
    pub iterations: usize,
    /// Final total within-cluster squared distance.
    pub inertia: f64,
}

/// Tiny deterministic xorshift64* generator — keeps this crate free of a
/// runtime `rand` dependency while making seeding explicit.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Squared Euclidean distance between a row and a centroid over the row's
/// present cells, normalized by the number of present cells so rows with
/// different missingness are comparable.
fn row_centroid_dist2(m: &ExprMatrix, row: usize, centroid: &[f32]) -> f64 {
    let mut acc = 0.0f64;
    let mut n = 0usize;
    for (c, v) in m.present_in_row_iter(row) {
        let d = v as f64 - centroid[c] as f64;
        acc += d * d;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        acc / n as f64
    }
}

/// Run k-means on the rows of `m`.
///
/// `k` is clamped to `[1, n_rows]`. Seeding is k-means++ driven by `seed`;
/// iteration stops when labels stabilize or after `max_iter` rounds.
/// Panics if the matrix has zero rows.
pub fn kmeans(m: &ExprMatrix, k: usize, seed: u64, max_iter: usize) -> KmeansResult {
    let n = m.n_rows();
    assert!(n > 0, "kmeans requires at least one row");
    let k = k.clamp(1, n);
    let cols = m.n_cols();
    let mut rng = XorShift::new(seed);

    // k-means++ seeding.
    let mut centroids: Vec<Vec<f32>> = Vec::with_capacity(k);
    let first = (rng.next_u64() % n as u64) as usize;
    centroids.push(
        m.row_options(first)
            .iter()
            .map(|v| v.unwrap_or(0.0))
            .collect(),
    );
    let mut d2: Vec<f64> = (0..n)
        .map(|r| row_centroid_dist2(m, r, &centroids[0]))
        .collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let pick = if total <= 0.0 {
            // all points coincide with some centroid: pick uniformly
            (rng.next_u64() % n as u64) as usize
        } else {
            let mut target = rng.next_f64() * total;
            let mut chosen = n - 1;
            for (r, &w) in d2.iter().enumerate() {
                target -= w;
                if target <= 0.0 {
                    chosen = r;
                    break;
                }
            }
            chosen
        };
        let c: Vec<f32> = m
            .row_options(pick)
            .iter()
            .map(|v| v.unwrap_or(0.0))
            .collect();
        for r in 0..n {
            let nd = row_centroid_dist2(m, r, &c);
            if nd < d2[r] {
                d2[r] = nd;
            }
        }
        centroids.push(c);
    }

    let mut labels = vec![0usize; n];
    let mut iterations = 0usize;
    for it in 0..max_iter.max(1) {
        iterations = it + 1;
        // Assign.
        let mut changed = false;
        for r in 0..n {
            let mut best = (0usize, f64::INFINITY);
            for (ci, c) in centroids.iter().enumerate() {
                let d = row_centroid_dist2(m, r, c);
                if d < best.1 {
                    best = (ci, d);
                }
            }
            if labels[r] != best.0 {
                labels[r] = best.0;
                changed = true;
            }
        }
        // Update.
        let mut sums = vec![vec![0.0f64; cols]; k];
        let mut counts = vec![vec![0usize; cols]; k];
        let mut members = vec![0usize; k];
        for r in 0..n {
            members[labels[r]] += 1;
            for (c, v) in m.present_in_row_iter(r) {
                sums[labels[r]][c] += v as f64;
                counts[labels[r]][c] += 1;
            }
        }
        for ci in 0..k {
            if members[ci] == 0 {
                // Empty cluster: re-seed at the row farthest from its centroid.
                let far = (0..n)
                    .max_by(|&a, &b| {
                        row_centroid_dist2(m, a, &centroids[labels[a]])
                            .partial_cmp(&row_centroid_dist2(m, b, &centroids[labels[b]]))
                            .unwrap()
                    })
                    .unwrap();
                centroids[ci] = m
                    .row_options(far)
                    .iter()
                    .map(|v| v.unwrap_or(0.0))
                    .collect();
                continue;
            }
            for c in 0..cols {
                if counts[ci][c] > 0 {
                    centroids[ci][c] = (sums[ci][c] / counts[ci][c] as f64) as f32;
                }
            }
        }
        if !changed && it > 0 {
            break;
        }
    }

    let inertia: f64 = (0..n)
        .map(|r| row_centroid_dist2(m, r, &centroids[labels[r]]))
        .sum();
    KmeansResult {
        labels,
        centroids,
        iterations,
        inertia,
    }
}

/// Run k-means `n_init` times with seeds derived from `seed` and keep the
/// run with the lowest inertia — the standard defence against bad local
/// optima (scikit-learn's `n_init` behaviour).
pub fn kmeans_restarts(
    m: &ExprMatrix,
    k: usize,
    seed: u64,
    n_init: usize,
    max_iter: usize,
) -> KmeansResult {
    let mut best: Option<KmeansResult> = None;
    for i in 0..n_init.max(1) {
        let r = kmeans(
            m,
            k,
            seed.wrapping_add(i as u64).wrapping_mul(0x9E3779B97F4A7C15),
            max_iter,
        );
        if best.as_ref().is_none_or(|b| r.inertia < b.inertia) {
            best = Some(r);
        }
    }
    best.expect("n_init >= 1")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn points2d(pts: &[(f32, f32)]) -> ExprMatrix {
        let mut vals = Vec::with_capacity(pts.len() * 2);
        for &(x, y) in pts {
            vals.push(x);
            vals.push(y);
        }
        ExprMatrix::from_rows(pts.len(), 2, &vals).unwrap()
    }

    #[test]
    fn two_obvious_clusters() {
        let m = points2d(&[
            (0.0, 0.0),
            (0.1, 0.1),
            (0.2, 0.0),
            (10.0, 10.0),
            (10.1, 9.9),
            (9.9, 10.1),
        ]);
        let r = kmeans(&m, 2, 42, 100);
        assert_eq!(r.labels[0], r.labels[1]);
        assert_eq!(r.labels[1], r.labels[2]);
        assert_eq!(r.labels[3], r.labels[4]);
        assert_ne!(r.labels[0], r.labels[3]);
        assert!(r.inertia < 0.1);
    }

    #[test]
    fn k_one_groups_all() {
        let m = points2d(&[(0.0, 0.0), (4.0, 4.0)]);
        let r = kmeans(&m, 1, 7, 50);
        assert!(r.labels.iter().all(|&l| l == 0));
        // centroid at the mean
        assert!((r.centroids[0][0] - 2.0).abs() < 1e-5);
    }

    #[test]
    fn k_clamped_to_n() {
        let m = points2d(&[(0.0, 0.0), (1.0, 1.0)]);
        let r = kmeans(&m, 10, 1, 50);
        assert!(r.centroids.len() <= 2);
        // both points distinct → each its own cluster
        assert_ne!(r.labels[0], r.labels[1]);
        assert!(r.inertia < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let m = points2d(&[(0.0, 1.0), (2.0, 3.0), (8.0, 1.0), (7.0, 2.5), (0.5, 0.5)]);
        let a = kmeans(&m, 2, 99, 100);
        let b = kmeans(&m, 2, 99, 100);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.inertia, b.inertia);
    }

    #[test]
    fn handles_missing_values() {
        let mut m = points2d(&[(0.0, 0.0), (0.0, 0.0), (10.0, 10.0), (10.0, 10.0)]);
        m.set_missing(0, 1); // first point only has x
        let r = kmeans(&m, 2, 5, 100);
        assert_eq!(r.labels[0], r.labels[1]);
        assert_ne!(r.labels[0], r.labels[2]);
    }

    #[test]
    fn inertia_nonincreasing_with_k() {
        let m = points2d(&[
            (0.0, 0.0),
            (1.0, 0.5),
            (5.0, 5.0),
            (6.0, 5.5),
            (10.0, 0.0),
            (11.0, 0.5),
        ]);
        let i1 = kmeans_restarts(&m, 1, 3, 8, 200).inertia;
        let i2 = kmeans_restarts(&m, 2, 3, 8, 200).inertia;
        let i3 = kmeans_restarts(&m, 3, 3, 8, 200).inertia;
        assert!(i2 <= i1 + 1e-9);
        assert!(i3 <= i2 + 1e-9);
        // optimal three-pair partition: 3 pairs × 0.3125 = 0.9375
        assert!(i3 < 1.0, "restarts should find the three pairs: {i3}");
    }

    #[test]
    fn restarts_never_worse_than_single_run() {
        let m = points2d(&[
            (0.0, 0.0),
            (1.0, 0.5),
            (5.0, 5.0),
            (6.0, 5.5),
            (10.0, 0.0),
            (11.0, 0.5),
        ]);
        let single = kmeans(&m, 3, 3, 200).inertia;
        let multi = kmeans_restarts(&m, 3, 3, 8, 200).inertia;
        assert!(multi <= single + 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one row")]
    fn empty_matrix_panics() {
        let m = ExprMatrix::zeros(0, 2);
        let _ = kmeans(&m, 2, 1, 10);
    }

    #[test]
    fn labels_in_range() {
        let m = points2d(&[(0.0, 0.0), (1.0, 2.0), (3.0, 1.0), (9.0, 9.0)]);
        let r = kmeans(&m, 3, 11, 100);
        assert!(r.labels.iter().all(|&l| l < 3));
        assert_eq!(r.labels.len(), 4);
    }
}
