//! KNN imputation of missing expression values.
//!
//! Microarray pipelines routinely impute missing spots before clustering —
//! the standard method is KNNimpute (Troyanskaya et al. 2001, by this
//! paper's senior author): for each gene row with missing cells, find the
//! `k` most similar rows that *do* measure the missing column and fill in
//! their similarity-weighted average. Clustering and SPELL both behave
//! better on imputed data when missingness is non-trivial.

use crate::distance::Metric;
use fv_expr::matrix::ExprMatrix;
use rayon::prelude::*;

/// Result summary of an imputation pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImputeStats {
    /// Cells that were missing before.
    pub missing_before: usize,
    /// Cells actually filled (a cell stays missing when no neighbour
    /// measures its column).
    pub filled: usize,
}

/// Impute missing values in place using `k` nearest neighbours under
/// `metric`. Returns fill statistics.
///
/// Neighbour distances are computed once per gene against all rows
/// (rayon-parallel across genes with missing cells); a neighbour
/// contributes to a cell only if it measures that column. Weights are
/// `1 / (d + ε)` so near-identical rows dominate.
pub fn knn_impute(m: &mut ExprMatrix, k: usize, metric: Metric) -> ImputeStats {
    let n_rows = m.n_rows();
    let n_cols = m.n_cols();
    let missing_before = m.n_cells() - m.present_total();
    if missing_before == 0 || n_rows < 2 || k == 0 {
        return ImputeStats {
            missing_before,
            filled: 0,
        };
    }

    // Rows that need work.
    let targets: Vec<usize> = (0..n_rows)
        .filter(|&r| m.present_in_row(r) < n_cols)
        .collect();

    // For determinism and to avoid read/write hazards, compute all fills
    // against the ORIGINAL matrix, then apply.
    let snapshot = m.clone();
    let fills: Vec<(usize, usize, f32)> = targets
        .par_iter()
        .flat_map_iter(|&r| {
            // distances to every other row
            let mut neigh: Vec<(usize, f32)> = (0..n_rows)
                .filter(|&o| o != r)
                .map(|o| (o, metric.distance(&snapshot, r, o)))
                .collect();
            neigh.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));

            let mut out: Vec<(usize, usize, f32)> = Vec::new();
            for c in 0..n_cols {
                if snapshot.is_present(r, c) {
                    continue;
                }
                let mut num = 0.0f64;
                let mut den = 0.0f64;
                let mut used = 0usize;
                for &(o, d) in &neigh {
                    if used == k {
                        break;
                    }
                    if let Some(v) = snapshot.get(o, c) {
                        let w = 1.0 / (d as f64 + 1e-6);
                        num += w * v as f64;
                        den += w;
                        used += 1;
                    }
                }
                if den > 0.0 {
                    out.push((r, c, (num / den) as f32));
                }
            }
            out
        })
        .collect();

    let filled = fills.len();
    for (r, c, v) in fills {
        m.set(r, c, v);
    }
    ImputeStats {
        missing_before,
        filled,
    }
}

/// Baseline: fill each missing cell with its row mean (falling back to the
/// column mean, then 0). The ablation comparator for [`knn_impute`].
pub fn row_mean_impute(m: &mut ExprMatrix) -> ImputeStats {
    let missing_before = m.n_cells() - m.present_total();
    let n_cols = m.n_cols();
    let mut filled = 0usize;
    // column means as fallback
    let t = m.transpose();
    let col_means: Vec<Option<f64>> = (0..n_cols)
        .map(|c| fv_expr::stats::row_mean(&t, c))
        .collect();
    for r in 0..m.n_rows() {
        let mean = fv_expr::stats::row_mean(m, r);
        for c in 0..n_cols {
            if !m.is_present(r, c) {
                let v = mean.or(col_means[c]).unwrap_or(0.0);
                m.set(r, c, v as f32);
                filled += 1;
            }
        }
    }
    ImputeStats {
        missing_before,
        filled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Matrix with two tight gene groups; returns (matrix, hidden truth).
    fn masked_groups() -> (ExprMatrix, Vec<(usize, usize, f32)>) {
        let n_cols = 8;
        let mut vals = Vec::new();
        // group A: rows 0..4 follow pattern c; group B: rows 4..8 follow -c
        for r in 0..8 {
            for c in 0..n_cols {
                let base = if r < 4 { c as f32 } else { -(c as f32) };
                vals.push(base + 0.01 * r as f32);
            }
        }
        let mut m = ExprMatrix::from_rows(8, n_cols, &vals).unwrap();
        // hide a handful of cells, remembering the truth
        let hidden = vec![(0usize, 3usize), (2, 5), (5, 1), (7, 6)];
        let truth: Vec<(usize, usize, f32)> = hidden
            .iter()
            .map(|&(r, c)| (r, c, m.get(r, c).unwrap()))
            .collect();
        for &(r, c) in &hidden {
            m.set_missing(r, c);
        }
        (m, truth)
    }

    #[test]
    fn knn_fills_all_recoverable_cells() {
        let (mut m, truth) = masked_groups();
        let stats = knn_impute(&mut m, 3, Metric::Euclidean);
        assert_eq!(stats.missing_before, 4);
        assert_eq!(stats.filled, 4);
        for (r, c, v) in truth {
            let got = m.get(r, c).expect("filled");
            assert!((got - v).abs() < 0.05, "({r},{c}): {got} vs {v}");
        }
    }

    #[test]
    fn knn_beats_row_mean_on_structured_data() {
        let (m0, truth) = masked_groups();
        let mut knn = m0.clone();
        let mut mean = m0.clone();
        knn_impute(&mut knn, 3, Metric::Euclidean);
        row_mean_impute(&mut mean);
        let err = |m: &ExprMatrix| -> f64 {
            truth
                .iter()
                .map(|&(r, c, v)| (m.get(r, c).unwrap() as f64 - v as f64).powi(2))
                .sum::<f64>()
        };
        assert!(
            err(&knn) < err(&mean) / 4.0,
            "knn {} should beat mean {} clearly",
            err(&knn),
            err(&mean)
        );
    }

    #[test]
    fn no_missing_is_noop() {
        let mut m = ExprMatrix::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let before = m.clone();
        let stats = knn_impute(&mut m, 2, Metric::Euclidean);
        assert_eq!(stats.filled, 0);
        assert_eq!(m, before);
    }

    #[test]
    fn column_missing_everywhere_stays_missing() {
        let mut m =
            ExprMatrix::from_rows(3, 3, &[1.0, 0.0, 2.0, 1.1, 0.0, 2.1, 0.9, 0.0, 1.9]).unwrap();
        for r in 0..3 {
            m.set_missing(r, 1);
        }
        let stats = knn_impute(&mut m, 2, Metric::Euclidean);
        assert_eq!(stats.filled, 0, "no neighbour measures column 1");
        assert!(!m.is_present(0, 1));
    }

    #[test]
    fn k_zero_is_noop() {
        let (mut m, _) = masked_groups();
        let stats = knn_impute(&mut m, 0, Metric::Euclidean);
        assert_eq!(stats.filled, 0);
    }

    #[test]
    fn deterministic() {
        let (m0, _) = masked_groups();
        let mut a = m0.clone();
        let mut b = m0.clone();
        knn_impute(&mut a, 3, Metric::Pearson);
        knn_impute(&mut b, 3, Metric::Pearson);
        assert_eq!(a, b);
    }

    #[test]
    fn row_mean_fills_everything() {
        let (mut m, _) = masked_groups();
        let stats = row_mean_impute(&mut m);
        assert_eq!(stats.filled, 4);
        assert_eq!(m.present_total(), m.n_cells());
    }

    #[test]
    fn row_mean_falls_back_to_column_mean() {
        // row 0 entirely missing → column means used
        let mut m = ExprMatrix::from_rows(3, 2, &[0.0, 0.0, 2.0, 4.0, 4.0, 8.0]).unwrap();
        m.set_missing(0, 0);
        m.set_missing(0, 1);
        row_mean_impute(&mut m);
        assert_eq!(m.get(0, 0), Some(3.0));
        assert_eq!(m.get(0, 1), Some(6.0));
    }
}
