//! Property-based tests of clustering: whatever the input, the tree must
//! be structurally valid, heights monotone, leaf orders permutations, and
//! cuts proper partitions.

use fv_cluster::distance::{condensed_distances, CondensedMatrix, Metric};
use fv_cluster::kmeans::kmeans;
use fv_cluster::linkage::{cluster_condensed, Linkage};
use fv_cluster::order::{adjacent_cost, improve_order};
use fv_expr::matrix::ExprMatrix;
use proptest::prelude::*;

prop_compose! {
    fn arb_matrix()(
        n_rows in 2usize..24,
        n_cols in 3usize..10,
        seed in any::<u64>(),
    ) -> ExprMatrix {
        let mut vals = Vec::with_capacity(n_rows * n_cols);
        let mut s = seed | 1;
        for _ in 0..n_rows * n_cols {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            vals.push(((s % 2001) as f32 - 1000.0) / 100.0);
        }
        ExprMatrix::from_rows(n_rows, n_cols, &vals).unwrap()
    }
}

fn arb_linkage() -> impl Strategy<Value = Linkage> {
    prop_oneof![
        Just(Linkage::Single),
        Just(Linkage::Complete),
        Just(Linkage::Average),
        Just(Linkage::Ward),
    ]
}

fn arb_metric() -> impl Strategy<Value = Metric> {
    prop_oneof![
        Just(Metric::Pearson),
        Just(Metric::AbsPearson),
        Just(Metric::Uncentered),
        Just(Metric::Spearman),
        Just(Metric::Euclidean),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tree_structurally_valid(m in arb_matrix(), link in arb_linkage(), metric in arb_metric()) {
        let d = condensed_distances(&m, metric);
        let t = cluster_condensed(d, link);
        let n = m.n_rows();
        prop_assert_eq!(t.n_leaves(), n);
        prop_assert_eq!(t.merges().len(), n - 1);
        // root covers all leaves exactly once
        let mut order = t.leaf_order();
        order.sort_unstable();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
        // sizes are consistent
        prop_assert_eq!(t.merges().last().unwrap().size as usize, n);
    }

    #[test]
    fn heights_nondecreasing(m in arb_matrix(), link in arb_linkage()) {
        let d = condensed_distances(&m, Metric::Euclidean);
        let t = cluster_condensed(d, link);
        let mut last = f32::NEG_INFINITY;
        for mg in t.merges() {
            prop_assert!(mg.height >= last - 1e-4, "height {} after {last}", mg.height);
            last = mg.height;
        }
    }

    #[test]
    fn cut_k_is_partition_of_size_k(m in arb_matrix(), k in 1usize..10) {
        let d = condensed_distances(&m, Metric::Euclidean);
        let t = cluster_condensed(d, Linkage::Average);
        let k = k.min(m.n_rows());
        let labels = t.cut_k(k);
        prop_assert_eq!(labels.len(), m.n_rows());
        let distinct: std::collections::HashSet<usize> = labels.iter().copied().collect();
        prop_assert_eq!(distinct.len(), k, "cut_k({}) produced {} clusters", k, distinct.len());
        // labels densely numbered 0..k
        prop_assert_eq!(*distinct.iter().max().unwrap(), k - 1);
    }

    #[test]
    fn cut_height_refines_monotonically(m in arb_matrix()) {
        let d = condensed_distances(&m, Metric::Euclidean);
        let t = cluster_condensed(d, Linkage::Complete);
        let hmax = t.max_height();
        let coarse = t.cut_height(hmax + 1.0);
        let fine = t.cut_height(hmax / 2.0);
        // a finer cut never merges two clusters the coarse cut separates
        for i in 0..coarse.len() {
            for j in (i + 1)..coarse.len() {
                if fine[i] == fine[j] {
                    prop_assert_eq!(coarse[i], coarse[j],
                        "rows {},{} together at low cut but apart at high cut", i, j);
                }
            }
        }
    }

    #[test]
    fn improve_order_is_permutation_and_no_worse(m in arb_matrix()) {
        let d = condensed_distances(&m, Metric::Euclidean);
        let t = cluster_condensed(d.clone(), Linkage::Average);
        let before = adjacent_cost(&t.leaf_order(), &d);
        let (order, flips) = improve_order(&t, &d, 3);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..m.n_rows()).collect::<Vec<_>>());
        prop_assert!(adjacent_cost(&order, &d) <= before + 1e-9);
        prop_assert_eq!(t.leaf_order_flipped(&flips), order);
    }

    #[test]
    fn condensed_matrix_symmetric_access(n in 2usize..20, seed in any::<u64>()) {
        let c = CondensedMatrix::from_fn_par(n, |i, j| ((i * 31 + j * 17) as f32) + seed as f32 % 7.0);
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(c.get(i, j), c.get(j, i));
            }
            prop_assert_eq!(c.get(i, i), 0.0);
        }
    }

    #[test]
    fn kmeans_labels_valid_and_deterministic(m in arb_matrix(), k in 1usize..6, seed in any::<u64>()) {
        let r1 = kmeans(&m, k, seed, 50);
        let r2 = kmeans(&m, k, seed, 50);
        prop_assert_eq!(&r1.labels, &r2.labels);
        let k_eff = k.min(m.n_rows());
        prop_assert!(r1.labels.iter().all(|&l| l < k_eff));
        prop_assert!(r1.inertia >= 0.0);
        prop_assert_eq!(r1.labels.len(), m.n_rows());
    }

    #[test]
    fn single_linkage_first_merge_is_min_pair(m in arb_matrix()) {
        let d = condensed_distances(&m, Metric::Euclidean);
        let (_, _, min_d) = d.min_pair().unwrap();
        let t = cluster_condensed(d, Linkage::Single);
        prop_assert!((t.merges()[0].height - min_d).abs() < 1e-5,
            "first merge {} vs min pair {min_d}", t.merges()[0].height);
    }
}
