//! The threaded TCP server: accept loop, per-connection readers, and the
//! contiguous-run batching that keeps damage coalescing alive over the
//! wire.
//!
//! One reader thread per connection parses wire lines and routes requests
//! to the owning shard (see [`crate::shard`]). Consecutive request lines
//! for the connection's current session are collected into a *run* — the
//! reader keeps appending for as long as another complete line is already
//! buffered — and executed via `EngineHub::execute_run_on`, so a
//! pipelined client's command stream pays one layout pass per run instead
//! of one per request, with responses still per-request and in request
//! order. Response order per connection always equals request order;
//! requests from different connections to the *same* session serialize on
//! the owning shard in arrival order.

use crate::frame::{write_err, write_ok, LineError, LineReader, MAX_LINE};
use crate::shard::{ShardHandles, ShardPool};
use fv_api::codec::ScriptItem;
use fv_api::{ApiError, EngineHub, Request, SessionId, WireItem};
use std::io::{BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker shard count; sessions are hash-partitioned across shards.
    pub shards: usize,
    /// Scene dimensions every shard's hub resolves damage against.
    pub scene: (usize, usize),
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            shards: 4,
            scene: fv_api::engine::DEFAULT_SCENE,
        }
    }
}

struct Shared {
    stop: AtomicBool,
    /// Stream clones of live connections keyed by connection id, so
    /// shutdown can unblock their readers. Connections deregister on
    /// exit — a lingering clone would hold the socket open (no FIN to
    /// the peer) and leak an fd per connection.
    conns: Mutex<Vec<(u64, TcpStream)>>,
}

/// A running server. Dropping the handle does NOT stop the server; call
/// [`Server::shutdown`] (or send a `shutdown` line) and then
/// [`Server::join`].
pub struct Server {
    addr: SocketAddr,
    shards: usize,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// serving in background threads.
    pub fn bind(addr: &str, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let shards = config.shards.max(1);
        let accept = std::thread::Builder::new()
            .name("fv-net-accept".into())
            .spawn(move || accept_loop(listener, config, accept_shared))
            .expect("spawn accept thread");
        Ok(Server {
            addr: local,
            shards,
            shared,
            accept: Some(accept),
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of worker shards.
    pub fn n_shards(&self) -> usize {
        self.shards
    }

    /// Ask the server to stop: the accept loop exits, live connections
    /// are shut down, shard workers drain and exit.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
    }

    /// Block until the server has fully stopped (after [`Server::shutdown`]
    /// or a client's `shutdown` line).
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: TcpListener, config: ServerConfig, shared: Arc<Shared>) {
    let pool = ShardPool::spawn(config.shards, config.scene);
    let mut conn_threads: Vec<JoinHandle<()>> = Vec::new();
    let mut next_conn_id: u64 = 0;
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                let conn_id = next_conn_id;
                next_conn_id += 1;
                if let Ok(clone) = stream.try_clone() {
                    shared
                        .conns
                        .lock()
                        .expect("conn registry")
                        .push((conn_id, clone));
                }
                let handles = pool.handles();
                let conn_shared = Arc::clone(&shared);
                if let Ok(h) = std::thread::Builder::new()
                    .name("fv-net-conn".into())
                    .spawn(move || {
                        handle_conn(stream, handles, &conn_shared);
                        // Deregister so the registry clone does not hold
                        // the socket open past the connection's life.
                        conn_shared
                            .conns
                            .lock()
                            .expect("conn registry")
                            .retain(|(id, _)| *id != conn_id);
                    })
                {
                    conn_threads.push(h);
                }
                // Opportunistically reap finished connection threads so a
                // long-lived server does not accumulate handles.
                conn_threads.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(15));
            }
            Err(_) => break,
        }
    }
    // Shutdown: unblock every connection reader, wait for them, then let
    // the shard workers drain.
    for (_, conn) in shared.conns.lock().expect("conn registry").drain(..) {
        let _ = conn.shutdown(std::net::Shutdown::Both);
    }
    for h in conn_threads {
        let _ = h.join();
    }
    pool.join();
}

fn handle_conn(stream: TcpStream, shards: ShardHandles, shared: &Arc<Shared>) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = LineReader::new(stream);
    let mut writer = BufWriter::new(write_half);
    let mut session = EngineHub::default_session();
    // Contiguous request lines for the current session, not yet executed.
    let mut run: Vec<Request> = Vec::new();
    loop {
        // Never block on the transport while requests are pending: if no
        // complete line is already buffered, execute the run now. This is
        // the batching rule — runs grow exactly as far as the client has
        // already pipelined.
        if !reader.has_buffered_line()
            && flush_run(&mut writer, &shards, &session, &mut run).is_err()
        {
            break;
        }
        let line = match reader.read_line() {
            Ok(Some(line)) => line,
            Ok(None) => break,
            Err(LineError::BadUtf8) => {
                if flush_run(&mut writer, &shards, &session, &mut run).is_err() {
                    break;
                }
                let e = ApiError::parse("request line is not valid UTF-8");
                if write_err(&mut writer, &e)
                    .and_then(|_| writer.flush())
                    .is_err()
                {
                    break;
                }
                continue;
            }
            Err(LineError::TooLong) => {
                let e = ApiError::parse(format!("request line exceeds {MAX_LINE} bytes"));
                let _ = write_err(&mut writer, &e).and_then(|_| writer.flush());
                break;
            }
            Err(LineError::Io(_)) => break,
        };
        let item = match fv_api::parse_wire_line(&line) {
            Ok(None) => continue,
            Ok(Some(item)) => item,
            Err(e) => {
                if flush_run(&mut writer, &shards, &session, &mut run).is_err() {
                    break;
                }
                if write_err(&mut writer, &e)
                    .and_then(|_| writer.flush())
                    .is_err()
                {
                    break;
                }
                continue;
            }
        };
        match item {
            WireItem::Script(ScriptItem::Request(request)) => {
                // Executed by the top-of-loop flush once the pipeline
                // would otherwise stall, or by a directive below.
                run.push(request);
            }
            WireItem::Script(ScriptItem::Use(name)) => {
                if flush_run(&mut writer, &shards, &session, &mut run).is_err() {
                    break;
                }
                let reply = match SessionId::new(name) {
                    Ok(id) => {
                        // Materialize eagerly (the `use` semantics) on the
                        // owning shard.
                        session = id;
                        let _ = shards.execute(&session, Vec::new());
                        write_ok(&mut writer, &format!("using {session}"))
                    }
                    Err(e) => write_err(&mut writer, &e),
                };
                if reply.and_then(|_| writer.flush()).is_err() {
                    break;
                }
            }
            WireItem::Ping => {
                if flush_run(&mut writer, &shards, &session, &mut run).is_err() {
                    break;
                }
                if write_ok(&mut writer, "pong")
                    .and_then(|_| writer.flush())
                    .is_err()
                {
                    break;
                }
            }
            WireItem::Close => {
                if flush_run(&mut writer, &shards, &session, &mut run).is_err() {
                    break;
                }
                shards.close(&session);
                let closed = std::mem::replace(&mut session, EngineHub::default_session());
                if write_ok(&mut writer, &format!("closed {closed}"))
                    .and_then(|_| writer.flush())
                    .is_err()
                {
                    break;
                }
            }
            WireItem::Shutdown => {
                let _ = flush_run(&mut writer, &shards, &session, &mut run);
                let _ = write_ok(&mut writer, "bye").and_then(|_| writer.flush());
                shared.stop.store(true, Ordering::SeqCst);
                break;
            }
        }
    }
}

/// Execute the pending run (if any) and write its frames in request
/// order. Errors only on transport failure — request errors become `err`
/// frames. Every request in the run gets exactly one frame: when the run
/// stops at an error, the never-executed tail gets explicit `skipped`
/// error frames, so pipelined clients stay frame-synchronized whether or
/// not they abort on errors.
fn flush_run(
    writer: &mut impl Write,
    shards: &ShardHandles,
    session: &SessionId,
    run: &mut Vec<Request>,
) -> std::io::Result<()> {
    if run.is_empty() {
        return Ok(());
    }
    let n = run.len();
    let reply = shards.execute(session, std::mem::take(run));
    for response in &reply.responses {
        write_ok(writer, &fv_api::format_response(response))?;
    }
    if let Some((idx, e)) = reply.error {
        write_err(writer, &e)?;
        let skipped = ApiError::invalid(format!(
            "skipped: request {} earlier in this pipelined run failed ({})",
            idx + 1,
            e.code.as_str()
        ));
        for _ in idx + 1..n {
            write_err(writer, &skipped)?;
        }
    }
    writer.flush()
}
