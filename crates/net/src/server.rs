//! The event-loop TCP server: one poll-driven thread owns every
//! connection; N shard workers own the engines. No thread is ever spawned
//! per connection — 1000 idle clients cost 1000 file descriptors and
//! nothing else.
//!
//! ```text
//!   poll(listener, waker, conn fds…)           [`crate::poll`]
//!        │ readiness
//!        ▼
//!   event loop      accept · read → FrameBuf → wire items → inbox
//!        │          inbox → contiguous request runs → shard jobs
//!        │          completions → response frames → outbox → write
//!        ▼
//!   ShardPool       async jobs; results return over a completion
//!                   channel + waker pipe       [`crate::shard`]
//! ```
//!
//! **Batching.** Consecutive request lines for the connection's current
//! session are dispatched as one *run* — everything the client has
//! pipelined when the connection's previous work finishes — and executed
//! via `EngineHub::execute_run_on`, so a pipelined command stream pays
//! one layout pass per run with responses still per-request and in
//! request order. Response order per connection always equals request
//! order; requests from different connections to the *same* session
//! serialize on the owning shard in arrival order.
//!
//! **Backpressure.** Two watermarks bound per-connection memory no
//! matter how fast a client pipelines: requests beyond
//! [`ServerConfig::queue_limit`] pending (queued + dispatched) are
//! answered `err E_BUSY` without executing, and a connection whose
//! outbox or inbox exceeds its high-water mark stops being read until it
//! drains (TCP pushes the pressure back to the client).
//!
//! **Observability.** The loop and the shards keep counters; the `stats`
//! control line snapshots them into a [`crate::metrics::ServerStats`]
//! reply, and `list-sessions` fans out over the shards for a merged,
//! name-sorted session listing.

use crate::balance::{
    format_balance, BalanceConfig, BalanceMode, Balancer, SessionObservation, ShardObservation,
};
use crate::frame::{push_err_frame, push_ok_frame, FrameBuf, LineFault, MAX_LINE};
use crate::metrics::{ServerStats, ShardStats, StreamStats};
use crate::poll::{self, PollEntry};
use crate::procshard::ProcBackend;
use crate::shard::{shard_of, InProcBackend, PubFrame, ShardBackend, ShardReport};
use crate::stream::{union_rect, StreamPlane, SubState};
use fv_api::codec::ScriptItem;
use fv_api::{ApiError, EngineHub, Request, SessionId, SessionImage, SessionStore, WireItem};
use fv_render::Framebuffer;
use fv_wall::stream::tile_damage;
use fv_wall::tile::TileGrid;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io::{PipeReader, PipeWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Whether [`crate::poll`] reports real readiness (Linux) or the
/// portable scan fallback (everything claims ready). The waker pipe is
/// only polled for readiness on the real path.
const REAL_POLL: bool = cfg!(target_os = "linux");

/// Stop reading a connection whose un-flushed outbox exceeds this many
/// bytes; reads resume once the peer drains its responses.
const OUTBOX_HIGH_WATER: usize = 256 * 1024;

/// Stop reading a connection with this many parsed-but-unanswered wire
/// items (mostly `E_BUSY` rejects waiting behind an in-flight run).
const INBOX_HIGH_WATER: usize = 1024;

/// How long shutdown waits for already-written frames (e.g. the `bye`
/// acknowledging a wire `shutdown`) to flush before closing sockets.
const SHUTDOWN_FLUSH_GRACE: Duration = Duration::from_millis(500);

/// Where the shard workers live.
#[derive(Debug, Clone, Default)]
pub enum ShardBackendConfig {
    /// In-process worker threads sharing one dataset cache (the
    /// default): [`crate::shard::InProcBackend`].
    #[default]
    Threads,
    /// One child worker process per shard, each with its own dataset
    /// cache, speaking the shard control protocol
    /// (`crate::procshard`). `worker_cmd` is the argv prefix to exec
    /// per shard — `["/path/to/fvtool", "shard-worker"]` in
    /// production.
    Procs { worker_cmd: Vec<String> },
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker shard count; sessions are hash-partitioned across shards.
    pub shards: usize,
    /// Thread shards or child-process shards.
    pub backend: ShardBackendConfig,
    /// Scene dimensions every shard's hub resolves damage against.
    pub scene: (usize, usize),
    /// Per-connection bound on pending (queued + dispatched, not yet
    /// answered) requests; overruns are rejected with `E_BUSY`.
    pub queue_limit: usize,
    /// Startup mode of the automatic rebalancer (`balance auto|off` on
    /// the wire flips it at runtime).
    pub balance: BalanceMode,
    /// Rebalancer policy knobs (watermarks, budget, cooldown).
    pub balance_cfg: BalanceConfig,
    /// How often the rebalancer snapshots the shards and plans.
    pub balance_interval: Duration,
    /// Durable session state directory. When set, every checkpointed
    /// session is re-installed at boot ([`Server::bind`] recovers before
    /// accepting a single connection), and dirty sessions are
    /// checkpointed on each completed balance gather — so a SIGKILL'd
    /// server comes back with its sessions instead of losing them all.
    /// `None` (the default) keeps sessions purely in memory.
    pub state_dir: Option<PathBuf>,
    /// Fault injection (tests only): the shard at this index refuses
    /// every engine install, forcing the migration restore path.
    #[doc(hidden)]
    pub fault_refuse_install_to: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            shards: 4,
            backend: ShardBackendConfig::Threads,
            scene: fv_api::engine::DEFAULT_SCENE,
            queue_limit: 128,
            balance: BalanceMode::Off,
            balance_cfg: BalanceConfig::default(),
            balance_interval: Duration::from_millis(500),
            state_dir: None,
            fault_refuse_install_to: None,
        }
    }
}

/// Wakes the event loop from shard workers and [`Server::shutdown`]: a
/// self-pipe with an at-most-one-byte-in-flight guarantee, so writes
/// never block and a drain never starves.
#[derive(Clone)]
pub(crate) struct Waker {
    tx: Arc<PipeWriter>,
    pending: Arc<AtomicBool>,
}

impl Waker {
    fn new(tx: PipeWriter) -> Waker {
        Waker {
            tx: Arc::new(tx),
            pending: Arc::new(AtomicBool::new(false)),
        }
    }

    pub fn wake(&self) {
        if !self.pending.swap(true, Ordering::SeqCst) {
            let _ = (&*self.tx).write(&[1u8]);
        }
    }

    /// Called by the loop before draining completions, so wakes that race
    /// the drain write a fresh byte.
    fn clear(&self) {
        self.pending.store(false, Ordering::SeqCst);
    }
}

struct Shared {
    stop: AtomicBool,
    waker: Waker,
}

/// A running server. Dropping the handle does NOT stop the server; call
/// [`Server::shutdown`] (or send a `shutdown` line) and then
/// [`Server::join`].
pub struct Server {
    addr: SocketAddr,
    shards: usize,
    recovered: u64,
    shared: Arc<Shared>,
    event_loop: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// serving: one event-loop thread plus the shard workers.
    pub fn bind(addr: &str, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let (waker_rx, waker_tx) = std::io::pipe()?;
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            waker: Waker::new(waker_tx),
        });
        let loop_shared = Arc::clone(&shared);
        let shards = config.shards.max(1);
        // Spawn the shard backend here so a failure (a worker thread or
        // child process that cannot start) surfaces as the bind error
        // instead of a panic inside the event-loop thread.
        let backend: Arc<dyn ShardBackend> = match &config.backend {
            ShardBackendConfig::Threads => Arc::new(InProcBackend::spawn(
                config.shards,
                config.scene,
                config.fault_refuse_install_to,
            )?),
            ShardBackendConfig::Procs { worker_cmd } => Arc::new(ProcBackend::spawn(
                worker_cmd,
                config.shards,
                config.scene,
                config.fault_refuse_install_to,
            )?),
        };
        // Crash recovery happens HERE, synchronously, before the loop
        // thread exists: every checkpoint in the state directory is
        // re-installed through the same never-lose-a-session install
        // path migrations use, so by the time `bind` returns the first
        // client already sees the recovered sessions. Stale images
        // (dataset changed on disk, `E_STALE_IMAGE`) and corrupt files
        // are warned about and skipped, never panicked on.
        let (checkpoints, recovered) = match &config.state_dir {
            None => (None, 0),
            Some(dir) => {
                let (plane, recovered) = recover_sessions(dir, &backend, shards)
                    .map_err(|e| std::io::Error::other(e.to_string()))?;
                (Some(plane), recovered)
            }
        };
        // fv-lint: allow(no-spawn-outside-sanctioned-modules) -- the one event-loop thread; every other server thread comes from the shard backend (shard.rs / procshard.rs)
        let event_loop = std::thread::Builder::new()
            .name("fv-net-loop".into())
            .spawn(move || {
                event_loop(
                    listener,
                    config,
                    backend,
                    loop_shared,
                    waker_rx,
                    checkpoints,
                    recovered,
                )
            })?;
        Ok(Server {
            addr: local,
            shards,
            recovered,
            shared,
            event_loop: Some(event_loop),
        })
    }

    /// Sessions recovered from the state directory's checkpoints during
    /// [`Server::bind`]. Zero without [`ServerConfig::state_dir`].
    pub fn recovered(&self) -> u64 {
        self.recovered
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of worker shards.
    pub fn n_shards(&self) -> usize {
        self.shards
    }

    /// Ask the server to stop. The event loop is woken immediately (live
    /// connections do not have to speak or hang up first), flushes what
    /// it owes, closes every connection, and lets the shard workers
    /// drain and exit.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.waker.wake();
    }

    /// Block until the server has fully stopped (after [`Server::shutdown`]
    /// or a client's `shutdown` line).
    pub fn join(mut self) {
        if let Some(h) = self.event_loop.take() {
            let _ = h.join();
        }
    }
}

// ── connection state ────────────────────────────────────────────────────

/// One parsed wire line awaiting its answer, in arrival order. Rejects
/// (parse faults, `E_BUSY` overruns) are pre-resolved but still queue, so
/// every line's frame goes out in request order.
enum Item {
    Request(Request),
    Reject(ApiError),
    Use(SessionId),
    Ping,
    /// Bare `close`: drop the connection's current session.
    Close,
    /// `close <name>`: drop the named session (the connection's current
    /// session pointer is untouched).
    CloseNamed(SessionId),
    /// `migrate <session> <shard>`: move the session to another shard.
    Migrate(SessionId, usize),
    /// `balance` (status) / `balance auto|off` (set mode). Answered from
    /// loop state, never touches a shard.
    Balance(Option<BalanceMode>),
    /// `subscribe <session> <TX>x<TY>`: become a tile-stream viewer of
    /// the session (fv-stream).
    Subscribe(SessionId, usize, usize),
    /// `unsubscribe`: stop streaming (idempotent).
    Unsubscribe,
    /// `ack <seq>`: subscriber flow control. Answered with nothing —
    /// acks pace the stream, they are not requests.
    Ack(u64),
    Stats,
    ListSessions,
    Shutdown,
}

impl Item {
    /// The session this item would dispatch shard work against (given the
    /// connection's current session), if any — what migration stalls gate
    /// on.
    fn target_session<'a>(&'a self, current: &'a SessionId) -> Option<&'a SessionId> {
        match self {
            Item::Request(_) | Item::Close => Some(current),
            Item::Use(s) | Item::CloseNamed(s) | Item::Migrate(s, _) => Some(s),
            // A subscribe materializes (and keyframe-renders) its session,
            // so it stalls while that session is mid-migration.
            Item::Subscribe(s, _, _) => Some(s),
            Item::Ping
            | Item::Reject(_)
            | Item::Balance(_)
            | Item::Unsubscribe
            | Item::Ack(_)
            | Item::Stats
            | Item::ListSessions
            | Item::Shutdown => None,
        }
    }
}

/// What a `stats` / `list-sessions` fan-out is gathering toward.
enum Gather {
    Stats,
    Sessions,
}

/// The shard work a connection is waiting on (at most one at a time —
/// that is what keeps per-connection response order equal to request
/// order).
enum Inflight {
    /// A dispatched request run (`ack` carries the `using <name>` reply
    /// for the empty run a `use` directive materializes its session
    /// with).
    Run { ack: Option<String> },
    /// A dispatched session close; answered `closed <name>`.
    Close { closed: SessionId },
    /// A dispatched migration (extract on the source shard chained to
    /// install on the target); answered `migrated <name> shard=<to>`.
    Migrate,
    /// A `stats` / `list-sessions` fan-out collecting one report per
    /// shard.
    Gather {
        what: Gather,
        waiting: usize,
        reports: Vec<ShardReport>,
    },
}

struct Conn {
    stream: TcpStream,
    frames: FrameBuf,
    out: Vec<u8>,
    out_pos: usize,
    session: SessionId,
    inbox: VecDeque<Item>,
    /// `Item::Request`s currently in `inbox`.
    queued_requests: usize,
    inflight: Option<Inflight>,
    /// Requests in the dispatched run (for `skipped` frame counts and the
    /// pending-queue bound).
    inflight_requests: usize,
    /// The connection's fv-stream subscription, if it sent `subscribe`.
    sub: Option<SubState>,
    /// Read side saw EOF; the connection drains and closes gracefully.
    eof: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            frames: FrameBuf::new(),
            out: Vec::new(),
            out_pos: 0,
            session: EngineHub::default_session(),
            inbox: VecDeque::new(),
            queued_requests: 0,
            inflight: None,
            inflight_requests: 0,
            sub: None,
            eof: false,
        }
    }

    fn pending_requests(&self) -> usize {
        self.queued_requests + self.inflight_requests
    }

    fn out_pending(&self) -> usize {
        self.out.len() - self.out_pos
    }

    fn wants_read(&self) -> bool {
        !self.eof && self.out_pending() < OUTBOX_HIGH_WATER && self.inbox.len() < INBOX_HIGH_WATER
    }

    fn wants_write(&self) -> bool {
        self.out_pending() > 0
    }

    /// Fully answered and hung up: safe to drop.
    fn finished(&self) -> bool {
        self.eof && self.inbox.is_empty() && self.inflight.is_none() && self.out_pending() == 0
    }

    fn push_ok(&mut self, body: &str, metrics: &mut LoopMetrics) {
        push_ok_frame(&mut self.out, body);
        metrics.frames_out += 1;
    }

    fn push_err(&mut self, e: &ApiError, metrics: &mut LoopMetrics) {
        push_err_frame(&mut self.out, e);
        metrics.frames_out += 1;
    }

    /// Write as much outbox as the socket accepts; `false` on a dead
    /// transport.
    fn flush(&mut self) -> bool {
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => return false,
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        if self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
        } else if self.out_pos > 64 * 1024 {
            self.out.drain(..self.out_pos);
            self.out_pos = 0;
        }
        true
    }
}

#[derive(Default)]
struct LoopMetrics {
    frames_in: u64,
    frames_out: u64,
    busy_rejections: u64,
    /// Framing faults (oversized / non-UTF-8 lines) accepted and answered
    /// with a typed `err` — the soak chaos injectors drive this.
    garbage_frames: u64,
    /// Connections dropped with unanswered work still pending (queued,
    /// in flight, or unflushed responses); clean closes don't count.
    dirty_disconnects: u64,
}

/// The durability plane: the open checkpoint store plus the cadence
/// state deciding which sessions are dirty. Lives entirely on the
/// event-loop thread — every operation is a small sequential file write
/// under the state directory.
struct CheckpointPlane {
    store: SessionStore,
    /// Attempted-request counter at each session's last durable
    /// checkpoint — the dirtiness baseline. A session whose reported
    /// counter equals its entry is clean and costs zero checkpoint I/O.
    clean: BTreeMap<String, u64>,
    /// Sessions with a snapshot in flight, skipped until it settles so
    /// back-to-back balance gathers cannot pile up duplicate snapshots.
    pending: BTreeSet<String>,
}

/// Boot-time crash recovery: open the store, sweep and scan it, and
/// re-install every readable checkpoint on its hash shard. Install
/// refusals (occupied name, failed replay, `E_STALE_IMAGE` from a
/// dataset that changed on disk) and corrupt checkpoint files are
/// warnings — recovery recovers what it can and reports the rest.
/// Returns the plane (seeded clean at each image's request counter, so
/// an idle recovered session is not immediately re-checkpointed) and
/// the count `stats` reports as `recovered=`.
fn recover_sessions(
    state_dir: &std::path::Path,
    backend: &Arc<dyn ShardBackend>,
    shards: usize,
) -> Result<(CheckpointPlane, u64), ApiError> {
    let store = SessionStore::open(state_dir)?;
    let scan = store.scan()?;
    for (path, why) in &scan.corrupt {
        eprintln!(
            "fv-net: skipping unrecoverable checkpoint {}: {why}",
            path.display()
        );
    }
    let mut clean = BTreeMap::new();
    let mut recovered = 0u64;
    for (session, image) in scan.sessions {
        let requests = image.requests;
        let shard = shard_of(&session, shards);
        let (tx, rx) = mpsc::channel();
        backend.submit_install(
            shard,
            &session,
            image,
            Box::new(move |result| {
                let _ = tx.send(result.map_err(|(_image, why)| why));
            }),
        );
        match rx.recv() {
            Ok(Ok(())) => {
                clean.insert(session.as_str().to_string(), requests);
                recovered += 1;
            }
            Ok(Err(why)) => eprintln!("fv-net: not recovering session {session}: {why}"),
            Err(_) => {
                eprintln!("fv-net: shard {shard} went away while recovering session {session}")
            }
        }
    }
    Ok((
        CheckpointPlane {
            store,
            clean,
            pending: BTreeSet::new(),
        },
        recovered,
    ))
}

/// Results shard workers push back to the loop.
pub(crate) struct Completion {
    conn: u64,
    payload: Payload,
}

pub(crate) enum Payload {
    Run(crate::shard::RunDone),
    /// A close finished (whether the session existed is not part of the
    /// reply — `closed <name>` is acknowledged either way).
    Closed,
    Shard(ShardReport),
    /// A migration chain finished (extract → install). Handled by the
    /// loop itself — routing tables and the migration stall are loop
    /// state, and the requesting connection may be gone by now.
    Migrated {
        session: SessionId,
        to: usize,
        result: Result<(), ApiError>,
    },
    /// A checkpoint snapshot came back (always on [`CHECKPOINT_CONN`]).
    /// `None` means the session vanished between the report and the
    /// snapshot (closed, crashed, or mid-migration) — the last durable
    /// checkpoint stands.
    Snapshot {
        session: SessionId,
        image: Option<SessionImage>,
    },
}

/// Adapter: the shard's close responder reports existence, the loop's
/// completion does not care.
fn closed_payload(_existed: bool) -> Payload {
    Payload::Closed
}

/// Everything item processing needs besides the connection itself.
struct Ctx<'a> {
    shards: &'a Arc<dyn ShardBackend>,
    done_tx: &'a mpsc::Sender<Completion>,
    waker: &'a Waker,
    queue_limit: usize,
    metrics: &'a mut LoopMetrics,
    /// Live connections (for `stats`), the serviced connection included.
    n_conns: usize,
    /// Migration routing overrides: sessions living away from their hash
    /// shard. The loop inserts on migration completion; item processing
    /// removes an override when its session is closed (a re-created
    /// session must fall back to hash routing, and the table must not
    /// grow without bound).
    routes: &'a mut BTreeMap<SessionId, usize>,
    /// Sessions with a migration in flight. Items targeting one stall in
    /// their connection's inbox until the migration completes (the loop
    /// re-pumps every connection then).
    migrating: &'a mut BTreeSet<SessionId>,
    /// The automatic rebalancer: mode, counters, and decision ring (the
    /// `balance` wire line reads and flips it; `stats` reads its
    /// gauges).
    balancer: &'a mut Balancer,
    /// The fv-stream subscription registry: who watches which session,
    /// the latest published framebuffer per watched session, and the
    /// stream counters `stats` reports.
    streams: &'a mut StreamPlane,
    /// The durability plane, when the server runs with a state
    /// directory. Item processing deletes checkpoints on explicit
    /// closes through it.
    checkpoints: &'a mut Option<CheckpointPlane>,
    /// Sessions recovered from checkpoints at boot (`stats` reports it).
    recovered: u64,
    /// Scene dimensions (the wall a subscriber's tile grid must divide).
    scene: (usize, usize),
    /// Set by a wire `shutdown`.
    stop: &'a mut bool,
}

impl Ctx<'_> {
    /// A responder that routes a shard result back through the completion
    /// channel and pokes the waker.
    fn responder<T: Send + 'static>(
        &self,
        conn: u64,
        wrap: fn(T) -> Payload,
    ) -> Box<dyn FnOnce(T) + Send> {
        let done = self.done_tx.clone();
        let waker = self.waker.clone();
        Box::new(move |value| {
            let _ = done.send(Completion {
                conn,
                payload: wrap(value),
            });
            waker.wake();
        })
    }

    /// Forget `session`'s durable state: baseline, in-flight marker, and
    /// the checkpoint file itself. Explicit closes (and a worker
    /// dropping the session after a panicking request) are the only
    /// events that delete a checkpoint — a restart must not resurrect a
    /// session the user closed.
    fn drop_checkpoint(&mut self, session: &SessionId) {
        if let Some(cp) = self.checkpoints.as_mut() {
            cp.clean.remove(session.as_str());
            cp.pending.remove(session.as_str());
            if let Err(e) = cp.store.remove(session) {
                eprintln!("fv-net: removing checkpoint of session {session} failed: {e}");
            }
        }
    }

    /// The shard serving `session`: its migration override if one exists,
    /// its stable hash otherwise.
    fn route(&self, session: &SessionId) -> usize {
        self.routes
            .get(session)
            .copied()
            .unwrap_or_else(|| self.shards.shard_of(session))
    }

    /// Kick off the extract → install migration chain for `session`. The
    /// chain runs on the shard workers; the loop hears back once, as a
    /// [`Payload::Migrated`] completion. Running the chain even when the
    /// session already lives on `to` keeps the existence check (and the
    /// reply) uniform.
    fn submit_migration(&self, conn: u64, session: &SessionId, to: usize) {
        let from = self.route(session);
        let shards = Arc::clone(self.shards);
        let done = self.done_tx.clone();
        let waker = self.waker.clone();
        let session = session.clone();
        self.shards.submit_extract(
            from,
            &session.clone(),
            Box::new(move |extracted: Option<SessionImage>| {
                let finish = {
                    let session = session.clone();
                    let done = done.clone();
                    let waker = waker.clone();
                    move |result: Result<(), ApiError>| {
                        let _ = done.send(Completion {
                            conn,
                            payload: Payload::Migrated {
                                session,
                                to,
                                result,
                            },
                        });
                        waker.wake();
                    }
                };
                match extracted {
                    None => finish(Err(ApiError::not_found(format!(
                        "session {session} does not exist"
                    )))),
                    Some(image) => {
                        let restore = Arc::clone(&shards);
                        let restore_session = session.clone();
                        shards.submit_install(
                            to,
                            &session,
                            image,
                            Box::new(move |installed| match installed {
                                Ok(()) => finish(Ok(())),
                                Err((image, _why)) => {
                                    // The target refused (dead shard /
                                    // occupied name / failed replay): the
                                    // session was alive before the
                                    // migration and must stay alive — put
                                    // the image back where it came from
                                    // before reporting failure.
                                    restore.submit_install(
                                        from,
                                        &restore_session,
                                        image,
                                        Box::new(move |restored| {
                                            finish(Err(ApiError::new(
                                                fv_api::ErrorCode::Internal,
                                                match restored {
                                                    Ok(()) => {
                                                        "target shard refused the session; \
                                                         it stays on its current shard"
                                                    }
                                                    Err(_) => {
                                                        "target shard refused the session \
                                                         and restoring it failed; the \
                                                         session was lost"
                                                    }
                                                },
                                            )))
                                        }),
                                    );
                                }
                            }),
                        );
                    }
                }
            }),
        );
    }
}

// ── the loop ────────────────────────────────────────────────────────────

/// Sentinel connection id for completions the loop itself asked for
/// (balancer snapshot gathers and automatic migrations). Real connection
/// ids count up from 0 and can never reach it.
const BALANCER_CONN: u64 = u64::MAX;

/// Sentinel connection id for the empty publish run the loop submits
/// after a watched session migrates: its only purpose is the fresh
/// framebuffer that re-syncs every subscriber with a keyframe on the new
/// shard, so no connection settles it.
const STREAM_CONN: u64 = u64::MAX - 1;

/// Sentinel connection id for checkpoint snapshots: the durability plane
/// asked, not a connection, so the completion only updates the store.
const CHECKPOINT_CONN: u64 = u64::MAX - 2;

fn event_loop(
    listener: TcpListener,
    config: ServerConfig,
    shards: Arc<dyn ShardBackend>,
    shared: Arc<Shared>,
    waker_rx: PipeReader,
    mut checkpoints: Option<CheckpointPlane>,
    recovered: u64,
) {
    let (done_tx, done_rx) = mpsc::channel::<Completion>();
    let mut conns: BTreeMap<u64, Conn> = BTreeMap::new();
    let mut next_conn_id: u64 = 0;
    let mut metrics = LoopMetrics::default();
    let mut stop = false;
    // Migration state: overrides route a session away from its hash
    // shard; `migrating` sessions stall every item targeting them until
    // the in-flight move completes.
    let mut routes: BTreeMap<SessionId, usize> = BTreeMap::new();
    let mut migrating: BTreeSet<SessionId> = BTreeSet::new();
    // fv-stream state: subscriber registry, retained latest frame per
    // watched session, and the counters the `stats` stream row reports.
    let mut streams = StreamPlane::default();
    // Rebalancer state: the deterministic policy core plus the loop's
    // wall-clock scheduling around it. A gather in progress accumulates
    // one report per shard before the balancer ticks.
    let mut balancer = Balancer::new(config.balance, config.balance_cfg);
    let mut last_balance = Instant::now();
    let mut balance_gather: Option<Vec<ShardReport>> = None;
    // Poll must wake often enough to honor the balance interval; a
    // too-small interval must not busy-spin the loop.
    let balance_tick_ms = config.balance_interval.as_millis().clamp(10, 250) as i32;

    while !stop && !shared.stop.load(Ordering::SeqCst) {
        // Interest set, rebuilt per iteration: [listener, waker, conns…].
        let ids: Vec<u64> = conns.keys().copied().collect();
        let mut entries = Vec::with_capacity(ids.len() + 2);
        entries.push(PollEntry::new(listener.as_raw_fd(), true, false));
        entries.push(PollEntry::new(waker_rx.as_raw_fd(), REAL_POLL, false));
        for id in &ids {
            let c = &conns[id];
            entries.push(PollEntry::new(
                c.stream.as_raw_fd(),
                c.wants_read(),
                c.wants_write(),
            ));
        }
        // Finite timeout: a bounded safety net under the waker, the tick
        // the portable fallback scans on, and (in auto mode) the
        // heartbeat the balance interval rides on.
        let timeout = if balancer.mode == BalanceMode::Auto {
            balance_tick_ms
        } else {
            250
        };
        if poll::wait(&mut entries, timeout).is_err() {
            break;
        }
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }

        // Drain the waker before the completion channel. Order matters:
        // consume the pipe byte FIRST, then clear `pending` — a wake
        // racing this window skips its write (pending is still true),
        // but its completion was sent before the wake, so the try_recv
        // below observes it; any wake after the clear writes a fresh
        // byte for the next iteration. Clearing before reading would
        // eat a racing wake's byte while leaving `pending` set,
        // permanently silencing the waker.
        if entries[1].readable || entries[1].hangup {
            let mut sink = [0u8; 4096];
            let _ = (&waker_rx).read(&mut sink);
            shared.waker.clear();
        }
        let mut repump = false;
        while let Ok(mut done) = done_rx.try_recv() {
            // Checkpoint snapshots are durability-plane events: persist
            // the image and advance the clean baseline. A `None` image
            // (session closed, crashed, or mid-migration since the
            // report) leaves the last durable checkpoint standing —
            // only an explicit close deletes one.
            if let Payload::Snapshot { session, image } = done.payload {
                if let Some(cp) = checkpoints.as_mut() {
                    cp.pending.remove(session.as_str());
                    if let Some(image) = image {
                        match cp.store.save(&session, &image) {
                            Ok(()) => {
                                cp.clean
                                    .insert(session.as_str().to_string(), image.requests);
                            }
                            Err(e) => {
                                eprintln!("fv-net: checkpoint of session {session} failed: {e}")
                            }
                        }
                    }
                }
                continue;
            }
            // Migration completions are loop events, not connection
            // events: the routing table and stall set must update even if
            // the asking connection hung up mid-migration.
            if let Payload::Migrated {
                session,
                to,
                result,
            } = done.payload
            {
                if result.is_ok() {
                    if to == shard_of(&session, shards.n_shards()) {
                        routes.remove(&session);
                    } else {
                        routes.insert(session.clone(), to);
                    }
                    // Subscriptions survive the move: force a keyframe
                    // re-sync for every subscriber (their encoders keep
                    // counting, so the keyframe lands at the next seq —
                    // no gap) and ask the session's *new* shard for a
                    // fresh frame via an empty publish run.
                    if streams.has_subscribers(&session) {
                        for cid in streams.subscribers_of(&session) {
                            if let Some(sub) = conns.get_mut(&cid).and_then(|c| c.sub.as_mut()) {
                                sub.need_keyframe = true;
                                sub.pending.clear();
                            }
                        }
                        let route = routes
                            .get(&session)
                            .copied()
                            .unwrap_or_else(|| shard_of(&session, shards.n_shards()));
                        let resync_done = done_tx.clone();
                        let resync_waker = shared.waker.clone();
                        shards.submit_run_to(
                            route,
                            &session,
                            Vec::new(),
                            true,
                            Box::new(move |run| {
                                let _ = resync_done.send(Completion {
                                    conn: STREAM_CONN,
                                    payload: Payload::Run(run),
                                });
                                resync_waker.wake();
                            }),
                        );
                    }
                }
                migrating.remove(&session);
                // Stalled items (on any connection) may now proceed.
                repump = true;
                if done.conn == BALANCER_CONN {
                    // A policy-initiated move resolved; its session's
                    // cooldown started at plan time, so a failure (the
                    // restore path) is not retried until it lapses.
                    balancer.record_outcome(session.as_str(), result.is_ok());
                    continue;
                }
                if let Some(conn) = conns.get_mut(&done.conn) {
                    if matches!(conn.inflight, Some(Inflight::Migrate)) {
                        conn.inflight = None;
                        match result {
                            Ok(()) => conn
                                .push_ok(&format!("migrated {session} shard={to}"), &mut metrics),
                            Err(e) => conn.push_err(&e, &mut metrics),
                        }
                    }
                }
                continue;
            }
            if done.conn == BALANCER_CONN {
                // One shard's report for the balancer's snapshot gather;
                // the last one in triggers the tick.
                if let Payload::Shard(report) = done.payload {
                    if let Some(mut reports) = balance_gather.take() {
                        reports.push(report);
                        if reports.len() < shards.n_shards() {
                            balance_gather = Some(reports);
                        } else {
                            // The gather the balancer needed is also
                            // the checkpoint cadence: the reports carry
                            // every session's attempted-request counter,
                            // so dirtiness detection costs no extra
                            // fan-out and idle sessions cost zero I/O.
                            if let Some(cp) = checkpoints.as_mut() {
                                checkpoint_dirty_sessions(
                                    cp,
                                    &reports,
                                    &migrating,
                                    &shards,
                                    &done_tx,
                                    &shared.waker,
                                );
                            }
                            let n_conns = conns.len();
                            let mut ctx = Ctx {
                                shards: &shards,
                                done_tx: &done_tx,
                                waker: &shared.waker,
                                queue_limit: config.queue_limit,
                                metrics: &mut metrics,
                                n_conns,
                                routes: &mut routes,
                                migrating: &mut migrating,
                                balancer: &mut balancer,
                                streams: &mut streams,
                                checkpoints: &mut checkpoints,
                                recovered,
                                scene: config.scene,
                                stop: &mut stop,
                            };
                            run_balance_tick(reports, &mut ctx);
                        }
                    }
                }
                continue;
            }
            // Pull the published frame (if the run rendered one) out
            // before the payload settles the requesting connection: the
            // fan-out targets *every* subscriber of the session, not the
            // connection that happened to trigger the run.
            let frame = match &mut done.payload {
                Payload::Run(run) => run.frame.take(),
                _ => None,
            };
            if done.conn == STREAM_CONN {
                // A migration re-sync publish; there is no connection
                // waiting — the frame is the whole point.
                if let Some(f) = frame {
                    publish_frame(f, &mut conns, &mut streams, &mut metrics);
                }
                continue;
            }
            let n_conns = conns.len();
            if let Some(conn) = conns.get_mut(&done.conn) {
                let mut ctx = Ctx {
                    shards: &shards,
                    done_tx: &done_tx,
                    waker: &shared.waker,
                    queue_limit: config.queue_limit,
                    metrics: &mut metrics,
                    n_conns,
                    routes: &mut routes,
                    migrating: &mut migrating,
                    balancer: &mut balancer,
                    streams: &mut streams,
                    checkpoints: &mut checkpoints,
                    recovered,
                    scene: config.scene,
                    stop: &mut stop,
                };
                settle_completion(conn, done.conn, done.payload, &mut ctx);
                pump(conn, done.conn, &mut ctx);
                service_stream(conn, ctx.streams);
                if !conn.flush() || conn.finished() {
                    drop_conn(&mut conns, &mut streams, done.conn, &mut metrics);
                }
            }
            if let Some(f) = frame {
                publish_frame(f, &mut conns, &mut streams, &mut metrics);
            }
        }
        if repump {
            // A migration finished: every connection may hold stalled
            // items, so give each a pump (idle ones no-op cheaply).
            let ids: Vec<u64> = conns.keys().copied().collect();
            for id in ids {
                let n_conns = conns.len();
                let Some(conn) = conns.get_mut(&id) else {
                    continue;
                };
                let mut ctx = Ctx {
                    shards: &shards,
                    done_tx: &done_tx,
                    waker: &shared.waker,
                    queue_limit: config.queue_limit,
                    metrics: &mut metrics,
                    n_conns,
                    routes: &mut routes,
                    migrating: &mut migrating,
                    balancer: &mut balancer,
                    streams: &mut streams,
                    checkpoints: &mut checkpoints,
                    recovered,
                    scene: config.scene,
                    stop: &mut stop,
                };
                pump(conn, id, &mut ctx);
                service_stream(conn, ctx.streams);
                if !conn.flush() || conn.finished() {
                    drop_conn(&mut conns, &mut streams, id, &mut metrics);
                }
            }
        }

        // Start a rebalance tick when due: snapshot every shard, then
        // plan once the last report lands. Never while a gather is
        // already in flight, and never while any migration is mid-air —
        // a session in transit is invisible to a shard fan-out, so the
        // snapshot would be wrong (and the planner could double-move).
        // Ticks run in Off mode too (the balancer plans nothing then):
        // keeping the delta baselines fresh means a runtime flip to
        // auto reacts to *current* load, not to hours of accumulated
        // counters.
        if balance_gather.is_none()
            && migrating.is_empty()
            && last_balance.elapsed() >= config.balance_interval
        {
            last_balance = Instant::now();
            balance_gather = Some(Vec::with_capacity(shards.n_shards()));
            shards.submit_report_all(&mut || {
                let done = done_tx.clone();
                let waker = shared.waker.clone();
                Box::new(move |report| {
                    let _ = done.send(Completion {
                        conn: BALANCER_CONN,
                        payload: Payload::Shard(report),
                    });
                    waker.wake();
                })
            });
        }

        // New connections.
        if entries[0].readable || entries[0].hangup {
            loop {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        let id = next_conn_id;
                        next_conn_id += 1;
                        conns.insert(id, Conn::new(stream));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e)
                        if matches!(
                            e.kind(),
                            std::io::ErrorKind::Interrupted
                                | std::io::ErrorKind::ConnectionAborted
                                | std::io::ErrorKind::ConnectionReset
                        ) =>
                    {
                        // A peer that reset before we accepted costs
                        // nothing but its own slot; keep accepting.
                        continue;
                    }
                    Err(_) => {
                        // EMFILE/ENFILE and friends are load conditions,
                        // not reasons to drop every live session. Stop
                        // this accept burst and back off briefly so a
                        // persistent condition cannot spin the loop (the
                        // listener stays level-triggered readable).
                        std::thread::sleep(Duration::from_millis(10));
                        break;
                    }
                }
            }
        }

        // Connection I/O.
        for (i, id) in ids.iter().enumerate() {
            let e = entries[i + 2];
            if !(e.readable || e.writable || e.hangup) {
                continue;
            }
            let n_conns = conns.len();
            let Some(conn) = conns.get_mut(id) else {
                continue;
            };
            let mut alive = true;
            if e.writable || e.hangup {
                alive = conn.flush();
                if alive {
                    // The outbox just drained: a backlogged subscriber
                    // waiting on a drop-to-keyframe re-sync can have it
                    // now.
                    service_stream(conn, &mut streams);
                    alive = conn.flush();
                }
            }
            if alive && (e.readable || e.hangup) && conn.wants_read() {
                let mut ctx = Ctx {
                    shards: &shards,
                    done_tx: &done_tx,
                    waker: &shared.waker,
                    queue_limit: config.queue_limit,
                    metrics: &mut metrics,
                    n_conns,
                    routes: &mut routes,
                    migrating: &mut migrating,
                    balancer: &mut balancer,
                    streams: &mut streams,
                    checkpoints: &mut checkpoints,
                    recovered,
                    scene: config.scene,
                    stop: &mut stop,
                };
                alive = read_conn(conn, &mut ctx);
                if alive {
                    pump(conn, *id, &mut ctx);
                    service_stream(conn, ctx.streams);
                    alive = conn.flush();
                }
            }
            if !alive || conn.finished() {
                drop_conn(&mut conns, &mut streams, *id, &mut metrics);
            }
        }
    }

    // Shutdown: give already-written frames (e.g. the `bye` answering a
    // wire `shutdown`) a bounded chance to flush, then close everything
    // and let the shard workers drain. In-flight run results are
    // abandoned — the sockets are about to close.
    shared.stop.store(true, Ordering::SeqCst);
    drop(listener);
    let deadline = Instant::now() + SHUTDOWN_FLUSH_GRACE;
    while Instant::now() < deadline {
        conns.retain(|_, c| c.flush() && c.wants_write());
        if conns.is_empty() {
            break;
        }
        let mut entries: Vec<PollEntry> = conns
            .values()
            .map(|c| PollEntry::new(c.stream.as_raw_fd(), false, true))
            .collect();
        if poll::wait(&mut entries, 50).is_err() {
            break;
        }
    }
    drop(conns);
    // Stop every shard and reclaim it — joins worker threads or reaps
    // child worker processes, depending on the backend.
    shards.shutdown();
}

/// Piggy-back the checkpoint cadence on a completed balance gather:
/// request a non-destructive [`crate::shard::Job::Snapshot`] for every
/// session whose attempted-request counter moved since its last durable
/// checkpoint. Sessions mid-migration are skipped (their shard fan-out
/// location is in flux; the next gather catches them), as are sessions
/// with a snapshot already in flight.
fn checkpoint_dirty_sessions(
    cp: &mut CheckpointPlane,
    reports: &[ShardReport],
    migrating: &BTreeSet<SessionId>,
    shards: &Arc<dyn ShardBackend>,
    done_tx: &mpsc::Sender<Completion>,
    waker: &Waker,
) {
    for report in reports {
        for s in &report.sessions {
            if cp.pending.contains(&s.name) || cp.clean.get(&s.name) == Some(&s.requests) {
                continue;
            }
            let Ok(session) = SessionId::new(s.name.clone()) else {
                continue;
            };
            if migrating.contains(&session) {
                continue;
            }
            cp.pending.insert(s.name.clone());
            let done = done_tx.clone();
            let waker = waker.clone();
            let name = session.clone();
            shards.submit_snapshot(
                report.shard,
                &session,
                Box::new(move |image| {
                    let _ = done.send(Completion {
                        conn: CHECKPOINT_CONN,
                        payload: Payload::Snapshot {
                            session: name,
                            image,
                        },
                    });
                    waker.wake();
                }),
            );
        }
    }
}

/// A completed balancer snapshot gather: fold the shard reports into
/// observations, tick the policy, and submit every still-valid plan
/// through the same extract → install → restore-on-failure chain
/// operator migrations use. Plans that went stale between snapshot and
/// execution (session migrated, closed, or already moving) are counted
/// failed and skipped — the balancer must never bounce a session around
/// on outdated data.
fn run_balance_tick(mut reports: Vec<ShardReport>, ctx: &mut Ctx) {
    reports.sort_by_key(|r| r.shard);
    let depths = ctx.shards.queue_depths();
    let observations: Vec<ShardObservation> = reports
        .iter()
        .map(|r| ShardObservation {
            shard: r.shard,
            queued: depths.get(r.shard).copied().unwrap_or(0),
            requests_total: r.requests,
            latency: r.latency.clone(),
            sessions: r
                .sessions
                .iter()
                .map(|s| SessionObservation {
                    session: s.name.clone(),
                    requests_total: s.requests,
                    dataset_bytes: s.dataset_bytes,
                    in_flight: SessionId::new(s.name.clone())
                        .map(|id| ctx.migrating.contains(&id))
                        .unwrap_or(false),
                })
                .collect(),
        })
        .collect();
    let plans = ctx.balancer.tick(&observations);
    for plan in plans {
        let Ok(session) = SessionId::new(plan.session.clone()) else {
            ctx.balancer.record_outcome(&plan.session, false);
            continue;
        };
        let from = ctx.route(&session);
        if ctx.migrating.contains(&session)
            || from != plan.from
            || plan.to == from
            || plan.to >= ctx.shards.n_shards()
        {
            ctx.balancer.record_outcome(&plan.session, false);
            continue;
        }
        ctx.migrating.insert(session.clone());
        ctx.submit_migration(BALANCER_CONN, &session, plan.to);
    }
}

/// Pull every readable byte (bounded per iteration for fairness across
/// connections) and parse complete lines into inbox items. `false` on a
/// dead transport.
fn read_conn(conn: &mut Conn, ctx: &mut Ctx) -> bool {
    let mut chunk = [0u8; 16 * 1024];
    let mut budget = 4;
    while budget > 0 && !conn.eof {
        match conn.stream.read(&mut chunk) {
            Ok(0) => conn.eof = true,
            Ok(n) => {
                conn.frames.feed(&chunk[..n]);
                budget -= 1;
                if n < chunk.len() {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
    while let Some(next) = conn.frames.next_line() {
        let item = match next {
            Err(LineFault::TooLong) => {
                ctx.metrics.frames_in += 1;
                ctx.metrics.garbage_frames += 1;
                Item::Reject(ApiError::invalid(format!(
                    "request line exceeds {MAX_LINE} bytes; the rest of the line was discarded"
                )))
            }
            Err(LineFault::BadUtf8) => {
                ctx.metrics.frames_in += 1;
                ctx.metrics.garbage_frames += 1;
                Item::Reject(ApiError::invalid("request line is not valid UTF-8"))
            }
            Ok(line) => match fv_api::parse_wire_line(&line) {
                Ok(None) => continue,
                Err(e) => {
                    ctx.metrics.frames_in += 1;
                    Item::Reject(e)
                }
                Ok(Some(wire)) => {
                    ctx.metrics.frames_in += 1;
                    match wire {
                        WireItem::Script(ScriptItem::Request(request)) => {
                            if conn.pending_requests() >= ctx.queue_limit {
                                ctx.metrics.busy_rejections += 1;
                                Item::Reject(ApiError::busy(format!(
                                    "pending request queue is full ({} pending, limit {}); \
                                     the request was not executed",
                                    conn.pending_requests(),
                                    ctx.queue_limit
                                )))
                            } else {
                                conn.queued_requests += 1;
                                Item::Request(request)
                            }
                        }
                        WireItem::Script(ScriptItem::Use(name)) => match SessionId::new(name) {
                            Ok(id) => Item::Use(id),
                            Err(e) => Item::Reject(e),
                        },
                        WireItem::Script(ScriptItem::Close(name)) => match SessionId::new(name) {
                            Ok(id) => Item::CloseNamed(id),
                            Err(e) => Item::Reject(e),
                        },
                        WireItem::Migrate { session, shard } => {
                            let n = ctx.shards.n_shards();
                            if shard >= n {
                                Item::Reject(ApiError::invalid(format!(
                                    "shard {shard} out of range (server has {n})"
                                )))
                            } else {
                                match SessionId::new(session) {
                                    Ok(id) => Item::Migrate(id, shard),
                                    Err(e) => Item::Reject(e),
                                }
                            }
                        }
                        WireItem::Subscribe {
                            session,
                            tiles_x,
                            tiles_y,
                        } => match SessionId::new(session) {
                            Ok(id) => Item::Subscribe(id, tiles_x, tiles_y),
                            Err(e) => Item::Reject(e),
                        },
                        WireItem::Unsubscribe => Item::Unsubscribe,
                        WireItem::Ack { seq } => Item::Ack(seq),
                        WireItem::Ping => Item::Ping,
                        WireItem::Close => Item::Close,
                        WireItem::Balance { set } => Item::Balance(set),
                        WireItem::Stats => Item::Stats,
                        WireItem::ListSessions => Item::ListSessions,
                        WireItem::Shutdown => Item::Shutdown,
                    }
                }
            },
        };
        conn.inbox.push_back(item);
    }
    true
}

/// Answer inbox items in arrival order until one needs shard work (at
/// most one dispatch in flight per connection), the front item targets a
/// session whose migration is in flight (the loop re-pumps every
/// connection when a migration completes), or the inbox is empty.
fn pump(conn: &mut Conn, id: u64, ctx: &mut Ctx) {
    while conn.inflight.is_none() {
        // Stall checks peek the front; only when the item may proceed is
        // it popped (once) and matched by value — no peek/pop pairing to
        // keep in sync.
        let Some(front) = conn.inbox.front() else {
            break;
        };
        if let Some(target) = front.target_session(&conn.session) {
            if ctx.migrating.contains(target) {
                break;
            }
        }
        if matches!(front, Item::Stats | Item::ListSessions) && !ctx.migrating.is_empty() {
            // A session mid-migration lives in neither shard's hub (its
            // engine is in transit between Extract and Install), so a
            // fan-out now could miss it. Stall until every move lands —
            // migrations complete promptly, and the loop re-pumps all
            // connections when one does.
            break;
        }
        let Some(item) = conn.inbox.pop_front() else {
            break;
        };
        match item {
            Item::Request(first) => {
                // Everything the client has pipelined for the current
                // session becomes one run — one layout pass server-side.
                let mut requests = vec![first];
                while matches!(conn.inbox.front(), Some(Item::Request(_))) {
                    if let Some(Item::Request(r)) = conn.inbox.pop_front() {
                        requests.push(r);
                    }
                }
                conn.queued_requests -= requests.len();
                conn.inflight_requests = requests.len();
                conn.inflight = Some(Inflight::Run { ack: None });
                // Runs on a watched session come back with a rendered
                // wall frame for the fan-out; unwatched runs skip the
                // render entirely.
                let publish = ctx.streams.has_subscribers(&conn.session);
                ctx.shards.submit_run_to(
                    ctx.route(&conn.session),
                    &conn.session,
                    requests,
                    publish,
                    ctx.responder(id, Payload::Run),
                );
            }
            Item::Use(session) => {
                conn.session = session.clone();
                // Materialize eagerly (the `use` semantics) on the owning
                // shard; the ack frame waits for the empty run so later
                // requests cannot outrun the materialization.
                conn.inflight_requests = 0;
                conn.inflight = Some(Inflight::Run {
                    ack: Some(format!("using {session}")),
                });
                ctx.shards.submit_run_to(
                    ctx.route(&session),
                    &session,
                    Vec::new(),
                    false,
                    ctx.responder(id, Payload::Run),
                );
            }
            Item::Ping => {
                conn.push_ok("pong", ctx.metrics);
            }
            Item::Balance(set) => {
                // Answered from loop state — no shard round trip, so a
                // `balance` line never stalls behind engine work.
                let reply = match set {
                    None => format_balance(&ctx.balancer.status()),
                    Some(mode) => {
                        ctx.balancer.mode = mode;
                        format!("balance mode={mode}")
                    }
                };
                conn.push_ok(&reply, ctx.metrics);
            }
            Item::Reject(e) => {
                conn.push_err(&e, ctx.metrics);
            }
            Item::Subscribe(session, tiles_x, tiles_y) => {
                let (sw, sh) = ctx.scene;
                if sw % tiles_x != 0 || sh % tiles_y != 0 {
                    conn.push_err(
                        &ApiError::invalid(format!(
                            "tile grid {tiles_x}x{tiles_y} does not divide the {sw}x{sh} scene \
                             evenly"
                        )),
                        ctx.metrics,
                    );
                    continue;
                }
                // Re-subscribing replaces the old subscription (possibly
                // of a different session) wholesale: fresh encoder, fresh
                // keyframe.
                if let Some(old) = conn.sub.take() {
                    ctx.streams.unsubscribe(&old.session, id);
                }
                let grid = TileGrid::new(tiles_x, tiles_y, sw / tiles_x, sh / tiles_y);
                ctx.streams.subscribe(session.clone(), id);
                conn.sub = Some(SubState::new(session.clone(), grid));
                // Ack NOW — binary tile frames may enter the outbox as
                // soon as this pump returns (a retained frame services
                // the keyframe immediately), and the text ack must
                // precede them. Then materialize the session and render
                // via an empty *published* run on the owning shard.
                conn.push_ok(
                    &format!("subscribed {session} {tiles_x}x{tiles_y} {sw}x{sh}"),
                    ctx.metrics,
                );
                conn.inflight_requests = 0;
                conn.inflight = Some(Inflight::Run { ack: None });
                ctx.shards.submit_run_to(
                    ctx.route(&session),
                    &session,
                    Vec::new(),
                    true,
                    ctx.responder(id, Payload::Run),
                );
            }
            Item::Unsubscribe => {
                match conn.sub.take() {
                    Some(sub) => {
                        ctx.streams.unsubscribe(&sub.session, id);
                        conn.push_ok(&format!("unsubscribed {}", sub.session), ctx.metrics);
                    }
                    // Idempotent: unsubscribing a non-subscriber is fine.
                    None => conn.push_ok("unsubscribed", ctx.metrics),
                }
            }
            Item::Ack(seq) => {
                if let Some(sub) = conn.sub.as_mut() {
                    sub.last_ack = Some(sub.last_ack.map_or(seq, |a| a.max(seq)));
                }
                // No reply: acks pace the stream; answering them would
                // interleave text frames into the binary tile stream.
            }
            Item::Close | Item::CloseNamed(_) => {
                // Bare `close` drops the connection's current session and
                // falls back to the default; the named form leaves the
                // connection's session pointer alone.
                let closed = match item {
                    Item::CloseNamed(closed) => closed,
                    _ => std::mem::replace(&mut conn.session, EngineHub::default_session()),
                };
                conn.inflight = Some(Inflight::Close {
                    closed: closed.clone(),
                });
                let shard = ctx.route(&closed);
                // The closed session's routing override dies with it: a
                // re-created session of the same name must fall back to
                // hash routing, and the override table must not grow
                // without bound.
                ctx.routes.remove(&closed);
                // An explicit close is what deletes durable state: the
                // client said the session is over, so a restart must
                // not bring it back.
                ctx.drop_checkpoint(&closed);
                ctx.shards
                    .submit_close_to(shard, &closed, ctx.responder(id, closed_payload));
            }
            Item::Migrate(session, to) => {
                // Stall every other item targeting this session until the
                // move lands; the loop clears the flag (and re-pumps) on
                // the Migrated completion.
                ctx.migrating.insert(session.clone());
                conn.inflight = Some(Inflight::Migrate);
                ctx.submit_migration(id, &session, to);
            }
            Item::Stats | Item::ListSessions => {
                // The migration stall was checked before the pop.
                let what = match item {
                    Item::Stats => Gather::Stats,
                    _ => Gather::Sessions,
                };
                conn.inflight = Some(Inflight::Gather {
                    what,
                    waiting: ctx.shards.n_shards(),
                    reports: Vec::new(),
                });
                ctx.shards
                    .submit_report_all(&mut || ctx.responder(id, Payload::Shard));
            }
            Item::Shutdown => {
                conn.inbox.clear();
                conn.queued_requests = 0;
                conn.push_ok("bye", ctx.metrics);
                *ctx.stop = true;
                break;
            }
        }
    }
}

/// Fold a shard result into the connection that was waiting on it,
/// writing whatever frames it resolves.
fn settle_completion(conn: &mut Conn, _id: u64, payload: Payload, ctx: &mut Ctx) {
    match (conn.inflight.take(), payload) {
        (Some(Inflight::Run { ack: Some(ack) }), Payload::Run(_)) => {
            conn.push_ok(&ack, ctx.metrics);
        }
        (Some(Inflight::Run { ack: None }), Payload::Run(done)) => {
            if done.session_dropped {
                // The worker dropped the session (a request panicked);
                // its routing override dies with it, exactly as on a
                // `close`. The run targeted conn.session — a connection
                // has one dispatch in flight and `use` items only pump
                // while idle, so the pointer still names the run's
                // session.
                ctx.routes.remove(&conn.session);
                ctx.drop_checkpoint(&conn.session);
            }
            let outcome = done.outcome;
            let n = conn.inflight_requests;
            for response in &outcome.responses {
                conn.push_ok(&fv_api::format_response(response), ctx.metrics);
            }
            if let Some((idx, e)) = outcome.error {
                conn.push_err(&e, ctx.metrics);
                let skipped = ApiError::invalid(format!(
                    "skipped: request {} earlier in this pipelined run failed ({})",
                    idx + 1,
                    e.code.as_str()
                ));
                for _ in idx + 1..n {
                    conn.push_err(&skipped, ctx.metrics);
                }
            }
            conn.inflight_requests = 0;
        }
        (Some(Inflight::Close { closed }), Payload::Closed) => {
            conn.push_ok(&format!("closed {closed}"), ctx.metrics);
        }
        (
            Some(Inflight::Gather {
                what,
                waiting,
                mut reports,
            }),
            Payload::Shard(report),
        ) => {
            reports.push(report);
            if waiting > 1 {
                conn.inflight = Some(Inflight::Gather {
                    what,
                    waiting: waiting - 1,
                    reports,
                });
            } else {
                reports.sort_by_key(|r| r.shard);
                let reply = match what {
                    Gather::Sessions => sessions_reply(&reports),
                    Gather::Stats => stats_reply(&reports, ctx),
                };
                conn.push_ok(&reply, ctx.metrics);
            }
        }
        // A completion with no (or the wrong) inflight record means the
        // connection was recycled; drop the result, restore nothing.
        (other, _) => conn.inflight = other,
    }
}

/// Merge per-shard session listings into the canonical name-sorted
/// `list-sessions` reply.
fn sessions_reply(reports: &[ShardReport]) -> String {
    let mut entries: Vec<fv_api::SessionEntry> = reports
        .iter()
        .flat_map(|r| {
            r.sessions.iter().map(|s| fv_api::SessionEntry {
                name: s.name.clone(),
                shard: r.shard,
                n_datasets: s.n_datasets,
            })
        })
        .collect();
    entries.sort_by(|a, b| a.name.cmp(&b.name));
    fv_api::format_sessions_reply(&entries)
}

/// Merge per-shard reports with the loop's own counters and the shared
/// cache's gauges into the `stats` reply.
fn stats_reply(reports: &[ShardReport], ctx: &mut Ctx) -> String {
    let depths = ctx.shards.queue_depths();
    let cache = ctx.shards.cache_stats();
    let pids = ctx.shards.pids();
    let shards: Vec<ShardStats> = reports
        .iter()
        .map(|r| ShardStats {
            shard: r.shard,
            pid: pids.get(r.shard).copied().unwrap_or(0),
            sessions: r.sessions.len(),
            queued: depths.get(r.shard).copied().unwrap_or(0),
            runs: r.runs,
            requests: r.requests,
            max_run: r.max_run,
            latency: r.latency.clone(),
        })
        .collect();
    let stats = ServerStats {
        backend: ctx.shards.kind().to_string(),
        connections: ctx.n_conns,
        sessions: shards.iter().map(|s| s.sessions).sum(),
        // The stats frame itself is about to be written; count it so the
        // reply is self-consistent (frames_out includes this frame).
        frames_in: ctx.metrics.frames_in,
        frames_out: ctx.metrics.frames_out + 1,
        busy_rejections: ctx.metrics.busy_rejections,
        garbage_frames: ctx.metrics.garbage_frames,
        dirty_disconnects: ctx.metrics.dirty_disconnects,
        runs: shards.iter().map(|s| s.runs).sum(),
        requests: shards.iter().map(|s| s.requests).sum(),
        max_run: shards.iter().map(|s| s.max_run).max().unwrap_or(0),
        cache_entries: cache.entries,
        cache_hits: cache.hits,
        cache_misses: cache.misses,
        cache_evictions: cache.evictions,
        balancer_ticks: ctx.balancer.ticks(),
        balancer_moves: ctx.balancer.counters().1,
        balancer_failed: ctx.balancer.counters().2,
        recovered: ctx.recovered,
        stream: {
            let m = ctx.streams.metrics;
            StreamStats {
                subscribers: ctx.streams.n_subscribers(),
                frames: m.frames,
                bytes: m.bytes,
                pixels: m.pixels,
                coalesced: m.coalesced,
                dropped: m.dropped,
                // What shipping those frames would cost on the wall's
                // gigabit interconnect — bytes-shipped priced against
                // pixels-painted, the paper's distribution-cost axis.
                link_us: fv_wall::net::NetworkModel::gigabit()
                    .frame_time(m.frames as usize, m.bytes as usize, 1)
                    .as_micros() as u64,
            }
        },
        shards,
    };
    crate::metrics::format_stats(&stats)
}

// ── fv-stream fan-out ───────────────────────────────────────────────────

/// Fan a freshly rendered wall frame out to every subscriber of its
/// session: retain the framebuffer (keyframes and coalesced deltas are
/// cut from it at drain time), fold the run's damage into each
/// subscriber's pending set — or drop-to-keyframe a backlogged one — and
/// drain whoever has room.
fn publish_frame(
    frame: PubFrame,
    conns: &mut BTreeMap<u64, Conn>,
    streams: &mut StreamPlane,
    metrics: &mut LoopMetrics,
) {
    let PubFrame {
        session,
        wall,
        damage,
    } = frame;
    let fb = Rc::new(wall);
    let subs = match streams.session_mut(&session) {
        // Every subscriber left between dispatch and completion.
        None => return,
        Some(entry) => {
            entry.last = Some(Rc::clone(&fb));
            entry.subscribers.iter().copied().collect::<Vec<u64>>()
        }
    };
    let mut dead = Vec::new();
    for cid in subs {
        let Some(conn) = conns.get_mut(&cid) else {
            continue;
        };
        let backlogged = conn.out_pending() >= OUTBOX_HIGH_WATER;
        if let Some(sub) = conn.sub.as_mut() {
            if backlogged || sub.ack_lagging() {
                // Never queue behind a slow peer: forget the deltas and
                // re-sync from a keyframe once the outbox drains.
                if !sub.need_keyframe {
                    sub.need_keyframe = true;
                    sub.pending.clear();
                    streams.metrics.dropped += 1;
                }
            } else if !sub.need_keyframe {
                for (tile, rect) in tile_damage(sub.encoder.grid(), &damage) {
                    match sub.pending.entry(tile) {
                        std::collections::btree_map::Entry::Vacant(v) => {
                            v.insert(rect);
                        }
                        std::collections::btree_map::Entry::Occupied(mut o) => {
                            // Two updates to one tile collapse into one
                            // bounding rect — the retained framebuffer
                            // already contains both, so nothing is lost.
                            let merged = union_rect(o.get(), &rect);
                            o.insert(merged);
                            streams.metrics.coalesced += 1;
                        }
                    }
                }
            }
        }
        drain_stream(conn, &fb, streams);
        if !conn.flush() || conn.finished() {
            dead.push(cid);
        }
    }
    for cid in dead {
        drop_conn(conns, streams, cid, metrics);
    }
}

/// Encode whatever the subscriber is owed — a keyframe if one is due,
/// otherwise its coalesced pending deltas — into its outbox. A
/// backlogged outbox defers everything (the pending set keeps
/// coalescing; `service_stream` retries when it drains).
fn drain_stream(conn: &mut Conn, fb: &Framebuffer, streams: &mut StreamPlane) {
    if conn.out_pending() >= OUTBOX_HIGH_WATER {
        return;
    }
    let frames = match conn.sub.as_mut() {
        None => return,
        Some(sub) => {
            if sub.ack_lagging() {
                // A self-pacing subscriber that has not caught up gets
                // nothing new; the ack that catches it up is followed by
                // a `service_stream` call that resumes the stream.
                return;
            }
            if sub.need_keyframe {
                sub.pending.clear();
                sub.need_keyframe = false;
                sub.encoder.keyframe(fb)
            } else if !sub.pending.is_empty() {
                let tiles: Vec<_> = std::mem::take(&mut sub.pending).into_iter().collect();
                sub.encoder.delta(fb, &tiles)
            } else {
                return;
            }
        }
    };
    for f in &frames {
        streams.metrics.frames += 1;
        streams.metrics.bytes += f.encoded_len() as u64;
        streams.metrics.pixels += f.rect.area() as u64;
        f.encode_into(&mut conn.out);
    }
}

/// Give a subscriber its deferred frames (keyframe re-sync or pending
/// deltas) from the session's retained framebuffer, if there is one.
fn service_stream(conn: &mut Conn, streams: &mut StreamPlane) {
    let Some(session) = conn.sub.as_ref().map(|s| s.session.clone()) else {
        return;
    };
    let Some(fb) = streams.last_frame(&session) else {
        return;
    };
    drain_stream(conn, &fb, streams);
}

/// Remove a connection, deregistering its subscription — every removal
/// site must go through here or the registry leaks dead subscriber ids.
/// A connection that still owed work (queued or in-flight requests, or
/// unflushed response bytes) counts as a dirty disconnect; a graceful
/// EOF after every reply drained does not.
fn drop_conn(
    conns: &mut BTreeMap<u64, Conn>,
    streams: &mut StreamPlane,
    id: u64,
    metrics: &mut LoopMetrics,
) {
    if let Some(conn) = conns.remove(&id) {
        if conn.queued_requests > 0
            || conn.inflight.is_some()
            || !conn.inbox.is_empty()
            || conn.out_pending() > 0
        {
            metrics.dirty_disconnects += 1;
        }
        if let Some(sub) = conn.sub {
            streams.unsubscribe(&sub.session, id);
        }
    }
}
