//! Server observability: the typed [`ServerStats`] snapshot behind the
//! `stats` control line, plus its canonical wire text.
//!
//! The reply is one multi-line `ok` frame in the same `key=value` shape
//! as `fv-api` response text, so transcripts stay line-parseable:
//!
//! ```text
//! stats shards=2 connections=1 sessions=3 frames_in=12 frames_out=11 busy=0 runs=5 requests=9 max_run=4
//!   shard 0 sessions=2 queued=0 runs=3 requests=6 max_run=4
//!   shard 1 sessions=1 queued=0 runs=2 requests=3 max_run=2
//! ```
//!
//! [`format_stats`] and [`parse_stats`] are exact inverses — the typed
//! client (`Client::stats`, `fvtool stats --remote`) round-trips through
//! them, mirroring how responses flow through `format_response` /
//! `parse_response`.

use fv_api::decode::{field, num};
use fv_api::ApiError;

/// One worker shard's slice of a [`ServerStats`] snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Live sessions owned by the shard's hub.
    pub sessions: usize,
    /// Jobs queued on the shard channel, not yet picked up — the
    /// backpressure gauge. A healthy idle server reports 0 everywhere.
    pub queued: usize,
    /// Non-empty request runs executed since startup.
    pub runs: u64,
    /// Requests executed across those runs.
    pub requests: u64,
    /// Largest single run (requests batched into one layout pass).
    pub max_run: usize,
}

/// Snapshot answered to the `stats` control line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerStats {
    /// Live connections (the asking connection included).
    pub connections: usize,
    /// Live sessions across all shards.
    pub sessions: usize,
    /// Wire items received (requests + control lines; blank/comment
    /// lines excluded), faults included.
    pub frames_in: u64,
    /// Response frames written (`ok` + `err`).
    pub frames_out: u64,
    /// Requests rejected with `E_BUSY` by the per-connection queue bound.
    pub busy_rejections: u64,
    /// Sum of per-shard executed runs.
    pub runs: u64,
    /// Sum of per-shard executed requests.
    pub requests: u64,
    /// Largest run across all shards.
    pub max_run: usize,
    /// Per-shard breakdown, in shard order.
    pub shards: Vec<ShardStats>,
}

/// Canonical reply text for a `stats` control line; inverse of
/// [`parse_stats`].
pub fn format_stats(stats: &ServerStats) -> String {
    let mut out = format!(
        "stats shards={} connections={} sessions={} frames_in={} frames_out={} busy={} runs={} requests={} max_run={}",
        stats.shards.len(),
        stats.connections,
        stats.sessions,
        stats.frames_in,
        stats.frames_out,
        stats.busy_rejections,
        stats.runs,
        stats.requests,
        stats.max_run,
    );
    for s in &stats.shards {
        out.push_str(&format!(
            "\n  shard {} sessions={} queued={} runs={} requests={} max_run={}",
            s.shard, s.sessions, s.queued, s.runs, s.requests, s.max_run
        ));
    }
    out
}

/// Parse a `stats` reply back into the typed snapshot.
pub fn parse_stats(text: &str) -> Result<ServerStats, ApiError> {
    let mut lines = text.lines();
    let head = lines
        .next()
        .ok_or_else(|| ApiError::parse("empty stats reply"))?;
    let tail = head
        .strip_prefix("stats ")
        .ok_or_else(|| ApiError::parse(format!("not a stats reply: {head:?}")))?;
    let n_shards: usize = num(field(tail, "shards")?, "shards")?;
    let mut shards = Vec::with_capacity(n_shards);
    for line in lines {
        let row = line
            .strip_prefix("  shard ")
            .ok_or_else(|| ApiError::parse(format!("unexpected stats row {line:?}")))?;
        let (idx, rest) = row
            .split_once(' ')
            .ok_or_else(|| ApiError::parse("shard row needs fields"))?;
        shards.push(ShardStats {
            shard: num(idx, "shard")?,
            sessions: num(field(rest, "sessions")?, "sessions")?,
            queued: num(field(rest, "queued")?, "queued")?,
            runs: num(field(rest, "runs")?, "runs")?,
            requests: num(field(rest, "requests")?, "requests")?,
            max_run: num(field(rest, "max_run")?, "max_run")?,
        });
    }
    if shards.len() != n_shards {
        return Err(ApiError::parse("shard row count disagrees with header"));
    }
    Ok(ServerStats {
        connections: num(field(tail, "connections")?, "connections")?,
        sessions: num(field(tail, "sessions")?, "sessions")?,
        frames_in: num(field(tail, "frames_in")?, "frames_in")?,
        frames_out: num(field(tail, "frames_out")?, "frames_out")?,
        busy_rejections: num(field(tail, "busy")?, "busy")?,
        runs: num(field(tail, "runs")?, "runs")?,
        requests: num(field(tail, "requests")?, "requests")?,
        max_run: num(field(tail, "max_run")?, "max_run")?,
        shards,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ServerStats {
        ServerStats {
            connections: 3,
            sessions: 5,
            frames_in: 120,
            frames_out: 118,
            busy_rejections: 2,
            runs: 40,
            requests: 90,
            max_run: 12,
            shards: vec![
                ShardStats {
                    shard: 0,
                    sessions: 3,
                    queued: 0,
                    runs: 25,
                    requests: 60,
                    max_run: 12,
                },
                ShardStats {
                    shard: 1,
                    sessions: 2,
                    queued: 1,
                    runs: 15,
                    requests: 30,
                    max_run: 7,
                },
            ],
        }
    }

    #[test]
    fn stats_text_is_stable_and_roundtrips() {
        let s = sample();
        let text = format_stats(&s);
        assert_eq!(
            text,
            "stats shards=2 connections=3 sessions=5 frames_in=120 frames_out=118 busy=2 \
             runs=40 requests=90 max_run=12\n  \
             shard 0 sessions=3 queued=0 runs=25 requests=60 max_run=12\n  \
             shard 1 sessions=2 queued=1 runs=15 requests=30 max_run=7"
        );
        assert_eq!(parse_stats(&text).unwrap(), s);
    }

    #[test]
    fn empty_shard_list_roundtrips() {
        let s = ServerStats {
            shards: Vec::new(),
            ..sample()
        };
        assert_eq!(parse_stats(&format_stats(&s)).unwrap(), s);
    }

    #[test]
    fn garbage_is_a_parse_error() {
        for bad in [
            "",
            "wat",
            "stats shards=2 connections=1",
            "stats shards=1 connections=1 sessions=0 frames_in=0 frames_out=0 busy=0 runs=0 requests=0 max_run=0",
        ] {
            assert!(parse_stats(bad).is_err(), "{bad:?} must not parse");
        }
    }
}
