//! Server observability: the typed [`ServerStats`] snapshot behind the
//! `stats` control line, plus its canonical wire text.
//!
//! The reply is one multi-line `ok` frame in the same `key=value` shape
//! as `fv-api` response text, so transcripts stay line-parseable:
//!
//! ```text
//! stats shards=2 backend=threads connections=1 sessions=3 frames_in=12 frames_out=11 busy=0 garbage=0 disconnects=0 runs=5 requests=9 max_run=4 cache_entries=1 cache_hits=63 cache_misses=1 cache_evictions=0
//!   stream subscribers=2 frames=48 bytes=1843298 pixels=614400 coalesced=3 dropped=1 link_us=19546
//!   shard 0 pid=4242 sessions=2 queued=0 runs=3 requests=6 max_run=4 lat_us=0,2,3,1,0,0,0,0,0,0 lat_max_us=812
//!   shard 1 pid=4242 sessions=1 queued=0 runs=2 requests=3 max_run=2 lat_us=0,1,2,0,0,0,0,0,0,0 lat_max_us=401
//! ```
//!
//! `backend` names the shard backend kind (`threads` or `procs`), and
//! each shard row's `pid` is the OS process serving that shard — the
//! server's own pid for every thread shard, the child worker's pid for a
//! process shard. `cache_*` are the gauges of the backend's dataset
//! cache(s) ([`fv_api::DatasetCache`]), aggregated across child caches
//! in the process backend: `cache_entries` live cached parses,
//! `cache_hits`/`cache_misses` loads served shared vs. parsed, and
//! `cache_evictions` entries replaced (file changed on disk) or pruned
//! (last holder gone). `lat_us` is the per-shard request-latency
//! histogram: one count per [`LATENCY_BUCKETS_US`] bucket plus a final
//! overflow bucket, with `lat_max_us` the largest single request.
//!
//! [`format_stats`] and [`parse_stats`] are exact inverses — the typed
//! client (`Client::stats`, `fvtool stats --remote`) round-trips through
//! them, mirroring how responses flow through `format_response` /
//! `parse_response`.

use fv_api::decode::{field, num};
use fv_api::ApiError;
use std::time::Duration;

/// Upper bounds (inclusive, in microseconds) of the per-request latency
/// histogram buckets. A tenth, unbounded overflow bucket catches
/// everything slower than the last bound.
pub const LATENCY_BUCKETS_US: [u64; 9] =
    [50, 100, 250, 500, 1_000, 5_000, 25_000, 100_000, 1_000_000];

/// Bucket count of [`LatencyHistogram`]: the bounded buckets plus the
/// overflow bucket.
pub const LATENCY_BUCKET_COUNT: usize = LATENCY_BUCKETS_US.len() + 1;

/// Fixed-bucket per-request latency histogram (see
/// [`LATENCY_BUCKETS_US`]). Cheap to record into, mergeable, and
/// losslessly wire-representable as a count list.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LatencyHistogram {
    /// One count per bucket, overflow last.
    pub counts: [u64; LATENCY_BUCKET_COUNT],
    /// Largest single observation, in microseconds.
    pub max_us: u64,
}

impl LatencyHistogram {
    /// Empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Record one request's wall-clock latency.
    pub fn record(&mut self, latency: Duration) {
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        let bucket = LATENCY_BUCKETS_US
            .iter()
            .position(|&bound| us <= bound)
            .unwrap_or(LATENCY_BUCKET_COUNT - 1);
        self.counts[bucket] += 1;
        self.max_us = self.max_us.max(us);
    }

    /// Total observations across all buckets.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.max_us = self.max_us.max(other.max_us);
    }

    pub(crate) fn format(&self) -> String {
        self.counts
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(",")
    }

    pub(crate) fn parse(counts: &str, max_us: &str) -> Result<LatencyHistogram, ApiError> {
        let parsed: Vec<u64> = counts
            .split(',')
            .map(|c| num(c, "latency bucket count"))
            .collect::<Result<_, _>>()?;
        let counts: [u64; LATENCY_BUCKET_COUNT] = parsed.try_into().map_err(|v: Vec<u64>| {
            ApiError::parse(format!(
                "latency histogram needs {LATENCY_BUCKET_COUNT} buckets, got {}",
                v.len()
            ))
        })?;
        Ok(LatencyHistogram {
            counts,
            max_us: num(max_us, "lat_max_us")?,
        })
    }
}

/// One worker shard's slice of a [`ServerStats`] snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// OS process serving this shard: the server's own pid for a thread
    /// shard, the child worker's pid for a process shard.
    pub pid: u32,
    /// Live sessions owned by the shard's hub.
    pub sessions: usize,
    /// Jobs queued on the shard channel, not yet picked up — the
    /// backpressure gauge. A healthy idle server reports 0 everywhere.
    pub queued: usize,
    /// Non-empty request runs executed since startup.
    pub runs: u64,
    /// Requests *attempted* across those runs (a run's failing request
    /// counts; the skipped tail after it does not). Always equals
    /// `latency.total()` — one observation per attempted request.
    pub requests: u64,
    /// Largest single run (requests batched into one layout pass).
    pub max_run: usize,
    /// Per-request latency histogram of every request this shard
    /// attempted.
    pub latency: LatencyHistogram,
}

/// The streaming plane's slice of a [`ServerStats`] snapshot: the
/// `stream` row. Counters cover every subscriber since startup;
/// `link_us` prices the bytes actually shipped on the paper's gigabit
/// wall interconnect model (`fv_wall::net::NetworkModel::gigabit`), so
/// `stats` reports shipping cost next to painting cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamStats {
    /// Live subscriptions right now (a connection holds at most one).
    pub subscribers: usize,
    /// Tile frames written to subscriber outboxes (key + delta).
    pub frames: u64,
    /// Encoded tile-frame bytes written (headers + pixel payloads).
    pub bytes: u64,
    /// Pixels shipped across those frames (sum of frame rect areas).
    pub pixels: u64,
    /// Pending same-tile deltas that collapsed into one frame because the
    /// subscriber had not drained yet.
    pub coalesced: u64,
    /// Publishes discarded for a backlogged subscriber, repaid with a
    /// fresh keyframe once its outbox drained.
    pub dropped: u64,
    /// Modeled time to ship `frames`/`bytes` over one gigabit wall link,
    /// in microseconds.
    pub link_us: u64,
}

/// Snapshot answered to the `stats` control line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerStats {
    /// Shard backend kind: `threads` (in-process workers) or `procs`
    /// (child worker processes).
    pub backend: String,
    /// Live connections (the asking connection included).
    pub connections: usize,
    /// Live sessions across all shards.
    pub sessions: usize,
    /// Wire items received (requests + control lines; blank/comment
    /// lines excluded), faults included.
    pub frames_in: u64,
    /// Response frames written (`ok` + `err`).
    pub frames_out: u64,
    /// Requests rejected with `E_BUSY` by the per-connection queue bound.
    pub busy_rejections: u64,
    /// Garbage frames accepted then rejected: request lines that failed
    /// framing (over [`crate::frame::MAX_LINE`] or not UTF-8) and were
    /// answered with a typed `err` instead of tearing the connection
    /// down. The soak harness's chaos injectors drive this counter.
    pub garbage_frames: u64,
    /// Connections that disconnected with unanswered work still pending
    /// (queued, in flight, or buffered responses unflushed) — mid-run
    /// drops, as injected by the soak harness. Clean closes at a
    /// request boundary are not counted.
    pub dirty_disconnects: u64,
    /// Sum of per-shard executed runs.
    pub runs: u64,
    /// Sum of per-shard attempted requests (see [`ShardStats::requests`]).
    pub requests: u64,
    /// Largest run across all shards.
    pub max_run: usize,
    /// Live entries in the server-wide shared dataset cache.
    pub cache_entries: usize,
    /// Dataset loads served from the shared cache (no parse).
    pub cache_hits: u64,
    /// Dataset loads that parsed a file (first load or post-eviction).
    pub cache_misses: u64,
    /// Cache entries replaced (file changed) or pruned (last holder
    /// dropped). Never invalidates a live session's handle.
    pub cache_evictions: u64,
    /// Rebalancer planning intervals observed. Ticks run in `off` mode
    /// too (keeping load-delta baselines fresh for a runtime flip to
    /// auto); only `auto` mode plans moves.
    pub balancer_ticks: u64,
    /// Automatic migrations completed by the rebalancer. Operator
    /// `migrate` lines are not counted here.
    pub balancer_moves: u64,
    /// Automatic migrations that failed (the session was restored to its
    /// source shard) or were skipped as stale.
    pub balancer_failed: u64,
    /// Sessions re-installed from the state directory's checkpoints at
    /// boot. Zero when the server runs without `--state-dir` or started
    /// against an empty store; stale or corrupt checkpoints are skipped
    /// (and warned about), not counted.
    pub recovered: u64,
    /// The streaming plane's counters (the `stream` row).
    pub stream: StreamStats,
    /// Per-shard breakdown, in shard order.
    pub shards: Vec<ShardStats>,
}

/// Canonical reply text for a `stats` control line; inverse of
/// [`parse_stats`].
pub fn format_stats(stats: &ServerStats) -> String {
    let mut out = format!(
        "stats shards={} backend={} connections={} sessions={} frames_in={} frames_out={} busy={} garbage={} disconnects={} runs={} requests={} max_run={} cache_entries={} cache_hits={} cache_misses={} cache_evictions={} balancer_ticks={} balancer_moves={} balancer_failed={} recovered={}",
        stats.shards.len(),
        stats.backend,
        stats.connections,
        stats.sessions,
        stats.frames_in,
        stats.frames_out,
        stats.busy_rejections,
        stats.garbage_frames,
        stats.dirty_disconnects,
        stats.runs,
        stats.requests,
        stats.max_run,
        stats.cache_entries,
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_evictions,
        stats.balancer_ticks,
        stats.balancer_moves,
        stats.balancer_failed,
        stats.recovered,
    );
    out.push_str(&format!(
        "\n  stream subscribers={} frames={} bytes={} pixels={} coalesced={} dropped={} link_us={}",
        stats.stream.subscribers,
        stats.stream.frames,
        stats.stream.bytes,
        stats.stream.pixels,
        stats.stream.coalesced,
        stats.stream.dropped,
        stats.stream.link_us,
    ));
    for s in &stats.shards {
        out.push_str(&format!(
            "\n  shard {} pid={} sessions={} queued={} runs={} requests={} max_run={} lat_us={} lat_max_us={}",
            s.shard,
            s.pid,
            s.sessions,
            s.queued,
            s.runs,
            s.requests,
            s.max_run,
            s.latency.format(),
            s.latency.max_us
        ));
    }
    out
}

/// Parse a `stats` reply back into the typed snapshot.
pub fn parse_stats(text: &str) -> Result<ServerStats, ApiError> {
    let mut lines = text.lines();
    let head = lines
        .next()
        .ok_or_else(|| ApiError::parse("empty stats reply"))?;
    let tail = head
        .strip_prefix("stats ")
        .ok_or_else(|| ApiError::parse(format!("not a stats reply: {head:?}")))?;
    let n_shards: usize = num(field(tail, "shards")?, "shards")?;
    let stream_line = lines
        .next()
        .ok_or_else(|| ApiError::parse("stats reply is missing its stream row"))?;
    let stream_tail = stream_line
        .strip_prefix("  stream ")
        .ok_or_else(|| ApiError::parse(format!("expected stream row, got {stream_line:?}")))?;
    let stream = StreamStats {
        subscribers: num(field(stream_tail, "subscribers")?, "subscribers")?,
        frames: num(field(stream_tail, "frames")?, "frames")?,
        bytes: num(field(stream_tail, "bytes")?, "bytes")?,
        pixels: num(field(stream_tail, "pixels")?, "pixels")?,
        coalesced: num(field(stream_tail, "coalesced")?, "coalesced")?,
        dropped: num(field(stream_tail, "dropped")?, "dropped")?,
        link_us: num(field(stream_tail, "link_us")?, "link_us")?,
    };
    let mut shards = Vec::with_capacity(n_shards);
    for line in lines {
        let row = line
            .strip_prefix("  shard ")
            .ok_or_else(|| ApiError::parse(format!("unexpected stats row {line:?}")))?;
        let (idx, rest) = row
            .split_once(' ')
            .ok_or_else(|| ApiError::parse("shard row needs fields"))?;
        shards.push(ShardStats {
            shard: num(idx, "shard")?,
            pid: num(field(rest, "pid")?, "pid")?,
            sessions: num(field(rest, "sessions")?, "sessions")?,
            queued: num(field(rest, "queued")?, "queued")?,
            runs: num(field(rest, "runs")?, "runs")?,
            requests: num(field(rest, "requests")?, "requests")?,
            max_run: num(field(rest, "max_run")?, "max_run")?,
            latency: LatencyHistogram::parse(field(rest, "lat_us")?, field(rest, "lat_max_us")?)?,
        });
    }
    if shards.len() != n_shards {
        return Err(ApiError::parse("shard row count disagrees with header"));
    }
    Ok(ServerStats {
        backend: field(tail, "backend")?.to_string(),
        connections: num(field(tail, "connections")?, "connections")?,
        sessions: num(field(tail, "sessions")?, "sessions")?,
        frames_in: num(field(tail, "frames_in")?, "frames_in")?,
        frames_out: num(field(tail, "frames_out")?, "frames_out")?,
        busy_rejections: num(field(tail, "busy")?, "busy")?,
        garbage_frames: num(field(tail, "garbage")?, "garbage")?,
        dirty_disconnects: num(field(tail, "disconnects")?, "disconnects")?,
        runs: num(field(tail, "runs")?, "runs")?,
        requests: num(field(tail, "requests")?, "requests")?,
        max_run: num(field(tail, "max_run")?, "max_run")?,
        cache_entries: num(field(tail, "cache_entries")?, "cache_entries")?,
        cache_hits: num(field(tail, "cache_hits")?, "cache_hits")?,
        cache_misses: num(field(tail, "cache_misses")?, "cache_misses")?,
        cache_evictions: num(field(tail, "cache_evictions")?, "cache_evictions")?,
        balancer_ticks: num(field(tail, "balancer_ticks")?, "balancer_ticks")?,
        balancer_moves: num(field(tail, "balancer_moves")?, "balancer_moves")?,
        balancer_failed: num(field(tail, "balancer_failed")?, "balancer_failed")?,
        recovered: num(field(tail, "recovered")?, "recovered")?,
        stream,
        shards,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(pairs: &[(usize, u64)], max_us: u64) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for &(bucket, count) in pairs {
            h.counts[bucket] = count;
        }
        h.max_us = max_us;
        h
    }

    fn sample() -> ServerStats {
        ServerStats {
            backend: "threads".into(),
            connections: 3,
            sessions: 5,
            frames_in: 120,
            frames_out: 118,
            busy_rejections: 2,
            garbage_frames: 4,
            dirty_disconnects: 3,
            runs: 40,
            requests: 90,
            max_run: 12,
            cache_entries: 1,
            cache_hits: 63,
            cache_misses: 1,
            cache_evictions: 0,
            balancer_ticks: 7,
            balancer_moves: 2,
            balancer_failed: 1,
            recovered: 4,
            stream: StreamStats {
                subscribers: 2,
                frames: 48,
                bytes: 1_843_298,
                pixels: 614_400,
                coalesced: 3,
                dropped: 1,
                link_us: 19_546,
            },
            shards: vec![
                ShardStats {
                    shard: 0,
                    pid: 4242,
                    sessions: 3,
                    queued: 0,
                    runs: 25,
                    requests: 60,
                    max_run: 12,
                    latency: hist(&[(0, 50), (2, 9), (5, 1)], 3_120),
                },
                ShardStats {
                    shard: 1,
                    pid: 4301,
                    sessions: 2,
                    queued: 1,
                    runs: 15,
                    requests: 30,
                    max_run: 7,
                    latency: hist(&[(1, 30)], 99),
                },
            ],
        }
    }

    #[test]
    fn stats_text_is_stable_and_roundtrips() {
        let s = sample();
        let text = format_stats(&s);
        assert_eq!(
            text,
            "stats shards=2 backend=threads connections=3 sessions=5 frames_in=120 \
             frames_out=118 busy=2 \
             garbage=4 disconnects=3 runs=40 requests=90 max_run=12 \
             cache_entries=1 cache_hits=63 cache_misses=1 cache_evictions=0 \
             balancer_ticks=7 balancer_moves=2 balancer_failed=1 recovered=4\n  \
             stream subscribers=2 frames=48 bytes=1843298 pixels=614400 \
             coalesced=3 dropped=1 link_us=19546\n  \
             shard 0 pid=4242 sessions=3 queued=0 runs=25 requests=60 max_run=12 \
             lat_us=50,0,9,0,0,1,0,0,0,0 lat_max_us=3120\n  \
             shard 1 pid=4301 sessions=2 queued=1 runs=15 requests=30 max_run=7 \
             lat_us=0,30,0,0,0,0,0,0,0,0 lat_max_us=99"
        );
        assert_eq!(parse_stats(&text).unwrap(), s);
    }

    #[test]
    fn empty_shard_list_roundtrips() {
        let s = ServerStats {
            shards: Vec::new(),
            ..sample()
        };
        assert_eq!(parse_stats(&format_stats(&s)).unwrap(), s);
    }

    #[test]
    fn histogram_buckets_by_bound_and_tracks_max() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_micros(10)); // bucket 0 (≤50)
        h.record(Duration::from_micros(50)); // bucket 0 (inclusive bound)
        h.record(Duration::from_micros(51)); // bucket 1 (≤100)
        h.record(Duration::from_millis(2)); // bucket 5 (≤5000us)
        h.record(Duration::from_secs(5)); // overflow bucket
        assert_eq!(h.counts[0], 2);
        assert_eq!(h.counts[1], 1);
        assert_eq!(h.counts[5], 1);
        assert_eq!(h.counts[LATENCY_BUCKET_COUNT - 1], 1);
        assert_eq!(h.total(), 5);
        assert_eq!(h.max_us, 5_000_000);
        let mut merged = LatencyHistogram::new();
        merged.merge(&h);
        merged.merge(&h);
        assert_eq!(merged.total(), 10);
        assert_eq!(merged.max_us, h.max_us);
    }

    #[test]
    fn garbage_is_a_parse_error() {
        for bad in [
            "",
            "wat",
            "stats shards=2 connections=1",
            // pre-balancer header (missing balancer_* fields)
            "stats shards=0 connections=1 sessions=0 frames_in=0 frames_out=0 busy=0 runs=0 requests=0 max_run=0 cache_entries=0 cache_hits=0 cache_misses=0 cache_evictions=0",
            // pre-stream reply (balancer-era header with no stream row)
            "stats shards=0 connections=1 sessions=0 frames_in=0 frames_out=0 busy=0 runs=0 requests=0 max_run=0 cache_entries=0 cache_hits=0 cache_misses=0 cache_evictions=0 balancer_ticks=0 balancer_moves=0 balancer_failed=0",
            // pre-soak header (missing garbage=/disconnects= counters)
            "stats shards=0 connections=1 sessions=0 frames_in=0 frames_out=0 busy=0 runs=0 requests=0 max_run=0 cache_entries=0 cache_hits=0 cache_misses=0 cache_evictions=0 balancer_ticks=0 balancer_moves=0 balancer_failed=0\n  stream subscribers=0 frames=0 bytes=0 pixels=0 coalesced=0 dropped=0 link_us=0",
            // shard row where the stream row belongs
            "stats shards=1 connections=1 sessions=0 frames_in=0 frames_out=0 busy=0 runs=0 requests=0 max_run=0 cache_entries=0 cache_hits=0 cache_misses=0 cache_evictions=0 balancer_ticks=0 balancer_moves=0 balancer_failed=0\n  shard 0 sessions=0 queued=0 runs=0 requests=0 max_run=0 lat_us=0,0,0,0,0,0,0,0,0,0 lat_max_us=0",
            // stream row with a missing field
            "stats shards=0 connections=1 sessions=0 frames_in=0 frames_out=0 busy=0 runs=0 requests=0 max_run=0 cache_entries=0 cache_hits=0 cache_misses=0 cache_evictions=0 balancer_ticks=0 balancer_moves=0 balancer_failed=0\n  stream subscribers=0 frames=0 bytes=0",
            // shard row with a short histogram
            "stats shards=1 backend=threads connections=1 sessions=0 frames_in=0 frames_out=0 busy=0 garbage=0 disconnects=0 runs=0 requests=0 max_run=0 cache_entries=0 cache_hits=0 cache_misses=0 cache_evictions=0 balancer_ticks=0 balancer_moves=0 balancer_failed=0\n  stream subscribers=0 frames=0 bytes=0 pixels=0 coalesced=0 dropped=0 link_us=0\n  shard 0 pid=1 sessions=0 queued=0 runs=0 requests=0 max_run=0 lat_us=0,0 lat_max_us=0",
            // pre-recovery header (missing the recovered= counter)
            "stats shards=0 backend=threads connections=1 sessions=0 frames_in=0 frames_out=0 busy=0 garbage=0 disconnects=0 runs=0 requests=0 max_run=0 cache_entries=0 cache_hits=0 cache_misses=0 cache_evictions=0 balancer_ticks=0 balancer_moves=0 balancer_failed=0\n  stream subscribers=0 frames=0 bytes=0 pixels=0 coalesced=0 dropped=0 link_us=0",
            // pre-process-shards header (no backend= kind, no shard pid=)
            "stats shards=1 connections=1 sessions=0 frames_in=0 frames_out=0 busy=0 garbage=0 disconnects=0 runs=0 requests=0 max_run=0 cache_entries=0 cache_hits=0 cache_misses=0 cache_evictions=0 balancer_ticks=0 balancer_moves=0 balancer_failed=0\n  stream subscribers=0 frames=0 bytes=0 pixels=0 coalesced=0 dropped=0 link_us=0\n  shard 0 sessions=0 queued=0 runs=0 requests=0 max_run=0 lat_us=0,0,0,0,0,0,0,0,0,0 lat_max_us=0",
        ] {
            assert!(parse_stats(bad).is_err(), "{bad:?} must not parse");
        }
    }
}
