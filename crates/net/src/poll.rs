//! Minimal readiness polling for the event-loop server — `poll(2)` via a
//! direct FFI declaration on Linux (std already links libc; no external
//! crate needed in this offline workspace), with a portable fallback that
//! degrades to a short-sleep scan elsewhere.
//!
//! The interface is deliberately tiny: the caller rebuilds the interest
//! set every iteration (hundreds of descriptors at most — rebuilding is
//! cheaper than maintaining registration state) and reads per-entry
//! readiness back out. Level-triggered semantics: an entry stays readable
//! until its bytes are consumed, so a loop that caps per-iteration reads
//! for fairness never loses data.

use std::io;
use std::os::fd::RawFd;

/// One descriptor's interest (in) and readiness (out).
#[derive(Debug, Clone, Copy)]
pub(crate) struct PollEntry {
    pub fd: RawFd,
    /// Interest: wake when readable.
    pub want_read: bool,
    /// Interest: wake when writable.
    pub want_write: bool,
    /// Result: data (or EOF) can be read without blocking.
    pub readable: bool,
    /// Result: a write would make progress.
    pub writable: bool,
    /// Result: peer hung up or the descriptor errored — the owner should
    /// attempt I/O and observe the failure.
    pub hangup: bool,
}

impl PollEntry {
    pub fn new(fd: RawFd, want_read: bool, want_write: bool) -> Self {
        PollEntry {
            fd,
            want_read,
            want_write,
            readable: false,
            writable: false,
            hangup: false,
        }
    }
}

/// Block until at least one entry is ready or `timeout_ms` elapses
/// (`timeout_ms < 0` = wait indefinitely). Fills the `readable` /
/// `writable` / `hangup` result fields; returns the ready count.
pub(crate) fn wait(entries: &mut [PollEntry], timeout_ms: i32) -> io::Result<usize> {
    imp::wait(entries, timeout_ms)
}

#[cfg(target_os = "linux")]
mod imp {
    use super::PollEntry;
    use std::io;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;
    const POLLNVAL: i16 = 0x020;

    /// `struct pollfd` from `<poll.h>`.
    #[repr(C)]
    struct RawPollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    // SAFETY: the declaration matches the libc prototype — `RawPollFd`
    // is `#[repr(C)]` and field-identical to `struct pollfd`, and
    // `nfds_t` is `unsigned long` on Linux.
    unsafe extern "C" {
        fn poll(fds: *mut RawPollFd, nfds: core::ffi::c_ulong, timeout: core::ffi::c_int) -> i32;
    }

    pub(super) fn wait(entries: &mut [PollEntry], timeout_ms: i32) -> io::Result<usize> {
        let mut fds: Vec<RawPollFd> = entries
            .iter()
            .map(|e| RawPollFd {
                fd: e.fd,
                events: if e.want_read { POLLIN } else { 0 }
                    | if e.want_write { POLLOUT } else { 0 },
                revents: 0,
            })
            .collect();
        let n = loop {
            // SAFETY: `fds` is a live, correctly-sized array of pollfd;
            // poll() writes only `revents` within it.
            let rc = unsafe {
                poll(
                    fds.as_mut_ptr(),
                    fds.len() as core::ffi::c_ulong,
                    timeout_ms,
                )
            };
            if rc >= 0 {
                break rc as usize;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        for (entry, raw) in entries.iter_mut().zip(&fds) {
            entry.readable = raw.revents & POLLIN != 0;
            entry.writable = raw.revents & POLLOUT != 0;
            entry.hangup = raw.revents & (POLLERR | POLLHUP | POLLNVAL) != 0;
        }
        Ok(n)
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use super::PollEntry;
    use std::io;
    use std::time::Duration;

    /// Portable degradation: report everything with interest as ready
    /// after a short sleep, so owners discover real readiness through
    /// their non-blocking I/O calls (`WouldBlock` is then just a scan
    /// miss). Correct, but a busy-ish scan — the Linux path is the one
    /// production runs on.
    pub(super) fn wait(entries: &mut [PollEntry], timeout_ms: i32) -> io::Result<usize> {
        let cap = if timeout_ms < 0 { 2 } else { timeout_ms.min(2) };
        std::thread::sleep(Duration::from_millis(cap.max(1) as u64));
        let mut ready = 0;
        for e in entries.iter_mut() {
            e.readable = e.want_read;
            e.writable = e.want_write;
            e.hangup = false;
            if e.readable || e.writable {
                ready += 1;
            }
        }
        Ok(ready)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn reports_readability_when_bytes_arrive() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let mut entries = [PollEntry::new(server_side.as_raw_fd(), true, false)];
        client.write_all(b"hello").unwrap();
        let n = wait(&mut entries, 2000).unwrap();
        assert!(n >= 1, "bytes are pending; poll must report readiness");
        assert!(entries[0].readable);
        let mut buf = [0u8; 8];
        let got = (&server_side).read(&mut buf).unwrap();
        assert_eq!(&buf[..got], b"hello");
    }

    #[test]
    fn write_interest_reports_writable_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let _server_side = listener.accept().unwrap();
        let mut entries = [PollEntry::new(client.as_raw_fd(), false, true)];
        let n = wait(&mut entries, 2000).unwrap();
        assert!(n >= 1);
        assert!(entries[0].writable, "fresh socket must be writable");
    }
}
