//! Session sharding: N worker threads, each owning one [`EngineHub`].
//!
//! The hub is the sharding seam (see `crates/api/README.md`): sessions
//! are partitioned by a stable hash of their name, so every request for a
//! session lands on the same worker and sessions never need cross-shard
//! coordination. Workers own their hub outright — the event loop talks to
//! them over channels, so there is no lock to contend on or poison; a
//! panicking request (an engine bug) costs the offending session, never
//! the shard.
//!
//! Jobs carry their reply as a boxed `FnOnce` responder, so the same
//! worker serves both blocking callers (tests, tools) and the
//! event loop's completion channel (which must never block): the loop's
//! responders push a completion and poke the loop's waker.

use fv_api::engine::fnv1a;
use fv_api::{ApiError, EngineHub, Request, RunOutcome, SessionId};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

/// One shard's contribution to a `stats` or `list-sessions` reply:
/// sessions it owns (name + dataset count) plus its execution counters.
#[derive(Debug, Clone)]
pub(crate) struct ShardReport {
    pub shard: usize,
    /// `(session name, loaded datasets)`, sorted by name (hub order).
    pub sessions: Vec<(String, usize)>,
    /// Non-empty runs executed.
    pub runs: u64,
    /// Requests executed across those runs.
    pub requests: u64,
    /// Largest single run.
    pub max_run: usize,
}

pub(crate) enum Job {
    /// Execute a request run on the session (empty runs just materialize
    /// it — the `use` semantics). Answered with the run's
    /// [`RunOutcome`].
    Run {
        session: SessionId,
        requests: Vec<Request>,
        respond: Box<dyn FnOnce(RunOutcome) + Send>,
    },
    /// Drop the session; replies whether it existed.
    Close {
        session: SessionId,
        respond: Box<dyn FnOnce(bool) + Send>,
    },
    /// Snapshot the shard's sessions and counters.
    Report {
        respond: Box<dyn FnOnce(ShardReport) + Send>,
    },
}

/// Cloneable handle onto the shard workers.
#[derive(Clone)]
pub(crate) struct ShardHandles {
    senders: Vec<mpsc::Sender<Job>>,
    /// Jobs sent but not yet dequeued, per shard — the queue-depth gauge
    /// `stats` reports without a worker round trip.
    depth: Arc<Vec<AtomicUsize>>,
}

impl ShardHandles {
    /// Which shard owns `id`: FNV-1a of the session name, mod shard
    /// count. Stable across connections and server restarts.
    pub fn shard_of(&self, id: &SessionId) -> usize {
        shard_of(id, self.senders.len())
    }

    /// Worker count.
    pub fn n_shards(&self) -> usize {
        self.senders.len()
    }

    /// Snapshot of per-shard queued (sent, not yet dequeued) job counts.
    pub fn queue_depths(&self) -> Vec<usize> {
        self.depth
            .iter()
            .map(|d| d.load(Ordering::SeqCst))
            .collect()
    }

    /// Enqueue a run on the owning shard with an arbitrary responder. On
    /// a dead shard the responder fires immediately with a typed
    /// `E_INTERNAL` outcome, so callers always hear back exactly once.
    pub fn submit_run(
        &self,
        session: &SessionId,
        requests: Vec<Request>,
        respond: Box<dyn FnOnce(RunOutcome) + Send>,
    ) {
        let shard = self.shard_of(session);
        let job = Job::Run {
            session: session.clone(),
            requests,
            respond,
        };
        if let Some(Job::Run { respond, .. }) = self.submit_or_return(shard, job) {
            respond(shard_down());
        }
    }

    /// Enqueue a close on the owning shard; a dead shard answers `false`.
    pub fn submit_close(&self, session: &SessionId, respond: Box<dyn FnOnce(bool) + Send>) {
        let shard = self.shard_of(session);
        let job = Job::Close {
            session: session.clone(),
            respond,
        };
        if let Some(Job::Close { respond, .. }) = self.submit_or_return(shard, job) {
            respond(false);
        }
    }

    /// Fan a report request out to every shard. `make` builds one
    /// responder per shard; dead shards answer with an empty report so
    /// gathers always complete.
    pub fn submit_report_all(&self, mut make: impl FnMut() -> Box<dyn FnOnce(ShardReport) + Send>) {
        for shard in 0..self.n_shards() {
            let respond = make();
            let job = Job::Report { respond };
            if let Some(Job::Report { respond }) = self.submit_or_return(shard, job) {
                respond(ShardReport {
                    shard,
                    sessions: Vec::new(),
                    runs: 0,
                    requests: 0,
                    max_run: 0,
                });
            }
        }
    }

    fn submit_or_return(&self, shard: usize, job: Job) -> Option<Job> {
        self.depth[shard].fetch_add(1, Ordering::SeqCst);
        match self.senders[shard].send(job) {
            Ok(()) => None,
            Err(mpsc::SendError(job)) => {
                self.depth[shard].fetch_sub(1, Ordering::SeqCst);
                Some(job)
            }
        }
    }

    /// Execute a request run on the owning shard, blocking until the
    /// shard replies. An empty `requests` still materializes the session
    /// (the `use` semantics). The event loop never blocks on a shard —
    /// this is the synchronous convenience for tests and tools.
    #[cfg(test)]
    pub fn execute(&self, session: &SessionId, requests: Vec<Request>) -> RunOutcome {
        let (tx, rx) = mpsc::channel();
        self.submit_run(
            session,
            requests,
            Box::new(move |out| {
                let _ = tx.send(out);
            }),
        );
        rx.recv().unwrap_or_else(|_| shard_down())
    }

    /// Drop a session on its owning shard; `false` if it did not exist
    /// (or the shard is gone). Blocking counterpart of
    /// [`ShardHandles::submit_close`], for tests.
    #[cfg(test)]
    pub fn close(&self, session: &SessionId) -> bool {
        let (tx, rx) = mpsc::channel();
        self.submit_close(
            session,
            Box::new(move |existed| {
                let _ = tx.send(existed);
            }),
        );
        rx.recv().unwrap_or(false)
    }
}

fn shard_down() -> RunOutcome {
    RunOutcome {
        responses: Vec::new(),
        error: Some((
            0,
            ApiError::new(fv_api::ErrorCode::Internal, "shard worker is gone"),
        )),
    }
}

/// Stable shard routing function (exposed for tests and docs).
pub fn shard_of(id: &SessionId, n_shards: usize) -> usize {
    (fnv1a(id.as_str().as_bytes()) % n_shards.max(1) as u64) as usize
}

/// The worker threads plus the means to stop them. Workers exit when
/// every [`ShardHandles`] clone is gone and [`ShardPool::join`] drops the
/// originals.
pub(crate) struct ShardPool {
    handles: ShardHandles,
    workers: Vec<JoinHandle<()>>,
}

impl ShardPool {
    /// Spawn `n` workers, each with an empty [`EngineHub`] resolving
    /// damage against `scene`.
    pub fn spawn(n: usize, scene: (usize, usize)) -> ShardPool {
        let n = n.max(1);
        let depth: Arc<Vec<AtomicUsize>> = Arc::new((0..n).map(|_| AtomicUsize::new(0)).collect());
        let mut senders = Vec::with_capacity(n);
        let mut workers = Vec::with_capacity(n);
        for i in 0..n {
            let (tx, rx) = mpsc::channel::<Job>();
            senders.push(tx);
            let depth = Arc::clone(&depth);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("fv-net-shard-{i}"))
                    .spawn(move || worker(i, rx, depth, scene))
                    .expect("spawn shard worker"),
            );
        }
        ShardPool {
            handles: ShardHandles { senders, depth },
            workers,
        }
    }

    pub fn handles(&self) -> ShardHandles {
        self.handles.clone()
    }

    /// Drop the original senders and wait for the workers to drain and
    /// exit. Callers must first drop every other handle clone, or this
    /// blocks until they are gone.
    pub fn join(self) {
        drop(self.handles);
        for w in self.workers {
            let _ = w.join();
        }
    }
}

fn worker(
    shard: usize,
    rx: mpsc::Receiver<Job>,
    depth: Arc<Vec<AtomicUsize>>,
    scene: (usize, usize),
) {
    let mut hub = EngineHub::with_scene(scene.0, scene.1);
    let mut runs: u64 = 0;
    let mut requests_executed: u64 = 0;
    let mut max_run: usize = 0;
    while let Ok(job) = rx.recv() {
        depth[shard].fetch_sub(1, Ordering::SeqCst);
        match job {
            Job::Close { session, respond } => {
                respond(hub.close(&session));
            }
            Job::Report { respond } => {
                respond(ShardReport {
                    shard,
                    sessions: hub
                        .list_sessions()
                        .into_iter()
                        .map(|(id, n)| (id.to_string(), n))
                        .collect(),
                    runs,
                    requests: requests_executed,
                    max_run,
                });
            }
            Job::Run {
                session,
                requests,
                respond,
            } => {
                if !requests.is_empty() {
                    runs += 1;
                    requests_executed += requests.len() as u64;
                    max_run = max_run.max(requests.len());
                }
                let outcome =
                    catch_unwind(AssertUnwindSafe(|| hub.execute_run_on(&session, &requests)));
                let out = outcome.unwrap_or_else(|_| {
                    // An engine panic means the session's state is
                    // suspect; drop the session so the shard (and its
                    // other sessions) stays healthy, and report a typed
                    // internal error.
                    hub.close(&session);
                    RunOutcome {
                        responses: Vec::new(),
                        error: Some((
                            0,
                            ApiError::new(
                                fv_api::ErrorCode::Internal,
                                format!("request panicked; session {session} was dropped"),
                            ),
                        )),
                    }
                });
                // The connection may already be gone; that is not the
                // shard's problem.
                respond(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fv_api::{Mutation, Query};

    #[test]
    fn routing_is_stable_and_in_range() {
        for name in ["main", "alpha", "s0", "s1", "s2", "s3"] {
            let id = SessionId::new(name).unwrap();
            let s = shard_of(&id, 4);
            assert!(s < 4);
            assert_eq!(s, shard_of(&id, 4), "routing must be deterministic");
        }
        assert_eq!(shard_of(&SessionId::new("x").unwrap(), 0), 0);
    }

    #[test]
    fn pool_executes_and_isolates_sessions() {
        let pool = ShardPool::spawn(4, (640, 480));
        let handles = pool.handles();
        let a = SessionId::new("a").unwrap();
        let b = SessionId::new("b").unwrap();
        let reply = handles.execute(
            &a,
            vec![Request::Mutate(Mutation::LoadScenario {
                n_genes: 60,
                seed: 1,
            })],
        );
        assert!(reply.error.is_none());
        let reply = handles.execute(&b, vec![Request::Query(Query::SessionInfo)]);
        assert!(reply.error.is_none());
        match &reply.responses[0] {
            fv_api::Response::SessionInfo(info) => assert_eq!(info.n_datasets, 0),
            other => panic!("wrong response: {other:?}"),
        }
        assert!(handles.close(&a), "a existed");
        assert!(!handles.close(&a), "a already closed");
        drop(handles);
        pool.join();
    }

    #[test]
    fn failed_run_reports_index_and_prefix() {
        let pool = ShardPool::spawn(2, (640, 480));
        let handles = pool.handles();
        let s = SessionId::new("s").unwrap();
        let reply = handles.execute(
            &s,
            vec![
                Request::Mutate(Mutation::LoadScenario {
                    n_genes: 60,
                    seed: 1,
                }),
                Request::Mutate(Mutation::Impute { dataset: 9, k: 3 }),
            ],
        );
        assert_eq!(reply.responses.len(), 1);
        let (idx, err) = reply.error.unwrap();
        assert_eq!(idx, 1);
        assert_eq!(err.code, fv_api::ErrorCode::NotFound);
        drop(handles);
        pool.join();
    }

    #[test]
    fn reports_cover_sessions_and_counters() {
        let pool = ShardPool::spawn(2, (640, 480));
        let handles = pool.handles();
        let a = SessionId::new("alpha").unwrap();
        handles.execute(
            &a,
            vec![Request::Mutate(Mutation::LoadScenario {
                n_genes: 60,
                seed: 1,
            })],
        );
        let (tx, rx) = mpsc::channel();
        handles.submit_report_all(move || {
            let tx = tx.clone();
            Box::new(move |report| {
                let _ = tx.send(report);
            })
        });
        let mut reports: Vec<ShardReport> = (0..2).map(|_| rx.recv().unwrap()).collect();
        reports.sort_by_key(|r| r.shard);
        let owner = shard_of(&a, 2);
        assert_eq!(reports[owner].sessions, [("alpha".to_string(), 3)]);
        assert_eq!(reports[owner].runs, 1);
        assert_eq!(reports[owner].requests, 1);
        assert_eq!(reports[owner].max_run, 1);
        assert!(reports[1 - owner].sessions.is_empty());
        assert_eq!(handles.queue_depths(), [0, 0], "queues drained");
        drop(handles);
        pool.join();
    }
}
