//! Session sharding: N worker threads, each owning one [`EngineHub`].
//!
//! The hub is the sharding seam (see `crates/api/README.md`): sessions
//! are partitioned by a stable hash of their name, so every request for a
//! session lands on the same worker and sessions never need cross-shard
//! coordination. Workers own their hub outright — the event loop talks to
//! them over channels, so there is no lock to contend on or poison; a
//! panicking request (an engine bug) costs the offending session, never
//! the shard.
//!
//! Two things *are* shared across shards:
//!
//! - **The dataset cache**: every worker's hub is built over one
//!   [`DatasetCache`], so the same PCL loaded into sessions on different
//!   shards is parsed exactly once and shared as `Arc` handles.
//! - **Sessions, by migration**: [`Job::Extract`] pulls a whole engine
//!   out of one shard and [`Job::Install`] drops it into another — the
//!   engine carries its dataset `Arc`s with it, so migration never
//!   re-reads a file. Routing overrides live in the event loop (see
//!   `crate::server`), which is why the `*_to` submit variants take an
//!   explicit shard index.
//!
//! Jobs carry their reply as a boxed `FnOnce` responder, so the same
//! worker serves both blocking callers (tests, tools) and the
//! event loop's completion channel (which must never block): the loop's
//! responders push a completion and poke the loop's waker.

use crate::metrics::LatencyHistogram;
use fv_api::engine::fnv1a;
use fv_api::{
    ApiError, CacheStats, DatasetCache, Engine, EngineHub, Request, Response, RunOutcome, SessionId,
};
use fv_render::Framebuffer;
use fv_wall::tile::Viewport;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

/// One session's slice of a [`ShardReport`]: identity for
/// `list-sessions`, cumulative cost estimates for the rebalancer.
#[derive(Debug, Clone)]
pub(crate) struct SessionReport {
    pub name: String,
    pub n_datasets: usize,
    /// Attempted requests since the session was created (travels with
    /// the engine across migrations).
    pub requests: u64,
    /// Approximate resident dataset bytes.
    pub dataset_bytes: u64,
}

/// One shard's contribution to a `stats`, `list-sessions`, or balancer
/// snapshot: sessions it owns (with cost estimates) plus its execution
/// counters.
#[derive(Debug, Clone)]
pub(crate) struct ShardReport {
    pub shard: usize,
    /// Per-session reports, sorted by name (hub order).
    pub sessions: Vec<SessionReport>,
    /// Non-empty runs executed.
    pub runs: u64,
    /// Requests executed across those runs.
    pub requests: u64,
    /// Largest single run.
    pub max_run: usize,
    /// Per-request latency histogram of everything this shard executed.
    pub latency: LatencyHistogram,
}

impl ShardReport {
    fn empty(shard: usize) -> ShardReport {
        ShardReport {
            shard,
            sessions: Vec::new(),
            runs: 0,
            requests: 0,
            max_run: 0,
            latency: LatencyHistogram::new(),
        }
    }
}

/// A post-run rasterization for the streaming plane: the shard rendered
/// the session once into a scene-sized framebuffer, and the damage says
/// which of its pixels this run may have changed (scene coordinates;
/// conservatively the full scene when a response type carries no rects).
pub(crate) struct PubFrame {
    pub session: SessionId,
    pub wall: Framebuffer,
    pub damage: Vec<Viewport>,
}

/// A run's answer: the outcome plus whether the worker had to drop the
/// session (a panicking request poisons its session). Transports use the
/// flag to clean up per-session routing state. `frame` carries the
/// publish rasterization when the run asked for one.
pub(crate) struct RunDone {
    pub outcome: RunOutcome,
    pub session_dropped: bool,
    pub frame: Option<PubFrame>,
}

pub(crate) enum Job {
    /// Execute a request run on the session (empty runs just materialize
    /// it — the `use` semantics). Answered with the run's
    /// [`RunDone`]. With `publish` set the worker also renders the
    /// session's scene once after the run — the fv-stream fan-out hook;
    /// the event loop sets it exactly when the session has subscribers.
    Run {
        session: SessionId,
        requests: Vec<Request>,
        publish: bool,
        respond: Box<dyn FnOnce(RunDone) + Send>,
    },
    /// Drop the session; replies whether it existed.
    Close {
        session: SessionId,
        respond: Box<dyn FnOnce(bool) + Send>,
    },
    /// Snapshot the shard's sessions and counters.
    Report {
        respond: Box<dyn FnOnce(ShardReport) + Send>,
    },
    /// Pull the session's engine out of this shard (migration step 1).
    /// Replies `None` if the session does not live here.
    Extract {
        session: SessionId,
        respond: Box<dyn FnOnce(Option<Box<Engine>>) + Send>,
    },
    /// Install a previously extracted engine (migration step 2). On
    /// failure (name already taken here, which routing prevents, or a
    /// dead shard) the engine is handed BACK through the responder so
    /// the caller can restore it — an install failure must never destroy
    /// a session that was alive before the migration.
    Install {
        session: SessionId,
        engine: Box<Engine>,
        respond: Box<dyn FnOnce(Result<(), Box<Engine>>) + Send>,
    },
}

/// Cloneable handle onto the shard workers.
#[derive(Clone)]
pub(crate) struct ShardHandles {
    senders: Vec<mpsc::Sender<Job>>,
    /// Jobs sent but not yet dequeued, per shard — the queue-depth gauge
    /// `stats` reports without a worker round trip.
    depth: Arc<Vec<AtomicUsize>>,
    /// The dataset cache every worker's hub shares.
    cache: DatasetCache,
}

impl ShardHandles {
    /// Which shard owns `id` *by hash*: FNV-1a of the session name, mod
    /// shard count. Stable across connections and server restarts.
    /// Transports that support migration overlay their own routing
    /// overrides on top of this default.
    pub fn shard_of(&self, id: &SessionId) -> usize {
        shard_of(id, self.senders.len())
    }

    /// Worker count.
    pub fn n_shards(&self) -> usize {
        self.senders.len()
    }

    /// Snapshot of per-shard queued (sent, not yet dequeued) job counts.
    pub fn queue_depths(&self) -> Vec<usize> {
        self.depth
            .iter()
            .map(|d| d.load(Ordering::SeqCst))
            .collect()
    }

    /// Gauges of the cache all shards share.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Enqueue a run on an explicit shard with an arbitrary responder. On
    /// a dead shard the responder fires immediately with a typed
    /// `E_INTERNAL` outcome, so callers always hear back exactly once.
    pub fn submit_run_to(
        &self,
        shard: usize,
        session: &SessionId,
        requests: Vec<Request>,
        publish: bool,
        respond: Box<dyn FnOnce(RunDone) + Send>,
    ) {
        let job = Job::Run {
            session: session.clone(),
            requests,
            publish,
            respond,
        };
        if let Some(Job::Run { respond, .. }) = self.submit_or_return(shard, job) {
            respond(shard_down());
        }
    }

    /// Enqueue a run on the hash-owning shard (no routing overrides).
    #[cfg(test)]
    pub fn submit_run(
        &self,
        session: &SessionId,
        requests: Vec<Request>,
        respond: Box<dyn FnOnce(RunDone) + Send>,
    ) {
        self.submit_run_to(self.shard_of(session), session, requests, false, respond);
    }

    /// Enqueue a close on an explicit shard; a dead shard answers `false`.
    pub fn submit_close_to(
        &self,
        shard: usize,
        session: &SessionId,
        respond: Box<dyn FnOnce(bool) + Send>,
    ) {
        let job = Job::Close {
            session: session.clone(),
            respond,
        };
        if let Some(Job::Close { respond, .. }) = self.submit_or_return(shard, job) {
            respond(false);
        }
    }

    /// Enqueue an engine extraction (migration step 1) on `shard`; a dead
    /// shard answers `None`.
    pub fn submit_extract(
        &self,
        shard: usize,
        session: &SessionId,
        respond: Box<dyn FnOnce(Option<Box<Engine>>) + Send>,
    ) {
        let job = Job::Extract {
            session: session.clone(),
            respond,
        };
        if let Some(Job::Extract { respond, .. }) = self.submit_or_return(shard, job) {
            respond(None);
        }
    }

    /// Enqueue an engine install (migration step 2) on `shard`; on a
    /// dead shard the engine comes straight back through the responder.
    pub fn submit_install(
        &self,
        shard: usize,
        session: &SessionId,
        engine: Box<Engine>,
        respond: Box<dyn FnOnce(Result<(), Box<Engine>>) + Send>,
    ) {
        let job = Job::Install {
            session: session.clone(),
            engine,
            respond,
        };
        if let Some(Job::Install {
            engine, respond, ..
        }) = self.submit_or_return(shard, job)
        {
            respond(Err(engine));
        }
    }

    /// Fan a report request out to every shard. `make` builds one
    /// responder per shard; dead shards answer with an empty report so
    /// gathers always complete.
    pub fn submit_report_all(&self, mut make: impl FnMut() -> Box<dyn FnOnce(ShardReport) + Send>) {
        for shard in 0..self.n_shards() {
            let respond = make();
            let job = Job::Report { respond };
            if let Some(Job::Report { respond }) = self.submit_or_return(shard, job) {
                respond(ShardReport::empty(shard));
            }
        }
    }

    fn submit_or_return(&self, shard: usize, job: Job) -> Option<Job> {
        self.depth[shard].fetch_add(1, Ordering::SeqCst);
        match self.senders[shard].send(job) {
            Ok(()) => None,
            Err(mpsc::SendError(job)) => {
                self.depth[shard].fetch_sub(1, Ordering::SeqCst);
                Some(job)
            }
        }
    }

    /// Execute a request run on the owning shard, blocking until the
    /// shard replies. An empty `requests` still materializes the session
    /// (the `use` semantics). The event loop never blocks on a shard —
    /// this is the synchronous convenience for tests and tools.
    #[cfg(test)]
    pub fn execute(&self, session: &SessionId, requests: Vec<Request>) -> RunOutcome {
        let (tx, rx) = mpsc::channel();
        self.submit_run(
            session,
            requests,
            Box::new(move |done| {
                let _ = tx.send(done);
            }),
        );
        rx.recv().unwrap_or_else(|_| shard_down()).outcome
    }

    /// Drop a session on its owning shard; `false` if it did not exist
    /// (or the shard is gone). Blocking counterpart of
    /// [`ShardHandles::submit_close_to`], for tests.
    #[cfg(test)]
    pub fn close(&self, session: &SessionId) -> bool {
        let (tx, rx) = mpsc::channel();
        self.submit_close_to(
            self.shard_of(session),
            session,
            Box::new(move |existed| {
                let _ = tx.send(existed);
            }),
        );
        rx.recv().unwrap_or(false)
    }
}

fn shard_down() -> RunDone {
    RunDone {
        outcome: RunOutcome {
            responses: Vec::new(),
            error: Some((
                0,
                ApiError::new(fv_api::ErrorCode::Internal, "shard worker is gone"),
            )),
            latencies: Vec::new(),
        },
        session_dropped: false,
        frame: None,
    }
}

/// What this run may have repainted, in scene coordinates. `Applied`
/// responses carry exact damage rects; any other state-mutating response
/// (dataset loads, imputation, normalization, clustering…) reports no
/// rects and conservatively damages the full scene. An empty run — the
/// publish refresh a `subscribe` or a migration hand-over submits —
/// touched nothing, which is fine: its subscribers are keyframe-synced
/// from the rendered framebuffer, not from damage.
fn run_damage(out: &RunOutcome, scene: (usize, usize)) -> Vec<Viewport> {
    let full = Viewport {
        x: 0,
        y: 0,
        w: scene.0,
        h: scene.1,
    };
    let mut rects = Vec::new();
    for response in &out.responses {
        match response {
            Response::Applied { damage, .. } => rects.extend(damage.iter().map(|d| Viewport {
                x: d.x,
                y: d.y,
                w: d.w,
                h: d.h,
            })),
            Response::Loaded { .. }
            | Response::ScenarioLoaded { .. }
            | Response::OntologyReady { .. }
            | Response::Imputed { .. }
            | Response::Normalized { .. }
            | Response::ArraysClustered { .. } => return vec![full],
            _ => {}
        }
    }
    rects
}

/// Stable shard routing function (exposed for tests and docs).
pub fn shard_of(id: &SessionId, n_shards: usize) -> usize {
    (fnv1a(id.as_str().as_bytes()) % n_shards.max(1) as u64) as usize
}

/// The worker threads plus the means to stop them. Workers exit when
/// every [`ShardHandles`] clone is gone and [`ShardPool::join`] drops the
/// originals.
pub(crate) struct ShardPool {
    handles: ShardHandles,
    workers: Vec<JoinHandle<()>>,
}

impl ShardPool {
    /// Spawn `n` workers, each with an empty [`EngineHub`] resolving
    /// damage against `scene`. All hubs share one [`DatasetCache`], so a
    /// file loaded by sessions on different shards is parsed once.
    /// (Production callers go through [`ShardPool::spawn_with_faults`]
    /// with `None` — this is the test convenience.)
    #[cfg(test)]
    pub fn spawn(n: usize, scene: (usize, usize)) -> ShardPool {
        ShardPool::spawn_with_faults(n, scene, None).expect("spawn shard workers")
    }

    /// Like [`ShardPool::spawn`], but with fault injection: the shard at
    /// `refuse_install_to` refuses every [`Job::Install`], handing the
    /// engine back — how tests drive the migration restore path without
    /// killing a worker. `None` in production.
    pub fn spawn_with_faults(
        n: usize,
        scene: (usize, usize),
        refuse_install_to: Option<usize>,
    ) -> std::io::Result<ShardPool> {
        let n = n.max(1);
        let cache = DatasetCache::new();
        let depth: Arc<Vec<AtomicUsize>> = Arc::new((0..n).map(|_| AtomicUsize::new(0)).collect());
        let mut senders = Vec::with_capacity(n);
        let mut workers = Vec::with_capacity(n);
        for i in 0..n {
            let (tx, rx) = mpsc::channel::<Job>();
            senders.push(tx);
            let depth = Arc::clone(&depth);
            let cache = cache.clone();
            let refuse_install = refuse_install_to == Some(i);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("fv-net-shard-{i}"))
                    .spawn(move || worker(i, rx, depth, scene, cache, refuse_install))?,
            );
        }
        Ok(ShardPool {
            handles: ShardHandles {
                senders,
                depth,
                cache,
            },
            workers,
        })
    }

    pub fn handles(&self) -> ShardHandles {
        self.handles.clone()
    }

    /// Drop the original senders and wait for the workers to drain and
    /// exit. Callers must first drop every other handle clone, or this
    /// blocks until they are gone.
    pub fn join(self) {
        drop(self.handles);
        for w in self.workers {
            let _ = w.join();
        }
    }
}

fn worker(
    shard: usize,
    rx: mpsc::Receiver<Job>,
    depth: Arc<Vec<AtomicUsize>>,
    scene: (usize, usize),
    cache: DatasetCache,
    refuse_install: bool,
) {
    let mut hub = EngineHub::with_cache(scene.0, scene.1, cache);
    let mut runs: u64 = 0;
    let mut requests_executed: u64 = 0;
    let mut max_run: usize = 0;
    let mut latency = LatencyHistogram::new();
    while let Ok(job) = rx.recv() {
        depth[shard].fetch_sub(1, Ordering::SeqCst);
        match job {
            Job::Close { session, respond } => {
                respond(hub.close(&session));
            }
            Job::Extract { session, respond } => {
                respond(hub.take_session(&session).map(Box::new));
            }
            Job::Install {
                session,
                engine,
                respond,
            } => {
                if refuse_install || hub.get(&session).is_some() {
                    // Injected fault, or name already taken here (routing
                    // should prevent the latter); hand the engine back
                    // rather than lose it.
                    respond(Err(engine));
                } else {
                    hub.install_session(&session, *engine);
                    respond(Ok(()));
                }
            }
            Job::Report { respond } => {
                respond(ShardReport {
                    shard,
                    sessions: hub
                        .list_sessions()
                        .into_iter()
                        .map(|(id, n)| {
                            let cost = hub.get(&id).map(Engine::cost).unwrap_or_default();
                            SessionReport {
                                name: id.to_string(),
                                n_datasets: n,
                                requests: cost.requests,
                                dataset_bytes: cost.dataset_bytes,
                            }
                        })
                        .collect(),
                    runs,
                    requests: requests_executed,
                    max_run,
                    latency: latency.clone(),
                });
            }
            Job::Run {
                session,
                requests,
                publish,
                respond,
            } => {
                if !requests.is_empty() {
                    runs += 1;
                    max_run = max_run.max(requests.len());
                }
                let outcome =
                    catch_unwind(AssertUnwindSafe(|| hub.execute_run_on(&session, &requests)));
                let mut session_dropped = false;
                let out = outcome.unwrap_or_else(|_| {
                    // An engine panic means the session's state is
                    // suspect; drop the session so the shard (and its
                    // other sessions) stays healthy, and report a typed
                    // internal error. The flag lets the transport drop
                    // per-session routing state with it.
                    hub.close(&session);
                    session_dropped = true;
                    RunOutcome {
                        responses: Vec::new(),
                        error: Some((
                            0,
                            ApiError::new(
                                fv_api::ErrorCode::Internal,
                                format!("request panicked; session {session} was dropped"),
                            ),
                        )),
                        latencies: Vec::new(),
                    }
                });
                // One latency observation per ATTEMPTED request (the
                // failing one included, never the skipped tail), and the
                // `requests` counter counts exactly the same population —
                // so `stats`' histogram totals always equal `requests`.
                requests_executed += out.latencies.len() as u64;
                for &l in &out.latencies {
                    latency.record(l);
                }
                // The streaming rasterize hook: render the session's
                // scene once per published run. Subscribers share this
                // one render no matter how many are watching.
                let frame = if publish && !session_dropped {
                    hub.get(&session).map(|engine| PubFrame {
                        session: session.clone(),
                        damage: run_damage(&out, scene),
                        wall: forestview::renderer::render_desktop(
                            engine.session(),
                            scene.0,
                            scene.1,
                        ),
                    })
                } else {
                    None
                };
                // The connection may already be gone; that is not the
                // shard's problem.
                respond(RunDone {
                    outcome: out,
                    session_dropped,
                    frame,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fv_api::{Mutation, Query};

    #[test]
    fn routing_is_stable_and_in_range() {
        for name in ["main", "alpha", "s0", "s1", "s2", "s3"] {
            let id = SessionId::new(name).unwrap();
            let s = shard_of(&id, 4);
            assert!(s < 4);
            assert_eq!(s, shard_of(&id, 4), "routing must be deterministic");
        }
        assert_eq!(shard_of(&SessionId::new("x").unwrap(), 0), 0);
    }

    #[test]
    fn pool_executes_and_isolates_sessions() {
        let pool = ShardPool::spawn(4, (640, 480));
        let handles = pool.handles();
        let a = SessionId::new("a").unwrap();
        let b = SessionId::new("b").unwrap();
        let reply = handles.execute(
            &a,
            vec![Request::Mutate(Mutation::LoadScenario {
                n_genes: 60,
                seed: 1,
            })],
        );
        assert!(reply.error.is_none());
        let reply = handles.execute(&b, vec![Request::Query(Query::SessionInfo)]);
        assert!(reply.error.is_none());
        match &reply.responses[0] {
            fv_api::Response::SessionInfo(info) => assert_eq!(info.n_datasets, 0),
            other => panic!("wrong response: {other:?}"),
        }
        assert!(handles.close(&a), "a existed");
        assert!(!handles.close(&a), "a already closed");
        drop(handles);
        pool.join();
    }

    #[test]
    fn failed_run_reports_index_and_prefix() {
        let pool = ShardPool::spawn(2, (640, 480));
        let handles = pool.handles();
        let s = SessionId::new("s").unwrap();
        let reply = handles.execute(
            &s,
            vec![
                Request::Mutate(Mutation::LoadScenario {
                    n_genes: 60,
                    seed: 1,
                }),
                Request::Mutate(Mutation::Impute { dataset: 9, k: 3 }),
            ],
        );
        assert_eq!(reply.responses.len(), 1);
        let (idx, err) = reply.error.unwrap();
        assert_eq!(idx, 1);
        assert_eq!(err.code, fv_api::ErrorCode::NotFound);
        drop(handles);
        pool.join();
    }

    #[test]
    fn reports_cover_sessions_counters_and_latency() {
        let pool = ShardPool::spawn(2, (640, 480));
        let handles = pool.handles();
        let a = SessionId::new("alpha").unwrap();
        handles.execute(
            &a,
            vec![Request::Mutate(Mutation::LoadScenario {
                n_genes: 60,
                seed: 1,
            })],
        );
        let (tx, rx) = mpsc::channel();
        handles.submit_report_all(move || {
            let tx = tx.clone();
            Box::new(move |report| {
                let _ = tx.send(report);
            })
        });
        let mut reports: Vec<ShardReport> = (0..2).map(|_| rx.recv().unwrap()).collect();
        reports.sort_by_key(|r| r.shard);
        let owner = shard_of(&a, 2);
        assert_eq!(reports[owner].sessions.len(), 1);
        let alpha = &reports[owner].sessions[0];
        assert_eq!(alpha.name, "alpha");
        assert_eq!(alpha.n_datasets, 3);
        assert_eq!(alpha.requests, 1, "one attempted request so far");
        assert!(alpha.dataset_bytes > 0, "scenario datasets have size");
        assert_eq!(reports[owner].runs, 1);
        assert_eq!(reports[owner].requests, 1);
        assert_eq!(reports[owner].max_run, 1);
        assert_eq!(
            reports[owner].latency.total(),
            1,
            "one request, one latency observation"
        );
        assert!(reports[owner].latency.max_us > 0);
        assert!(reports[1 - owner].sessions.is_empty());
        assert_eq!(reports[1 - owner].latency.total(), 0);
        assert_eq!(handles.queue_depths(), [0, 0], "queues drained");
        drop(handles);
        pool.join();
    }

    #[test]
    fn extract_install_moves_an_engine_between_shards() {
        let pool = ShardPool::spawn(2, (640, 480));
        let handles = pool.handles();
        let s = SessionId::new("mover").unwrap();
        let from = shard_of(&s, 2);
        let to = 1 - from;
        handles.execute(
            &s,
            vec![Request::Mutate(Mutation::LoadScenario {
                n_genes: 60,
                seed: 1,
            })],
        );
        // extract from the hash owner…
        let (tx, rx) = mpsc::channel();
        handles.submit_extract(
            from,
            &s,
            Box::new(move |engine| {
                let _ = tx.send(engine);
            }),
        );
        let engine = rx.recv().unwrap().expect("session lives on its shard");
        assert_eq!(engine.session().n_datasets(), 3);
        // …install on the other shard…
        let (tx, rx) = mpsc::channel();
        handles.submit_install(
            to,
            &s,
            engine,
            Box::new(move |result| {
                let _ = tx.send(result.is_ok());
            }),
        );
        assert!(rx.recv().unwrap(), "install must take");
        // …and a run routed at the new shard sees the intact state.
        let (tx, rx) = mpsc::channel();
        handles.submit_run_to(
            to,
            &s,
            vec![Request::Query(Query::SessionInfo)],
            false,
            Box::new(move |done| {
                let _ = tx.send(done);
            }),
        );
        let out = rx.recv().unwrap().outcome;
        assert!(out.error.is_none());
        match &out.responses[0] {
            fv_api::Response::SessionInfo(info) => assert_eq!(info.n_datasets, 3),
            other => panic!("wrong response: {other:?}"),
        }
        // extracting a session that is not there answers None
        let (tx, rx) = mpsc::channel();
        handles.submit_extract(
            from,
            &s,
            Box::new(move |engine| {
                let _ = tx.send(engine.is_none());
            }),
        );
        assert!(rx.recv().unwrap());
        // installing over an occupied name hands the engine BACK instead
        // of dropping it
        handles.execute(&s, Vec::new()); // fresh empty `s` on `from`
        let (tx, rx) = mpsc::channel();
        handles.submit_extract(
            to,
            &s,
            Box::new(move |engine| {
                let _ = tx.send(engine);
            }),
        );
        let engine = rx.recv().unwrap().expect("moved session still on `to`");
        let (tx, rx) = mpsc::channel();
        handles.submit_install(
            from,
            &s,
            engine,
            Box::new(move |result| {
                let _ = tx.send(result);
            }),
        );
        let returned = rx.recv().unwrap().expect_err("occupied name must refuse");
        assert_eq!(
            returned.session().n_datasets(),
            3,
            "engine came back intact"
        );
        drop(handles);
        pool.join();
    }

    #[test]
    fn shards_share_one_dataset_cache() {
        let dir = std::env::temp_dir().join(format!("fv-shard-cache-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shared.pcl");
        std::fs::write(
            &path,
            "ID\tNAME\tGWEIGHT\tc0\tc1\nG1\tG1\t1\t1.0\t2.0\nG2\tG2\t1\t3.0\t4.0\n",
        )
        .unwrap();
        let pool = ShardPool::spawn(4, (640, 480));
        let handles = pool.handles();
        let load = Request::Mutate(Mutation::LoadDataset {
            path: path.to_string_lossy().into_owned(),
        });
        // session names chosen to spread across shards
        for name in ["s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7"] {
            let out = handles.execute(&SessionId::new(name).unwrap(), vec![load.clone()]);
            assert!(out.error.is_none(), "{name}: {:?}", out.error);
        }
        let stats = handles.cache_stats();
        assert_eq!(stats.misses, 1, "one parse across all shards");
        assert_eq!(stats.hits, 7);
        assert_eq!(stats.entries, 1);
        drop(handles);
        pool.join();
        std::fs::remove_dir_all(&dir).ok();
    }
}
