//! Session sharding: N worker threads, each owning one [`EngineHub`].
//!
//! The hub is the sharding seam (see `crates/api/README.md`): sessions
//! are partitioned by a stable hash of their name, so every request for a
//! session lands on the same worker and sessions never need cross-shard
//! coordination. Workers own their hub outright — connections talk to
//! them over channels, so there is no lock to contend on or poison; a
//! panicking request (an engine bug) costs the offending session, never
//! the shard.

use fv_api::engine::fnv1a;
use fv_api::{ApiError, EngineHub, Request, RunOutcome, SessionId};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::thread::JoinHandle;

pub(crate) enum Job {
    /// Execute a request run on the session (empty runs just materialize
    /// it — the `use` semantics). Answered with the run's
    /// [`RunOutcome`].
    Run {
        session: SessionId,
        requests: Vec<Request>,
        reply: mpsc::Sender<RunOutcome>,
    },
    /// Drop the session; replies whether it existed.
    Close {
        session: SessionId,
        reply: mpsc::Sender<bool>,
    },
}

/// Cloneable per-connection handle onto the shard workers.
#[derive(Clone)]
pub(crate) struct ShardHandles {
    senders: Vec<mpsc::Sender<Job>>,
}

impl ShardHandles {
    /// Which shard owns `id`: FNV-1a of the session name, mod shard
    /// count. Stable across connections and server restarts.
    pub fn shard_of(&self, id: &SessionId) -> usize {
        shard_of(id, self.senders.len())
    }

    /// Execute a request run on the owning shard, blocking until the
    /// shard replies. An empty `requests` still materializes the session
    /// (the `use` semantics).
    pub fn execute(&self, session: &SessionId, requests: Vec<Request>) -> RunOutcome {
        let (tx, rx) = mpsc::channel();
        let job = Job::Run {
            session: session.clone(),
            requests,
            reply: tx,
        };
        if self.senders[self.shard_of(session)].send(job).is_err() {
            return shard_down();
        }
        rx.recv().unwrap_or_else(|_| shard_down())
    }

    /// Drop a session on its owning shard; `false` if it did not exist
    /// (or the shard is gone).
    pub fn close(&self, session: &SessionId) -> bool {
        let (tx, rx) = mpsc::channel();
        let job = Job::Close {
            session: session.clone(),
            reply: tx,
        };
        if self.senders[self.shard_of(session)].send(job).is_err() {
            return false;
        }
        rx.recv().unwrap_or(false)
    }
}

fn shard_down() -> RunOutcome {
    RunOutcome {
        responses: Vec::new(),
        error: Some((
            0,
            ApiError::new(fv_api::ErrorCode::Internal, "shard worker is gone"),
        )),
    }
}

/// Stable shard routing function (exposed for tests and docs).
pub fn shard_of(id: &SessionId, n_shards: usize) -> usize {
    (fnv1a(id.as_str().as_bytes()) % n_shards.max(1) as u64) as usize
}

/// The worker threads plus the means to stop them. Workers exit when
/// every [`ShardHandles`] clone is gone and [`ShardPool::join`] drops the
/// originals.
pub(crate) struct ShardPool {
    handles: ShardHandles,
    workers: Vec<JoinHandle<()>>,
}

impl ShardPool {
    /// Spawn `n` workers, each with an empty [`EngineHub`] resolving
    /// damage against `scene`.
    pub fn spawn(n: usize, scene: (usize, usize)) -> ShardPool {
        let n = n.max(1);
        let mut senders = Vec::with_capacity(n);
        let mut workers = Vec::with_capacity(n);
        for i in 0..n {
            let (tx, rx) = mpsc::channel::<Job>();
            senders.push(tx);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("fv-net-shard-{i}"))
                    .spawn(move || worker(rx, scene))
                    .expect("spawn shard worker"),
            );
        }
        ShardPool {
            handles: ShardHandles { senders },
            workers,
        }
    }

    pub fn handles(&self) -> ShardHandles {
        self.handles.clone()
    }

    /// Drop the original senders and wait for the workers to drain and
    /// exit. Callers must first ensure connection threads (which hold
    /// handle clones) are done, or this blocks until they are.
    pub fn join(self) {
        drop(self.handles);
        for w in self.workers {
            let _ = w.join();
        }
    }
}

fn worker(rx: mpsc::Receiver<Job>, scene: (usize, usize)) {
    let mut hub = EngineHub::with_scene(scene.0, scene.1);
    while let Ok(job) = rx.recv() {
        match job {
            Job::Close { session, reply } => {
                let _ = reply.send(hub.close(&session));
            }
            Job::Run {
                session,
                requests,
                reply,
            } => {
                let outcome =
                    catch_unwind(AssertUnwindSafe(|| hub.execute_run_on(&session, &requests)));
                let out = outcome.unwrap_or_else(|_| {
                    // An engine panic means the session's state is
                    // suspect; drop the session so the shard (and its
                    // other sessions) stays healthy, and report a typed
                    // internal error.
                    hub.close(&session);
                    RunOutcome {
                        responses: Vec::new(),
                        error: Some((
                            0,
                            ApiError::new(
                                fv_api::ErrorCode::Internal,
                                format!("request panicked; session {session} was dropped"),
                            ),
                        )),
                    }
                });
                // The connection may already be gone; that is not the
                // shard's problem.
                let _ = reply.send(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fv_api::{Mutation, Query};

    #[test]
    fn routing_is_stable_and_in_range() {
        for name in ["main", "alpha", "s0", "s1", "s2", "s3"] {
            let id = SessionId::new(name).unwrap();
            let s = shard_of(&id, 4);
            assert!(s < 4);
            assert_eq!(s, shard_of(&id, 4), "routing must be deterministic");
        }
        assert_eq!(shard_of(&SessionId::new("x").unwrap(), 0), 0);
    }

    #[test]
    fn pool_executes_and_isolates_sessions() {
        let pool = ShardPool::spawn(4, (640, 480));
        let handles = pool.handles();
        let a = SessionId::new("a").unwrap();
        let b = SessionId::new("b").unwrap();
        let reply = handles.execute(
            &a,
            vec![Request::Mutate(Mutation::LoadScenario {
                n_genes: 60,
                seed: 1,
            })],
        );
        assert!(reply.error.is_none());
        let reply = handles.execute(&b, vec![Request::Query(Query::SessionInfo)]);
        assert!(reply.error.is_none());
        match &reply.responses[0] {
            fv_api::Response::SessionInfo(info) => assert_eq!(info.n_datasets, 0),
            other => panic!("wrong response: {other:?}"),
        }
        assert!(handles.close(&a), "a existed");
        assert!(!handles.close(&a), "a already closed");
        drop(handles);
        pool.join();
    }

    #[test]
    fn failed_run_reports_index_and_prefix() {
        let pool = ShardPool::spawn(2, (640, 480));
        let handles = pool.handles();
        let s = SessionId::new("s").unwrap();
        let reply = handles.execute(
            &s,
            vec![
                Request::Mutate(Mutation::LoadScenario {
                    n_genes: 60,
                    seed: 1,
                }),
                Request::Mutate(Mutation::Impute { dataset: 9, k: 3 }),
            ],
        );
        assert_eq!(reply.responses.len(), 1);
        let (idx, err) = reply.error.unwrap();
        assert_eq!(idx, 1);
        assert_eq!(err.code, fv_api::ErrorCode::NotFound);
        drop(handles);
        pool.join();
    }
}
