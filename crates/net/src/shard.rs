//! Session sharding: N worker threads, each owning one [`EngineHub`].
//!
//! The hub is the sharding seam (see `crates/api/README.md`): sessions
//! are partitioned by a stable hash of their name, so every request for a
//! session lands on the same worker and sessions never need cross-shard
//! coordination. Workers own their hub outright — the event loop talks to
//! them over channels, so there is no lock to contend on or poison; a
//! panicking request (an engine bug) costs the offending session, never
//! the shard.
//!
//! Two things *are* shared across shards:
//!
//! - **The dataset cache**: every worker's hub is built over one
//!   [`DatasetCache`], so the same PCL loaded into sessions on different
//!   shards is parsed exactly once and shared as `Arc` handles. (The
//!   process backend re-creates this seam per child process — see
//!   `crate::procshard`.)
//! - **Sessions, by migration**: [`Job::Extract`] snapshots a session
//!   into a serializable [`SessionImage`] and [`Job::Install`] restores
//!   it on another shard by replaying its compacted mutation log — no
//!   engine value ever crosses the seam, which is exactly what lets a
//!   shard be a child process. Routing overrides live in the event loop
//!   (see `crate::server`), which is why the `*_to` submit variants take
//!   an explicit shard index.
//!
//! Jobs carry their reply as a boxed `FnOnce` responder, so the same
//! worker serves both blocking callers (tests, tools) and the
//! event loop's completion channel (which must never block): the loop's
//! responders push a completion and poke the loop's waker.
//!
//! The seam itself is the [`ShardBackend`] trait: the event loop submits
//! [`Job`]s against `Arc<dyn ShardBackend>` and never learns whether the
//! shard lives on a thread ([`InProcBackend`], this module) or in a
//! child process (`ProcBackend`, `crate::procshard`). [`WorkerCore`]
//! holds the per-shard execution logic both backends drive.

use crate::metrics::LatencyHistogram;
use fv_api::engine::fnv1a;
use fv_api::{
    ApiError, CacheStats, DatasetCache, Engine, EngineHub, Request, Response, RunOutcome,
    SessionId, SessionImage,
};
use fv_render::Framebuffer;
use fv_wall::tile::Viewport;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

/// One session's slice of a [`ShardReport`]: identity for
/// `list-sessions`, cumulative cost estimates for the rebalancer.
#[derive(Debug, Clone)]
pub(crate) struct SessionReport {
    pub name: String,
    pub n_datasets: usize,
    /// Attempted requests since the session was created (travels with
    /// the engine across migrations).
    pub requests: u64,
    /// Approximate resident dataset bytes.
    pub dataset_bytes: u64,
}

/// One shard's contribution to a `stats`, `list-sessions`, or balancer
/// snapshot: sessions it owns (with cost estimates) plus its execution
/// counters.
#[derive(Debug, Clone)]
pub(crate) struct ShardReport {
    pub shard: usize,
    /// Per-session reports, sorted by name (hub order).
    pub sessions: Vec<SessionReport>,
    /// Non-empty runs executed.
    pub runs: u64,
    /// Requests executed across those runs.
    pub requests: u64,
    /// Largest single run.
    pub max_run: usize,
    /// Per-request latency histogram of everything this shard executed.
    pub latency: LatencyHistogram,
}

impl ShardReport {
    pub(crate) fn empty(shard: usize) -> ShardReport {
        ShardReport {
            shard,
            sessions: Vec::new(),
            runs: 0,
            requests: 0,
            max_run: 0,
            latency: LatencyHistogram::new(),
        }
    }
}

/// A post-run rasterization for the streaming plane: the shard rendered
/// the session once into a scene-sized framebuffer, and the damage says
/// which of its pixels this run may have changed (scene coordinates;
/// conservatively the full scene when a response type carries no rects).
pub(crate) struct PubFrame {
    pub session: SessionId,
    pub wall: Framebuffer,
    pub damage: Vec<Viewport>,
}

/// A run's answer: the outcome plus whether the worker had to drop the
/// session (a panicking request poisons its session). Transports use the
/// flag to clean up per-session routing state. `frame` carries the
/// publish rasterization when the run asked for one.
pub(crate) struct RunDone {
    pub outcome: RunOutcome,
    pub session_dropped: bool,
    pub frame: Option<PubFrame>,
}

/// An install's reply: `Ok` on success, or the image handed back with
/// the typed refusal so the caller can restore the session.
pub(crate) type InstallOutcome = Result<(), (SessionImage, ApiError)>;

pub(crate) enum Job {
    /// Execute a request run on the session (empty runs just materialize
    /// it — the `use` semantics). Answered with the run's
    /// [`RunDone`]. With `publish` set the worker also renders the
    /// session's scene once after the run — the fv-stream fan-out hook;
    /// the event loop sets it exactly when the session has subscribers.
    Run {
        session: SessionId,
        requests: Vec<Request>,
        publish: bool,
        respond: Box<dyn FnOnce(RunDone) + Send>,
    },
    /// Drop the session; replies whether it existed.
    Close {
        session: SessionId,
        respond: Box<dyn FnOnce(bool) + Send>,
    },
    /// Snapshot the shard's sessions and counters. Carries the target
    /// shard index so a dead shard can still answer an attributed empty
    /// report.
    Report {
        shard: usize,
        respond: Box<dyn FnOnce(ShardReport) + Send>,
    },
    /// Pull the session out of this shard as a serializable
    /// [`SessionImage`] (migration step 1); the engine itself is dropped.
    /// Replies `None` if the session does not live here.
    Extract {
        session: SessionId,
        respond: Box<dyn FnOnce(Option<SessionImage>) + Send>,
    },
    /// Snapshot the session as a [`SessionImage`] WITHOUT dropping the
    /// engine — the checkpoint read: the session keeps serving while its
    /// image goes to the durable store. Replies `None` if the session
    /// does not live here.
    Snapshot {
        session: SessionId,
        respond: Box<dyn FnOnce(Option<SessionImage>) + Send>,
    },
    /// Restore a previously extracted image (migration step 2). On
    /// failure (name already taken here, which routing prevents; a
    /// fingerprint mismatch on replay; or a dead shard) the image is
    /// handed BACK through the responder with the reason, so the caller
    /// can restore it — an install failure must never destroy a session
    /// that was alive before the migration.
    Install {
        session: SessionId,
        image: SessionImage,
        respond: Box<dyn FnOnce(InstallOutcome) + Send>,
    },
    /// Stop the worker after draining everything queued before this job.
    /// Backends submit it from their `shutdown`; it has no reply.
    Shutdown,
}

impl Job {
    /// Answer this job the way a dead shard must: every responder fires
    /// exactly once with a typed refusal built from `err`, and an
    /// [`Job::Install`]'s image comes back so the session is not lost.
    /// The one generic fallback every backend's submit path shares.
    pub fn respond_shard_down(self, err: ApiError) {
        match self {
            Job::Run { respond, .. } => respond(RunDone {
                outcome: RunOutcome {
                    responses: Vec::new(),
                    error: Some((0, err)),
                    latencies: Vec::new(),
                },
                session_dropped: false,
                frame: None,
            }),
            Job::Close { respond, .. } => respond(false),
            Job::Report { shard, respond } => respond(ShardReport::empty(shard)),
            Job::Extract { respond, .. } => respond(None),
            Job::Snapshot { respond, .. } => respond(None),
            Job::Install { image, respond, .. } => respond(Err((image, err))),
            Job::Shutdown => {}
        }
    }
}

/// Cloneable handle onto the shard workers.
#[derive(Clone)]
pub(crate) struct ShardHandles {
    senders: Vec<mpsc::Sender<Job>>,
    /// Jobs sent but not yet dequeued, per shard — the queue-depth gauge
    /// `stats` reports without a worker round trip.
    depth: Arc<Vec<AtomicUsize>>,
    /// The dataset cache every worker's hub shares.
    cache: DatasetCache,
}

impl ShardHandles {
    /// Which shard owns `id` *by hash*: FNV-1a of the session name, mod
    /// shard count. Stable across connections and server restarts.
    /// Transports that support migration overlay their own routing
    /// overrides on top of this default. (Production callers route via
    /// [`ShardBackend::shard_of`]; this is the test convenience.)
    #[cfg(test)]
    pub fn shard_of(&self, id: &SessionId) -> usize {
        shard_of(id, self.senders.len())
    }

    /// Worker count.
    pub fn n_shards(&self) -> usize {
        self.senders.len()
    }

    /// Snapshot of per-shard queued (sent, not yet dequeued) job counts.
    pub fn queue_depths(&self) -> Vec<usize> {
        self.depth
            .iter()
            .map(|d| d.load(Ordering::SeqCst))
            .collect()
    }

    /// Gauges of the cache all shards share.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Enqueue `job` on `shard`. On a dead shard the job's responder
    /// fires immediately with a typed `E_INTERNAL` refusal (a thread
    /// worker only dies with the process, so this is an internal bug, not
    /// the crash-isolation `E_SHARD_DOWN` the process backend reports) —
    /// callers always hear back exactly once.
    pub fn submit(&self, shard: usize, job: Job) {
        self.depth[shard].fetch_add(1, Ordering::SeqCst);
        if let Err(mpsc::SendError(job)) = self.senders[shard].send(job) {
            self.depth[shard].fetch_sub(1, Ordering::SeqCst);
            job.respond_shard_down(ApiError::new(
                fv_api::ErrorCode::Internal,
                "shard worker is gone",
            ));
        }
    }

    /// Execute a request run on the owning shard, blocking until the
    /// shard replies. An empty `requests` still materializes the session
    /// (the `use` semantics). The event loop never blocks on a shard —
    /// this is the synchronous convenience for tests and tools.
    #[cfg(test)]
    pub fn execute(&self, session: &SessionId, requests: Vec<Request>) -> RunOutcome {
        let (tx, rx) = mpsc::channel();
        self.submit(
            self.shard_of(session),
            Job::Run {
                session: session.clone(),
                requests,
                publish: false,
                respond: Box::new(move |done| {
                    let _ = tx.send(done);
                }),
            },
        );
        rx.recv().map(|done| done.outcome).unwrap_or(RunOutcome {
            responses: Vec::new(),
            error: Some((
                0,
                ApiError::new(fv_api::ErrorCode::Internal, "shard worker is gone"),
            )),
            latencies: Vec::new(),
        })
    }

    /// Drop a session on its owning shard; `false` if it did not exist
    /// (or the shard is gone). Blocking convenience for tests.
    #[cfg(test)]
    pub fn close(&self, session: &SessionId) -> bool {
        let (tx, rx) = mpsc::channel();
        self.submit(
            self.shard_of(session),
            Job::Close {
                session: session.clone(),
                respond: Box::new(move |existed| {
                    let _ = tx.send(existed);
                }),
            },
        );
        rx.recv().unwrap_or(false)
    }
}

/// The shard seam, as a trait: the event loop (and the balancer chain it
/// hosts) submits [`Job`]s against `Arc<dyn ShardBackend>` and never
/// learns where the shard lives. Two implementations exist —
/// [`InProcBackend`] (worker threads, one shared [`DatasetCache`]) and
/// `crate::procshard::ProcBackend` (child processes speaking the
/// length-framed shard control protocol). Everything that crosses this
/// seam is serializable: requests and responses as canonical wire text,
/// sessions as [`SessionImage`]s.
pub(crate) trait ShardBackend: Send + Sync {
    /// `"threads"` or `"procs"` — surfaced by `stats`.
    fn kind(&self) -> &'static str;
    /// Shard count.
    fn n_shards(&self) -> usize;
    /// OS process id serving each shard (the server's own pid for every
    /// thread shard) — surfaced by `stats`.
    fn pids(&self) -> Vec<u32>;
    /// Snapshot of per-shard queued (submitted, not yet picked up) jobs.
    fn queue_depths(&self) -> Vec<usize>;
    /// Dataset-cache gauges, aggregated across whatever caches the
    /// backend's shards actually hold (one shared cache for threads, one
    /// per child for processes).
    fn cache_stats(&self) -> CacheStats;
    /// Enqueue `job` on `shard`. Must never block and must guarantee the
    /// job's responder fires exactly once — immediately, with the
    /// backend's typed dead-shard refusal, if the shard is gone.
    fn submit(&self, shard: usize, job: Job);
    /// Stop every shard and reclaim it (join threads / reap child
    /// processes). Idempotent; jobs submitted afterwards get dead-shard
    /// replies.
    fn shutdown(&self);

    /// Which shard owns `id` by hash (transports overlay migration
    /// routing overrides on top of this default).
    fn shard_of(&self, id: &SessionId) -> usize {
        shard_of(id, self.n_shards())
    }

    /// Enqueue a run on an explicit shard.
    fn submit_run_to(
        &self,
        shard: usize,
        session: &SessionId,
        requests: Vec<Request>,
        publish: bool,
        respond: Box<dyn FnOnce(RunDone) + Send>,
    ) {
        self.submit(
            shard,
            Job::Run {
                session: session.clone(),
                requests,
                publish,
                respond,
            },
        );
    }

    /// Enqueue a close on an explicit shard; a dead shard answers `false`.
    fn submit_close_to(
        &self,
        shard: usize,
        session: &SessionId,
        respond: Box<dyn FnOnce(bool) + Send>,
    ) {
        self.submit(
            shard,
            Job::Close {
                session: session.clone(),
                respond,
            },
        );
    }

    /// Enqueue a session extraction (migration step 1) on `shard`; a
    /// dead shard answers `None`.
    fn submit_extract(
        &self,
        shard: usize,
        session: &SessionId,
        respond: Box<dyn FnOnce(Option<SessionImage>) + Send>,
    ) {
        self.submit(
            shard,
            Job::Extract {
                session: session.clone(),
                respond,
            },
        );
    }

    /// Enqueue a non-destructive session snapshot (the checkpoint read)
    /// on `shard`; a dead shard answers `None`.
    fn submit_snapshot(
        &self,
        shard: usize,
        session: &SessionId,
        respond: Box<dyn FnOnce(Option<SessionImage>) + Send>,
    ) {
        self.submit(
            shard,
            Job::Snapshot {
                session: session.clone(),
                respond,
            },
        );
    }

    /// Enqueue an image install (migration step 2) on `shard`; on
    /// failure the image comes straight back through the responder.
    fn submit_install(
        &self,
        shard: usize,
        session: &SessionId,
        image: SessionImage,
        respond: Box<dyn FnOnce(InstallOutcome) + Send>,
    ) {
        self.submit(
            shard,
            Job::Install {
                session: session.clone(),
                image,
                respond,
            },
        );
    }

    /// Fan a report request out to every shard. `make` builds one
    /// responder per shard; dead shards answer with an empty report so
    /// gathers always complete.
    fn submit_report_all(&self, make: &mut dyn FnMut() -> Box<dyn FnOnce(ShardReport) + Send>) {
        for shard in 0..self.n_shards() {
            self.submit(
                shard,
                Job::Report {
                    shard,
                    respond: make(),
                },
            );
        }
    }
}

/// The thread-shard backend: today's worker threads behind the
/// [`ShardBackend`] seam, byte-identical behavior included.
pub(crate) struct InProcBackend {
    handles: ShardHandles,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl InProcBackend {
    /// Spawn `n` worker threads sharing one [`DatasetCache`]. The shard
    /// at `refuse_install_to` (tests only) refuses every install, forcing
    /// the migration restore path.
    pub fn spawn(
        n: usize,
        scene: (usize, usize),
        refuse_install_to: Option<usize>,
    ) -> std::io::Result<InProcBackend> {
        let pool = ShardPool::spawn_with_faults(n, scene, refuse_install_to)?;
        Ok(InProcBackend {
            handles: pool.handles,
            workers: Mutex::new(pool.workers),
        })
    }
}

impl ShardBackend for InProcBackend {
    fn kind(&self) -> &'static str {
        "threads"
    }

    fn n_shards(&self) -> usize {
        self.handles.n_shards()
    }

    fn pids(&self) -> Vec<u32> {
        vec![std::process::id(); self.handles.n_shards()]
    }

    fn queue_depths(&self) -> Vec<usize> {
        self.handles.queue_depths()
    }

    fn cache_stats(&self) -> CacheStats {
        self.handles.cache_stats()
    }

    fn submit(&self, shard: usize, job: Job) {
        self.handles.submit(shard, job);
    }

    fn shutdown(&self) {
        for shard in 0..self.handles.n_shards() {
            self.handles.submit(shard, Job::Shutdown);
        }
        let workers = match self.workers.lock() {
            Ok(mut w) => std::mem::take(&mut *w),
            Err(_) => return,
        };
        for w in workers {
            let _ = w.join();
        }
    }
}

/// What this run may have repainted, in scene coordinates. `Applied`
/// responses carry exact damage rects; any other state-mutating response
/// (dataset loads, imputation, normalization, clustering…) reports no
/// rects and conservatively damages the full scene. An empty run — the
/// publish refresh a `subscribe` or a migration hand-over submits —
/// touched nothing, which is fine: its subscribers are keyframe-synced
/// from the rendered framebuffer, not from damage.
fn run_damage(out: &RunOutcome, scene: (usize, usize)) -> Vec<Viewport> {
    let full = Viewport {
        x: 0,
        y: 0,
        w: scene.0,
        h: scene.1,
    };
    let mut rects = Vec::new();
    for response in &out.responses {
        match response {
            Response::Applied { damage, .. } => rects.extend(damage.iter().map(|d| Viewport {
                x: d.x,
                y: d.y,
                w: d.w,
                h: d.h,
            })),
            Response::Loaded { .. }
            | Response::ScenarioLoaded { .. }
            | Response::OntologyReady { .. }
            | Response::Imputed { .. }
            | Response::Normalized { .. }
            | Response::ArraysClustered { .. } => return vec![full],
            _ => {}
        }
    }
    rects
}

/// Stable shard routing function (exposed for tests and docs).
pub fn shard_of(id: &SessionId, n_shards: usize) -> usize {
    (fnv1a(id.as_str().as_bytes()) % n_shards.max(1) as u64) as usize
}

/// The worker threads plus the means to stop them. Workers exit when
/// every [`ShardHandles`] clone is gone and [`ShardPool::join`] drops the
/// originals.
pub(crate) struct ShardPool {
    handles: ShardHandles,
    workers: Vec<JoinHandle<()>>,
}

impl ShardPool {
    /// Spawn `n` workers, each with an empty [`EngineHub`] resolving
    /// damage against `scene`. All hubs share one [`DatasetCache`], so a
    /// file loaded by sessions on different shards is parsed once.
    /// (Production callers go through [`ShardPool::spawn_with_faults`]
    /// with `None` — this is the test convenience.)
    #[cfg(test)]
    pub fn spawn(n: usize, scene: (usize, usize)) -> ShardPool {
        ShardPool::spawn_with_faults(n, scene, None).expect("spawn shard workers")
    }

    /// Like [`ShardPool::spawn`], but with fault injection: the shard at
    /// `refuse_install_to` refuses every [`Job::Install`], handing the
    /// engine back — how tests drive the migration restore path without
    /// killing a worker. `None` in production.
    pub fn spawn_with_faults(
        n: usize,
        scene: (usize, usize),
        refuse_install_to: Option<usize>,
    ) -> std::io::Result<ShardPool> {
        let n = n.max(1);
        let cache = DatasetCache::new();
        let depth: Arc<Vec<AtomicUsize>> = Arc::new((0..n).map(|_| AtomicUsize::new(0)).collect());
        let mut senders = Vec::with_capacity(n);
        let mut workers = Vec::with_capacity(n);
        for i in 0..n {
            let (tx, rx) = mpsc::channel::<Job>();
            senders.push(tx);
            let depth = Arc::clone(&depth);
            let cache = cache.clone();
            let refuse_install = refuse_install_to == Some(i);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("fv-net-shard-{i}"))
                    .spawn(move || worker(i, rx, depth, scene, cache, refuse_install))?,
            );
        }
        Ok(ShardPool {
            handles: ShardHandles {
                senders,
                depth,
                cache,
            },
            workers,
        })
    }

    #[cfg(test)]
    pub fn handles(&self) -> ShardHandles {
        self.handles.clone()
    }

    /// Drop the original senders and wait for the workers to drain and
    /// exit. Callers must first drop every other handle clone, or this
    /// blocks until they are gone.
    #[cfg(test)]
    pub fn join(self) {
        drop(self.handles);
        for w in self.workers {
            let _ = w.join();
        }
    }
}

/// One shard's execution logic, backend-agnostic: the hub plus the
/// counters a [`ShardReport`] snapshots. The thread worker loop drives
/// it from an mpsc channel; the child-process worker
/// (`crate::procshard`) drives it from decoded protocol frames. Keeping
/// the logic here is what makes the two backends behave identically.
pub(crate) struct WorkerCore {
    shard: usize,
    scene: (usize, usize),
    hub: EngineHub,
    runs: u64,
    requests_executed: u64,
    max_run: usize,
    latency: LatencyHistogram,
    refuse_install: bool,
}

impl WorkerCore {
    pub fn new(
        shard: usize,
        scene: (usize, usize),
        cache: DatasetCache,
        refuse_install: bool,
    ) -> WorkerCore {
        WorkerCore {
            shard,
            scene,
            hub: EngineHub::with_cache(scene.0, scene.1, cache),
            runs: 0,
            requests_executed: 0,
            max_run: 0,
            latency: LatencyHistogram::new(),
            refuse_install,
        }
    }

    /// Gauges of this worker's dataset cache (shared across shards in the
    /// thread backend, per-process in the process backend).
    pub fn cache_stats(&self) -> CacheStats {
        self.hub.cache_stats()
    }

    pub fn close(&mut self, session: &SessionId) -> bool {
        self.hub.close(session)
    }

    /// Migration step 1: snapshot the session into a [`SessionImage`]
    /// and drop the engine. `None` if the session does not live here.
    pub fn extract(&mut self, session: &SessionId) -> Option<SessionImage> {
        self.hub
            .take_session(session)
            .map(|engine| engine.snapshot())
    }

    /// The checkpoint read: snapshot the session into a [`SessionImage`]
    /// while the engine stays in place and keeps serving. `None` if the
    /// session does not live here (it may be mid-migration — the caller
    /// must treat that as "skip", never as "the session is gone").
    pub fn snapshot(&self, session: &SessionId) -> Option<SessionImage> {
        self.hub.get(session).map(Engine::snapshot)
    }

    /// Migration step 2: restore `image` into this shard by replaying
    /// its log ([`Engine::restore`] asserts the dataset fingerprints).
    /// On refusal or a failed replay the image is handed back with the
    /// reason.
    pub fn install(
        &mut self,
        session: &SessionId,
        image: SessionImage,
    ) -> Result<(), (SessionImage, ApiError)> {
        if self.refuse_install {
            // Injected fault (tests drive the migration restore path
            // with it).
            return Err((
                image,
                ApiError::new(
                    fv_api::ErrorCode::Internal,
                    "install refused (injected fault)",
                ),
            ));
        }
        if self.hub.get(session).is_some() {
            // Name already taken here — routing should prevent this;
            // hand the image back rather than lose either session.
            return Err((
                image,
                ApiError::invalid(format!("session {session} already exists on this shard")),
            ));
        }
        match Engine::restore(&image, self.hub.cache()) {
            Ok(engine) => {
                self.hub.install_session(session, engine);
                Ok(())
            }
            Err(e) => Err((image, e)),
        }
    }

    pub fn report(&self) -> ShardReport {
        ShardReport {
            shard: self.shard,
            sessions: self
                .hub
                .list_sessions()
                .into_iter()
                .map(|(id, n)| {
                    let cost = self.hub.get(&id).map(Engine::cost).unwrap_or_default();
                    SessionReport {
                        name: id.to_string(),
                        n_datasets: n,
                        requests: cost.requests,
                        dataset_bytes: cost.dataset_bytes,
                    }
                })
                .collect(),
            runs: self.runs,
            requests: self.requests_executed,
            max_run: self.max_run,
            latency: self.latency.clone(),
        }
    }

    pub fn run(&mut self, session: &SessionId, requests: &[Request], publish: bool) -> RunDone {
        if !requests.is_empty() {
            self.runs += 1;
            self.max_run = self.max_run.max(requests.len());
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            self.hub.execute_run_on(session, requests)
        }));
        let mut session_dropped = false;
        let out = outcome.unwrap_or_else(|_| {
            // An engine panic means the session's state is suspect; drop
            // the session so the shard (and its other sessions) stays
            // healthy, and report a typed internal error. The flag lets
            // the transport drop per-session routing state with it.
            self.hub.close(session);
            session_dropped = true;
            RunOutcome {
                responses: Vec::new(),
                error: Some((
                    0,
                    ApiError::new(
                        fv_api::ErrorCode::Internal,
                        format!("request panicked; session {session} was dropped"),
                    ),
                )),
                latencies: Vec::new(),
            }
        });
        // One latency observation per ATTEMPTED request (the failing one
        // included, never the skipped tail), and the `requests` counter
        // counts exactly the same population — so `stats`' histogram
        // totals always equal `requests`.
        self.requests_executed += out.latencies.len() as u64;
        for &l in &out.latencies {
            self.latency.record(l);
        }
        // The streaming rasterize hook: render the session's scene once
        // per published run. Subscribers share this one render no matter
        // how many are watching.
        let frame = if publish && !session_dropped {
            self.hub.get(session).map(|engine| PubFrame {
                session: session.clone(),
                damage: run_damage(&out, self.scene),
                wall: forestview::renderer::render_desktop(
                    engine.session(),
                    self.scene.0,
                    self.scene.1,
                ),
            })
        } else {
            None
        };
        RunDone {
            outcome: out,
            session_dropped,
            frame,
        }
    }
}

fn worker(
    shard: usize,
    rx: mpsc::Receiver<Job>,
    depth: Arc<Vec<AtomicUsize>>,
    scene: (usize, usize),
    cache: DatasetCache,
    refuse_install: bool,
) {
    let mut core = WorkerCore::new(shard, scene, cache, refuse_install);
    while let Ok(job) = rx.recv() {
        depth[shard].fetch_sub(1, Ordering::SeqCst);
        match job {
            Job::Shutdown => break,
            Job::Close { session, respond } => respond(core.close(&session)),
            Job::Extract { session, respond } => respond(core.extract(&session)),
            Job::Snapshot { session, respond } => respond(core.snapshot(&session)),
            Job::Install {
                session,
                image,
                respond,
            } => respond(core.install(&session, image)),
            Job::Report { respond, .. } => respond(core.report()),
            Job::Run {
                session,
                requests,
                publish,
                respond,
            } => {
                // The connection may already be gone; that is not the
                // shard's problem.
                respond(core.run(&session, &requests, publish));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fv_api::{Mutation, Query};

    #[test]
    fn routing_is_stable_and_in_range() {
        for name in ["main", "alpha", "s0", "s1", "s2", "s3"] {
            let id = SessionId::new(name).unwrap();
            let s = shard_of(&id, 4);
            assert!(s < 4);
            assert_eq!(s, shard_of(&id, 4), "routing must be deterministic");
        }
        assert_eq!(shard_of(&SessionId::new("x").unwrap(), 0), 0);
    }

    #[test]
    fn pool_executes_and_isolates_sessions() {
        let pool = ShardPool::spawn(4, (640, 480));
        let handles = pool.handles();
        let a = SessionId::new("a").unwrap();
        let b = SessionId::new("b").unwrap();
        let reply = handles.execute(
            &a,
            vec![Request::Mutate(Mutation::LoadScenario {
                n_genes: 60,
                seed: 1,
            })],
        );
        assert!(reply.error.is_none());
        let reply = handles.execute(&b, vec![Request::Query(Query::SessionInfo)]);
        assert!(reply.error.is_none());
        match &reply.responses[0] {
            fv_api::Response::SessionInfo(info) => assert_eq!(info.n_datasets, 0),
            other => panic!("wrong response: {other:?}"),
        }
        assert!(handles.close(&a), "a existed");
        assert!(!handles.close(&a), "a already closed");
        drop(handles);
        pool.join();
    }

    #[test]
    fn failed_run_reports_index_and_prefix() {
        let pool = ShardPool::spawn(2, (640, 480));
        let handles = pool.handles();
        let s = SessionId::new("s").unwrap();
        let reply = handles.execute(
            &s,
            vec![
                Request::Mutate(Mutation::LoadScenario {
                    n_genes: 60,
                    seed: 1,
                }),
                Request::Mutate(Mutation::Impute { dataset: 9, k: 3 }),
            ],
        );
        assert_eq!(reply.responses.len(), 1);
        let (idx, err) = reply.error.unwrap();
        assert_eq!(idx, 1);
        assert_eq!(err.code, fv_api::ErrorCode::NotFound);
        drop(handles);
        pool.join();
    }

    #[test]
    fn reports_cover_sessions_counters_and_latency() {
        let pool = ShardPool::spawn(2, (640, 480));
        let handles = pool.handles();
        let a = SessionId::new("alpha").unwrap();
        handles.execute(
            &a,
            vec![Request::Mutate(Mutation::LoadScenario {
                n_genes: 60,
                seed: 1,
            })],
        );
        let (tx, rx) = mpsc::channel();
        for shard in 0..2 {
            let tx = tx.clone();
            handles.submit(
                shard,
                Job::Report {
                    shard,
                    respond: Box::new(move |report| {
                        let _ = tx.send(report);
                    }),
                },
            );
        }
        let mut reports: Vec<ShardReport> = (0..2).map(|_| rx.recv().unwrap()).collect();
        reports.sort_by_key(|r| r.shard);
        let owner = shard_of(&a, 2);
        assert_eq!(reports[owner].sessions.len(), 1);
        let alpha = &reports[owner].sessions[0];
        assert_eq!(alpha.name, "alpha");
        assert_eq!(alpha.n_datasets, 3);
        assert_eq!(alpha.requests, 1, "one attempted request so far");
        assert!(alpha.dataset_bytes > 0, "scenario datasets have size");
        assert_eq!(reports[owner].runs, 1);
        assert_eq!(reports[owner].requests, 1);
        assert_eq!(reports[owner].max_run, 1);
        assert_eq!(
            reports[owner].latency.total(),
            1,
            "one request, one latency observation"
        );
        assert!(reports[owner].latency.max_us > 0);
        assert!(reports[1 - owner].sessions.is_empty());
        assert_eq!(reports[1 - owner].latency.total(), 0);
        assert_eq!(handles.queue_depths(), [0, 0], "queues drained");
        drop(handles);
        pool.join();
    }

    fn extract_on(handles: &ShardHandles, shard: usize, s: &SessionId) -> Option<SessionImage> {
        let (tx, rx) = mpsc::channel();
        handles.submit(
            shard,
            Job::Extract {
                session: s.clone(),
                respond: Box::new(move |image| {
                    let _ = tx.send(image);
                }),
            },
        );
        rx.recv().unwrap()
    }

    fn install_on(
        handles: &ShardHandles,
        shard: usize,
        s: &SessionId,
        image: SessionImage,
    ) -> Result<(), (SessionImage, ApiError)> {
        let (tx, rx) = mpsc::channel();
        handles.submit(
            shard,
            Job::Install {
                session: s.clone(),
                image,
                respond: Box::new(move |result| {
                    let _ = tx.send(result);
                }),
            },
        );
        rx.recv().unwrap()
    }

    fn snapshot_on(handles: &ShardHandles, shard: usize, s: &SessionId) -> Option<SessionImage> {
        let (tx, rx) = mpsc::channel();
        handles.submit(
            shard,
            Job::Snapshot {
                session: s.clone(),
                respond: Box::new(move |image| {
                    let _ = tx.send(image);
                }),
            },
        );
        rx.recv().unwrap()
    }

    #[test]
    fn snapshot_leaves_the_session_serving() {
        let pool = ShardPool::spawn(2, (640, 480));
        let handles = pool.handles();
        let s = SessionId::new("durable").unwrap();
        let shard = shard_of(&s, 2);
        handles.execute(
            &s,
            vec![Request::Mutate(Mutation::LoadScenario {
                n_genes: 60,
                seed: 1,
            })],
        );
        // unlike Extract, Snapshot answers without dropping the engine
        let image = snapshot_on(&handles, shard, &s).expect("session lives here");
        assert_eq!(image.requests, 1);
        assert_eq!(image.log.len(), 1);
        let again = snapshot_on(&handles, shard, &s).expect("still here after a snapshot");
        assert_eq!(again, image, "snapshots are repeatable");
        let out = handles.execute(&s, vec![Request::Query(Query::SessionInfo)]);
        assert!(out.error.is_none(), "session still serves after snapshots");
        // a session that does not live here answers None
        assert!(snapshot_on(&handles, shard, &SessionId::new("nobody").unwrap()).is_none());
        drop(handles);
        pool.join();
    }

    #[test]
    fn extract_install_moves_a_session_image_between_shards() {
        let pool = ShardPool::spawn(2, (640, 480));
        let handles = pool.handles();
        let s = SessionId::new("mover").unwrap();
        let from = shard_of(&s, 2);
        let to = 1 - from;
        handles.execute(
            &s,
            vec![Request::Mutate(Mutation::LoadScenario {
                n_genes: 60,
                seed: 1,
            })],
        );
        // extract from the hash owner: a serializable image, not an
        // engine — the scenario load is its whole (compacted) log.
        let image = extract_on(&handles, from, &s).expect("session lives on its shard");
        assert_eq!(image.requests, 1);
        assert_eq!(image.log.len(), 1);
        assert!(image.datasets.is_empty(), "scenario loads stamp no files");
        // …install on the other shard…
        assert!(
            install_on(&handles, to, &s, image).is_ok(),
            "install must take"
        );
        // …and a run routed at the new shard sees the intact state.
        let (tx, rx) = mpsc::channel();
        handles.submit(
            to,
            Job::Run {
                session: s.clone(),
                requests: vec![Request::Query(Query::SessionInfo)],
                publish: false,
                respond: Box::new(move |done| {
                    let _ = tx.send(done);
                }),
            },
        );
        let out = rx.recv().unwrap().outcome;
        assert!(out.error.is_none());
        match &out.responses[0] {
            fv_api::Response::SessionInfo(info) => assert_eq!(info.n_datasets, 3),
            other => panic!("wrong response: {other:?}"),
        }
        // extracting a session that is not there answers None
        assert!(extract_on(&handles, from, &s).is_none());
        // installing over an occupied name hands the image BACK (with the
        // reason) instead of dropping it
        handles.execute(&s, Vec::new()); // fresh empty `s` on `from`
        let image = extract_on(&handles, to, &s).expect("moved session still on `to`");
        let (returned, why) =
            install_on(&handles, from, &s, image).expect_err("occupied name must refuse");
        assert_eq!(why.code, fv_api::ErrorCode::InvalidRequest);
        assert_eq!(returned.log.len(), 1, "image came back intact");
        drop(handles);
        pool.join();
    }

    #[test]
    fn shards_share_one_dataset_cache() {
        let dir = std::env::temp_dir().join(format!("fv-shard-cache-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shared.pcl");
        std::fs::write(
            &path,
            "ID\tNAME\tGWEIGHT\tc0\tc1\nG1\tG1\t1\t1.0\t2.0\nG2\tG2\t1\t3.0\t4.0\n",
        )
        .unwrap();
        let pool = ShardPool::spawn(4, (640, 480));
        let handles = pool.handles();
        let load = Request::Mutate(Mutation::LoadDataset {
            path: path.to_string_lossy().into_owned(),
        });
        // session names chosen to spread across shards
        for name in ["s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7"] {
            let out = handles.execute(&SessionId::new(name).unwrap(), vec![load.clone()]);
            assert!(out.error.is_none(), "{name}: {:?}", out.error);
        }
        let stats = handles.cache_stats();
        assert_eq!(stats.misses, 1, "one parse across all shards");
        assert_eq!(stats.hits, 7);
        assert_eq!(stats.entries, 1);
        drop(handles);
        pool.join();
        std::fs::remove_dir_all(&dir).ok();
    }
}
