//! fv-stream: the push-based tile-streaming plane.
//!
//! Request/response (the rest of fv-net) answers exactly one frame per
//! wire line. This module adds the *other* direction: a connection that
//! sends `subscribe <session> <TX>x<TY>` becomes a **viewer** — after
//! every executed run on that session the shard rasterizes the desktop
//! once into a wall-sized framebuffer, and the event loop fans
//! delta-encoded tile frames out to every subscriber. One render, N
//! viewers.
//!
//! ```text
//!   run executes on shard ──▸ render_desktop once ──▸ PubFrame
//!        │ completion channel (wall fb + damage rects)
//!        ▼
//!   event loop   publish: damage ∩ tile viewports → per-subscriber
//!        │        pending map (coalesce), drop-to-keyframe past the
//!        │        outbox watermark — a slow viewer never stalls anyone
//!        ▼
//!   subscribers  length-prefixed binary tile frames   [`fv_wall::stream`]
//! ```
//!
//! **Flow control.** Each subscriber owns an outbox like any other
//! connection. At publish time a subscriber whose outbox is past
//! [`OUTBOX_HIGH_WATER`](crate::server) — or whose acks (optional
//! `ack <seq>` lines) trail by more than [`STREAM_ACK_LAG`] frames — has
//! its pending deltas discarded and is marked for a **fresh keyframe on
//! drain** instead of an ever-growing backlog. Pending deltas for the
//! same tile coalesce into one bounding rect. Both events are counted in
//! the `stream` section of `stats`.
//!
//! The client side is [`Watcher`]: a blocking subscriber that reassembles
//! tile frames into a local [`Framebuffer`] and can verify it against a
//! local render (`fvtool watch --verify-script`).

use fv_api::{ApiError, ErrorCode, SessionId};
use fv_render::Framebuffer;
use fv_wall::stream::{decode, TileAssembler, TileFrame, TileStreamEncoder};
use fv_wall::tile::{TileGrid, Viewport};
use std::collections::{BTreeMap, BTreeSet};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::rc::Rc;
use std::time::Duration;

/// Drop-to-keyframe threshold for subscribers that send `ack <seq>`
/// lines: once the encoder's next sequence number runs more than this
/// many frames ahead of the last acknowledged one, pending deltas are
/// discarded and the subscriber re-syncs from a keyframe. Subscribers
/// that never ack opt out of ack-based pacing (the outbox watermark
/// still bounds them).
pub const STREAM_ACK_LAG: u64 = 32;

// ── server side: per-subscriber and per-session state ───────────────────

/// Counters for the `stream` section of `stats` (everything except the
/// live-subscriber gauge, which is derived from the registry).
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct StreamMetrics {
    /// Tile frames written to subscriber outboxes.
    pub frames: u64,
    /// Encoded bytes of those frames (header + pixel payload).
    pub bytes: u64,
    /// Pixels shipped (sum of frame rect areas).
    pub pixels: u64,
    /// Pending deltas that merged into an already-pending rect for the
    /// same tile instead of queueing separately.
    pub coalesced: u64,
    /// Backlogged subscribers whose pending deltas were discarded in
    /// favor of a fresh keyframe on drain.
    pub dropped: u64,
}

/// One connection's subscription: its tiling of the wall, the encoder
/// that owns its sequence numbers, and the coalescing pending set.
pub(crate) struct SubState {
    /// The session this subscriber watches.
    pub session: SessionId,
    /// Per-subscriber encoder — sequence numbers are per-subscriber, so
    /// a contiguous `seq` stream proves the viewer missed nothing.
    pub encoder: TileStreamEncoder,
    /// Next drain sends a full keyframe (set on subscribe, after a
    /// drop-to-keyframe, and on session migration re-sync).
    pub need_keyframe: bool,
    /// Damage accumulated since the last drain, coalesced per tile.
    pub pending: BTreeMap<usize, Viewport>,
    /// Highest `ack <seq>` the subscriber has sent, if it paces itself.
    pub last_ack: Option<u64>,
}

impl SubState {
    pub fn new(session: SessionId, grid: TileGrid) -> SubState {
        SubState {
            session,
            encoder: TileStreamEncoder::new(grid),
            need_keyframe: true,
            pending: BTreeMap::new(),
            last_ack: None,
        }
    }

    /// Whether the subscriber's self-reported position trails the encoder
    /// far enough that queueing more deltas would only grow a backlog it
    /// can never catch up through.
    pub fn ack_lagging(&self) -> bool {
        self.last_ack
            .is_some_and(|a| self.encoder.next_seq().saturating_sub(a) > STREAM_ACK_LAG)
    }
}

/// A session with at least one subscriber: who watches it, and the most
/// recently published wall framebuffer (what keyframes and coalesced
/// deltas are cut from — it already contains every prior update, which
/// is what makes coalescing lossless).
#[derive(Default)]
pub(crate) struct SessionStream {
    pub subscribers: BTreeSet<u64>,
    pub last: Option<Rc<Framebuffer>>,
}

/// The event loop's subscription registry. Lives on the loop thread
/// (hence `Rc`, not `Arc` — the framebuffer is shared across subscriber
/// drains, never across threads).
#[derive(Default)]
pub(crate) struct StreamPlane {
    sessions: BTreeMap<SessionId, SessionStream>,
    pub metrics: StreamMetrics,
}

impl StreamPlane {
    pub fn subscribe(&mut self, session: SessionId, conn: u64) {
        self.sessions
            .entry(session)
            .or_default()
            .subscribers
            .insert(conn);
    }

    /// Remove one subscriber; the session entry (and its retained
    /// framebuffer) dies with its last subscriber.
    pub fn unsubscribe(&mut self, session: &SessionId, conn: u64) {
        if let Some(entry) = self.sessions.get_mut(session) {
            entry.subscribers.remove(&conn);
            if entry.subscribers.is_empty() {
                self.sessions.remove(session);
            }
        }
    }

    /// Whether a run on `session` must be published (rendered + fanned
    /// out) at all.
    pub fn has_subscribers(&self, session: &SessionId) -> bool {
        self.sessions.contains_key(session)
    }

    pub fn session_mut(&mut self, session: &SessionId) -> Option<&mut SessionStream> {
        self.sessions.get_mut(session)
    }

    /// The subscribers of `session`, snapshotted (callers mutate the
    /// connection table while iterating).
    pub fn subscribers_of(&self, session: &SessionId) -> Vec<u64> {
        self.sessions
            .get(session)
            .map(|e| e.subscribers.iter().copied().collect())
            .unwrap_or_default()
    }

    /// The latest published framebuffer for `session`, if any run has
    /// been published since its first subscriber arrived.
    pub fn last_frame(&self, session: &SessionId) -> Option<Rc<Framebuffer>> {
        self.sessions.get(session).and_then(|e| e.last.clone())
    }

    /// Live subscriber count across all sessions (the `stats` gauge).
    pub fn n_subscribers(&self) -> usize {
        self.sessions.values().map(|e| e.subscribers.len()).sum()
    }
}

/// Smallest rect covering both — safe to use as a coalesced pending rect
/// because both inputs are already clipped to the same tile viewport.
pub(crate) fn union_rect(a: &Viewport, b: &Viewport) -> Viewport {
    let x = a.x.min(b.x);
    let y = a.y.min(b.y);
    let x1 = (a.x + a.w).max(b.x + b.w);
    let y1 = (a.y + a.h).max(b.y + b.h);
    Viewport {
        x,
        y,
        w: x1 - x,
        h: y1 - y,
    }
}

// ── client side: the Watcher ────────────────────────────────────────────

/// A blocking fv-stream subscriber: connects, sends
/// `subscribe <session> <TX>x<TY>`, then decodes the binary tile-frame
/// stream, reassembling every frame into a local wall [`Framebuffer`].
///
/// ```no_run
/// # use fv_net::stream::Watcher;
/// let mut w = Watcher::connect("127.0.0.1:7171", "main", 4, 2).unwrap();
/// while let Some(frame) = w.next_frame().unwrap() {
///     println!("seq={} tile={} {} bytes", frame.seq, frame.tile, frame.pixels.len());
///     w.ack(frame.seq);
/// }
/// let fb = w.framebuffer(); // the reassembled wall
/// # let _ = fb;
/// ```
pub struct Watcher {
    stream: TcpStream,
    buf: Vec<u8>,
    start: usize,
    assembler: TileAssembler,
    /// The server closed the connection (EOF) — as opposed to a read
    /// timeout, which also surfaces as `Ok(None)` from `next_frame`.
    hung_up: bool,
}

impl Watcher {
    /// Connect and subscribe. The server validates that the grid divides
    /// its scene evenly; its ack (`subscribed <session> <TX>x<TY> <W>x<H>`)
    /// tells the watcher the wall dimensions to assemble into.
    pub fn connect(
        addr: &str,
        session: &str,
        tiles_x: usize,
        tiles_y: usize,
    ) -> Result<Watcher, ApiError> {
        let mut stream = TcpStream::connect(addr).map_err(|e| ApiError::io(e.to_string()))?;
        stream
            .write_all(format!("subscribe {session} {tiles_x}x{tiles_y}\n").as_bytes())
            .map_err(|e| ApiError::io(e.to_string()))?;
        let mut buf = Vec::new();
        let mut start = 0usize;
        let header = read_text_line(&mut stream, &mut buf, &mut start)?;
        let body = match header.strip_prefix("ok ") {
            Some(count) => {
                // Honor the frame's line count: a server dying mid-reply
                // leaves the body short, and that must surface as the
                // typed E_IO a dropped connection deserves — never as a
                // parse error on whatever fragment did arrive.
                let n: usize = count
                    .trim()
                    .parse()
                    .map_err(|_| ApiError::parse(format!("bad frame header {header:?}")))?;
                if n == 0 {
                    return Err(ApiError::parse("bad frame line count 0"));
                }
                let mut lines = Vec::with_capacity(n);
                for _ in 0..n {
                    lines.push(read_text_line(&mut stream, &mut buf, &mut start)?);
                }
                // A well-formed ack is one line; a multi-line body falls
                // through to the malformed-ack error below.
                lines.join("\n")
            }
            None => match header.strip_prefix("err ") {
                Some(rest) => {
                    let (code, msg) = rest.split_once(' ').unwrap_or((rest, ""));
                    let code = ErrorCode::from_wire(code).unwrap_or(fv_api::ErrorCode::Internal);
                    return Err(ApiError::new(code, msg));
                }
                None => {
                    return Err(ApiError::parse(format!(
                        "malformed subscribe reply {header:?}"
                    )))
                }
            },
        };
        // "subscribed <session> <TX>x<TY> <W>x<H>"
        let fields: Vec<&str> = body.split(' ').collect();
        let dims = match fields.as_slice() {
            ["subscribed", _, _, dims] => *dims,
            _ => return Err(ApiError::parse(format!("malformed subscribe ack {body:?}"))),
        };
        let (w, h) = dims
            .split_once('x')
            .and_then(|(w, h)| Some((w.parse::<usize>().ok()?, h.parse::<usize>().ok()?)))
            .ok_or_else(|| ApiError::parse(format!("malformed wall dimensions {dims:?}")))?;
        if tiles_x == 0 || tiles_y == 0 || w % tiles_x != 0 || h % tiles_y != 0 {
            return Err(ApiError::parse(format!(
                "server wall {w}x{h} does not divide into {tiles_x}x{tiles_y} tiles"
            )));
        }
        let grid = TileGrid::new(tiles_x, tiles_y, w / tiles_x, h / tiles_y);
        Ok(Watcher {
            stream,
            buf,
            start,
            assembler: TileAssembler::new(grid),
            hung_up: false,
        })
    }

    /// Whether the stream ended because the server hung up (EOF), as
    /// opposed to a read-timeout idle. Lets callers turn an unexpected
    /// mid-stream disconnect into the typed `E_IO` it deserves instead
    /// of mistaking it for a quiet stream.
    pub fn hung_up(&self) -> bool {
        self.hung_up
    }

    /// Decode the next tile frame, applying it to the internal
    /// framebuffer. Blocks until a frame arrives; `Ok(None)` means the
    /// server hung up — or, when a read timeout is set, that the stream
    /// went idle for that long.
    pub fn next_frame(&mut self) -> Result<Option<TileFrame>, ApiError> {
        loop {
            match decode(&self.buf[self.start..]) {
                Err(e) => return Err(ApiError::parse(e.to_string())),
                Ok(Some((frame, used))) => {
                    self.start += used;
                    if self.start > 1 << 20 {
                        self.buf.drain(..self.start);
                        self.start = 0;
                    }
                    self.assembler
                        .apply(&frame)
                        .map_err(|e| ApiError::parse(e.to_string()))?;
                    return Ok(Some(frame));
                }
                Ok(None) => {
                    let mut chunk = [0u8; 64 * 1024];
                    match self.stream.read(&mut chunk) {
                        Ok(0) => {
                            self.hung_up = true;
                            return Ok(None);
                        }
                        Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                        Err(e)
                            if matches!(
                                e.kind(),
                                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                            ) =>
                        {
                            return Ok(None)
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(e) => return Err(ApiError::io(e.to_string())),
                    }
                }
            }
        }
    }

    /// Tell the server how far we have decoded. Optional pacing: the
    /// server answers nothing (acks are flow control, not requests), but
    /// uses the lag to drop-to-keyframe a subscriber that falls behind.
    pub fn ack(&mut self, seq: u64) {
        let _ = self.stream.write_all(format!("ack {seq}\n").as_bytes());
    }

    /// Stop streaming: sends `unsubscribe`, then drains (and applies) any
    /// tile frames still in flight until the server's text confirmation
    /// arrives. The connection stays usable as a watcher object (frames,
    /// framebuffer, …) but receives no further frames.
    pub fn unsubscribe(&mut self) -> Result<(), ApiError> {
        self.stream
            .write_all(b"unsubscribe\n")
            .map_err(|e| ApiError::io(e.to_string()))?;
        loop {
            // Disambiguate what is next in the byte stream: a binary tile
            // frame ("tile …") or the text reply ("ok 1\nunsubscribed…").
            let pending = &self.buf[self.start..];
            if pending.len() < 3 {
                let mut chunk = [0u8; 4096];
                match self.stream.read(&mut chunk) {
                    Ok(0) => return Err(ApiError::io("connection closed during unsubscribe")),
                    Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(ApiError::io(e.to_string())),
                }
                continue;
            }
            if pending.starts_with(b"ok ") {
                let header = read_text_line(&mut self.stream, &mut self.buf, &mut self.start)?;
                debug_assert!(header.starts_with("ok "));
                let body = read_text_line(&mut self.stream, &mut self.buf, &mut self.start)?;
                if !body.starts_with("unsubscribed") {
                    return Err(ApiError::parse(format!(
                        "unexpected unsubscribe reply {body:?}"
                    )));
                }
                return Ok(());
            }
            match decode(&self.buf[self.start..]).map_err(|e| ApiError::parse(e.to_string()))? {
                Some((frame, used)) => {
                    self.start += used;
                    self.assembler
                        .apply(&frame)
                        .map_err(|e| ApiError::parse(e.to_string()))?;
                }
                None => {
                    let mut chunk = [0u8; 64 * 1024];
                    match self.stream.read(&mut chunk) {
                        Ok(0) => return Err(ApiError::io("connection closed during unsubscribe")),
                        Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(e) => return Err(ApiError::io(e.to_string())),
                    }
                }
            }
        }
    }

    /// A read timeout turns [`Watcher::next_frame`] from "block forever"
    /// into "Ok(None) after `dur` of silence" — how `fvtool watch` idles
    /// out.
    pub fn set_read_timeout(&mut self, dur: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(dur)
    }

    /// The reassembled wall framebuffer (every applied frame painted in).
    pub fn framebuffer(&self) -> &Framebuffer {
        self.assembler.framebuffer()
    }

    pub fn grid(&self) -> &TileGrid {
        self.assembler.grid()
    }

    /// Highest sequence number applied so far.
    pub fn last_seq(&self) -> Option<u64> {
        self.assembler.last_seq()
    }

    /// Total frames applied.
    pub fn frames(&self) -> u64 {
        self.assembler.frames()
    }

    /// Keyframes among them.
    pub fn keyframes(&self) -> u64 {
        self.assembler.keyframes()
    }
}

/// Read one `\n`-terminated text line from `stream` through the watcher's
/// own buffer (a [`crate::frame::LineReader`] would swallow bytes of the
/// binary stream that follows; this buffer keeps them).
fn read_text_line(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
    start: &mut usize,
) -> Result<String, ApiError> {
    loop {
        if let Some(pos) = buf[*start..].iter().position(|&b| b == b'\n') {
            let end = *start + pos;
            let line = std::str::from_utf8(&buf[*start..end])
                .map_err(|_| ApiError::parse("reply line is not valid UTF-8"))?
                .trim_end_matches('\r')
                .to_string();
            *start = end + 1;
            return Ok(line);
        }
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => return Err(ApiError::io("connection closed during subscribe")),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ApiError::io(e.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(s: &str) -> SessionId {
        SessionId::new(s.to_string()).unwrap()
    }

    #[test]
    fn registry_tracks_subscribers_and_drops_empty_sessions() {
        let mut plane = StreamPlane::default();
        assert!(!plane.has_subscribers(&sid("a")));
        plane.subscribe(sid("a"), 1);
        plane.subscribe(sid("a"), 2);
        plane.subscribe(sid("b"), 3);
        assert!(plane.has_subscribers(&sid("a")));
        assert_eq!(plane.n_subscribers(), 3);
        assert_eq!(plane.subscribers_of(&sid("a")), vec![1, 2]);
        plane.unsubscribe(&sid("a"), 1);
        assert!(plane.has_subscribers(&sid("a")));
        plane.unsubscribe(&sid("a"), 2);
        assert!(
            !plane.has_subscribers(&sid("a")),
            "entry died with last sub"
        );
        assert!(plane.last_frame(&sid("a")).is_none());
        assert_eq!(plane.n_subscribers(), 1);
    }

    #[test]
    fn unsubscribe_is_idempotent_and_ignores_strangers() {
        let mut plane = StreamPlane::default();
        plane.unsubscribe(&sid("ghost"), 9);
        plane.subscribe(sid("a"), 1);
        plane.unsubscribe(&sid("a"), 42);
        assert!(plane.has_subscribers(&sid("a")));
    }

    #[test]
    fn ack_lag_only_applies_to_acking_subscribers() {
        let grid = TileGrid::new(2, 2, 8, 8);
        let mut sub = SubState::new(sid("a"), grid);
        let wall = Framebuffer::new(16, 16);
        for _ in 0..(STREAM_ACK_LAG + 5) {
            sub.encoder.keyframe(&wall);
        }
        assert!(!sub.ack_lagging(), "never acked → never considered lagging");
        sub.last_ack = Some(0);
        assert!(sub.ack_lagging());
        sub.last_ack = Some(sub.encoder.next_seq());
        assert!(!sub.ack_lagging());
    }

    #[test]
    fn union_rect_covers_both_inputs() {
        let a = Viewport {
            x: 2,
            y: 3,
            w: 4,
            h: 5,
        };
        let b = Viewport {
            x: 5,
            y: 1,
            w: 2,
            h: 3,
        };
        let u = union_rect(&a, &b);
        assert_eq!(
            u,
            Viewport {
                x: 2,
                y: 1,
                w: 5,
                h: 7
            }
        );
        assert_eq!(u.intersect(&a), Some(a));
        assert_eq!(u.intersect(&b), Some(b));
    }
}
