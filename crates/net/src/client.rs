//! Client side of the transport: a typed request/response connection plus
//! the pipelined remote script runner `fvtool script --remote` uses.

use crate::frame::{read_reply, LineReader};
use fv_api::codec::{ScriptItem, ScriptLine};
use fv_api::{format_request, parse_response, parse_script, ApiError, Request, Response};
use std::io::Write;
use std::net::TcpStream;

/// A connected client. One request at a time: [`Client::execute`] writes
/// a line and blocks for its frame. (The script runner below pipelines
/// instead.)
pub struct Client {
    reader: LineReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to `addr` (e.g. `127.0.0.1:7007`).
    pub fn connect(addr: &str) -> Result<Client, ApiError> {
        let stream =
            TcpStream::connect(addr).map_err(|e| ApiError::io(format!("connect {addr}: {e}")))?;
        let writer = stream
            .try_clone()
            .map_err(|e| ApiError::io(format!("clone stream: {e}")))?;
        Ok(Client {
            reader: LineReader::new(stream),
            writer,
        })
    }

    /// Send one raw wire line and read its single reply frame. The outer
    /// error is transport-level; the inner `Result` is the server's
    /// answer.
    pub fn roundtrip(&mut self, line: &str) -> Result<Result<String, ApiError>, ApiError> {
        writeln!(self.writer, "{line}").map_err(|e| ApiError::io(format!("send: {e}")))?;
        match read_reply(&mut self.reader)? {
            Some(reply) => Ok(reply),
            None => Err(ApiError::io("server closed the connection")),
        }
    }

    /// Execute a typed request remotely: format → send → decode.
    pub fn execute(&mut self, request: &Request) -> Result<Response, ApiError> {
        let text = self.roundtrip(&format_request(request))??;
        parse_response(&text)
    }

    /// Switch (and materialize) the connection's current session.
    pub fn use_session(&mut self, name: &str) -> Result<(), ApiError> {
        let reply = self.roundtrip(&format!("use {name}"))??;
        if reply == format!("using {name}") {
            Ok(())
        } else {
            Err(ApiError::io(format!("unexpected use reply {reply:?}")))
        }
    }

    /// Drop the connection's current session server-side (the connection
    /// falls back to the default session). How one-shot clients avoid
    /// leaking scratch sessions.
    pub fn close_session(&mut self) -> Result<(), ApiError> {
        let reply = self.roundtrip("close")??;
        if reply.starts_with("closed ") {
            Ok(())
        } else {
            Err(ApiError::io(format!("unexpected close reply {reply:?}")))
        }
    }

    /// Move a live session to another shard (`migrate` control line). The
    /// session's engine — loaded datasets, selection, cluster trees,
    /// everything — crosses shards intact; no file is re-read or
    /// re-parsed. Fails typed (`E_NOT_FOUND` / `E_INVALID`) for unknown
    /// sessions or out-of-range shards.
    pub fn migrate(&mut self, session: &str, shard: usize) -> Result<(), ApiError> {
        let reply = self.roundtrip(&format!("migrate {session} {shard}"))??;
        if reply == format!("migrated {session} shard={shard}") {
            Ok(())
        } else {
            Err(ApiError::io(format!("unexpected migrate reply {reply:?}")))
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ApiError> {
        let reply = self.roundtrip("ping")??;
        if reply == "pong" {
            Ok(())
        } else {
            Err(ApiError::io(format!("unexpected ping reply {reply:?}")))
        }
    }

    /// Ask the server to stop (acknowledged with `bye` before it does).
    pub fn shutdown_server(&mut self) -> Result<(), ApiError> {
        let reply = self.roundtrip("shutdown")??;
        if reply == "bye" {
            Ok(())
        } else {
            Err(ApiError::io(format!("unexpected shutdown reply {reply:?}")))
        }
    }

    /// Snapshot the server's metrics (`stats` control line), decoded into
    /// the typed [`crate::metrics::ServerStats`].
    pub fn stats(&mut self) -> Result<crate::metrics::ServerStats, ApiError> {
        let text = self.roundtrip("stats")??;
        crate::metrics::parse_stats(&text)
    }

    /// Snapshot the automatic rebalancer (`balance` control line),
    /// decoded into the typed [`crate::balance::BalanceStatus`]: mode,
    /// decision counters, policy knobs, and the recent-move ring.
    pub fn balance_status(&mut self) -> Result<crate::balance::BalanceStatus, ApiError> {
        let text = self.roundtrip("balance")??;
        crate::balance::parse_balance(&text)
    }

    /// Flip the rebalancer mode at runtime (`balance auto|off`). The
    /// policy's counters and cooldowns survive the flip.
    pub fn set_balance(&mut self, mode: crate::balance::BalanceMode) -> Result<(), ApiError> {
        let reply = self.roundtrip(&format!("balance {mode}"))??;
        if reply == format!("balance mode={mode}") {
            Ok(())
        } else {
            Err(ApiError::io(format!("unexpected balance reply {reply:?}")))
        }
    }

    /// List every live session across all shards (`list-sessions`
    /// control line), merged and sorted by name server-side.
    pub fn list_sessions(&mut self) -> Result<Vec<fv_api::SessionEntry>, ApiError> {
        let text = self.roundtrip("list-sessions")??;
        fv_api::parse_sessions_reply(&text)
    }
}

/// Replay a script against a remote server, streaming transcript blocks
/// to `sink` — the remote counterpart of `EngineHub::run_script_streaming`
/// plus `TranscriptEntry::render`, producing byte-identical text: for
/// each executed request, `<session>:<line>> <canonical request>\n` then
/// the response text and a newline.
///
/// The whole script is parsed locally first (so parse errors carry the
/// same line numbers as local replay, and nothing is sent for a bad
/// script), then written to the socket in one pipelined burst while
/// frames are read back in order. On a request error the runner stops —
/// with the same `line N:`-prefixed error local replay produces — and
/// drops the connection; lines already in flight may still execute
/// server-side (mutations are never rolled back, same as a local
/// mid-script error).
pub fn run_script_remote(
    addr: &str,
    text: &str,
    mut sink: impl FnMut(&str),
) -> Result<(), ApiError> {
    let lines = parse_script(text)?;
    let stream =
        TcpStream::connect(addr).map_err(|e| ApiError::io(format!("connect {addr}: {e}")))?;
    let mut write_half = stream
        .try_clone()
        .map_err(|e| ApiError::io(format!("clone stream: {e}")))?;
    let ctrl = stream
        .try_clone()
        .map_err(|e| ApiError::io(format!("clone stream: {e}")))?;
    let mut reader = LineReader::new(stream);

    // One burst: the server sees the whole script buffered and batches
    // contiguous same-session runs. A writer thread keeps large scripts
    // from deadlocking against un-drained responses.
    let mut wire = String::new();
    for line in &lines {
        match &line.item {
            ScriptItem::Use(name) => {
                wire.push_str("use ");
                wire.push_str(name);
            }
            ScriptItem::Close(name) => {
                wire.push_str("close ");
                wire.push_str(name);
            }
            ScriptItem::Request(request) => wire.push_str(&format_request(request)),
        }
        wire.push('\n');
    }
    // fv-lint: allow(no-spawn-outside-sanctioned-modules) -- client-side writer thread so a pipelined script cannot deadlock against a flushing server; joined below
    let writer = std::thread::spawn(move || {
        // A send failure surfaces as missing frames on the read side.
        let _ = write_half.write_all(wire.as_bytes());
        let _ = write_half.shutdown(std::net::Shutdown::Write);
    });

    let result = read_script_replies(&lines, &mut reader, &mut sink);
    // Tear the socket down BEFORE joining the writer: after a mid-script
    // error we stop draining responses, so for a large script the server
    // can stall against our full receive path, stop reading, and leave
    // the writer thread blocked in write_all forever. Killing the socket
    // fails that write and lets the join complete. (Harmless on success —
    // the writer already finished and half-closed.)
    let _ = ctrl.shutdown(std::net::Shutdown::Both);
    let _ = writer.join();
    result
}

fn read_script_replies(
    lines: &[ScriptLine],
    reader: &mut LineReader<TcpStream>,
    sink: &mut impl FnMut(&str),
) -> Result<(), ApiError> {
    let mut session = fv_api::EngineHub::default_session();
    for line in lines {
        let reply = read_reply(reader)?
            .ok_or_else(|| ApiError::io("server closed the connection mid-script"))?;
        match &line.item {
            ScriptItem::Use(name) => {
                // consume the `using` acknowledgement
                reply.map_err(|e| decorate(line.line_no, e))?;
                session = fv_api::SessionId::new(name.clone())?;
            }
            ScriptItem::Close(_) => {
                // consume the `closed` acknowledgement; like `use`, close
                // directives produce no transcript block
                reply.map_err(|e| decorate(line.line_no, e))?;
            }
            ScriptItem::Request(request) => match reply {
                Ok(text) => sink(&format!(
                    "{}:{}> {}\n{}\n",
                    session,
                    line.line_no,
                    format_request(request),
                    text
                )),
                Err(e) => return Err(decorate(line.line_no, e)),
            },
        }
    }
    Ok(())
}

/// Prefix a server-side error with its script line, matching the local
/// `run_script` error shape exactly.
fn decorate(line_no: usize, e: ApiError) -> ApiError {
    ApiError::new(e.code, format!("line {line_no}: {}", e.message))
}
