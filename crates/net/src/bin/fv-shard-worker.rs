//! Standalone shard worker binary — the process a [`ProcBackend`] test
//! spawns per shard (production servers re-exec themselves as `fvtool
//! shard-worker` instead; both paths are [`fv_net::worker_main`]).
//! Not meant to be run by hand: it immediately dials the parent given
//! by `--connect` and speaks the shard control protocol (see
//! `crates/net/src/procshard.rs`).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match fv_net::worker_main(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("fv-shard-worker: {msg}");
            ExitCode::FAILURE
        }
    }
}
