//! # fv-net — sharded TCP transport for the fv-api wire protocol
//!
//! This crate takes the `fv-api` request/response protocol across the
//! process boundary: a std-only threaded TCP server that speaks the
//! line-oriented wire codec over sockets, partitions sessions across N
//! worker shards, and a client (plus remote script runner) that make
//! `fvtool --remote` byte-identical to local execution.
//!
//! ```text
//!   clients            fvtool --remote · Client · run_script_remote
//!        │  request lines ▸ / ◂ ok|err frames        [`frame`]
//!        ▼
//!   Server             accept loop, one reader thread per connection
//!        │  contiguous same-session runs             [`server`]
//!        ▼
//!   ShardPool          hash(SessionId) → shard; each worker owns one
//!        │  EngineHub behind a channel               [`shard`]
//!        ▼
//!   fv-api             EngineHub::execute_run_on (shared layout passes)
//! ```
//!
//! Guarantees:
//! - **Per-connection ordering**: responses arrive in request order, one
//!   frame per non-blank non-comment line.
//! - **Session affinity**: a session's requests always execute on the
//!   same shard, serialized; disjoint sessions on different shards run
//!   concurrently.
//! - **Coalescing survives the wire**: contiguous same-session request
//!   runs map onto `EngineHub::execute_run_on`, sharing pane-layout
//!   passes exactly like local script replay (which uses the same entry
//!   point).
//! - **Failure containment**: malformed or oversized lines produce typed
//!   `E_PARSE` frames (closing the connection only when the line boundary
//!   is lost); a panicking request costs its session, never the shard.
//!
//! See `crates/net/README.md` for the framing grammar and a quickstart.

pub mod client;
pub mod frame;
pub mod server;
pub mod shard;

pub use client::{run_script_remote, Client};
pub use server::{Server, ServerConfig};
pub use shard::shard_of;
