//! # fv-net — sharded, event-loop TCP transport for the fv-api wire protocol
//!
//! This crate takes the `fv-api` request/response protocol across the
//! process boundary: a std-only TCP server whose connections are all
//! driven by **one poll-based event-loop thread** (readiness-driven
//! reads, incremental line framing, buffered writes — idle connections
//! cost zero threads), with sessions partitioned across N worker shards,
//! and a client (plus remote script runner) that make `fvtool --remote`
//! byte-identical to local execution.
//!
//! ```text
//!   clients            fvtool --remote · Client · run_script_remote
//!        │  request lines ▸ / ◂ ok|err frames        [`frame`]
//!        ▼
//!   Server             ONE event-loop thread: poll(accept, conns, waker)
//!        │  contiguous same-session runs, bounded    [`server`], [`poll`]
//!        │  pending queues (E_BUSY), stats counters  [`metrics`]
//!        ▼
//!   ShardPool          hash(SessionId) → shard; each worker owns one
//!        │  EngineHub behind a channel; results      [`shard`]
//!        │  return over a completion channel + waker
//!        ▼
//!   fv-api             EngineHub::execute_run_on (shared layout passes)
//! ```
//!
//! Guarantees:
//! - **Per-connection ordering**: responses arrive in request order, one
//!   frame per non-blank non-comment line — pre-resolved errors
//!   (parse faults, `E_BUSY` rejections) queue in line order too.
//! - **Session affinity**: a session's requests always execute on the
//!   same shard, serialized; disjoint sessions on different shards run
//!   concurrently.
//! - **Coalescing survives the wire**: contiguous same-session request
//!   runs map onto `EngineHub::execute_run_on`, sharing pane-layout
//!   passes exactly like local script replay (which uses the same entry
//!   point).
//! - **Bounded resources**: thread count is `1 + n_shards`, independent
//!   of connection count; per-connection memory is bounded by the
//!   pending-request limit (`E_BUSY` beyond it) plus inbox/outbox
//!   watermarks that pause reads until the peer drains.
//! - **Failure containment**: malformed, oversized, or non-UTF-8 lines
//!   produce typed error frames and the connection survives; a panicking
//!   request costs its session, never the shard.
//! - **Observability**: the `stats` control line snapshots
//!   [`ServerStats`] (connections, per-shard queue depth, run sizes,
//!   frame counters, balancer gauges); `list-sessions` lists every
//!   session across all shards, merged and sorted.
//! - **Tile streaming (pub/sub)**: `subscribe <session> <TX>x<TY>`
//!   turns a connection into a viewer ([`stream`]): after every
//!   executed run the owning shard renders once and the loop fans out
//!   delta-encoded tile frames (keyframe on subscribe, damage-only
//!   after) to every subscriber with gapless per-subscriber seqs; a
//!   slow viewer is coalesced and, past the outbox watermark or ack
//!   lag, dropped to a fresh keyframe — never a backlog, never a stall
//!   for the publisher or its peers. Migrations re-sync subscribers
//!   with a keyframe from the new shard.
//! - **Load-aware placement (opt-in)**: under `balance auto`, a pure,
//!   clock-free policy engine ([`balance`]) periodically turns the
//!   stats plane (queue depths, latency-histogram deltas, per-session
//!   cost estimates) into migration plans executed through the same
//!   extract/install chain as operator `migrate`s — with hysteresis
//!   watermarks, a per-tick budget, and per-session cooldowns so it
//!   never thrashes.
//!
//! See `crates/net/README.md` for the framing grammar and a quickstart.

pub mod balance;
pub mod client;
pub mod frame;
pub mod metrics;
mod poll;
mod procshard;
pub mod replay;
pub mod server;
pub mod shard;
pub mod stream;
pub mod tap;

pub use balance::{
    plan_moves, BalanceConfig, BalanceMode, BalanceStatus, Balancer, MovePlan, ShardSnapshot,
};
pub use client::{run_script_remote, Client};
pub use metrics::{ServerStats, ShardStats};
pub use procshard::worker_main;
pub use replay::{recv_transcript, replay_local, replay_on_hub, replay_remote, ReplayOutcome};
pub use server::{Server, ServerConfig, ShardBackendConfig};
pub use shard::shard_of;
pub use stream::Watcher;
pub use tap::{record_session, ReplyAssembler};
